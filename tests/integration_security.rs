//! Integration of the §7.1 security design: certificate-based identification
//! across realms, grid-mapfile mapping, gateway ACLs, Akenti-style policy,
//! and the sensor manager's gateway allow-list.

use jamm_auth::acl::{AccessControlList, Action, GatewayAllowList, Principal};
use jamm_auth::identity::{CertificateAuthority, TrustStore};
use jamm_auth::mapfile::GridMapFile;
use jamm_auth::policy::{AttributeCertificate, PolicyEngine, Requirement, UseCondition};
use jamm_gateway::{EventGateway, GatewayConfig};
use jamm_ulm::{Event, Level, Timestamp};

const NOW: u64 = 959_400_000;

fn cpu_event(v: f64) -> Event {
    Event::builder("vmstat", "dpss1.lbl.gov")
        .level(Level::Usage)
        .event_type("CPU_TOTAL")
        .timestamp(Timestamp::from_secs(NOW))
        .value(v)
        .build()
}

#[test]
fn certificate_to_mapfile_to_gateway_acl_chain() {
    // 1. Two sites, two CAs, one trust store at the LBNL gateway.
    let doe_ca = CertificateAuthority::new("/O=Grid/CN=DOE Science Grid CA", 11);
    let ncsa_ca = CertificateAuthority::new("/O=Grid/CN=NCSA CA", 22);
    let mut trust = TrustStore::new();
    trust.add(doe_ca.clone());
    trust.add(ncsa_ca.clone());

    // 2. Users present certificates (one via a delegated proxy).
    let tierney = doe_ca.issue("/O=Grid/O=LBNL/CN=Brian Tierney", NOW, 86_400);
    let tierney_proxy = tierney.issue_proxy(777, NOW, 3_600);
    let remote = ncsa_ca.issue("/O=Grid/O=NCSA/CN=Remote Analyst", NOW, 86_400);
    assert!(trust.verify(&tierney, NOW).is_ok());
    assert!(trust.verify(&remote, NOW).is_ok());
    assert!(doe_ca
        .verify_proxy(&tierney_proxy, &tierney, 777, NOW)
        .is_ok());

    // 3. The grid map file translates subjects to local principals.
    let mapfile = GridMapFile::parse(
        "\"/O=Grid/O=LBNL/CN=Brian Tierney\" tierney\n\"/O=Grid/O=NCSA/CN=Remote Analyst\" guest\n",
    );
    let local_tierney = mapfile.map(tierney_proxy.effective_subject()).unwrap();
    let local_remote = mapfile.map(&remote.subject).unwrap();
    assert_eq!(local_tierney, "tierney");
    assert_eq!(local_remote, "guest");

    // 4. The gateway ACL: locals stream, guests get summaries only.
    let mut acl = AccessControlList::summary_for_others();
    acl.grant(
        Principal::User("tierney".into()),
        "*",
        [
            Action::Lookup,
            Action::SubscribeStream,
            Action::Query,
            Action::Summary,
        ],
    );
    let gateway = EventGateway::new(GatewayConfig::with_acl("gw.lbl.gov:8765", acl));
    for i in 0..30 {
        gateway.publish(&cpu_event(40.0 + i as f64));
    }
    // tierney streams.
    let sub = gateway
        .subscribe()
        .stream()
        .as_consumer(local_tierney)
        .open()
        .expect("internal user may stream");
    gateway.publish(&cpu_event(99.0));
    assert_eq!(sub.events.try_iter().count(), 1);
    // guest cannot stream, but can query and read summaries.
    assert!(gateway
        .subscribe()
        .stream()
        .as_consumer(local_remote)
        .open()
        .is_err());
    assert!(gateway
        .query(local_remote, "dpss1.lbl.gov", "CPU_TOTAL")
        .unwrap()
        .is_some());
    assert!(!gateway
        .summaries(local_remote, Timestamp::from_secs(NOW + 30))
        .unwrap()
        .is_empty());
}

#[test]
fn akenti_policy_gates_sensor_control_and_expired_credentials_fail() {
    let ca = CertificateAuthority::new("/O=Grid/CN=DOE Science Grid CA", 5);
    let mut policy = PolicyEngine::new();
    policy.trust_attribute_issuer("/O=Grid/CN=LBNL Attribute Authority");
    // Stakeholder: only members of the dpss-operators group may start or
    // reconfigure sensors on the storage cluster; any DOE Grid user may read
    // summaries.
    policy.add_condition(UseCondition {
        stakeholder: "dpss-project".into(),
        resource: "sensor:dpss1.lbl.gov/*".into(),
        requirement: Requirement::Attribute("group".into(), "dpss-operators".into()),
        actions: [
            Action::ControlSensors,
            Action::SubscribeStream,
            Action::Summary,
        ]
        .into_iter()
        .collect(),
    });
    policy.add_condition(UseCondition {
        stakeholder: "dpss-project".into(),
        resource: "sensor:dpss1.lbl.gov/*".into(),
        requirement: Requirement::DnContains("O=Grid".into()),
        actions: [Action::Summary].into_iter().collect(),
    });

    let operator = ca.issue("/O=Grid/O=LBNL/CN=Dan Gunter", NOW, 86_400);
    let operator_attr = AttributeCertificate {
        subject: operator.subject.clone(),
        attribute: "group".into(),
        value: "dpss-operators".into(),
        issuer: "/O=Grid/CN=LBNL Attribute Authority".into(),
        not_after: NOW + 7_200,
    };
    assert!(policy
        .check(
            &operator,
            std::slice::from_ref(&operator_attr),
            "sensor:dpss1.lbl.gov/*",
            Action::ControlSensors,
            NOW
        )
        .is_ok());

    // The same credential after the attribute certificate expires: control is
    // denied, summaries (granted on the DN alone) still work.
    let later = NOW + 10_000;
    assert!(policy
        .check(
            &operator,
            std::slice::from_ref(&operator_attr),
            "sensor:dpss1.lbl.gov/*",
            Action::ControlSensors,
            later
        )
        .is_err());
    assert!(policy
        .check(
            &operator,
            &[operator_attr],
            "sensor:dpss1.lbl.gov/*",
            Action::Summary,
            later
        )
        .is_ok());

    // A random grid user without the attribute never gets control.
    let user = ca.issue("/O=Grid/O=ANL/CN=Someone Else", NOW, 86_400);
    assert!(policy
        .check(
            &user,
            &[],
            "sensor:dpss1.lbl.gov/*",
            Action::ControlSensors,
            NOW
        )
        .is_err());
    assert!(policy
        .check(&user, &[], "sensor:dpss1.lbl.gov/*", Action::Summary, NOW)
        .is_ok());
}

#[test]
fn sensor_manager_accepts_connections_only_from_known_gateways() {
    let ca = CertificateAuthority::new("/O=Grid/CN=DOE Science Grid CA", 9);
    let gw1 = ca.issue("/O=Grid/O=LBNL/CN=gw.lbl.gov", NOW, 86_400);
    let rogue = ca.issue("/O=Grid/O=Somewhere/CN=rogue-gateway", NOW, 86_400);

    let mut allow = GatewayAllowList::new();
    allow.allow(gw1.subject.clone());

    // Both present valid certificates...
    let mut trust = TrustStore::new();
    trust.add(ca);
    assert!(trust.verify(&gw1, NOW).is_ok());
    assert!(trust.verify(&rogue, NOW).is_ok());
    // ...but only the known gateway passes the manager's allow list
    // ("a malicious user can't communicate directly with the sensor manager").
    assert!(allow.check(&gw1.subject).is_ok());
    assert!(allow.check(&rogue.subject).is_err());
}
