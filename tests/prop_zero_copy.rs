//! Property tests of the zero-copy pipeline: the `Arc`-shared publish
//! path must be *observably identical* to the seed-era by-value pipeline
//! — every delivered event's ULM text and binary encodings are byte for
//! byte what encoding the original event produces — while performing
//! zero event deep-clones, and the buffer-reusing encoders must emit
//! exactly what their allocating forms emit.

use jamm::jamm_core::check::{forall, Gen};
use jamm::jamm_gateway::{EventGateway, GatewayConfig};
use jamm::jamm_ulm::{binary, deep_clone_count, text, Event, Level, SharedEvent, Timestamp, Value};

const HOSTS: [&str; 3] = ["dpss1.lbl.gov", "mems.cairn.net", "h3"];
const TYPES: [&str; 4] = ["CPU_TOTAL", "MEM_FREE", "DPSS_SERV_IN", "WriteData"];
const KEYS: [&str; 4] = ["VAL", "SEND.SZ", "NL.OID", "TEXT"];

fn arb_value(g: &mut Gen) -> Value {
    match g.usize_in(0, 5) {
        0 => Value::UInt(g.any_u64() % 1_000_000),
        // Negative only: a positive Int re-infers as UInt on decode
        // (infer precedence), which is not what this test is about.
        1 => Value::Int(-1 - (g.any_u64() % 1_000_000) as i64),
        2 => Value::Float(g.f64_in(-1e6, 1e6)),
        3 => Value::Bool(g.bool(0.5)),
        // Strings exercise the quoting path: spaces, quotes, backslashes.
        4 => Value::Str(
            g.choice(&["plain", "two words", "qu\"oted", "back\\slash", ""])
                .to_string(),
        ),
        _ => Value::Float(g.u64(100) as f64),
    }
}

fn arb_event(g: &mut Gen) -> Event {
    let mut b = Event::builder(g.choice(&["vmstat", "testProg"]), g.choice(&HOSTS))
        .level(g.choice(&[Level::Usage, Level::Warning, Level::Error]))
        .event_type(g.choice(&TYPES))
        .timestamp(Timestamp::from_micros(954_415_400_000_000 + g.u64(1 << 40)));
    for _ in 0..g.usize_in(0, 4) {
        b = b.field(g.choice(&KEYS), arb_value(g));
    }
    b.build()
}

/// Publishing shared events through the gateway delivers streams whose
/// text and binary encodings are byte-identical to the seed-era by-value
/// pipeline's — and the shared leg deep-clones nothing.
#[test]
fn shared_pipeline_output_is_byte_identical_to_by_value() {
    forall("shared == by-value encodings", 32, |g| {
        let events: Vec<Event> = (0..g.usize_in(1, 80)).map(|_| arb_event(g)).collect();
        let subscribers = g.usize_in(1, 5);

        // The zero-copy pipeline: pre-shared events, publish_shared.
        let shared_gw = EventGateway::new(GatewayConfig::open("shared"));
        let shared_subs: Vec<_> = (0..subscribers)
            .map(|_| shared_gw.subscribe().as_consumer("c").open().unwrap())
            .collect();
        let shared: Vec<SharedEvent> = events.iter().map(|e| SharedEvent::new(e.clone())).collect();
        let clones0 = deep_clone_count();
        for e in &shared {
            shared_gw.publish_shared(SharedEvent::clone(e));
        }
        let shared_streams: Vec<Vec<SharedEvent>> = shared_subs
            .into_iter()
            .map(|s| s.events.try_iter().collect())
            .collect();
        assert_eq!(
            deep_clone_count() - clones0,
            0,
            "shared publish + fan-out + drain deep-clones nothing"
        );

        // The seed-era shape: by-value publish (its one entry copy is the
        // whole difference).
        let byvalue_gw = EventGateway::new(GatewayConfig::open("byvalue"));
        let byvalue_subs: Vec<_> = (0..subscribers)
            .map(|_| byvalue_gw.subscribe().as_consumer("c").open().unwrap())
            .collect();
        for e in &events {
            byvalue_gw.publish(e);
        }
        let byvalue_streams: Vec<Vec<SharedEvent>> = byvalue_subs
            .into_iter()
            .map(|s| s.events.try_iter().collect())
            .collect();

        for (a, b) in shared_streams.iter().zip(byvalue_streams.iter()) {
            assert_eq!(a.len(), events.len(), "wildcard subscriber sees everything");
            assert_eq!(a.len(), b.len());
            for ((sa, sb), original) in a.iter().zip(b.iter()).zip(events.iter()) {
                let expected_text = text::encode(original);
                let expected_bin = binary::encode(original);
                assert_eq!(text::encode(sa), expected_text, "text identical");
                assert_eq!(text::encode(sb), expected_text);
                assert_eq!(binary::encode(sa), expected_bin, "binary identical");
                assert_eq!(binary::encode(sb), expected_bin);
            }
        }
    });
}

/// The reusable text encoder emits exactly what the allocating encoder
/// emits, for any event and any buffer reuse pattern, and the result
/// still decodes back to the source event.
#[test]
fn encode_into_is_byte_identical_and_round_trips() {
    forall("encode_into == encode", 64, |g| {
        let events: Vec<Event> = (0..g.usize_in(1, 30)).map(|_| arb_event(g)).collect();
        let mut buf = String::new();
        for e in &events {
            let fresh = text::encode(e);
            buf.clear();
            text::encode_into(&mut buf, e);
            assert_eq!(buf, fresh, "reused buffer emits identical bytes");
            assert_eq!(text::decode(&buf).unwrap(), *e, "and still round-trips");
        }
    });
}
