//! Property tests for the unified query plane: the one compiled
//! [`jamm_core::query::Plan`] evaluator must be behaviorally identical to
//! the three matchers it replaced — the gateway's `FilterChain`, the
//! storage engine's `TsdbQuery::matches`, and the directory's recursive
//! `Filter::matches` — and catalog pruning must never drop a matching
//! event (a pruned scan equals a scan with pruning defeated).

use jamm::jamm_archive::{ArchiveQuery, EventArchive};
use jamm::jamm_core::check::{forall, Gen};
use jamm::jamm_core::query::Predicate;
use jamm::jamm_directory::{Dn, Entry, Filter};
use jamm::jamm_gateway::{EventFilter, FilterChain};
use jamm::jamm_tsdb::TsdbOptions;
use jamm_ulm::{Event, Level, Timestamp, Value};
use std::collections::HashMap;

const HOSTS: [&str; 4] = ["dpss1.lbl.gov", "mems.cairn.net", "portnoy.lbl.gov", "h4"];
const TYPES: [&str; 4] = ["CPU_TOTAL", "TCPD_RETRANSMITS", "MEM_FREE", "PROC_DIED"];
const LEVELS: [Level; 4] = [Level::Usage, Level::Info, Level::Warning, Level::Error];

fn random_event(g: &mut Gen) -> Event {
    let mut b = Event::builder("sensor", g.choice(&HOSTS))
        .level(g.choice(&LEVELS))
        .event_type(g.choice(&TYPES))
        .timestamp(Timestamp::from_micros(g.u64(60) * 500_000));
    if g.bool(0.8) {
        // A small value domain makes repeats (on-change suppression) and
        // threshold crossings common.
        b = b.value((g.u64(8) as f64) * 10.0);
    }
    b.build()
}

fn random_filter(g: &mut Gen) -> EventFilter {
    match g.u64(9) {
        0 => EventFilter::All,
        1 => {
            let n = g.usize_in(0, 3);
            EventFilter::EventTypes((0..n).map(|_| g.choice(&TYPES).to_string()).collect())
        }
        2 => {
            let n = g.usize_in(1, 3);
            EventFilter::Hosts((0..n).map(|_| g.choice(&HOSTS).to_string()).collect())
        }
        3 => EventFilter::MinLevel(g.choice(&LEVELS)),
        4 => EventFilter::OnChange,
        5 => EventFilter::Above(g.u64(8) as f64 * 10.0),
        6 => EventFilter::Below(g.u64(8) as f64 * 10.0),
        7 => EventFilter::Crosses(g.u64(8) as f64 * 10.0 + 5.0),
        _ => EventFilter::RelativeChange(g.f64_in(0.05, 0.9)),
    }
}

/// The pre-query-plane `FilterChain` matcher, verbatim: a conjunction over
/// a `(host, type)`-keyed previous-reading memory, updated after every
/// event that carries a value (pass or fail) when any filter is stateful.
struct LegacyChain {
    filters: Vec<EventFilter>,
    last_value: HashMap<(String, String), f64>,
}

impl LegacyChain {
    fn new(filters: Vec<EventFilter>) -> Self {
        LegacyChain {
            filters,
            last_value: HashMap::new(),
        }
    }

    fn accept(&mut self, event: &Event) -> bool {
        fn severity(l: Level) -> u8 {
            l.severity()
        }
        let key = (event.host.clone(), event.event_type.clone());
        let value = event.value();
        let prev = self.last_value.get(&key).copied();
        let mut pass = true;
        for f in &self.filters {
            let ok = match f {
                EventFilter::All => true,
                EventFilter::EventTypes(types) => types.contains(&event.event_type),
                EventFilter::Hosts(hosts) => hosts.contains(&event.host),
                EventFilter::MinLevel(min) => severity(event.level) >= severity(*min),
                EventFilter::OnChange => match (value, prev) {
                    (Some(v), Some(p)) => v != p,
                    (Some(_), None) => true,
                    (None, _) => true,
                },
                EventFilter::Above(t) => value.is_some_and(|v| v > *t),
                EventFilter::Below(t) => value.is_some_and(|v| v < *t),
                EventFilter::Crosses(t) => match (value, prev) {
                    (Some(v), Some(p)) => (p <= *t && v > *t) || (p >= *t && v < *t),
                    (Some(v), None) => v > *t,
                    (None, _) => false,
                },
                EventFilter::RelativeChange(frac) => match (value, prev) {
                    (Some(v), Some(p)) if p.abs() > f64::EPSILON => ((v - p) / p).abs() > *frac,
                    (Some(_), _) => true,
                    (None, _) => false,
                },
            };
            if !ok {
                pass = false;
                break;
            }
        }
        if let Some(v) = value {
            let stateful = self.filters.iter().any(|f| {
                matches!(
                    f,
                    EventFilter::OnChange
                        | EventFilter::Crosses(_)
                        | EventFilter::RelativeChange(_)
                )
            });
            if stateful {
                self.last_value.insert(key, v);
            }
        }
        pass
    }
}

/// The compiled plan behind `FilterChain` accepts exactly the events the
/// legacy stateful matcher accepted, over long random streams.
#[test]
fn plan_eval_matches_legacy_filter_chain() {
    forall("plan ≡ legacy FilterChain", 96, |g| {
        let filters: Vec<EventFilter> = (0..g.usize_in(0, 4)).map(|_| random_filter(g)).collect();
        let chain = FilterChain::new(filters.clone());
        let mut legacy = LegacyChain::new(filters.clone());
        for _ in 0..g.usize_in(10, 60) {
            let e = random_event(g);
            assert_eq!(
                chain.accept(&e),
                legacy.accept(&e),
                "filters {filters:?} disagree on {e:?}"
            );
        }
    });
}

/// The pre-query-plane `TsdbQuery::matches` semantics, as the oracle for
/// the classic host/type/range query shape.
fn legacy_tsdb_matches(
    from: Option<Timestamp>,
    to: Option<Timestamp>,
    host: &Option<String>,
    ty: &Option<String>,
    e: &Event,
) -> bool {
    if let Some(from) = from {
        if e.timestamp < from {
            return false;
        }
    }
    if let Some(to) = to {
        if e.timestamp >= to {
            return false;
        }
    }
    if let Some(host) = host {
        if &e.host != host {
            return false;
        }
    }
    if let Some(ty) = ty {
        if &e.event_type != ty {
            return false;
        }
    }
    true
}

#[test]
fn plan_eval_matches_legacy_tsdb_query() {
    forall("plan ≡ legacy TsdbQuery", 96, |g| {
        let from = g
            .bool(0.6)
            .then(|| Timestamp::from_micros(g.u64(60) * 500_000));
        let to = g
            .bool(0.6)
            .then(|| Timestamp::from_micros(g.u64(60) * 500_000 + 1));
        let host = g.bool(0.5).then(|| g.choice(&HOSTS).to_string());
        let ty = g.bool(0.5).then(|| g.choice(&TYPES).to_string());
        let mut q = jamm::jamm_tsdb::TsdbQuery::all();
        q.from = from;
        q.to = to;
        q.host = host.clone();
        q.event_type = ty.clone();
        let plan = q.to_plan();
        for _ in 0..20 {
            let e = random_event(g);
            assert_eq!(
                plan.eval(&e),
                legacy_tsdb_matches(from, to, &host, &ty, &e),
                "{q:?} disagrees on {e:?}"
            );
        }
    });
}

/// The pre-query-plane recursive directory matcher, as the oracle for
/// parsed LDAP-subset filters.
#[derive(Debug)]
enum LegacyFilter {
    Equals(String, String),
    Present(String),
    Substring(String, Vec<String>),
    And(Vec<LegacyFilter>),
    Or(Vec<LegacyFilter>),
    Not(Box<LegacyFilter>),
}

impl LegacyFilter {
    fn matches(&self, entry: &Entry) -> bool {
        fn substring_match(value: &str, parts: &[String]) -> bool {
            jamm::jamm_core::query::substring_match(value, parts)
        }
        match self {
            LegacyFilter::Equals(attr, value) => entry.has_value(attr, value),
            LegacyFilter::Present(attr) => entry.has(attr),
            LegacyFilter::Substring(attr, parts) => entry
                .get_all(attr)
                .iter()
                .any(|v| substring_match(v, parts)),
            LegacyFilter::And(fs) => fs.iter().all(|f| f.matches(entry)),
            LegacyFilter::Or(fs) => fs.iter().any(|f| f.matches(entry)),
            LegacyFilter::Not(f) => !f.matches(entry),
        }
    }

    fn text(&self) -> String {
        match self {
            LegacyFilter::Equals(a, v) => format!("({a}={v})"),
            LegacyFilter::Present(a) => format!("({a}=*)"),
            LegacyFilter::Substring(a, parts) => format!("({a}={})", parts.join("*")),
            LegacyFilter::And(fs) => format!(
                "(&{})",
                fs.iter().map(LegacyFilter::text).collect::<String>()
            ),
            LegacyFilter::Or(fs) => format!(
                "(|{})",
                fs.iter().map(LegacyFilter::text).collect::<String>()
            ),
            LegacyFilter::Not(f) => format!("(!{})", f.text()),
        }
    }
}

const ATTRS: [&str; 4] = ["objectclass", "status", "gateway", "frequency"];
const VALUES: [&str; 4] = ["sensor", "running", "stopped", "gw1"];

fn random_legacy_filter(g: &mut Gen, depth: usize) -> LegacyFilter {
    // `host=` / `type=` equality became exact-match under the unified
    // grammar (documented change), so the equivalence oracle draws from
    // the generic attributes where semantics are unchanged.
    let leaf = depth == 0 || g.bool(0.5);
    if leaf {
        match g.u64(3) {
            0 => LegacyFilter::Equals(g.choice(&ATTRS).into(), g.choice(&VALUES).into()),
            1 => LegacyFilter::Present(g.choice(&ATTRS).into()),
            _ => {
                let n = g.usize_in(2, 3);
                LegacyFilter::Substring(
                    g.choice(&ATTRS).into(),
                    (0..n)
                        .map(|_| {
                            let len = g.usize_in(0, 3);
                            g.string_from("abcdefgrstuvwxyz", len)
                        })
                        .collect(),
                )
            }
        }
    } else {
        match g.u64(3) {
            0 => LegacyFilter::And(
                (0..g.usize_in(0, 3))
                    .map(|_| random_legacy_filter(g, depth - 1))
                    .collect(),
            ),
            1 => LegacyFilter::Or(
                (0..g.usize_in(0, 3))
                    .map(|_| random_legacy_filter(g, depth - 1))
                    .collect(),
            ),
            _ => LegacyFilter::Not(Box::new(random_legacy_filter(g, depth - 1))),
        }
    }
}

fn random_entry(g: &mut Gen) -> Entry {
    let mut e = Entry::new(Dn::parse("x=y,o=grid").unwrap());
    for _ in 0..g.usize_in(0, 5) {
        e.add(g.choice(&ATTRS), g.choice(&VALUES));
    }
    if g.bool(0.5) {
        let len = g.usize_in(1, 8);
        e.add("status", g.string_from("abcdefgrstuvwxyz", len));
    }
    e
}

#[test]
fn plan_eval_matches_legacy_directory_filter() {
    forall("plan ≡ legacy directory Filter", 128, |g| {
        let legacy = random_legacy_filter(g, 3);
        let parsed = Filter::parse(&legacy.text())
            .unwrap_or_else(|e| panic!("oracle text {:?} must parse: {e}", legacy.text()));
        for _ in 0..10 {
            let entry = random_entry(g);
            assert_eq!(
                parsed.matches(&entry),
                legacy.matches(&entry),
                "filter {} disagrees on {entry:?}",
                legacy.text()
            );
        }
    });
}

/// Catalog pruning must never drop a matching event: for random archives
/// (many small sealed segments) and random queries, the pruned scan is
/// identical to brute-force filtering the full contents — and the pruning
/// counters account for every segment.
#[test]
fn pruned_scan_equals_full_scan() {
    forall("pruned scan ≡ full scan", 48, |g| {
        let archive = EventArchive::in_memory_with(TsdbOptions {
            memtable_max_events: g.usize_in(4, 12),
            small_segment_events: 8,
            sync_wal: false,
        });
        let n = g.usize_in(30, 120);
        let mut all: Vec<Event> = Vec::new();
        for _ in 0..n {
            let e = random_event(g);
            archive.store(e.clone());
            all.push(e);
        }
        // Time-sort the oracle the way scans yield (ties by insertion).
        let mut all_sorted = all.clone();
        all_sorted.sort_by_key(|e| e.timestamp);

        let segments = archive.tsdb().segment_count() as u64;

        let queries = [
            "(&)",
            "(host=dpss1.lbl.gov)",
            "(type=CPU_TOTAL)",
            "(&(host=mems.cairn.net)(type=MEM_FREE))",
            "(level>=warning)",
            "(&(time>=5000000)(time<20000000))",
            "(&(host=portnoy.lbl.gov)(level>=error)(time>=1000000))",
            "(|(type=PROC_DIED)(type=TCPD_RETRANSMITS))",
            "(val>=40)",
        ];
        let text = g.choice(&queries);
        let pred = Predicate::parse(text).unwrap();

        let scanned_before = archive.stats().segments_scanned();
        let pruned_before = archive.stats().segments_pruned();
        let got: Vec<Event> = archive.scan_plan(&pred.compile()).collect();
        let scanned = archive.stats().segments_scanned() - scanned_before;
        let pruned = archive.stats().segments_pruned() - pruned_before;
        assert_eq!(
            scanned + pruned,
            segments,
            "every segment is either scanned or pruned"
        );

        let oracle = pred.compile();
        let want: Vec<Event> = all_sorted
            .iter()
            .filter(|e| oracle.eval(*e))
            .cloned()
            .collect();
        // Timestamp ties can reorder between oracle sort and scan seq
        // order; compare as multisets keyed by full event identity.
        let key = |e: &Event| format!("{:?}", e);
        let mut got_keys: Vec<String> = got.iter().map(key).collect();
        let mut want_keys: Vec<String> = want.iter().map(key).collect();
        got_keys.sort();
        want_keys.sort();
        assert_eq!(
            got_keys, want_keys,
            "query {text} dropped or invented events"
        );
    });
}

/// The columnar scan path (JSG3 segments batch-filtered through
/// `Plan::eval_batch` / `Facts::eval_batch`) is behaviorally identical to
/// the row-oriented oracle — a fresh plan fed every event in merge order —
/// including *stateful* plans, whose per-series memory must see the same
/// stream either way.  Timestamps are strictly increasing so merge order
/// is the insertion order and stateful equivalence is exact, and the
/// archive is randomly sealed/compacted mid-stream so events land in
/// memtables, fresh segments, and compacted segments alike.
#[test]
fn columnar_scan_matches_row_oracle_for_stateful_plans() {
    forall("columnar scan ≡ stateful row oracle", 48, |g| {
        let archive = EventArchive::in_memory_with(TsdbOptions {
            memtable_max_events: g.usize_in(4, 12),
            small_segment_events: g.usize_in(6, 16),
            sync_wal: false,
        });
        let n = g.usize_in(40, 150);
        let mut all: Vec<Event> = Vec::new();
        let mut ts = 0u64;
        for _ in 0..n {
            ts += 1 + g.u64(400_000);
            let mut b = Event::builder("sensor", g.choice(&HOSTS))
                .level(g.choice(&LEVELS))
                .event_type(g.choice(&TYPES))
                .timestamp(Timestamp::from_micros(ts));
            if g.bool(0.8) {
                b = b.value((g.u64(8) as f64) * 10.0);
            }
            let e = b.build();
            archive.store(e.clone());
            all.push(e);
            if g.bool(0.05) {
                archive.seal();
            }
            if g.bool(0.03) {
                archive.compact();
            }
        }

        // Stateful leaves key their memory by `(host, type)` series, so
        // conjoining them only with host/type/val leaves keeps the oracle
        // exact: rows the scan's pushdown facts exclude belong to foreign
        // series and can never perturb the queried series' memory.
        let queries = [
            "(onchange)",
            "(&(type=CPU_TOTAL)(onchange))",
            "(&(host=dpss1.lbl.gov)(crosses=35))",
            "(&(type=MEM_FREE)(relchange=0.2))",
            "(&(host=mems.cairn.net)(type=CPU_TOTAL)(crosses=45))",
            "(&(type=TCPD_RETRANSMITS)(val>=40)(onchange))",
            "(&(type=CPU_TOTAL)(host=h4))",
            "(&(level>=warning)(val>=40))",
            "(|(type=PROC_DIED)(host=portnoy.lbl.gov))",
        ];
        let text = g.choice(&queries);
        let pred = Predicate::parse(text).unwrap();

        let got: Vec<Event> = archive.scan_plan(&pred.compile()).collect();
        let oracle = pred.compile(); // fresh per-series memory
        let want: Vec<Event> = all.iter().filter(|e| oracle.eval(*e)).cloned().collect();
        let key = |e: &Event| format!("{e:?}");
        assert_eq!(
            got.iter().map(key).collect::<Vec<_>>(),
            want.iter().map(key).collect::<Vec<_>>(),
            "query {text} diverged from the row oracle"
        );
    });
}

/// `Plan::eval_batch` over a hand-built column batch agrees with per-row
/// `Plan::eval`: exactly when the plan reports `batch_definite`, and as a
/// conservative superset otherwise (stateful or attribute leaves) — and
/// the definiteness flag it returns is precisely `batch_definite()`.
#[test]
fn eval_batch_agrees_with_row_eval() {
    use jamm::jamm_core::query::{BatchScratch, ColumnBatch, Selection};

    forall("eval_batch ≡ row eval", 96, |g| {
        let n = g.usize_in(1, 200);
        let events: Vec<Event> = (0..n).map(|_| random_event(g)).collect();

        // Columnarize: dictionary-encode hosts/types, severity-rank the
        // levels, split VAL into a dense column plus a presence bitmap —
        // the same shape JSG3 segments decode into.
        let mut dict: Vec<String> = Vec::new();
        let id = |dict: &mut Vec<String>, s: &str| -> u32 {
            match dict.iter().position(|d| d == s) {
                Some(i) => i as u32,
                None => {
                    dict.push(s.to_string());
                    (dict.len() - 1) as u32
                }
            }
        };
        let mut ts_micros = Vec::new();
        let mut host_ids = Vec::new();
        let mut type_ids = Vec::new();
        let mut levels = Vec::new();
        let mut values = Vec::new();
        let mut val_present = vec![0u64; n.div_ceil(64)];
        for (i, e) in events.iter().enumerate() {
            ts_micros.push(e.timestamp.as_micros());
            host_ids.push(id(&mut dict, &e.host));
            type_ids.push(id(&mut dict, &e.event_type));
            levels.push(e.level.severity());
            match e.value() {
                Some(v) => {
                    values.push(v);
                    val_present[i / 64] |= 1u64 << (i % 64);
                }
                None => values.push(0.0),
            }
        }
        let batch = ColumnBatch {
            ts_micros: &ts_micros,
            host_ids: &host_ids,
            type_ids: &type_ids,
            levels: &levels,
            values: &values,
            val_present: &val_present,
            dict: &dict,
        };

        let queries = [
            "(&)",
            "(host=dpss1.lbl.gov)",
            "(|(type=CPU_TOTAL)(type=MEM_FREE))",
            "(level>=warning)",
            "(&(time>=5000000)(time<20000000))",
            "(val>=40)",
            "(!(val<30))",
            "(&(host=mems.cairn.net)(|(level>=error)(val>=70)))",
            "(onchange)",
            "(&(type=CPU_TOTAL)(crosses=45))",
            "(status=run*)",
            "(&(host=h4)(relchange=0.25))",
        ];
        let text = g.choice(&queries);
        let plan = Predicate::parse(text).unwrap().compile();

        let mut sel = Selection::new();
        let mut scratch = BatchScratch::new();
        let definite = plan.eval_batch(&batch, &mut sel, &mut scratch);
        assert_eq!(
            definite,
            plan.batch_definite(),
            "definiteness flag disagrees with batch_definite() for {text}"
        );
        assert_eq!(sel.len(), n);

        // The row oracle walks rows in batch order, so stateful memory
        // sees the same stream a scan of this batch would feed it.
        let oracle = Predicate::parse(text).unwrap().compile();
        for (i, e) in events.iter().enumerate() {
            let row = oracle.eval(e);
            if definite {
                assert_eq!(
                    sel.contains(i),
                    row,
                    "definite batch disagrees with row eval at {i} for {text}: {e:?}"
                );
            } else if row {
                assert!(
                    sel.contains(i),
                    "superset batch dropped matching row {i} for {text}: {e:?}"
                );
            }
        }
    });
}

/// Limit pushdown returns exactly the first `k` of the unlimited scan.
#[test]
fn limit_pushdown_is_a_prefix_of_the_full_result() {
    forall("limit ≡ prefix", 32, |g| {
        let archive = EventArchive::in_memory_with(TsdbOptions {
            memtable_max_events: 8,
            small_segment_events: 8,
            sync_wal: false,
        });
        for _ in 0..g.usize_in(20, 60) {
            archive.store(random_event(g));
        }
        let full: Vec<Event> = archive.query(&ArchiveQuery::all());
        let k = g.usize_in(1, full.len());
        let limited: Vec<Event> = archive.query(&ArchiveQuery::all().limit(k));
        assert_eq!(limited.as_slice(), &full[..k]);
        let by_text: Vec<Event> = archive.query_str(&format!("(limit={k})")).unwrap();
        assert_eq!(by_text.as_slice(), &full[..k]);
    });
}

/// Field-carrying events keep matching attribute leaves through the
/// unified grammar (string values in place, numeric by ULM rendering).
#[test]
fn attribute_leaves_match_event_fields() {
    let e = Event::builder("netstat", "h1")
        .level(Level::Usage)
        .event_type("TCPD_RETRANSMITS")
        .timestamp(Timestamp::from_secs(1))
        .value(7.0)
        .field("PEER", Value::Str("mems.cairn.net".into()))
        .build();
    let hit = Predicate::parse("(peer=mems.cairn.net)").unwrap().compile();
    assert!(hit.eval(&e));
    let miss = Predicate::parse("(peer=elsewhere)").unwrap().compile();
    assert!(!miss.eval(&e));
    let glob = Predicate::parse("(peer=*.cairn.net)").unwrap().compile();
    assert!(glob.eval(&e));
    let present = Predicate::parse("(peer=*)").unwrap().compile();
    assert!(present.eval(&e));
}
