//! Cross-crate integration of the sharded gateway fan-out engine: a
//! deployment built with the `gateway_shards` / `delivery_workers` knobs
//! delivers exactly what a default (single-threaded, flat) deployment
//! delivers, survives parallel publishers, and exposes a per-shard
//! accounting breakdown through `JammSystem::admin_stats`.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use jamm::JammBuilder;
use jamm_gateway::EventFilter;
use jamm_ulm::{Event, Level, Timestamp};

fn ev(host: &str, ty: &str, value: f64, t: u64) -> Event {
    Event::builder("vmstat", host)
        .level(Level::Usage)
        .event_type(ty)
        .timestamp(Timestamp::from_micros(t))
        .value(value)
        .build()
}

const TYPES: [&str; 5] = [
    "CPU_TOTAL",
    "VMSTAT_FREE_MEMORY",
    "NETSTAT_RETRANS",
    "DPSS_SERV_IN",
    "TCPD_RETRANSMITS",
];

fn workload() -> Vec<Event> {
    (0..2_000u64)
        .map(|i| {
            let ty = TYPES[(i % TYPES.len() as u64) as usize];
            let host = format!("node{:02}.farm.lbl.gov", i % 8);
            ev(&host, ty, (i % 100) as f64, i)
        })
        .collect()
}

/// The tuned deployment (8 shards, 4 workers) and the default one deliver
/// the same event multiset to every consumer.
#[test]
fn tuned_and_default_deployments_deliver_the_same_events() {
    let events = workload();
    let mut collected: Vec<Vec<jamm::SharedEvent>> = Vec::new();
    for tuned in [false, true] {
        let mut b = JammBuilder::new().gateway("gw").collector("ops");
        if tuned {
            b = b.gateway_shards(8).delivery_workers(4);
        }
        let mut jamm = b.build().unwrap();
        assert_eq!(jamm.connect_collectors(vec![]), 1);
        for e in &events {
            jamm.publish("gw", e);
        }
        jamm.quiesce();
        jamm.poll();
        let mut log = jamm.collectors[0].merged_log();
        log.sort_by_key(|e| e.timestamp);
        collected.push(log);
    }
    assert_eq!(collected[0].len(), events.len());
    assert_eq!(
        collected[0], collected[1],
        "sharded/worker delivery is invisible to consumers"
    );
}

/// Parallel publishers hammering one tuned gateway: nothing is lost,
/// per-type order survives (a type is pinned to one shard, a shard to one
/// worker), and the admin-stats shard rows decompose the totals exactly.
#[test]
fn parallel_publishers_scale_across_shards_and_workers() {
    let jamm = Arc::new(
        JammBuilder::new()
            .gateway("gw")
            .gateway_shards(8)
            .delivery_workers(4)
            .build()
            .unwrap(),
    );
    let sub = jamm.gateways[0]
        .subscribe()
        .as_consumer("ops")
        .capacity(100_000)
        .open()
        .unwrap();
    let threads: Vec<_> = (0..4)
        .map(|p| {
            let jamm = Arc::clone(&jamm);
            std::thread::spawn(move || {
                for i in 0..500u64 {
                    jamm.publish("gw", &ev("h", &format!("TYPE_{p}"), i as f64, i));
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    jamm.quiesce();

    let stats = jamm.admin_stats();
    assert_eq!(stats.len(), 1);
    let gw = &stats[0];
    assert_eq!(gw.events_in, 2_000);
    assert_eq!(gw.events_out, 2_000);
    assert_eq!(gw.events_dropped, 0);
    assert_eq!(gw.delivery_workers, 4);
    assert_eq!(gw.shards.len(), 8);
    assert_eq!(gw.shards.iter().map(|s| s.events_in).sum::<u64>(), 2_000);
    assert_eq!(gw.shards.iter().map(|s| s.delivered).sum::<u64>(), 2_000);
    assert_eq!(gw.shards.iter().map(|s| s.bytes).sum::<u64>(), gw.bytes_out);
    assert_eq!(gw.subscriptions.len(), 1);
    assert_eq!(gw.subscriptions[0].delivered, 2_000);

    let got: Vec<jamm::SharedEvent> = {
        let mut v: Vec<jamm::SharedEvent> = Vec::new();
        while let Ok(e) = sub.events.try_recv() {
            v.push(e);
        }
        v
    };
    assert_eq!(got.len(), 2_000);
    for p in 0..4 {
        let ty = format!("TYPE_{p}");
        let times: Vec<u64> = got
            .iter()
            .filter(|e| e.event_type == ty)
            .map(|e| e.timestamp.as_micros())
            .collect();
        assert_eq!(times, (0..500).collect::<Vec<_>>(), "{ty} stayed ordered");
    }
}

/// Typed consumer subscriptions only load the shards owning their types,
/// and filters still reduce delivered volume under worker delivery.
#[test]
fn typed_subscriptions_and_filters_compose_with_sharding() {
    let mut jamm = JammBuilder::new()
        .gateway("gw")
        .collector("cpu-watcher")
        .gateway_shards(8)
        .delivery_workers(2)
        .build()
        .unwrap();
    let registry_names = jamm.registry.names();
    assert_eq!(registry_names, vec!["gw".to_string()]);
    assert!(jamm.collectors[0].subscribe_gateway_typed(
        &jamm.registry,
        "gw",
        vec!["CPU_TOTAL".into()],
        vec![EventFilter::Above(50.0)],
    ));
    let events = workload();
    for e in &events {
        jamm.publish("gw", e);
    }
    jamm.quiesce();
    jamm.poll();
    let expected = events
        .iter()
        .filter(|e| e.event_type == "CPU_TOTAL" && e.value().unwrap() > 50.0)
        .count();
    assert!(expected > 0);
    assert_eq!(jamm.collectors[0].events().len(), expected);
    // The typed subscription occupies exactly one shard.
    let occupied: usize = jamm.gateways[0]
        .shard_report()
        .iter()
        .map(|s| s.subscriptions)
        .sum();
    assert_eq!(occupied, 1);
    // events_in still counts every publish, absorbed by the gateway.
    assert_eq!(
        jamm.gateways[0].stats().events_in.load(Ordering::Relaxed),
        events.len() as u64
    );
}
