//! Integration test of the archive storage engine behind a full JAMM
//! deployment: a populated archive survives process restart, range queries
//! provably prune non-overlapping segments, and an archived MATISSE-style
//! run replays through a gateway into nlv analysis.

use jamm::jamm_archive::ArchiveQuery;
use jamm::jamm_gateway::EventFilter;
use jamm::jamm_tsdb::test_util::TempDir;
use jamm::JammBuilder;
use jamm_netlogger::nlv;
use jamm_ulm::{Event, Level, Timestamp};

fn dpss_event(host: &str, ty: &str, t_micros: u64, frame: u64) -> Event {
    Event::builder("dpss_block_server", host)
        .level(Level::Usage)
        .event_type(ty)
        .timestamp(Timestamp::from_micros(t_micros))
        .object_id(format!("frame-{frame}"))
        .value(frame as f64)
        .build()
}

/// The paper's §2.2 archive claim, end to end: events flow gateway →
/// archiver → archive, the process "dies" (system dropped without any
/// flush), and a new process over the same directory sees the full
/// history.
#[test]
fn populated_archive_survives_process_restart() {
    let dir = TempDir::new("integration-restart");
    {
        let mut jamm = JammBuilder::new()
            .gateway("gw.lbl.gov:8765")
            .archiver("archiver", "archive=main,o=lbl,o=grid")
            .archive_dir(dir.path())
            .build()
            .unwrap();
        jamm.connect_archiver(vec![]);
        for t in 0..500u64 {
            jamm.publish(
                "gw.lbl.gov:8765",
                &dpss_event("dpss1.lbl.gov", "DPSS_SERV_IN", t * 1_000, t),
            );
        }
        jamm.poll();
        // Seal part of the history into a segment; the tail stays in the
        // WAL only.  No graceful shutdown follows.
        jamm.archive.seal();
        for t in 500..600u64 {
            jamm.publish(
                "gw.lbl.gov:8765",
                &dpss_event("dpss1.lbl.gov", "DPSS_SERV_IN", t * 1_000, t),
            );
        }
        jamm.poll();
        assert_eq!(jamm.archive.len(), 600);
    }

    // "Restart": a fresh system over the same store directory.
    let jamm = JammBuilder::new()
        .gateway("gw.lbl.gov:8765")
        .archiver("archiver", "archive=main,o=lbl,o=grid")
        .archive_dir(dir.path())
        .build()
        .unwrap();
    assert_eq!(jamm.archive.len(), 600, "history survived the restart");
    assert_eq!(
        jamm.archive.stats().wal_recovered_events(),
        100,
        "the unsealed tail came back through WAL replay"
    );
    let r = jamm.archive.query(&ArchiveQuery::all().between(
        Timestamp::from_micros(100_000),
        Timestamp::from_micros(200_000),
    ));
    assert_eq!(r.len(), 100);
}

/// Range scans over a multi-segment store must skip segments whose catalog
/// cannot match — asserted through the engine's pruning counters.
#[test]
fn range_queries_prune_non_overlapping_segments() {
    let dir = TempDir::new("integration-pruning");
    let mut jamm = JammBuilder::new()
        .gateway("gw1")
        .archiver("archiver", "archive=main,o=grid")
        .archive_dir(dir.path())
        .build()
        .unwrap();
    jamm.connect_archiver(vec![]);
    // Four disjoint one-hour windows, sealed into four segments.
    for window in 0..4u64 {
        for t in 0..60 {
            jamm.publish(
                "gw1",
                &dpss_event(
                    "dpss1.lbl.gov",
                    "DPSS_SERV_IN",
                    (window * 3_600 + t) * 1_000_000,
                    t,
                ),
            );
        }
        jamm.poll();
        jamm.archive.seal();
    }
    assert_eq!(jamm.archive.tsdb().segment_count(), 4);

    let scanned_before = jamm.archive.stats().segments_scanned();
    let pruned_before = jamm.archive.stats().segments_pruned();
    // A query inside window 2 touches exactly one segment.
    let r = jamm.archive.query(&ArchiveQuery::all().between(
        Timestamp::from_secs(2 * 3_600),
        Timestamp::from_secs(2 * 3_600 + 60),
    ));
    assert_eq!(r.len(), 60);
    assert_eq!(
        jamm.archive.stats().segments_scanned() - scanned_before,
        1,
        "only the overlapping segment was read"
    );
    assert_eq!(
        jamm.archive.stats().segments_pruned() - pruned_before,
        3,
        "the three non-overlapping segments were pruned via catalogs"
    );

    // Host pruning works the same way: no segment contains this host.
    let pruned_before = jamm.archive.stats().segments_pruned();
    assert!(jamm
        .archive
        .query(&ArchiveQuery::all().host("unknown.example.org"))
        .is_empty());
    assert_eq!(jamm.archive.stats().segments_pruned() - pruned_before, 4);
}

/// Historical query mode: an archived MATISSE-style run is replayed through
/// a gateway to a late-subscribing collector, and the merged log drives the
/// same nlv primitives that would have watched it live.
#[test]
fn archived_run_replays_through_gateway_into_nlv_analysis() {
    let mut jamm = JammBuilder::new()
        .gateway("gw.lbl.gov:8765")
        .collector("nlv-analyst")
        .archiver("archiver", "archive=matisse,o=lbl,o=grid")
        .build()
        .unwrap();
    jamm.connect_archiver(vec![]);

    // A MATISSE-style run: per-frame lifeline events through the DPSS
    // stages, 50 frames, 10ms apart, plus a burst of retransmits.
    let stages = ["DPSS_SERV_IN", "DPSS_START_READ", "DPSS_END_READ"];
    for frame in 0..50u64 {
        for (i, stage) in stages.iter().enumerate() {
            jamm.publish(
                "gw.lbl.gov:8765",
                &dpss_event(
                    "dpss1.lbl.gov",
                    stage,
                    1_000_000 + frame * 10_000 + i as u64 * 2_000,
                    frame,
                ),
            );
        }
    }
    jamm.poll();
    assert_eq!(jamm.archive.len(), 150);
    let full: Vec<Event> = jamm.archive.query(&ArchiveQuery::all());

    // The analyst subscribes *after* the run ended (with a filter: only
    // the read stages), then the archived range is replayed through the
    // gateway.
    assert_eq!(
        jamm.connect_collectors(vec![EventFilter::EventTypes(
            vec!["DPSS_START_READ".into()]
        )]),
        1
    );
    let replayed = jamm.replay_through(
        "gw.lbl.gov:8765",
        &ArchiveQuery::all().between(
            Timestamp::from_micros(1_000_000),
            Timestamp::from_micros(1_000_000 + 25 * 10_000),
        ),
    );
    assert_eq!(replayed, 75, "25 frames x 3 stages entered the gateway");
    jamm.poll();

    // Subscription filters applied to the replayed stream as if live.
    let events: Vec<Event> = jamm.collectors[0]
        .events()
        .iter()
        .map(|e| (**e).clone())
        .collect();
    assert_eq!(events.len(), 25);

    // And the replayed log drives nlv analysis.
    let series = nlv::points(&events, Some("dpss1.lbl.gov"), "DPSS_START_READ");
    assert_eq!(series.points.len(), 25);
    let lifelines = nlv::lifelines(&full, &stages);
    assert_eq!(lifelines.len(), 50, "one lifeline per archived frame");
    assert!(lifelines.iter().all(|l| l.points.len() == 3));

    // The archiver was still subscribed, so the replayed slice was
    // re-archived too — "the archive is just another consumer".
    assert_eq!(jamm.archive.len(), 150 + 75);
}
