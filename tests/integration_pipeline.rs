//! Cross-crate integration: the full sensor → manager → gateway → consumer
//! pipeline over the simulated network, including directory publication,
//! filtering, summaries and archiving.

use jamm::deployment::{DeploymentConfig, JammDeployment};
use jamm_directory::{Dn, Filter, Scope};
use jamm_gateway::EventFilter;
use jamm_ulm::{keys, Level};

fn lan_deployment(seed: u64) -> JammDeployment {
    let mut cfg = DeploymentConfig::matisse_lan(2);
    cfg.matisse.seed = seed;
    cfg.matisse.player.frame_bytes = 600_000;
    JammDeployment::matisse(cfg)
}

#[test]
fn sensors_publish_through_gateways_into_collector_and_archive() {
    let mut jamm = lan_deployment(101);
    jamm.run_secs(10.0);

    // The directory lists every sensor with its serving gateway.
    let listed = jamm
        .directory
        .search(
            &Dn::parse("o=grid").unwrap(),
            Scope::Subtree,
            &Filter::parse("(objectclass=sensor)").unwrap(),
        )
        .unwrap();
    assert!(
        listed.entries.len() >= 10,
        "sensors published: {}",
        listed.entries.len()
    );
    assert!(listed
        .entries
        .iter()
        .all(|e| e.get("gateway").is_some() && e.get("host").is_some()));

    // The collector received host monitoring from both sites.
    let hosts: std::collections::HashSet<&str> = jamm
        .collector
        .events()
        .iter()
        .map(|e| e.host.as_str())
        .collect();
    assert!(hosts.contains("mems.cairn.net"));
    assert!(hosts.contains("dpss1.lbl.gov"));

    // The archiver only kept warnings and errors.
    assert!(!jamm.archive.is_empty(), "something abnormal was archived");
    let archived = jamm.archive.query(&jamm_archive::ArchiveQuery::all());
    assert!(archived.iter().all(|e| e.level.is_problem()));

    // Gateway accounting is consistent: delivered >= collector's share.
    assert!(jamm.events_published() > 0);
    assert!(jamm.events_delivered() as usize >= jamm.collector_event_count());
}

#[test]
fn late_consumer_discovers_sensors_and_queries_most_recent_values() {
    let mut jamm = lan_deployment(202);
    jamm.run_secs(5.0);

    // A brand new consumer arrives late, looks up CPU sensors for the
    // receiving host in the directory, and issues a query-mode request.
    let found = jamm
        .directory
        .search(
            &Dn::parse("o=isi,o=grid").unwrap(),
            Scope::Subtree,
            &Filter::parse("(&(objectclass=sensor)(sensor=cpu))").unwrap(),
        )
        .unwrap();
    assert_eq!(found.entries.len(), 1);
    let gateway_name = found.entries[0].get("gateway").unwrap();
    let gateway = jamm
        .registry
        .resolve(gateway_name)
        .expect("gateway resolvable");
    let latest = gateway
        .query("late-consumer", "mems.cairn.net", keys::cpu::SYS)
        .unwrap()
        .expect("a recent reading exists");
    assert!(latest.value().is_some());

    // Summary data is also available (the 1/10/60-minute averages).
    let summaries = gateway
        .summaries("late-consumer", jamm.scenario.net.clock().timestamp())
        .unwrap();
    assert!(summaries
        .iter()
        .any(|e| e.event_type == format!("{}_AVG_1MIN", keys::cpu::SYS)));
}

#[test]
fn threshold_subscription_sees_only_interesting_events() {
    let mut jamm = lan_deployment(303);
    // Subscribe before running: only CPU readings above 30%.
    let gateway = jamm.registry.resolve("gw.cairn.net:8765").unwrap();
    let sub = gateway
        .subscribe()
        .stream()
        .filter(EventFilter::EventTypes(vec![keys::cpu::TOTAL.into()]))
        .filter(EventFilter::Above(30.0))
        .as_consumer("threshold-watcher")
        .open()
        .unwrap();
    jamm.run_secs(10.0);
    let events: Vec<_> = sub.events.try_iter().collect();
    assert!(
        events.iter().all(|e| e.value().unwrap_or(0.0) > 30.0),
        "all delivered events are above the threshold"
    );
    // And the unfiltered stream saw strictly more events than this one.
    assert!(
        (events.len() as u64)
            < gateway
                .stats()
                .events_in
                .load(std::sync::atomic::Ordering::Relaxed),
        "filtering reduced the volume"
    );
}

#[test]
fn process_death_shows_up_as_error_events_at_the_consumer() {
    let mut jamm = lan_deployment(404);
    jamm.run_secs(3.0);
    // Kill the DPSS master process on dpss1.
    let id = jamm.scenario.net.host_by_name("dpss1.lbl.gov").unwrap();
    jamm.scenario.net.host_mut(id).kill_process("dpss_master");
    jamm.run_secs(3.0);
    let died: Vec<_> = jamm
        .collector
        .events()
        .iter()
        .filter(|e| e.event_type == keys::process::DIED)
        .collect();
    assert!(!died.is_empty(), "the death was observed");
    assert!(died.iter().any(|e| e.host == "dpss1.lbl.gov"));
    assert!(died.iter().all(|e| e.level == Level::Error));
}
