//! Integration of the directory service with the rest of the system:
//! replication and failover under load, referrals across sites, persistent
//! search driving a consumer, and the RMI substrate carrying control calls.

use std::sync::Arc;

use jamm_core::json::json;
use jamm_directory::notify::ChangeKind;
use jamm_directory::referral::Federation;
use jamm_directory::replication::ReplicatedDirectory;
use jamm_directory::{DirectoryServer, Dn, Entry, Filter, Scope};
use jamm_rmi::bus::MessageBus;
use jamm_rmi::message::MethodCall;
use jamm_rmi::tcp::{RmiClient, RmiServer};

fn sensor_entry(site: &str, host: &str, sensor: &str) -> Entry {
    Entry::new(Dn::parse(&format!("sensor={sensor},host={host},o={site},o=grid")).unwrap())
        .with("objectclass", "sensor")
        .with("host", host)
        .with("sensor", sensor)
        .with("gateway", format!("gw.{site}.example:8765"))
        .with("status", "running")
}

#[test]
fn replicated_directory_survives_master_failure_and_resyncs() {
    let master = Arc::new(DirectoryServer::new(
        "ldap://master",
        Dn::parse("o=grid").unwrap(),
    ));
    let replica = Arc::new(DirectoryServer::new(
        "ldap://replica",
        Dn::parse("o=grid").unwrap(),
    ));
    let dir = ReplicatedDirectory::new(Arc::clone(&master), vec![Arc::clone(&replica)]);

    // A sensor manager publishes through the replicated handle.
    for i in 0..20 {
        dir.add_or_replace(sensor_entry("lbl", &format!("node{i}.lbl.gov"), "cpu"))
            .unwrap();
    }
    // The master dies; consumers keep resolving sensors from the replica.
    master.set_available(false);
    let found = dir
        .search(
            &Dn::parse("o=grid").unwrap(),
            Scope::Subtree,
            &Filter::parse("(sensor=cpu)").unwrap(),
        )
        .unwrap();
    assert_eq!(found.entries.len(), 20);

    // The replica misses writes while it is down; resync catches it up.
    master.set_available(true);
    replica.set_available(false);
    dir.add_or_replace(sensor_entry("lbl", "late.lbl.gov", "cpu"))
        .unwrap();
    assert_eq!(dir.stale_replicas().len(), 1);
    replica.set_available(true);
    assert_eq!(dir.resync(), 1);
    assert_eq!(replica.entry_count(), 21);
}

#[test]
fn federation_gives_a_grid_wide_view_across_site_directories() {
    let lbl = Arc::new(DirectoryServer::new(
        "ldap://dir.lbl.example",
        Dn::parse("o=lbl,o=grid").unwrap(),
    ));
    let isi = Arc::new(DirectoryServer::new(
        "ldap://dir.isi.example",
        Dn::parse("o=isi,o=grid").unwrap(),
    ));
    for i in 0..4 {
        lbl.add(sensor_entry("lbl", &format!("dpss{i}.lbl.gov"), "cpu"))
            .unwrap();
    }
    isi.add(sensor_entry("isi", "mems.cairn.net", "cpu"))
        .unwrap();
    lbl.add_referral(Dn::parse("o=isi,o=grid").unwrap(), isi.name());
    isi.add_referral(Dn::parse("o=lbl,o=grid").unwrap(), lbl.name());

    let mut fed = Federation::new();
    fed.add_server(Arc::clone(&lbl));
    fed.add_server(Arc::clone(&isi));

    // Starting from either site, a grid-wide sensor query sees all 5 sensors.
    for start in [lbl.name(), isi.name()] {
        let result = fed
            .search(
                start,
                &Dn::parse("o=grid").unwrap(),
                Scope::Subtree,
                &Filter::parse("(objectclass=sensor)").unwrap(),
            )
            .unwrap();
        assert_eq!(result.entries.len(), 5, "starting at {start}");
    }
}

#[test]
fn persistent_search_notifies_consumers_of_new_sensors() {
    let dir = DirectoryServer::new("ldap://dir", Dn::parse("o=grid").unwrap());
    // A consumer registers interest in TCP sensors anywhere on the grid
    // before any exist (the LDAPv3 event-notification usage from §2.2).
    let watch = dir.persistent_search(
        Dn::parse("o=grid").unwrap(),
        Filter::parse("(&(objectclass=sensor)(sensor=tcp))").unwrap(),
    );
    dir.add(sensor_entry("lbl", "dpss1.lbl.gov", "cpu"))
        .unwrap();
    dir.add(sensor_entry("lbl", "dpss1.lbl.gov", "tcp"))
        .unwrap();
    dir.modify(
        &Dn::parse("sensor=tcp,host=dpss1.lbl.gov,o=lbl,o=grid").unwrap(),
        |e| e.set("status", vec!["stopped".into()]),
    )
    .unwrap();
    let changes = watch.drain();
    assert_eq!(
        changes.len(),
        2,
        "added + modified, the cpu sensor is ignored"
    );
    assert_eq!(changes[0].kind, ChangeKind::Added);
    assert_eq!(changes[1].kind, ChangeKind::Modified);
    assert_eq!(changes[1].entry.get("status"), Some("stopped"));
}

#[test]
fn control_plane_calls_travel_over_the_rmi_substrate() {
    // A sensor-manager control service exposed over TCP, as the GUIs and
    // gateways would call it.
    let bus = MessageBus::new();
    bus.register_fn(
        "sensor-manager@dpss1.lbl.gov",
        |method, args| match method {
            "start_sensor" => Ok(json!({
                "sensor": args["name"].clone(),
                "status": "running"
            })),
            "list" => Ok(json!(["cpu", "memory", "tcp"])),
            other => Err(jamm_rmi::message::RmiError::NoSuchMethod(other.into())),
        },
    );
    let server = RmiServer::start(bus).expect("bind localhost");
    let mut client = RmiClient::connect(server.addr()).expect("connect");
    let started = client
        .invoke(&MethodCall::new(
            "sensor-manager@dpss1.lbl.gov",
            "start_sensor",
            json!({"name": "netstat"}),
        ))
        .unwrap();
    assert_eq!(started["status"], "running");
    let list = client
        .invoke(&MethodCall::new(
            "sensor-manager@dpss1.lbl.gov",
            "list",
            json!(null),
        ))
        .unwrap();
    assert_eq!(list.as_array().unwrap().len(), 3);
}
