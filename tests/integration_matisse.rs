//! Integration test of the §6 MATISSE case study: the qualitative results
//! the paper reports must hold in the reproduction.

use jamm::deployment::{DeploymentConfig, JammDeployment};
use jamm::JammBuilder;
use jamm_netlogger::analysis::{correlate_gaps, delivery_gaps, diagnose, two_cluster};
use jamm_netsim::scenario::matisse_iperf;
use jamm_ulm::keys;

/// §6: one WAN stream reaches ~140 Mbit/s, four parallel streams collapse to
/// a small fraction of that, and on the LAN both configurations are fine.
#[test]
fn iperf_stream_comparison_matches_the_paper_shape() {
    let wan_one = matisse_iperf(true, 1, 20.0, 42);
    let wan_four = matisse_iperf(true, 4, 20.0, 42);
    let lan_one = matisse_iperf(false, 1, 10.0, 42);
    let lan_four = matisse_iperf(false, 4, 10.0, 42);

    assert!(
        wan_one.aggregate_mbps > 100.0 && wan_one.aggregate_mbps < 180.0,
        "paper: ~140 Mbit/s single WAN stream, got {:.1}",
        wan_one.aggregate_mbps
    );
    assert!(
        wan_four.aggregate_mbps < 0.45 * wan_one.aggregate_mbps,
        "paper: 30 vs 140 Mbit/s, got {:.1} vs {:.1}",
        wan_four.aggregate_mbps,
        wan_one.aggregate_mbps
    );
    assert!(
        wan_four.retransmits > 10 * wan_one.retransmits.max(1),
        "the collapse is driven by retransmissions ({} vs {})",
        wan_four.retransmits,
        wan_one.retransmits
    );
    assert!(
        lan_one.aggregate_mbps > 150.0,
        "paper: ~200 Mbit/s on the LAN, got {:.1}",
        lan_one.aggregate_mbps
    );
    assert!(
        lan_four.aggregate_mbps > 0.7 * lan_one.aggregate_mbps,
        "LAN parity between 1 and 4 streams: {:.1} vs {:.1}",
        lan_four.aggregate_mbps,
        lan_one.aggregate_mbps
    );
}

/// §6 + Figure 7: the monitored 4-server WAN run shows bursty frame delivery
/// whose stalls coincide with TCP retransmissions observed on the receiver,
/// and switching to a single server roughly triples throughput.
#[test]
fn monitored_matisse_run_reproduces_figure7_correlations() {
    let mut cfg = DeploymentConfig::matisse_wan(4);
    cfg.matisse.seed = 2000;
    let mut four = JammDeployment::matisse(cfg);
    four.run_secs(30.0);

    assert!(
        four.scenario.player.frames_displayed() > 3,
        "frames arrived"
    );
    assert!(
        four.scenario.client_retransmits() > 0,
        "retransmissions occurred"
    );

    let log = four.merged_log();
    // Retransmission events were *collected by JAMM* (not just simulated).
    assert!(
        log.iter().any(|e| e.event_type == keys::tcp::RETRANSMITS),
        "tcp sensor events reached the collector"
    );
    // The frame-delivery gaps correlate with retransmission bursts.
    let gaps = delivery_gaps(&log, keys::matisse::END_READ_FRAME, 700_000);
    if !gaps.is_empty() {
        let corr = correlate_gaps(&log, &gaps, keys::tcp::RETRANSMITS, 500_000);
        assert!(
            corr.gap_hit_rate() >= 0.5,
            "at least half of the stalls are explained by retransmissions ({:.0}%)",
            corr.gap_hit_rate() * 100.0
        );
    }
    // The Figure 7 chart itself assembles: lifelines, CPU loadlines, points.
    let chart = four.figure7_chart();
    assert!(!chart.lifelines.is_empty());
    assert!(chart.loadlines.iter().any(|l| !l.samples.is_empty()));
    assert!(chart.point_series.iter().any(|p| !p.points.is_empty()));

    // Work-around run: a single DPSS server (one socket) performs much better.
    let mut cfg1 = DeploymentConfig::matisse_wan(1);
    cfg1.matisse.seed = 2000;
    let mut one = JammDeployment::matisse(cfg1);
    one.run_secs(30.0);
    assert!(
        one.scenario.aggregate_mbps() > 2.0 * four.scenario.aggregate_mbps(),
        "single server restores throughput: {:.1} vs {:.1} Mbit/s",
        one.scenario.aggregate_mbps(),
        four.scenario.aggregate_mbps()
    );
}

/// The §4 methodology turned on JAMM itself: a self-monitored deployment
/// serves two consumers, one of which is deliberately slow to drain its
/// queue (the injected bottleneck, played by the paper's `mems.cairn.net`
/// host).  The automated diagnosis over the sampled self-lifelines must
/// localize the bottleneck to exactly that consumer's drain stage — not
/// merely notice that something is slow.
#[test]
fn self_monitoring_diagnoses_an_injected_slow_consumer() {
    let mut jamm = JammBuilder::new()
        .gateway("gw-lbl")
        .collector("nlv-analyst")
        .collector("mems.cairn.net")
        .self_monitor(1) // trace every publish: the test is short
        .build()
        .unwrap();
    jamm.connect_collectors(vec![]);

    // Two rounds of traffic.  The healthy consumer drains as soon as
    // events arrive; the slow one sits on its full queue for ~80 ms
    // first.  Rounds stay within the tracer's watched-ring capacity, so
    // every lifeline completes.
    for _ in 0..2 {
        for _ in 0..4 {
            let e = jamm_ulm::Event::builder("mplay", "client.lbl.gov")
                .event_type(keys::matisse::END_READ_FRAME)
                .build();
            assert!(jamm.publish("gw-lbl", &e) > 0);
        }
        let fast = jamm
            .collectors
            .iter()
            .position(|c| c.consumer() == "nlv-analyst")
            .unwrap();
        let slow = jamm
            .collectors
            .iter()
            .position(|c| c.consumer() == "mems.cairn.net")
            .unwrap();
        jamm.collectors[fast].poll();
        std::thread::sleep(std::time::Duration::from_millis(80));
        jamm.collectors[slow].poll();
    }
    jamm.drain_self_events();

    let lifelines = jamm.self_events();
    let d = diagnose(lifelines.iter().map(|e| e.as_ref()));
    assert_eq!(d.traces, 8, "every publish was sampled");

    let b = d.bottleneck().expect("hops observed");
    assert_eq!(b.from, keys::jamm::SUB_DELIVER, "wrong stage: {b:?}");
    assert_eq!(b.to, keys::jamm::SUB_DRAIN, "wrong stage: {b:?}");
    assert_eq!(b.target, "mems.cairn.net", "wrong host blamed: {b:?}");
    assert!(
        b.mean_us >= 40_000.0,
        "the injected ~80 ms stall dominates: {b:?}"
    );
    // The healthy consumer's identical hop is far faster — the diagnosis
    // separated the consumers rather than averaging them together.
    let healthy = d
        .hops
        .iter()
        .find(|h| h.to == keys::jamm::SUB_DRAIN && h.target == "nlv-analyst")
        .expect("healthy consumer hop present");
    assert!(
        healthy.mean_us < b.mean_us / 4.0,
        "healthy {:.0} us vs bottleneck {:.0} us",
        healthy.mean_us,
        b.mean_us
    );
    let text = d.render_text();
    assert!(text.starts_with("bottleneck: JAMM_SUB_DELIVER -> JAMM_SUB_DRAIN at mems.cairn.net"));
}

/// Figure 3: the distribution of the player's `read()` sizes clusters around
/// two distinct values (the full 64 KB buffer and the small remainder).
#[test]
fn read_sizes_cluster_around_two_values() {
    let mut cfg = DeploymentConfig::matisse_wan(1);
    cfg.matisse.seed = 77;
    let mut jamm = JammDeployment::matisse(cfg);
    jamm.run_secs(25.0);
    let readings: Vec<f64> = jamm
        .scenario
        .player
        .read_sizes
        .iter()
        .map(|&(_, r)| r as f64)
        .collect();
    assert!(
        readings.len() > 100,
        "enough reads recorded: {}",
        readings.len()
    );
    let clusters = two_cluster(&readings).expect("clustering possible");
    assert!(
        clusters.high_center > 50_000.0,
        "upper cluster near the 64 KB read buffer: {:.0}",
        clusters.high_center
    );
    assert!(
        clusters.low_center < 0.65 * clusters.high_center,
        "lower cluster well below the buffer size: {:.0}",
        clusters.low_center
    );
    assert!(clusters.low_count > 10 && clusters.high_count > 10);
    assert!(
        clusters.separation > 1.0,
        "clearly bimodal (separation {:.2})",
        clusters.separation
    );
}
