//! The grid map file.
//!
//! "A server side map file is used to map the Globus X.509 user identities
//! to local user-ids which can be used by existing access control
//! mechanisms." (§7.1)

use std::collections::BTreeMap;

use crate::{AuthError, Result};

/// Maps certificate subjects to local account names.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GridMapFile {
    entries: BTreeMap<String, String>,
}

impl GridMapFile {
    /// An empty map file.
    pub fn new() -> Self {
        GridMapFile::default()
    }

    /// Add a mapping from a certificate subject to a local user.
    pub fn add(&mut self, subject: impl Into<String>, local_user: impl Into<String>) {
        self.entries.insert(subject.into(), local_user.into());
    }

    /// Remove a mapping; returns true if it existed.
    pub fn remove(&mut self, subject: &str) -> bool {
        self.entries.remove(subject).is_some()
    }

    /// Resolve a certificate subject to its local account.
    pub fn map(&self, subject: &str) -> Result<&str> {
        self.entries
            .get(subject)
            .map(String::as_str)
            .ok_or_else(|| AuthError::NoMapping(subject.to_string()))
    }

    /// Number of mappings.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if there are no mappings.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Parse the classic grid-mapfile format: one mapping per line,
    /// `"subject dn" localuser`, with `#` comments and blank lines ignored.
    pub fn parse(text: &str) -> Self {
        let mut map = GridMapFile::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some(rest) = line.strip_prefix('"') {
                if let Some((subject, user)) = rest.split_once('"') {
                    let user = user.trim();
                    if !user.is_empty() {
                        map.add(subject, user);
                    }
                }
            } else if let Some((subject, user)) = line.rsplit_once(char::is_whitespace) {
                map.add(subject.trim(), user.trim());
            }
        }
        map
    }

    /// Serialise in the classic grid-mapfile format.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for (subject, user) in &self.entries {
            out.push_str(&format!("\"{subject}\" {user}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_map_and_remove() {
        let mut m = GridMapFile::new();
        assert!(m.is_empty());
        m.add("/O=Grid/O=LBNL/CN=Brian Tierney", "tierney");
        m.add("/O=Grid/O=LBNL/CN=Dan Gunter", "dgunter");
        assert_eq!(m.len(), 2);
        assert_eq!(m.map("/O=Grid/O=LBNL/CN=Brian Tierney").unwrap(), "tierney");
        assert!(matches!(
            m.map("/O=Grid/CN=Unknown"),
            Err(AuthError::NoMapping(_))
        ));
        assert!(m.remove("/O=Grid/O=LBNL/CN=Dan Gunter"));
        assert!(!m.remove("/O=Grid/O=LBNL/CN=Dan Gunter"));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn parse_classic_format() {
        let text = r#"
# DOE Science Grid users
"/O=Grid/O=LBNL/CN=Brian Tierney" tierney
"/O=Grid/O=LBNL/CN=Mary Thompson" mrt

/O=Grid/O=ANL/CN=SimpleEntry warren
"#;
        let m = GridMapFile::parse(text);
        assert_eq!(m.len(), 3);
        assert_eq!(m.map("/O=Grid/O=LBNL/CN=Mary Thompson").unwrap(), "mrt");
        assert_eq!(m.map("/O=Grid/O=ANL/CN=SimpleEntry").unwrap(), "warren");
    }

    #[test]
    fn text_round_trip() {
        let mut m = GridMapFile::new();
        m.add("/O=Grid/CN=Alice User", "alice");
        m.add("/O=Grid/CN=Bob", "bob");
        let parsed = GridMapFile::parse(&m.to_text());
        assert_eq!(parsed, m);
    }

    #[test]
    fn malformed_lines_are_skipped() {
        let m = GridMapFile::parse("\"unterminated subject\n\"/CN=x\"\nnouser");
        assert!(m.map("/CN=x").is_err());
        assert!(m.len() <= 1);
    }
}
