//! Action-level access control lists.
//!
//! "The event gateways can also be used to provide access control to the
//! sensors, allowing different access to different classes of users.  Some
//! sites may only allow internal access to real-time sensor streams, with
//! only summary data being available off-site." (§2.2)  The gateway consults
//! an [`AccessControlList`] keyed by principal (a mapped local user or a
//! certificate subject) and resource, deciding which [`Action`]s are allowed.

use std::collections::{BTreeMap, BTreeSet};

use crate::{AuthError, Result};

/// Operations a consumer can ask of the monitoring system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Action {
    /// Look sensors up in the directory.
    Lookup,
    /// Subscribe to a real-time event stream.
    SubscribeStream,
    /// Issue one-shot queries for the most recent event.
    Query,
    /// Receive only summary (averaged) data.
    Summary,
    /// Ask the sensor manager to start or reconfigure sensors.
    ControlSensors,
    /// Administer gateway policy itself.
    Admin,
}

/// Principal classes, in the spirit of the paper's "different classes of
/// users": a named principal, anyone from a named organisation (subject
/// prefix), or anyone at all.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum Principal {
    /// A specific user (local account or certificate subject).
    User(String),
    /// Anyone whose subject starts with the given prefix
    /// (e.g. `/O=Grid/O=LBNL` for "internal" users).
    OrgPrefix(String),
    /// Any authenticated principal.
    Anyone,
}

impl Principal {
    fn matches(&self, subject: &str) -> bool {
        match self {
            Principal::User(u) => u == subject,
            Principal::OrgPrefix(p) => subject.starts_with(p.as_str()),
            Principal::Anyone => true,
        }
    }
}

/// An access control list: grants of actions on resources to principals.
///
/// Resources are free-form strings; by convention JAMM uses
/// `"sensor:<host>/<sensor>"`, `"gateway:<name>"` and `"*"` for everything.
#[derive(Debug, Clone, Default)]
pub struct AccessControlList {
    grants: Vec<(Principal, String, BTreeSet<Action>)>,
    /// If true (default), a subject with no matching grant is denied.
    /// If false, unmatched subjects get `Query` and `Summary` only —
    /// the "summary data available off-site" posture from the paper.
    pub default_deny: bool,
}

impl AccessControlList {
    /// An ACL that denies everything not explicitly granted.
    pub fn deny_by_default() -> Self {
        AccessControlList {
            grants: Vec::new(),
            default_deny: true,
        }
    }

    /// An ACL whose fallback is summary-only access (the off-site posture).
    pub fn summary_for_others() -> Self {
        AccessControlList {
            grants: Vec::new(),
            default_deny: false,
        }
    }

    /// Grant `actions` on `resource` to `principal`.
    pub fn grant(
        &mut self,
        principal: Principal,
        resource: impl Into<String>,
        actions: impl IntoIterator<Item = Action>,
    ) {
        self.grants
            .push((principal, resource.into(), actions.into_iter().collect()));
    }

    /// All actions `subject` may perform on `resource`.
    pub fn allowed_actions(&self, subject: &str, resource: &str) -> BTreeSet<Action> {
        let mut out = BTreeSet::new();
        for (principal, res, actions) in &self.grants {
            if principal.matches(subject) && resource_matches(res, resource) {
                out.extend(actions.iter().copied());
            }
        }
        if out.is_empty() && !self.default_deny {
            out.insert(Action::Query);
            out.insert(Action::Summary);
        }
        out
    }

    /// Check a single action, returning a descriptive error when denied.
    pub fn check(&self, subject: &str, resource: &str, action: Action) -> Result<()> {
        if self.allowed_actions(subject, resource).contains(&action) {
            Ok(())
        } else {
            Err(AuthError::Denied(format!(
                "{subject} may not {action:?} on {resource}"
            )))
        }
    }

    /// Number of grant rules.
    pub fn len(&self) -> usize {
        self.grants.len()
    }

    /// True if no grants have been added.
    pub fn is_empty(&self) -> bool {
        self.grants.is_empty()
    }
}

/// Resource patterns: exact match, `"*"` matches anything, a trailing `*`
/// matches a prefix (e.g. `sensor:dpss1.lbl.gov/*`).
fn resource_matches(pattern: &str, resource: &str) -> bool {
    if pattern == "*" || pattern == resource {
        return true;
    }
    if let Some(prefix) = pattern.strip_suffix('*') {
        return resource.starts_with(prefix);
    }
    false
}

/// The allow-list protecting sensor managers: "a sensor manager only needs
/// to communicate with a small known set of gateway agents and thus can just
/// have a list of the Identity Certificates for each agent to which it will
/// allow a connection" (§7.1).
#[derive(Debug, Clone, Default)]
pub struct GatewayAllowList {
    allowed_subjects: BTreeMap<String, ()>,
}

impl GatewayAllowList {
    /// An empty allow-list (rejects every gateway).
    pub fn new() -> Self {
        GatewayAllowList::default()
    }

    /// Permit connections from the gateway with this certificate subject.
    pub fn allow(&mut self, gateway_subject: impl Into<String>) {
        self.allowed_subjects.insert(gateway_subject.into(), ());
    }

    /// Check whether a gateway may connect.
    pub fn check(&self, gateway_subject: &str) -> Result<()> {
        if self.allowed_subjects.contains_key(gateway_subject) {
            Ok(())
        } else {
            Err(AuthError::Denied(format!(
                "gateway {gateway_subject} is not in the sensor manager's allow list"
            )))
        }
    }

    /// Number of allowed gateways.
    pub fn len(&self) -> usize {
        self.allowed_subjects.len()
    }

    /// True if the list is empty.
    pub fn is_empty(&self) -> bool {
        self.allowed_subjects.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_grants_and_default_deny() {
        let mut acl = AccessControlList::deny_by_default();
        acl.grant(
            Principal::User("tierney".into()),
            "*",
            [
                Action::Lookup,
                Action::SubscribeStream,
                Action::ControlSensors,
            ],
        );
        assert!(acl
            .check(
                "tierney",
                "sensor:dpss1.lbl.gov/cpu",
                Action::SubscribeStream
            )
            .is_ok());
        assert!(acl.check("tierney", "gateway:gw1", Action::Lookup).is_ok());
        assert!(matches!(
            acl.check("stranger", "sensor:dpss1.lbl.gov/cpu", Action::Query),
            Err(AuthError::Denied(_))
        ));
        assert!(matches!(
            acl.check("tierney", "gateway:gw1", Action::Admin),
            Err(AuthError::Denied(_))
        ));
    }

    #[test]
    fn offsite_users_get_summary_only() {
        let mut acl = AccessControlList::summary_for_others();
        acl.grant(
            Principal::OrgPrefix("/O=Grid/O=LBNL".into()),
            "*",
            [
                Action::Lookup,
                Action::SubscribeStream,
                Action::Query,
                Action::Summary,
            ],
        );
        // Internal user: full streaming access.
        assert!(acl
            .check(
                "/O=Grid/O=LBNL/CN=Dan Gunter",
                "sensor:x/cpu",
                Action::SubscribeStream
            )
            .is_ok());
        // Off-site user: summaries and queries only.
        let offsite = "/O=Grid/O=NCSA/CN=Remote User";
        assert!(acl.check(offsite, "sensor:x/cpu", Action::Summary).is_ok());
        assert!(acl.check(offsite, "sensor:x/cpu", Action::Query).is_ok());
        assert!(matches!(
            acl.check(offsite, "sensor:x/cpu", Action::SubscribeStream),
            Err(AuthError::Denied(_))
        ));
    }

    #[test]
    fn resource_prefix_patterns() {
        let mut acl = AccessControlList::deny_by_default();
        acl.grant(Principal::Anyone, "sensor:dpss1.lbl.gov/*", [Action::Query]);
        assert!(acl
            .check("anyone", "sensor:dpss1.lbl.gov/cpu", Action::Query)
            .is_ok());
        assert!(acl
            .check("anyone", "sensor:dpss1.lbl.gov/memory", Action::Query)
            .is_ok());
        assert!(acl
            .check("anyone", "sensor:dpss2.lbl.gov/cpu", Action::Query)
            .is_err());
    }

    #[test]
    fn allowed_actions_unions_grants() {
        let mut acl = AccessControlList::deny_by_default();
        acl.grant(Principal::User("u".into()), "r", [Action::Query]);
        acl.grant(Principal::Anyone, "r", [Action::Summary]);
        let actions = acl.allowed_actions("u", "r");
        assert!(actions.contains(&Action::Query) && actions.contains(&Action::Summary));
        assert_eq!(acl.len(), 2);
    }

    #[test]
    fn gateway_allow_list() {
        let mut allow = GatewayAllowList::new();
        assert!(allow.is_empty());
        allow.allow("/O=Grid/O=LBNL/CN=gw1.lbl.gov");
        allow.allow("/O=Grid/O=LBNL/CN=gw2.lbl.gov");
        assert_eq!(allow.len(), 2);
        assert!(allow.check("/O=Grid/O=LBNL/CN=gw1.lbl.gov").is_ok());
        assert!(matches!(
            allow.check("/O=Grid/O=EVIL/CN=rogue"),
            Err(AuthError::Denied(_))
        ));
    }
}
