//! # jamm-auth — identity, mapping and authorization for JAMM
//!
//! Section 7.1 of the paper lays out the security design JAMM intends to
//! adopt: X.509 identity certificates presented over SSL for cross-realm
//! user identification, a Globus-GSI-style map file translating certificate
//! subjects to local accounts, Akenti-style stakeholder policy and attribute
//! certificates for distributed authorization, simple user/password
//! protection of LDAP subtrees, and allow-lists restricting which gateways
//! may talk to a sensor manager.
//!
//! This crate implements all of those mechanisms.  The one substitution is
//! cryptographic: certificates are "signed" with a keyed hash over their
//! canonical encoding rather than RSA/DSA signatures, which keeps the crate
//! dependency-free while preserving every architectural property the paper
//! discusses (issuance, verification, expiry, delegation via proxies,
//! cross-realm naming, stakeholder policy evaluation).
//!
//! * [`identity`] — certificate authorities, identity and proxy certificates;
//! * [`mapfile`] — the grid map file (certificate subject → local user);
//! * [`acl`] — action-level access control lists used by event gateways;
//! * [`policy`] — Akenti-like use-conditions and attribute certificates.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod acl;
pub mod identity;
pub mod mapfile;
pub mod policy;

pub use acl::{AccessControlList, Action};
pub use identity::{CertificateAuthority, IdentityCertificate};
pub use mapfile::GridMapFile;
pub use policy::{AttributeCertificate, PolicyEngine, UseCondition};

/// Errors returned by authentication / authorization operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AuthError {
    /// The certificate signature did not verify.
    BadSignature,
    /// The certificate is outside its validity window.
    Expired,
    /// The certificate issuer is not trusted.
    UntrustedIssuer(String),
    /// The subject has no mapping to a local account.
    NoMapping(String),
    /// The subject is not authorised for the requested action.
    Denied(String),
}

impl std::fmt::Display for AuthError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AuthError::BadSignature => write!(f, "certificate signature verification failed"),
            AuthError::Expired => write!(f, "certificate is expired or not yet valid"),
            AuthError::UntrustedIssuer(ca) => write!(f, "untrusted issuer: {ca}"),
            AuthError::NoMapping(subj) => write!(f, "no grid-map entry for {subj}"),
            AuthError::Denied(what) => write!(f, "access denied: {what}"),
        }
    }
}

impl std::error::Error for AuthError {}

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, AuthError>;
