//! Akenti-style distributed authorization.
//!
//! "Akenti provides a way for the resource stakeholders to remotely
//! determine the authorization for resource use based on components of the
//! user's distinguished name or attribute certificates." (§7.1)
//!
//! The model: each *resource* has one or more *stakeholders*; each
//! stakeholder publishes [`UseCondition`]s saying which attribute (or DN
//! component) a user must have for a set of actions; users carry
//! [`AttributeCertificate`]s, issued by attribute authorities, asserting
//! attributes such as `group=dpss-users`.  The [`PolicyEngine`] grants an
//! action when **every** stakeholder of the resource has at least one
//! satisfied use-condition covering that action.

use std::collections::BTreeSet;

use crate::acl::Action;
use crate::identity::IdentityCertificate;
use crate::{AuthError, Result};

/// A requirement a stakeholder places on users of a resource.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UseCondition {
    /// The stakeholder who issued the condition.
    pub stakeholder: String,
    /// The resource it applies to (same naming convention as the ACLs).
    pub resource: String,
    /// Requirement on the user.
    pub requirement: Requirement,
    /// Actions this condition covers when satisfied.
    pub actions: BTreeSet<Action>,
}

/// What a use-condition demands of the user.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Requirement {
    /// The user's certificate subject must contain this component
    /// (e.g. `O=LBNL`).
    DnContains(String),
    /// The user must hold an attribute certificate asserting
    /// `attribute = value`.
    Attribute(String, String),
}

/// An attribute certificate: an authority asserts an attribute about a user.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttributeCertificate {
    /// Subject the attribute is about (certificate subject DN).
    pub subject: String,
    /// Attribute name (e.g. `group`).
    pub attribute: String,
    /// Attribute value (e.g. `dpss-users`).
    pub value: String,
    /// The issuing attribute authority.
    pub issuer: String,
    /// Expiry, seconds since the epoch.
    pub not_after: u64,
}

impl AttributeCertificate {
    /// True if the certificate is still valid at `now`.
    pub fn is_valid_at(&self, now: u64) -> bool {
        now <= self.not_after
    }
}

/// Evaluates stakeholder policy for resources.
#[derive(Debug, Clone, Default)]
pub struct PolicyEngine {
    conditions: Vec<UseCondition>,
    /// Attribute authorities trusted to issue attribute certificates.
    trusted_attribute_issuers: BTreeSet<String>,
}

impl PolicyEngine {
    /// An engine with no conditions (denies everything — a resource with no
    /// stakeholders has no one to vouch for access).
    pub fn new() -> Self {
        PolicyEngine::default()
    }

    /// Trust an attribute authority.
    pub fn trust_attribute_issuer(&mut self, issuer: impl Into<String>) {
        self.trusted_attribute_issuers.insert(issuer.into());
    }

    /// Register a stakeholder's use-condition.
    pub fn add_condition(&mut self, condition: UseCondition) {
        self.conditions.push(condition);
    }

    /// Number of registered use-conditions.
    pub fn condition_count(&self) -> usize {
        self.conditions.len()
    }

    /// The actions `user` may perform on `resource` at time `now`, given the
    /// attribute certificates they presented.
    ///
    /// An action is allowed when every stakeholder with conditions on the
    /// resource has at least one satisfied condition covering it.
    pub fn allowed_actions(
        &self,
        user: &IdentityCertificate,
        attrs: &[AttributeCertificate],
        resource: &str,
        now: u64,
    ) -> BTreeSet<Action> {
        let relevant: Vec<&UseCondition> = self
            .conditions
            .iter()
            .filter(|c| c.resource == "*" || c.resource == resource)
            .collect();
        if relevant.is_empty() {
            return BTreeSet::new();
        }
        let stakeholders: BTreeSet<&str> =
            relevant.iter().map(|c| c.stakeholder.as_str()).collect();

        let mut allowed: Option<BTreeSet<Action>> = None;
        for stakeholder in stakeholders {
            let mut granted_by_this_stakeholder = BTreeSet::new();
            for cond in relevant.iter().filter(|c| c.stakeholder == stakeholder) {
                if self.satisfied(&cond.requirement, user, attrs, now) {
                    granted_by_this_stakeholder.extend(cond.actions.iter().copied());
                }
            }
            allowed = Some(match allowed {
                None => granted_by_this_stakeholder,
                Some(prev) => prev
                    .intersection(&granted_by_this_stakeholder)
                    .copied()
                    .collect(),
            });
        }
        allowed.unwrap_or_default()
    }

    /// Check one action.
    pub fn check(
        &self,
        user: &IdentityCertificate,
        attrs: &[AttributeCertificate],
        resource: &str,
        action: Action,
        now: u64,
    ) -> Result<()> {
        if self
            .allowed_actions(user, attrs, resource, now)
            .contains(&action)
        {
            Ok(())
        } else {
            Err(AuthError::Denied(format!(
                "{} may not {action:?} on {resource}",
                user.effective_subject()
            )))
        }
    }

    fn satisfied(
        &self,
        req: &Requirement,
        user: &IdentityCertificate,
        attrs: &[AttributeCertificate],
        now: u64,
    ) -> bool {
        match req {
            Requirement::DnContains(component) => {
                user.effective_subject().contains(component.as_str())
            }
            Requirement::Attribute(name, value) => attrs.iter().any(|a| {
                a.subject == user.effective_subject()
                    && a.attribute == *name
                    && a.value == *value
                    && a.is_valid_at(now)
                    && self.trusted_attribute_issuers.contains(&a.issuer)
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::identity::CertificateAuthority;

    const NOW: u64 = 959_400_000;

    fn user(subject: &str) -> IdentityCertificate {
        CertificateAuthority::new("/CN=CA", 7).issue(subject, NOW, 86_400)
    }

    fn group_cert(subject: &str, group: &str, issuer: &str) -> AttributeCertificate {
        AttributeCertificate {
            subject: subject.into(),
            attribute: "group".into(),
            value: group.into(),
            issuer: issuer.into(),
            not_after: NOW + 3_600,
        }
    }

    fn engine_with_two_stakeholders() -> PolicyEngine {
        let mut e = PolicyEngine::new();
        e.trust_attribute_issuer("/CN=LBNL Attribute Authority");
        // Stakeholder 1 (LBNL ops): anyone from LBNL may stream and query.
        e.add_condition(UseCondition {
            stakeholder: "lbl-ops".into(),
            resource: "sensor:dpss1.lbl.gov/*".into(),
            requirement: Requirement::DnContains("O=LBNL".into()),
            actions: [Action::SubscribeStream, Action::Query, Action::Summary]
                .into_iter()
                .collect(),
        });
        // Stakeholder 2 (DPSS project): must be in group dpss-users to stream;
        // anyone may see summaries.
        e.add_condition(UseCondition {
            stakeholder: "dpss-project".into(),
            resource: "sensor:dpss1.lbl.gov/*".into(),
            requirement: Requirement::Attribute("group".into(), "dpss-users".into()),
            actions: [Action::SubscribeStream, Action::Query, Action::Summary]
                .into_iter()
                .collect(),
        });
        e.add_condition(UseCondition {
            stakeholder: "dpss-project".into(),
            resource: "sensor:dpss1.lbl.gov/*".into(),
            requirement: Requirement::DnContains("O=Grid".into()),
            actions: [Action::Summary].into_iter().collect(),
        });
        e
    }

    #[test]
    fn all_stakeholders_must_agree() {
        let e = engine_with_two_stakeholders();
        let resource = "sensor:dpss1.lbl.gov/*";
        let alice = user("/O=Grid/O=LBNL/CN=Alice");
        let alice_attrs = [group_cert(
            "/O=Grid/O=LBNL/CN=Alice",
            "dpss-users",
            "/CN=LBNL Attribute Authority",
        )];
        // Alice satisfies both stakeholders: full access.
        assert!(e
            .check(&alice, &alice_attrs, resource, Action::SubscribeStream, NOW)
            .is_ok());
        // Bob is from LBNL but not in the group: only the summary action is
        // granted by both stakeholders.
        let bob = user("/O=Grid/O=LBNL/CN=Bob");
        let actions = e.allowed_actions(&bob, &[], resource, NOW);
        assert_eq!(actions, [Action::Summary].into_iter().collect());
        assert!(e
            .check(&bob, &[], resource, Action::SubscribeStream, NOW)
            .is_err());
        // Carol is in the group but not from LBNL: stakeholder 1 grants
        // nothing, so nothing is allowed.
        let carol = user("/O=Grid/O=NCSA/CN=Carol");
        let carol_attrs = [group_cert(
            "/O=Grid/O=NCSA/CN=Carol",
            "dpss-users",
            "/CN=LBNL Attribute Authority",
        )];
        assert!(e
            .allowed_actions(&carol, &carol_attrs, resource, NOW)
            .is_empty());
    }

    #[test]
    fn untrusted_attribute_issuers_are_ignored() {
        let e = engine_with_two_stakeholders();
        let mallory = user("/O=Grid/O=LBNL/CN=Mallory");
        let forged = [group_cert(
            "/O=Grid/O=LBNL/CN=Mallory",
            "dpss-users",
            "/CN=Mallory's Own Authority",
        )];
        let actions = e.allowed_actions(&mallory, &forged, "sensor:dpss1.lbl.gov/*", NOW);
        assert!(!actions.contains(&Action::SubscribeStream));
    }

    #[test]
    fn expired_attribute_certificates_are_ignored() {
        let e = engine_with_two_stakeholders();
        let alice = user("/O=Grid/O=LBNL/CN=Alice");
        let mut attr = group_cert(
            "/O=Grid/O=LBNL/CN=Alice",
            "dpss-users",
            "/CN=LBNL Attribute Authority",
        );
        attr.not_after = NOW - 1;
        assert!(e
            .check(
                &alice,
                &[attr],
                "sensor:dpss1.lbl.gov/*",
                Action::SubscribeStream,
                NOW
            )
            .is_err());
    }

    #[test]
    fn resources_with_no_conditions_deny_everything() {
        let e = engine_with_two_stakeholders();
        let alice = user("/O=Grid/O=LBNL/CN=Alice");
        assert!(e
            .allowed_actions(&alice, &[], "sensor:other.host/cpu", NOW)
            .is_empty());
        assert_eq!(e.condition_count(), 3);
    }

    #[test]
    fn proxy_certificates_carry_the_users_rights() {
        let e = engine_with_two_stakeholders();
        let alice = user("/O=Grid/O=LBNL/CN=Alice");
        let proxy = alice.issue_proxy(42, NOW, 3_600);
        let attrs = [group_cert(
            "/O=Grid/O=LBNL/CN=Alice",
            "dpss-users",
            "/CN=LBNL Attribute Authority",
        )];
        assert!(e
            .check(
                &proxy,
                &attrs,
                "sensor:dpss1.lbl.gov/*",
                Action::SubscribeStream,
                NOW
            )
            .is_ok());
    }
}
