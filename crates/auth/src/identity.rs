//! Identity certificates, certificate authorities and proxy delegation.
//!
//! "Public key based X.509 identity certificates are a recognized solution
//! for cross-realm identification of users." (§7.1)  A
//! [`CertificateAuthority`] issues [`IdentityCertificate`]s binding a subject
//! name to a validity window; any party holding the CA's verification key can
//! check that a presented certificate is genuine and current.  Globus-style
//! *proxy* certificates are supported: a user certificate can sign a
//! short-lived proxy that carries the user's identity for delegated agents.

use crate::{AuthError, Result};

/// A keyed hash standing in for a public-key signature.
///
/// The hash is FNV-1a over the canonical certificate encoding mixed with the
/// signing key.  It is *not* cryptographically secure — the point of this
/// crate is the authorization architecture, not the cryptography (see the
/// substitution note in DESIGN.md).
fn keyed_hash(key: u64, data: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ key.rotate_left(17);
    for b in data.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^= key;
    h.rotate_left(31)
}

/// An identity (or proxy) certificate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IdentityCertificate {
    /// Distinguished name of the subject, e.g.
    /// `/O=Grid/O=LBNL/CN=Brian Tierney`.
    pub subject: String,
    /// Distinguished name of the issuing CA (or, for proxies, the user
    /// certificate's subject).
    pub issuer: String,
    /// Start of validity, seconds since the epoch.
    pub not_before: u64,
    /// End of validity, seconds since the epoch.
    pub not_after: u64,
    /// True if this is a delegated proxy certificate.
    pub is_proxy: bool,
    /// Signature over the canonical encoding.
    pub signature: u64,
}

impl IdentityCertificate {
    fn canonical(&self) -> String {
        format!(
            "subject={};issuer={};nb={};na={};proxy={}",
            self.subject, self.issuer, self.not_before, self.not_after, self.is_proxy
        )
    }

    /// True if `now` (seconds) falls within the validity window.
    pub fn is_valid_at(&self, now: u64) -> bool {
        now >= self.not_before && now <= self.not_after
    }

    /// The identity this certificate asserts.  For proxies this is the
    /// *issuer* chain's base subject: `/O=Grid/CN=Alice/proxy` acts as
    /// `/O=Grid/CN=Alice`.
    pub fn effective_subject(&self) -> &str {
        if self.is_proxy {
            self.subject.strip_suffix("/proxy").unwrap_or(&self.subject)
        } else {
            &self.subject
        }
    }

    /// Issue a short-lived proxy certificate carrying this identity.
    /// In GSI terms: the user's credential signs the proxy.
    pub fn issue_proxy(&self, user_key: u64, now: u64, lifetime_secs: u64) -> IdentityCertificate {
        let mut proxy = IdentityCertificate {
            subject: format!("{}/proxy", self.subject),
            issuer: self.subject.clone(),
            not_before: now,
            not_after: now + lifetime_secs,
            is_proxy: true,
            signature: 0,
        };
        proxy.signature = keyed_hash(user_key, &proxy.canonical());
        proxy
    }
}

/// A certificate authority.
#[derive(Debug, Clone)]
pub struct CertificateAuthority {
    /// The CA's distinguished name.
    pub name: String,
    signing_key: u64,
}

impl CertificateAuthority {
    /// Create a CA with the given name and signing key.
    pub fn new(name: impl Into<String>, signing_key: u64) -> Self {
        CertificateAuthority {
            name: name.into(),
            signing_key,
        }
    }

    /// Issue an identity certificate for `subject`, valid from `now` for
    /// `lifetime_secs`.
    pub fn issue(
        &self,
        subject: impl Into<String>,
        now: u64,
        lifetime_secs: u64,
    ) -> IdentityCertificate {
        let mut cert = IdentityCertificate {
            subject: subject.into(),
            issuer: self.name.clone(),
            not_before: now,
            not_after: now + lifetime_secs,
            is_proxy: false,
            signature: 0,
        };
        cert.signature = keyed_hash(self.signing_key, &cert.canonical());
        cert
    }

    /// Verify that `cert` was issued by this CA, is unmodified, and is valid
    /// at time `now`.
    pub fn verify(&self, cert: &IdentityCertificate, now: u64) -> Result<()> {
        if cert.issuer != self.name {
            return Err(AuthError::UntrustedIssuer(cert.issuer.clone()));
        }
        if keyed_hash(self.signing_key, &cert.canonical()) != cert.signature {
            return Err(AuthError::BadSignature);
        }
        if !cert.is_valid_at(now) {
            return Err(AuthError::Expired);
        }
        Ok(())
    }

    /// Verify a proxy certificate: the proxy must be signed with the user's
    /// key, within its own validity, and the underlying user certificate must
    /// itself verify against this CA.
    pub fn verify_proxy(
        &self,
        proxy: &IdentityCertificate,
        user_cert: &IdentityCertificate,
        user_key: u64,
        now: u64,
    ) -> Result<()> {
        if !proxy.is_proxy || proxy.issuer != user_cert.subject {
            return Err(AuthError::UntrustedIssuer(proxy.issuer.clone()));
        }
        if keyed_hash(user_key, &proxy.canonical()) != proxy.signature {
            return Err(AuthError::BadSignature);
        }
        if !proxy.is_valid_at(now) {
            return Err(AuthError::Expired);
        }
        self.verify(user_cert, now)
    }
}

/// A trust store holding several CAs (one per virtual organisation / site),
/// used by gateways and directory wrappers to verify presented credentials.
#[derive(Debug, Default, Clone)]
pub struct TrustStore {
    authorities: Vec<CertificateAuthority>,
}

impl TrustStore {
    /// Create an empty trust store.
    pub fn new() -> Self {
        TrustStore::default()
    }

    /// Trust a CA.
    pub fn add(&mut self, ca: CertificateAuthority) {
        self.authorities.push(ca);
    }

    /// Verify a certificate against any trusted CA.
    pub fn verify(&self, cert: &IdentityCertificate, now: u64) -> Result<()> {
        for ca in &self.authorities {
            if ca.name == cert.issuer {
                return ca.verify(cert, now);
            }
        }
        Err(AuthError::UntrustedIssuer(cert.issuer.clone()))
    }

    /// Number of trusted authorities.
    pub fn len(&self) -> usize {
        self.authorities.len()
    }

    /// True if no CA is trusted.
    pub fn is_empty(&self) -> bool {
        self.authorities.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const NOW: u64 = 959_400_000; // late May 2000

    fn ca() -> CertificateAuthority {
        CertificateAuthority::new("/O=Grid/CN=DOE Science Grid CA", 0xdead_beef)
    }

    #[test]
    fn issue_and_verify() {
        let ca = ca();
        let cert = ca.issue("/O=Grid/O=LBNL/CN=Brian Tierney", NOW, 86_400);
        assert!(ca.verify(&cert, NOW).is_ok());
        assert!(ca.verify(&cert, NOW + 86_000).is_ok());
        assert_eq!(cert.effective_subject(), "/O=Grid/O=LBNL/CN=Brian Tierney");
    }

    #[test]
    fn expired_and_not_yet_valid_rejected() {
        let ca = ca();
        let cert = ca.issue("/CN=user", NOW, 3_600);
        assert_eq!(ca.verify(&cert, NOW + 3_601), Err(AuthError::Expired));
        assert_eq!(ca.verify(&cert, NOW - 1), Err(AuthError::Expired));
    }

    #[test]
    fn tampered_certificates_fail_verification() {
        let ca = ca();
        let mut cert = ca.issue("/CN=user", NOW, 3_600);
        cert.subject = "/CN=attacker".into();
        assert_eq!(ca.verify(&cert, NOW), Err(AuthError::BadSignature));
        let mut cert2 = ca.issue("/CN=user", NOW, 3_600);
        cert2.not_after += 1_000_000;
        assert_eq!(ca.verify(&cert2, NOW), Err(AuthError::BadSignature));
    }

    #[test]
    fn wrong_issuer_or_wrong_key_rejected() {
        let ca1 = ca();
        let ca2 = CertificateAuthority::new("/O=Grid/CN=Rogue CA", 0x1234);
        let cert = ca1.issue("/CN=user", NOW, 3_600);
        assert!(matches!(
            ca2.verify(&cert, NOW),
            Err(AuthError::UntrustedIssuer(_))
        ));
        // Same name, different key -> bad signature.
        let ca3 = CertificateAuthority::new("/O=Grid/CN=DOE Science Grid CA", 0x9999);
        assert_eq!(ca3.verify(&cert, NOW), Err(AuthError::BadSignature));
    }

    #[test]
    fn proxy_delegation_works_and_expires_independently() {
        let ca = ca();
        let user_key = 0x5555;
        let user = ca.issue("/O=Grid/CN=Alice", NOW, 30 * 86_400);
        let proxy = user.issue_proxy(user_key, NOW, 3_600);
        assert!(proxy.is_proxy);
        assert_eq!(proxy.effective_subject(), "/O=Grid/CN=Alice");
        assert!(ca.verify_proxy(&proxy, &user, user_key, NOW).is_ok());
        // Proxy expired even though the user certificate is still good.
        assert_eq!(
            ca.verify_proxy(&proxy, &user, user_key, NOW + 7_200),
            Err(AuthError::Expired)
        );
        // Wrong delegation key.
        assert_eq!(
            ca.verify_proxy(&proxy, &user, 0x6666, NOW),
            Err(AuthError::BadSignature)
        );
    }

    #[test]
    fn trust_store_verifies_across_realms() {
        let lbl = CertificateAuthority::new("/O=Grid/CN=LBNL CA", 1);
        let anl = CertificateAuthority::new("/O=Grid/CN=ANL CA", 2);
        let mut store = TrustStore::new();
        store.add(lbl.clone());
        store.add(anl.clone());
        assert_eq!(store.len(), 2);
        let c1 = lbl.issue("/CN=alice", NOW, 100);
        let c2 = anl.issue("/CN=bob", NOW, 100);
        assert!(store.verify(&c1, NOW).is_ok());
        assert!(store.verify(&c2, NOW).is_ok());
        let unknown = CertificateAuthority::new("/CN=Other CA", 3).issue("/CN=eve", NOW, 100);
        assert!(matches!(
            store.verify(&unknown, NOW),
            Err(AuthError::UntrustedIssuer(_))
        ));
    }
}
