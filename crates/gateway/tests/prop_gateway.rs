//! Property-based tests of the event gateway: delivery is always a subset of
//! what was published, filters never invent events, drop accounting is
//! exact under any queue bound, and summary statistics agree with a direct
//! computation.

use jamm_core::check::{forall, Gen};
use jamm_gateway::summary::{ShardedSummaryEngine, SummaryEngine, SummaryWindow};
use jamm_gateway::{EventFilter, EventGateway, FlatFanout, GatewayConfig, OverflowPolicy};
use jamm_ulm::{Event, Level, Timestamp};

const TYPES: [&str; 3] = ["CPU_TOTAL", "VMSTAT_FREE_MEMORY", "NETSTAT_RETRANS"];
const HOSTS: [&str; 3] = ["h1", "h2", "h3"];
const LEVELS: [Level; 3] = [Level::Usage, Level::Warning, Level::Error];

fn arb_event(g: &mut Gen) -> Event {
    let t = g.u64(120);
    Event::builder("sensor", g.choice(&HOSTS))
        .level(g.choice(&LEVELS))
        .event_type(g.choice(&TYPES))
        .timestamp(Timestamp::from_secs(10_000 + t))
        .value(g.f64_in(0.0, 100.0))
        .build()
}

fn arb_filters(g: &mut Gen) -> Vec<EventFilter> {
    (0..g.usize_in(0, 2))
        .map(|_| match g.usize_in(0, 7) {
            0 => EventFilter::All,
            1 => EventFilter::EventTypes(vec!["CPU_TOTAL".into()]),
            2 => EventFilter::Hosts(vec!["h1".into(), "h2".into()]),
            3 => EventFilter::MinLevel(Level::Warning),
            4 => EventFilter::OnChange,
            5 => EventFilter::Above(g.f64_in(0.0, 100.0)),
            6 => EventFilter::Below(g.f64_in(0.0, 100.0)),
            _ => EventFilter::RelativeChange(g.f64_in(0.05, 0.9)),
        })
        .collect()
}

/// Whatever the filters, a subscriber receives a subset of the published
/// events, each of which satisfies every stateless predicate it asked
/// for, and the gateway's counters add up.
#[test]
fn delivery_is_a_filtered_subset() {
    forall("filtered subset", 48, |g| {
        let events: Vec<Event> = (0..g.usize_in(1, 150)).map(|_| arb_event(g)).collect();
        let filters = arb_filters(g);
        let gw = EventGateway::new(GatewayConfig::open("gw"));
        let sub = gw
            .subscribe()
            .stream()
            .filters(filters.clone())
            .as_consumer("c")
            .open()
            .unwrap();
        for e in &events {
            gw.publish(e);
        }
        let delivered: Vec<jamm_ulm::SharedEvent> = sub.events.try_iter().collect();
        assert!(delivered.len() <= events.len());
        for d in &delivered {
            assert!(events.contains(&**d), "gateway must not invent events");
            for f in &filters {
                match f {
                    EventFilter::EventTypes(tys) => assert!(tys.contains(&d.event_type)),
                    EventFilter::Hosts(hs) => assert!(hs.contains(&d.host)),
                    EventFilter::Above(t) => assert!(d.value().unwrap() > *t),
                    EventFilter::Below(t) => assert!(d.value().unwrap() < *t),
                    EventFilter::MinLevel(_) => {
                        assert!(matches!(d.level, Level::Warning | Level::Error))
                    }
                    _ => {}
                }
            }
        }
        let stats_out = gw
            .stats()
            .events_out
            .load(std::sync::atomic::Ordering::Relaxed);
        assert_eq!(stats_out as usize, delivered.len());
        let stats_in = gw
            .stats()
            .events_in
            .load(std::sync::atomic::Ordering::Relaxed);
        assert_eq!(stats_in as usize, events.len());
        assert_eq!(sub.delivered() as usize, delivered.len());
        assert_eq!(sub.dropped(), 0, "queue never overflowed in this run");
    });
}

/// Under any queue bound and either overflow policy, queued + dropped ==
/// delivered, and the queue never exceeds its bound.
#[test]
fn drop_accounting_is_exact_under_any_bound() {
    forall("drop accounting", 48, |g| {
        let events: Vec<Event> = (0..g.usize_in(1, 200)).map(|_| arb_event(g)).collect();
        let capacity = g.usize_in(1, 32);
        let policy = if g.bool(0.5) {
            OverflowPolicy::DropOldest
        } else {
            OverflowPolicy::DropNewest
        };
        let gw = EventGateway::new(GatewayConfig::open("gw"));
        let sub = gw
            .subscribe()
            .as_consumer("slow")
            .capacity(capacity)
            .on_overflow(policy)
            .open()
            .unwrap();
        for e in &events {
            gw.publish(e);
        }
        let queued = sub.events.try_iter().count();
        assert!(queued <= capacity, "queue bound respected");
        match policy {
            // DropOldest admits every event, then evicts.
            OverflowPolicy::DropOldest => {
                assert_eq!(sub.delivered() as usize, events.len());
                assert_eq!(queued + sub.dropped() as usize, events.len());
            }
            // DropNewest rejects at the door.
            OverflowPolicy::DropNewest => {
                assert_eq!(sub.delivered() as usize, queued);
                assert_eq!(queued + sub.dropped() as usize, events.len());
            }
        }
        let report = gw.delivery_report();
        assert_eq!(report[0].dropped, sub.dropped());
        assert_eq!(report[0].delivered, sub.delivered());
    });
}

/// Query mode always returns the most recently published event for the
/// (host, type) pair, if any was published.
#[test]
fn query_returns_the_latest() {
    forall("query latest", 48, |g| {
        let events: Vec<Event> = (0..g.usize_in(1, 100)).map(|_| arb_event(g)).collect();
        let gw = EventGateway::new(GatewayConfig::open("gw"));
        for e in &events {
            gw.publish(e);
        }
        for host in HOSTS {
            for ty in TYPES {
                let expected = events
                    .iter()
                    .rfind(|e| e.host == host && e.event_type == ty);
                let got = gw.query("c", host, ty).unwrap();
                match expected {
                    // Publication order wins among equal timestamps, so the
                    // returned event must be the last published with a
                    // timestamp >= every other candidate's.
                    Some(_) => {
                        let got = got.expect("published events are queryable");
                        let max_ts = events
                            .iter()
                            .filter(|e| e.host == host && e.event_type == ty)
                            .map(|e| e.timestamp)
                            .max()
                            .unwrap();
                        assert!(got.timestamp <= max_ts);
                        assert_eq!(got.host, host);
                        assert_eq!(got.event_type, ty);
                    }
                    None => assert!(got.is_none()),
                }
            }
        }
    });
}

/// The summary engine's mean always equals the arithmetic mean of the
/// readings inside the window, and min <= mean <= max.
#[test]
fn summary_mean_matches_direct_computation() {
    forall("summary mean", 48, |g| {
        let values: Vec<f64> = (0..g.usize_in(1, 60))
            .map(|_| g.f64_in(0.0, 100.0))
            .collect();
        let mut engine = SummaryEngine::new();
        let base = 50_000u64;
        for (i, v) in values.iter().enumerate() {
            let e = Event::builder("s", "h")
                .level(Level::Usage)
                .event_type("CPU_TOTAL")
                .timestamp(Timestamp::from_secs(base + i as u64))
                .value(*v)
                .build();
            engine.record(&e);
        }
        let now = Timestamp::from_secs(base + values.len() as u64);
        let s = engine
            .summary("h", "CPU_TOTAL", SummaryWindow::OneHour, now)
            .expect("readings inside the window");
        let mean: f64 = values.iter().sum::<f64>() / values.len() as f64;
        assert!((s.mean - mean).abs() < 1e-6);
        assert!(s.min <= s.mean + 1e-9 && s.mean <= s.max + 1e-9);
        assert_eq!(s.count, values.len());
    });
}

/// The sharded router — under any shard count, any filter mix (typed and
/// wildcard), any queue bound, either overflow policy, and both the
/// per-event and batched publish paths — delivers exactly the same event
/// sequences, with the same per-subscription counters, as the original
/// flat-list fan-out.
#[test]
fn sharded_routing_is_equivalent_to_the_flat_list() {
    forall("sharded == flat", 64, |g| {
        let events: Vec<Event> = (0..g.usize_in(1, 160)).map(|_| arb_event(g)).collect();
        let shards = g.choice(&[1usize, 2, 4, 7, 16]);
        let n_subs = g.usize_in(1, 6);
        let specs: Vec<(Vec<EventFilter>, usize, OverflowPolicy)> = (0..n_subs)
            .map(|_| {
                let mut filters = arb_filters(g);
                // Bias toward typed subscriptions so the by-type buckets
                // (not just the wildcard list) are exercised.
                if g.bool(0.5) {
                    let mut tys: Vec<String> = (0..g.usize_in(1, 2))
                        .map(|_| g.choice(&TYPES).to_string())
                        .collect();
                    tys.dedup();
                    filters.push(EventFilter::EventTypes(tys));
                }
                let capacity = g.usize_in(1, 64);
                let policy = if g.bool(0.5) {
                    OverflowPolicy::DropOldest
                } else {
                    OverflowPolicy::DropNewest
                };
                (filters, capacity, policy)
            })
            .collect();

        let flat = FlatFanout::new();
        let flat_subs: Vec<_> = specs
            .iter()
            .map(|(f, cap, pol)| flat.subscribe(f.clone(), *cap, *pol))
            .collect();
        let gw = EventGateway::new(GatewayConfig::open("gw").with_shards(shards));
        let gw_subs: Vec<_> = specs
            .iter()
            .map(|(f, cap, pol)| {
                gw.subscribe()
                    .filters(f.iter().cloned())
                    .capacity(*cap)
                    .on_overflow(*pol)
                    .as_consumer("c")
                    .open()
                    .unwrap()
            })
            .collect();

        // Feed both engines the same stream, the gateway via a random mix
        // of per-event and batched publishes.
        let mut i = 0;
        while i < events.len() {
            if g.bool(0.5) {
                gw.publish(&events[i]);
                i += 1;
            } else {
                let run = g.usize_in(1, 12).min(events.len() - i);
                gw.publish_batch(&events[i..i + run]);
                i += run;
            }
        }
        for e in &events {
            flat.publish(&std::sync::Arc::new(e.clone()));
        }

        for (a, b) in flat_subs.iter().zip(gw_subs.iter()) {
            let left: Vec<jamm_ulm::SharedEvent> = a.events.try_iter().collect();
            let right: Vec<jamm_ulm::SharedEvent> = b.events.try_iter().collect();
            assert_eq!(left, right, "same delivered sequence either way");
            assert_eq!(a.delivered(), b.delivered());
            assert_eq!(a.dropped(), b.dropped());
            assert_eq!(a.bytes(), b.bytes());
        }
        // The per-shard rows decompose the gateway totals exactly.
        let report = gw.shard_report();
        assert_eq!(report.len(), shards);
        assert_eq!(
            report.iter().map(|s| s.events_in).sum::<u64>() as usize,
            events.len()
        );
        let delivered: u64 = gw_subs.iter().map(|s| s.delivered()).sum();
        assert_eq!(report.iter().map(|s| s.delivered).sum::<u64>(), delivered);
    });
}

/// The sharded summary engine computes exactly what one flat engine fed
/// the same readings computes, for any shard count and interleaving.
#[test]
fn sharded_summaries_match_the_flat_engine() {
    forall("sharded summaries", 48, |g| {
        let events: Vec<Event> = (0..g.usize_in(1, 120)).map(|_| arb_event(g)).collect();
        let sharded = ShardedSummaryEngine::new(g.choice(&[1usize, 3, 8]));
        let mut flat = SummaryEngine::new();
        for e in &events {
            sharded.record(e);
            flat.record(e);
        }
        assert_eq!(sharded.series_count(), flat.series_count());
        let now = Timestamp::from_secs(10_000 + 121);
        assert_eq!(
            sharded.summary_events(&SummaryWindow::all(), now, "gw"),
            flat.summary_events(&SummaryWindow::all(), now, "gw"),
            "identical summary events, identical order"
        );
    });
}
