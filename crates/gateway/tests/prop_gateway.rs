//! Property-based tests of the event gateway: delivery is always a subset of
//! what was published, filters never invent events, and summary statistics
//! agree with a direct computation.

use jamm_gateway::summary::{SummaryEngine, SummaryWindow};
use jamm_gateway::{EventFilter, EventGateway, GatewayConfig, SubscribeRequest, SubscriptionMode};
use jamm_ulm::{Event, Level, Timestamp};
use proptest::prelude::*;

fn arb_event() -> impl Strategy<Value = Event> {
    (
        0u64..120,
        prop_oneof![Just("CPU_TOTAL"), Just("VMSTAT_FREE_MEMORY"), Just("NETSTAT_RETRANS")],
        prop_oneof![Just("h1"), Just("h2"), Just("h3")],
        0.0f64..100.0,
        prop_oneof![Just(Level::Usage), Just(Level::Warning), Just(Level::Error)],
    )
        .prop_map(|(t, ty, host, value, level)| {
            Event::builder("sensor", host)
                .level(level)
                .event_type(ty)
                .timestamp(Timestamp::from_secs(10_000 + t))
                .value(value)
                .build()
        })
}

fn arb_filters() -> impl Strategy<Value = Vec<EventFilter>> {
    prop::collection::vec(
        prop_oneof![
            Just(EventFilter::All),
            Just(EventFilter::EventTypes(vec!["CPU_TOTAL".into()])),
            Just(EventFilter::Hosts(vec!["h1".into(), "h2".into()])),
            Just(EventFilter::MinLevel(Level::Warning)),
            Just(EventFilter::OnChange),
            (0.0f64..100.0).prop_map(EventFilter::Above),
            (0.0f64..100.0).prop_map(EventFilter::Below),
            (0.05f64..0.9).prop_map(EventFilter::RelativeChange),
        ],
        0..3,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Whatever the filters, a subscriber receives a subset of the published
    /// events, each of which satisfies every stateless predicate it asked
    /// for, and the gateway's counters add up.
    #[test]
    fn delivery_is_a_filtered_subset(
        events in prop::collection::vec(arb_event(), 1..150),
        filters in arb_filters(),
    ) {
        let gw = EventGateway::new(GatewayConfig::open("gw"));
        let sub = gw
            .subscribe(SubscribeRequest {
                consumer: "c".into(),
                mode: SubscriptionMode::Stream,
                filters: filters.clone(),
            })
            .unwrap();
        for e in &events {
            gw.publish(e);
        }
        let delivered: Vec<Event> = sub.events.try_iter().collect();
        prop_assert!(delivered.len() <= events.len());
        for d in &delivered {
            prop_assert!(events.contains(d), "gateway must not invent events");
            for f in &filters {
                match f {
                    EventFilter::EventTypes(tys) => prop_assert!(tys.contains(&d.event_type)),
                    EventFilter::Hosts(hs) => prop_assert!(hs.contains(&d.host)),
                    EventFilter::Above(t) => prop_assert!(d.value().unwrap() > *t),
                    EventFilter::Below(t) => prop_assert!(d.value().unwrap() < *t),
                    EventFilter::MinLevel(_) => prop_assert!(
                        matches!(d.level, Level::Warning | Level::Error)
                    ),
                    _ => {}
                }
            }
        }
        let stats_out = gw.stats().events_out.load(std::sync::atomic::Ordering::Relaxed);
        prop_assert_eq!(stats_out as usize, delivered.len());
        let stats_in = gw.stats().events_in.load(std::sync::atomic::Ordering::Relaxed);
        prop_assert_eq!(stats_in as usize, events.len());
    }

    /// Query mode always returns the most recently published event for the
    /// (host, type) pair, if any was published.
    #[test]
    fn query_returns_the_latest(events in prop::collection::vec(arb_event(), 1..100)) {
        let gw = EventGateway::new(GatewayConfig::open("gw"));
        for e in &events {
            gw.publish(e);
        }
        for host in ["h1", "h2", "h3"] {
            for ty in ["CPU_TOTAL", "VMSTAT_FREE_MEMORY", "NETSTAT_RETRANS"] {
                let expected = events
                    .iter().rfind(|e| e.host == host && e.event_type == ty);
                let got = gw.query("c", host, ty).unwrap();
                match expected {
                    // Publication order wins among equal timestamps, so the
                    // returned event must be the last published with a
                    // timestamp >= every other candidate's.
                    Some(_) => {
                        let got = got.expect("published events are queryable");
                        let max_ts = events
                            .iter()
                            .filter(|e| e.host == host && e.event_type == ty)
                            .map(|e| e.timestamp)
                            .max()
                            .unwrap();
                        prop_assert!(got.timestamp <= max_ts);
                        prop_assert_eq!(&got.host, host);
                        prop_assert_eq!(&got.event_type, ty);
                    }
                    None => prop_assert!(got.is_none()),
                }
            }
        }
    }

    /// The summary engine's mean always equals the arithmetic mean of the
    /// readings inside the window, and min <= mean <= max.
    #[test]
    fn summary_mean_matches_direct_computation(
        values in prop::collection::vec(0.0f64..100.0, 1..60),
    ) {
        let mut engine = SummaryEngine::new();
        let base = 50_000u64;
        for (i, v) in values.iter().enumerate() {
            let e = Event::builder("s", "h")
                .level(Level::Usage)
                .event_type("CPU_TOTAL")
                .timestamp(Timestamp::from_secs(base + i as u64))
                .value(*v)
                .build();
            engine.record(&e);
        }
        let now = Timestamp::from_secs(base + values.len() as u64);
        let s = engine
            .summary("h", "CPU_TOTAL", SummaryWindow::OneHour, now)
            .expect("readings inside the window");
        let mean: f64 = values.iter().sum::<f64>() / values.len() as f64;
        prop_assert!((s.mean - mean).abs() < 1e-6);
        prop_assert!(s.min <= s.mean + 1e-9 && s.mean <= s.max + 1e-9);
        prop_assert_eq!(s.count, values.len());
    }
}
