//! Property-based tests of the tier classifier: assignments are stable
//! under hysteresis (scores oscillating inside a band never flap the
//! tier) and monotone (a pointwise-slower consumer never lands in a
//! faster tier than a faster one).

use jamm_core::check::{forall, Gen};
use jamm_gateway::qos::{Tier, TierPolicy, TierState};

/// A random policy satisfying the ordering invariant
/// `lag_exit <= lag_enter <= probation_exit <= probation_enter`.
fn arb_policy(g: &mut Gen) -> TierPolicy {
    let mut t = [
        g.f64_in(0.01, 0.99),
        g.f64_in(0.01, 0.99),
        g.f64_in(0.01, 0.99),
        g.f64_in(0.01, 0.99),
    ];
    t.sort_by(f64::total_cmp);
    TierPolicy {
        lag_exit: t[0],
        lag_enter: t[1],
        probation_exit: t[2],
        probation_enter: t[3],
        alpha: g.f64_in(0.05, 1.0),
    }
}

/// A score inside a tier's hold region leaves the assignment unchanged:
/// below `lag_enter` holds fast, `[lag_exit, probation_enter)` holds
/// lagging, and at or above `probation_exit` holds probation.
#[test]
fn hold_regions_keep_the_current_tier() {
    forall("hold regions", 64, |g| {
        let p = arb_policy(g);
        let fast_hold = p.lag_enter * g.f64_in(0.0, 0.999);
        assert_eq!(p.classify(Tier::Fast, fast_hold), Tier::Fast);
        let lag_hold = p.lag_exit + (p.probation_enter - p.lag_exit) * g.f64_in(0.0, 0.999);
        assert_eq!(p.classify(Tier::Lagging, lag_hold), Tier::Lagging);
        let prob_hold = p.probation_exit + (1.0 - p.probation_exit) * g.f64_in(0.0, 1.0);
        assert_eq!(p.classify(Tier::Probation, prob_hold), Tier::Probation);
    });
}

/// Raw observations oscillating anywhere inside one hysteresis band —
/// `[lag_exit, lag_enter)` or `[probation_exit, probation_enter)` —
/// cause at most one transition ever, from any starting tier: the EWMA
/// is a convex combination so the score stays in the band, and the
/// enter/exit split means no score in the band both enters and leaves a
/// tier.
#[test]
fn no_flap_for_scores_oscillating_within_a_band() {
    forall("hysteresis stability", 96, |g| {
        let p = arb_policy(g);
        let (lo, hi) = if g.bool(0.5) {
            (p.lag_exit, p.lag_enter)
        } else {
            (p.probation_exit, p.probation_enter)
        };
        if hi - lo < 1e-9 {
            return;
        }
        let mut st = TierState {
            score: lo + (hi - lo) * g.f64_in(0.0, 0.999),
            tier: g.choice(&Tier::ALL),
            last_delivered: 0,
            last_dropped: 0,
        };
        let mut prev = st.tier;
        let mut changes = 0;
        for _ in 0..g.usize_in(5, 60) {
            let raw = lo + (hi - lo) * g.f64_in(0.0, 0.999);
            let tier = st.observe(raw, &p);
            if tier != prev {
                changes += 1;
                prev = tier;
            }
        }
        assert!(
            changes <= 1,
            "tier flapped {changes} times inside [{lo:.3}, {hi:.3}) under {p:?}"
        );
    });
}

/// Feed two classifiers the same policy, one with a pointwise-greater
/// raw-score sequence (the strictly slower consumer): at every step the
/// slower consumer's tier is at least as bad.  Holds because the EWMA
/// preserves pointwise ordering and `classify` is monotone in both the
/// current tier and the score under the threshold-ordering invariant.
#[test]
fn strictly_slower_consumer_never_lands_in_a_faster_tier() {
    forall("tier monotonicity", 96, |g| {
        let p = arb_policy(g);
        let mut quicker = TierState::default();
        let mut slower = TierState::default();
        for _ in 0..g.usize_in(1, 80) {
            let a = g.f64_in(0.0, 1.0);
            let b = g.f64_in(0.0, 1.0);
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            let t_quick = quicker.observe(lo, &p);
            let t_slow = slower.observe(hi, &p);
            assert!(
                t_slow >= t_quick,
                "slower consumer outranked the quicker one: {t_slow:?} < {t_quick:?} under {p:?}"
            );
        }
    });
}
