//! The event gateway.
//!
//! The gateway receives every event its host's sensors produce (pushed by
//! the sensor manager through the [`EventSink`] trait) and fans it out to
//! subscribed consumers according to their filters — streaming
//! subscriptions get a **bounded** channel with an explicit overflow
//! policy, query consumers ask for the most recent event on demand.  It
//! also keeps the summary engine fed, enforces the site's access policy,
//! and counts what it delivers (and drops) per subscription so the
//! scalability experiments can compare "N consumers hitting the sensor
//! host" with "N consumers hitting one gateway" (E7) and measure how much
//! the filters reduce delivered volume (E10).
//!
//! Consumers subscribe with the fluent [`SubscriptionBuilder`]:
//!
//! ```
//! use jamm_gateway::{EventFilter, EventGateway, GatewayConfig};
//!
//! let gw = EventGateway::new(GatewayConfig::open("gw1"));
//! let sub = gw
//!     .subscribe()
//!     .stream()
//!     .filter(EventFilter::Above(50.0))
//!     .as_consumer("threshold-watcher")
//!     .open()
//!     .unwrap();
//! assert_eq!(sub.delivered(), 0);
//! ```

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use jamm_core::channel::{bounded, Receiver, Sender, TrySendError};
use jamm_core::flow::{DeliveryCounters, EventSink, EventSource, OverflowPolicy, SinkError};
use jamm_core::sync::{Mutex, RwLock};
use jamm_ulm::{Event, Timestamp};

use jamm_auth::acl::{AccessControlList, Action};

use crate::filter::{EventFilter, FilterChain};
use crate::summary::{SummaryEngine, SummaryWindow};
use crate::{GatewayError, Result};

/// Default bound on a subscription's in-flight event queue.
pub const DEFAULT_SUBSCRIPTION_CAPACITY: usize = 4_096;

/// A live streaming subscription handle returned to the consumer.
///
/// Exposes the shared delivery counters: [`Subscription::delivered`] /
/// [`Subscription::dropped`] / [`Subscription::bytes`] report what the
/// gateway pushed into (or evicted from) this subscription's bounded
/// queue.
#[derive(Debug)]
pub struct Subscription {
    /// Subscription identifier (used to unsubscribe).
    pub id: u64,
    /// Channel on which matching events arrive.
    pub events: Receiver<Event>,
    counters: Arc<DeliveryCounters>,
}

impl Subscription {
    /// Events the gateway delivered into this subscription's queue.
    pub fn delivered(&self) -> u64 {
        self.counters.delivered()
    }

    /// Events dropped because the consumer fell behind its queue bound.
    pub fn dropped(&self) -> u64 {
        self.counters.dropped()
    }

    /// Approximate ULM payload bytes delivered.
    pub fn bytes(&self) -> u64 {
        self.counters.bytes()
    }

    /// Drain everything currently queued.
    pub fn drain(&mut self) -> Vec<Event> {
        self.events.try_iter().collect()
    }
}

impl EventSource<Event> for Subscription {
    fn drain_into(&mut self, out: &mut Vec<Event>) -> usize {
        let before = out.len();
        out.extend(self.events.try_iter());
        out.len() - before
    }
}

/// Fluent builder for a streaming subscription, returned by
/// [`EventGateway::subscribe`].
#[must_use = "call .open() to register the subscription"]
#[derive(Debug)]
pub struct SubscriptionBuilder<'gw> {
    gateway: &'gw EventGateway,
    consumer: String,
    filters: Vec<EventFilter>,
    capacity: usize,
    overflow: OverflowPolicy,
}

impl<'gw> SubscriptionBuilder<'gw> {
    /// Request streaming delivery (the builder's default; present so call
    /// sites read like the paper: open an event channel, get a stream).
    pub fn stream(self) -> Self {
        self
    }

    /// Add one filter to the conjunction.
    pub fn filter(mut self, filter: EventFilter) -> Self {
        self.filters.push(filter);
        self
    }

    /// Add several filters.
    pub fn filters(mut self, filters: impl IntoIterator<Item = EventFilter>) -> Self {
        self.filters.extend(filters);
        self
    }

    /// Set the consumer principal the subscription is checked and accounted
    /// against.  Defaults to `"anonymous"`.
    pub fn as_consumer(mut self, consumer: impl Into<String>) -> Self {
        self.consumer = consumer.into();
        self
    }

    /// Bound the in-flight queue (default
    /// [`DEFAULT_SUBSCRIPTION_CAPACITY`]).
    pub fn capacity(mut self, events: usize) -> Self {
        self.capacity = events.max(1);
        self
    }

    /// What to do when the queue is full (default
    /// [`OverflowPolicy::DropOldest`]).
    pub fn on_overflow(mut self, policy: OverflowPolicy) -> Self {
        self.overflow = policy;
        self
    }

    /// Register the subscription with the gateway, returning the live
    /// handle.  Fails if the site policy denies this consumer streaming
    /// access.
    pub fn open(self) -> Result<Subscription> {
        self.gateway
            .open_subscription(self.consumer, self.filters, self.capacity, self.overflow)
    }
}

struct ActiveSubscription {
    id: u64,
    consumer: String,
    chain: FilterChain,
    tx: Sender<Event>,
    overflow: OverflowPolicy,
    counters: Arc<DeliveryCounters>,
}

/// Gateway configuration.
#[derive(Debug, Clone)]
pub struct GatewayConfig {
    /// Gateway name, used as the `PROG` of summary events and as the ACL
    /// resource prefix.
    pub name: String,
    /// Access policy; `None` means a completely open gateway (the prototype
    /// default in the paper's current-status section).
    pub acl: Option<AccessControlList>,
    /// Summary windows the gateway maintains.
    pub summary_windows: Vec<SummaryWindow>,
}

impl GatewayConfig {
    /// An open gateway with the standard 1/10/60-minute summaries.
    pub fn open(name: impl Into<String>) -> Self {
        GatewayConfig {
            name: name.into(),
            acl: None,
            summary_windows: SummaryWindow::all().to_vec(),
        }
    }

    /// A gateway enforcing the given ACL.
    pub fn with_acl(name: impl Into<String>, acl: AccessControlList) -> Self {
        GatewayConfig {
            name: name.into(),
            acl: Some(acl),
            summary_windows: SummaryWindow::all().to_vec(),
        }
    }
}

/// Cumulative gateway statistics.
#[derive(Debug, Default)]
pub struct GatewayStats {
    /// Events published into the gateway by sensor managers.
    pub events_in: AtomicU64,
    /// Event copies delivered to streaming consumers.
    pub events_out: AtomicU64,
    /// Event copies dropped on full subscription queues.
    pub events_dropped: AtomicU64,
    /// Bytes (approximate ULM size) delivered to streaming consumers.
    pub bytes_out: AtomicU64,
    /// Query-mode requests served.
    pub queries: AtomicU64,
}

/// One row of [`EventGateway::delivery_report`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeliveryReport {
    /// Subscription id.
    pub id: u64,
    /// Consumer principal.
    pub consumer: String,
    /// Events delivered into the subscription queue.
    pub delivered: u64,
    /// Events dropped on queue overflow.
    pub dropped: u64,
    /// Approximate payload bytes delivered.
    pub bytes: u64,
}

/// The JAMM event gateway.
pub struct EventGateway {
    config: GatewayConfig,
    subscriptions: Mutex<Vec<ActiveSubscription>>,
    latest: RwLock<HashMap<(String, String), Event>>,
    summaries: Mutex<SummaryEngine>,
    stats: GatewayStats,
    next_id: AtomicU64,
}

impl std::fmt::Debug for EventGateway {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventGateway")
            .field("name", &self.config.name)
            .field("subscribers", &self.subscriptions.lock().len())
            .finish_non_exhaustive()
    }
}

impl EventGateway {
    /// Create a gateway.
    pub fn new(config: GatewayConfig) -> Self {
        EventGateway {
            config,
            subscriptions: Mutex::new(Vec::new()),
            latest: RwLock::new(HashMap::new()),
            summaries: Mutex::new(SummaryEngine::new()),
            stats: GatewayStats::default(),
            next_id: AtomicU64::new(1),
        }
    }

    /// The gateway's name.
    pub fn name(&self) -> &str {
        &self.config.name
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> &GatewayStats {
        &self.stats
    }

    fn check(&self, consumer: &str, action: Action) -> Result<()> {
        if let Some(acl) = &self.config.acl {
            acl.check(consumer, &format!("gateway:{}", self.config.name), action)
                .map_err(|e| GatewayError::AccessDenied(e.to_string()))?;
        }
        Ok(())
    }

    /// Start building a streaming subscription.  Query-mode consumers do
    /// not subscribe; they call [`EventGateway::query`].
    pub fn subscribe(&self) -> SubscriptionBuilder<'_> {
        SubscriptionBuilder {
            gateway: self,
            consumer: "anonymous".to_string(),
            filters: Vec::new(),
            capacity: DEFAULT_SUBSCRIPTION_CAPACITY,
            overflow: OverflowPolicy::default(),
        }
    }

    fn open_subscription(
        &self,
        consumer: String,
        filters: Vec<EventFilter>,
        capacity: usize,
        overflow: OverflowPolicy,
    ) -> Result<Subscription> {
        self.check(&consumer, Action::SubscribeStream)?;
        let (tx, rx) = bounded(capacity);
        let counters = Arc::new(DeliveryCounters::new());
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.subscriptions.lock().push(ActiveSubscription {
            id,
            consumer,
            chain: FilterChain::new(filters),
            tx,
            overflow,
            counters: Arc::clone(&counters),
        });
        Ok(Subscription {
            id,
            events: rx,
            counters,
        })
    }

    /// Cancel a streaming subscription.
    pub fn unsubscribe(&self, id: u64) -> Result<()> {
        let mut subs = self.subscriptions.lock();
        let before = subs.len();
        subs.retain(|s| s.id != id);
        if subs.len() == before {
            Err(GatewayError::NoSuchSubscription(id))
        } else {
            Ok(())
        }
    }

    /// Number of live streaming subscriptions.
    pub fn subscriber_count(&self) -> usize {
        self.subscriptions.lock().len()
    }

    /// Publish one event into the gateway (called by the sensor manager).
    ///
    /// Returns the number of consumers the event was delivered to.
    pub fn publish(&self, event: &Event) -> usize {
        self.stats.events_in.fetch_add(1, Ordering::Relaxed);
        // Most-recent cache for query mode.
        self.latest.write().insert(
            (event.host.clone(), event.event_type.clone()),
            event.clone(),
        );
        // Summaries.
        self.summaries.lock().record(event);
        // Fan out to streaming subscribers.
        let size = event.approx_size() as u64;
        let mut delivered = 0u64;
        let mut dropped = 0u64;
        let mut subs = self.subscriptions.lock();
        subs.retain_mut(|sub| {
            if !sub.chain.accept(event) {
                return true;
            }
            let pushed = match sub.overflow {
                OverflowPolicy::DropOldest => match sub.tx.send_overwriting(event.clone()) {
                    Ok(evicted) => {
                        if evicted {
                            sub.counters.record_dropped(1);
                            dropped += 1;
                        }
                        true
                    }
                    // Consumer went away; drop the subscription.
                    Err(_) => return false,
                },
                OverflowPolicy::DropNewest => match sub.tx.try_send(event.clone()) {
                    Ok(()) => true,
                    Err(TrySendError::Full(_)) => {
                        sub.counters.record_dropped(1);
                        dropped += 1;
                        false
                    }
                    Err(TrySendError::Disconnected(_)) => return false,
                },
            };
            if pushed {
                sub.counters.record_delivered(size);
                delivered += 1;
            }
            true
        });
        self.stats
            .events_out
            .fetch_add(delivered, Ordering::Relaxed);
        self.stats
            .events_dropped
            .fetch_add(dropped, Ordering::Relaxed);
        self.stats
            .bytes_out
            .fetch_add(delivered * size, Ordering::Relaxed);
        delivered as usize
    }

    /// Publish a batch of events.
    pub fn publish_all<'a>(&self, events: impl IntoIterator<Item = &'a Event>) -> usize {
        events.into_iter().map(|e| self.publish(e)).sum()
    }

    /// Query mode: the most recent event of `event_type` from `host`.
    pub fn query(&self, consumer: &str, host: &str, event_type: &str) -> Result<Option<Event>> {
        self.check(consumer, Action::Query)?;
        self.stats.queries.fetch_add(1, Ordering::Relaxed);
        Ok(self
            .latest
            .read()
            .get(&(host.to_string(), event_type.to_string()))
            .cloned())
    }

    /// Summary data for consumers entitled to summaries only (or anyone who
    /// prefers them): one synthetic event per tracked series per window.
    pub fn summaries(&self, consumer: &str, now: Timestamp) -> Result<Vec<Event>> {
        self.check(consumer, Action::Summary)?;
        Ok(self.summaries.lock().summary_events(
            &self.config.summary_windows,
            now,
            &self.config.name,
        ))
    }

    /// Per-subscription delivery/drop counts — used by the experiments and
    /// the status GUI.
    pub fn delivery_report(&self) -> Vec<DeliveryReport> {
        self.subscriptions
            .lock()
            .iter()
            .map(|s| DeliveryReport {
                id: s.id,
                consumer: s.consumer.clone(),
                delivered: s.counters.delivered(),
                dropped: s.counters.dropped(),
                bytes: s.counters.bytes(),
            })
            .collect()
    }
}

/// The gateway is the canonical event sink: the sensor manager (or any
/// other producer) pushes events through `&dyn EventSink<Event>` without
/// knowing it is talking to a gateway.
impl EventSink<Event> for EventGateway {
    fn accept(&self, event: &Event) -> std::result::Result<usize, SinkError> {
        Ok(self.publish(event))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jamm_auth::acl::Principal;
    use jamm_ulm::Level;

    fn ev(host: &str, ty: &str, value: f64, t: u64) -> Event {
        Event::builder("vmstat", host)
            .level(Level::Usage)
            .event_type(ty)
            .timestamp(Timestamp::from_secs(t))
            .value(value)
            .build()
    }

    #[test]
    fn streaming_subscription_receives_matching_events_only() {
        let gw = EventGateway::new(GatewayConfig::open("gw1"));
        let sub = gw
            .subscribe()
            .stream()
            .filter(EventFilter::EventTypes(vec!["CPU_TOTAL".into()]))
            .as_consumer("collector")
            .open()
            .unwrap();
        assert_eq!(gw.subscriber_count(), 1);
        gw.publish(&ev("h1", "CPU_TOTAL", 10.0, 1));
        gw.publish(&ev("h1", "VMSTAT_FREE_MEMORY", 999.0, 1));
        gw.publish(&ev("h2", "CPU_TOTAL", 20.0, 2));
        let got: Vec<Event> = sub.events.try_iter().collect();
        assert_eq!(got.len(), 2);
        assert!(got.iter().all(|e| e.event_type == "CPU_TOTAL"));
        assert_eq!(gw.stats().events_in.load(Ordering::Relaxed), 3);
        assert_eq!(gw.stats().events_out.load(Ordering::Relaxed), 2);
        assert_eq!(sub.delivered(), 2);
        assert_eq!(sub.dropped(), 0);
        assert!(sub.bytes() > 0);
    }

    #[test]
    fn query_mode_returns_most_recent_event() {
        let gw = EventGateway::new(GatewayConfig::open("gw1"));
        assert_eq!(gw.query("c", "h1", "CPU_TOTAL").unwrap(), None);
        gw.publish(&ev("h1", "CPU_TOTAL", 10.0, 1));
        gw.publish(&ev("h1", "CPU_TOTAL", 55.0, 2));
        let latest = gw.query("c", "h1", "CPU_TOTAL").unwrap().unwrap();
        assert_eq!(latest.value(), Some(55.0));
        assert_eq!(gw.stats().queries.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn unsubscribe_and_dead_consumer_cleanup() {
        let gw = EventGateway::new(GatewayConfig::open("gw1"));
        let sub1 = gw.subscribe().as_consumer("a").open().unwrap();
        let sub2 = gw.subscribe().as_consumer("b").open().unwrap();
        assert_eq!(gw.subscriber_count(), 2);
        gw.unsubscribe(sub1.id).unwrap();
        assert!(matches!(
            gw.unsubscribe(sub1.id),
            Err(GatewayError::NoSuchSubscription(_))
        ));
        assert_eq!(gw.subscriber_count(), 1);
        // Dropping the receiver makes the next publish prune the subscription.
        drop(sub2);
        gw.publish(&ev("h", "X", 1.0, 1));
        assert_eq!(gw.subscriber_count(), 0);
    }

    #[test]
    fn threshold_subscription_reduces_delivered_volume() {
        let gw = EventGateway::new(GatewayConfig::open("gw1"));
        let everything = gw.subscribe().as_consumer("all").open().unwrap();
        let filtered = gw
            .subscribe()
            .stream()
            .filter(EventFilter::Above(50.0))
            .as_consumer("ops")
            .open()
            .unwrap();
        for i in 0..100 {
            gw.publish(&ev("h", "CPU_TOTAL", (i % 10) as f64 * 10.0, i));
        }
        let all_count = everything.events.try_iter().count();
        let filtered_count = filtered.events.try_iter().count();
        assert_eq!(all_count, 100);
        assert!(
            filtered_count < 50,
            "only the >50% readings: {filtered_count}"
        );
        assert!(filtered_count > 0);
        let report = gw.delivery_report();
        assert_eq!(report.len(), 2);
        assert!(report
            .iter()
            .any(|r| r.consumer == "ops" && r.delivered == filtered_count as u64));
        assert!(report.iter().all(|r| r.dropped == 0));
    }

    #[test]
    fn bounded_queue_drop_oldest_keeps_freshest_events() {
        let gw = EventGateway::new(GatewayConfig::open("gw1"));
        let sub = gw
            .subscribe()
            .as_consumer("slow")
            .capacity(10)
            .open()
            .unwrap();
        for i in 0..25u64 {
            gw.publish(&ev("h", "CPU_TOTAL", i as f64, i));
        }
        let got: Vec<Event> = sub.events.try_iter().collect();
        assert_eq!(got.len(), 10, "queue bounded at 10");
        // The oldest were evicted: what remains is the freshest tail.
        let times: Vec<u64> = got.iter().map(|e| e.timestamp.as_secs()).collect();
        assert_eq!(times, (15..25).collect::<Vec<_>>());
        assert_eq!(sub.dropped(), 15);
        assert_eq!(sub.delivered(), 25);
        assert_eq!(gw.stats().events_dropped.load(Ordering::Relaxed), 15);
        let report = gw.delivery_report();
        assert_eq!(report[0].dropped, 15);
    }

    #[test]
    fn bounded_queue_drop_newest_keeps_earliest_events() {
        let gw = EventGateway::new(GatewayConfig::open("gw1"));
        let sub = gw
            .subscribe()
            .as_consumer("slow")
            .capacity(10)
            .on_overflow(OverflowPolicy::DropNewest)
            .open()
            .unwrap();
        for i in 0..25u64 {
            gw.publish(&ev("h", "CPU_TOTAL", i as f64, i));
        }
        let got: Vec<Event> = sub.events.try_iter().collect();
        let times: Vec<u64> = got.iter().map(|e| e.timestamp.as_secs()).collect();
        assert_eq!(times, (0..10).collect::<Vec<_>>());
        assert_eq!(sub.dropped(), 15);
        assert_eq!(sub.delivered(), 10);
    }

    #[test]
    fn gateway_is_an_event_sink() {
        let gw = EventGateway::new(GatewayConfig::open("gw1"));
        let sub = gw.subscribe().as_consumer("c").open().unwrap();
        let sink: &dyn EventSink<Event> = &gw;
        assert_eq!(sink.accept(&ev("h", "X", 1.0, 1)).unwrap(), 1);
        let batch = [ev("h", "X", 2.0, 2), ev("h", "Y", 3.0, 3)];
        assert_eq!(sink.accept_batch(&batch).unwrap(), 2);
        assert_eq!(sub.events.try_iter().count(), 3);
    }

    #[test]
    fn acl_restricts_streaming_to_internal_users() {
        let mut acl = AccessControlList::summary_for_others();
        acl.grant(
            Principal::OrgPrefix("/O=Grid/O=LBNL".into()),
            "gateway:gw1",
            [Action::SubscribeStream, Action::Query, Action::Summary],
        );
        let gw = EventGateway::new(GatewayConfig::with_acl("gw1", acl));
        // Internal consumer streams.
        assert!(gw
            .subscribe()
            .as_consumer("/O=Grid/O=LBNL/CN=Dan Gunter")
            .open()
            .is_ok());
        // Off-site consumer cannot stream but can query and get summaries.
        let offsite = "/O=Grid/O=NCSA/CN=Remote";
        assert!(matches!(
            gw.subscribe().as_consumer(offsite).open(),
            Err(GatewayError::AccessDenied(_))
        ));
        gw.publish(&ev("h", "CPU_TOTAL", 42.0, 10));
        assert!(gw.query(offsite, "h", "CPU_TOTAL").unwrap().is_some());
        assert!(gw.summaries(offsite, Timestamp::from_secs(11)).is_ok());
    }

    #[test]
    fn summaries_reflect_published_readings() {
        let gw = EventGateway::new(GatewayConfig::open("gw1"));
        for i in 0..30u64 {
            gw.publish(&ev("h", "CPU_TOTAL", 60.0, 1_000 + i));
        }
        let summaries = gw.summaries("c", Timestamp::from_secs(1_030)).unwrap();
        let one_min = summaries
            .iter()
            .find(|e| e.event_type == "CPU_TOTAL_AVG_1MIN")
            .expect("1-minute summary present");
        assert_eq!(one_min.value(), Some(60.0));
        assert_eq!(one_min.program, "gw1");
    }

    #[test]
    fn on_change_filter_state_is_per_subscription() {
        let gw = EventGateway::new(GatewayConfig::open("gw1"));
        let s1 = gw
            .subscribe()
            .filter(EventFilter::OnChange)
            .as_consumer("a")
            .open()
            .unwrap();
        gw.publish(&ev("h", "NETSTAT_RETRANS", 5.0, 1));
        gw.publish(&ev("h", "NETSTAT_RETRANS", 5.0, 2));
        // A subscriber arriving later starts with fresh state.
        let s2 = gw
            .subscribe()
            .filter(EventFilter::OnChange)
            .as_consumer("b")
            .open()
            .unwrap();
        gw.publish(&ev("h", "NETSTAT_RETRANS", 5.0, 3));
        gw.publish(&ev("h", "NETSTAT_RETRANS", 7.0, 4));
        assert_eq!(s1.events.try_iter().count(), 2, "first + change");
        assert_eq!(s2.events.try_iter().count(), 2, "first seen + change");
    }
}
