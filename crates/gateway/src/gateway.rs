//! The event gateway.
//!
//! The gateway receives every event its host's sensors produce (pushed by
//! the sensor manager) and fans it out to subscribed consumers according to
//! their filters — streaming subscriptions get a channel, query consumers
//! ask for the most recent event on demand.  It also keeps the summary
//! engine fed, enforces the site's access policy, and counts what it
//! delivers so the scalability experiments can compare "N consumers hitting
//! the sensor host" with "N consumers hitting one gateway" (E7) and measure
//! how much the filters reduce delivered volume (E10).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use crossbeam::channel::{unbounded, Receiver, Sender};
use jamm_ulm::{Event, Timestamp};
use parking_lot::{Mutex, RwLock};

use jamm_auth::acl::{AccessControlList, Action};

use crate::filter::{EventFilter, FilterChain};
use crate::summary::{SummaryEngine, SummaryWindow};
use crate::{GatewayError, Result};

/// How a consumer wants to receive events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubscriptionMode {
    /// "In streaming mode the consumer opens an event channel and the events
    /// are returned in a stream."
    Stream,
    /// "In query mode the consumer does not open an event channel, but only
    /// requests the most recent event."
    Query,
}

/// A subscription request.
#[derive(Debug, Clone)]
pub struct SubscribeRequest {
    /// The consumer's principal (mapped local user or certificate subject).
    pub consumer: String,
    /// Delivery mode.
    pub mode: SubscriptionMode,
    /// Filters to apply (all must pass).
    pub filters: Vec<EventFilter>,
}

/// A live streaming subscription handle returned to the consumer.
#[derive(Debug)]
pub struct Subscription {
    /// Subscription identifier (used to unsubscribe).
    pub id: u64,
    /// Channel on which matching events arrive.
    pub events: Receiver<Event>,
}

struct ActiveSubscription {
    id: u64,
    consumer: String,
    chain: FilterChain,
    tx: Sender<Event>,
    delivered: u64,
    delivered_bytes: u64,
}

/// Gateway configuration.
#[derive(Debug, Clone)]
pub struct GatewayConfig {
    /// Gateway name, used as the `PROG` of summary events and as the ACL
    /// resource prefix.
    pub name: String,
    /// Access policy; `None` means a completely open gateway (the prototype
    /// default in the paper's current-status section).
    pub acl: Option<AccessControlList>,
    /// Summary windows the gateway maintains.
    pub summary_windows: Vec<SummaryWindow>,
}

impl GatewayConfig {
    /// An open gateway with the standard 1/10/60-minute summaries.
    pub fn open(name: impl Into<String>) -> Self {
        GatewayConfig {
            name: name.into(),
            acl: None,
            summary_windows: SummaryWindow::all().to_vec(),
        }
    }

    /// A gateway enforcing the given ACL.
    pub fn with_acl(name: impl Into<String>, acl: AccessControlList) -> Self {
        GatewayConfig {
            name: name.into(),
            acl: Some(acl),
            summary_windows: SummaryWindow::all().to_vec(),
        }
    }
}

/// Cumulative gateway statistics.
#[derive(Debug, Default)]
pub struct GatewayStats {
    /// Events published into the gateway by sensor managers.
    pub events_in: AtomicU64,
    /// Event copies delivered to streaming consumers.
    pub events_out: AtomicU64,
    /// Bytes (approximate ULM size) delivered to streaming consumers.
    pub bytes_out: AtomicU64,
    /// Query-mode requests served.
    pub queries: AtomicU64,
}

/// The JAMM event gateway.
pub struct EventGateway {
    config: GatewayConfig,
    subscriptions: Mutex<Vec<ActiveSubscription>>,
    latest: RwLock<HashMap<(String, String), Event>>,
    summaries: Mutex<SummaryEngine>,
    stats: GatewayStats,
    next_id: AtomicU64,
}

impl std::fmt::Debug for EventGateway {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventGateway")
            .field("name", &self.config.name)
            .field("subscribers", &self.subscriptions.lock().len())
            .finish_non_exhaustive()
    }
}

impl EventGateway {
    /// Create a gateway.
    pub fn new(config: GatewayConfig) -> Self {
        EventGateway {
            config,
            subscriptions: Mutex::new(Vec::new()),
            latest: RwLock::new(HashMap::new()),
            summaries: Mutex::new(SummaryEngine::new()),
            stats: GatewayStats::default(),
            next_id: AtomicU64::new(1),
        }
    }

    /// The gateway's name.
    pub fn name(&self) -> &str {
        &self.config.name
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> &GatewayStats {
        &self.stats
    }

    fn check(&self, consumer: &str, action: Action) -> Result<()> {
        if let Some(acl) = &self.config.acl {
            acl.check(consumer, &format!("gateway:{}", self.config.name), action)
                .map_err(|e| GatewayError::AccessDenied(e.to_string()))?;
        }
        Ok(())
    }

    /// Subscribe for streaming delivery.  Query-mode consumers do not
    /// subscribe; they call [`EventGateway::query`].
    pub fn subscribe(&self, request: SubscribeRequest) -> Result<Subscription> {
        let action = match request.mode {
            SubscriptionMode::Stream => Action::SubscribeStream,
            SubscriptionMode::Query => Action::Query,
        };
        self.check(&request.consumer, action)?;
        let (tx, rx) = unbounded();
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.subscriptions.lock().push(ActiveSubscription {
            id,
            consumer: request.consumer,
            chain: FilterChain::new(request.filters),
            tx,
            delivered: 0,
            delivered_bytes: 0,
        });
        Ok(Subscription { id, events: rx })
    }

    /// Cancel a streaming subscription.
    pub fn unsubscribe(&self, id: u64) -> Result<()> {
        let mut subs = self.subscriptions.lock();
        let before = subs.len();
        subs.retain(|s| s.id != id);
        if subs.len() == before {
            Err(GatewayError::NoSuchSubscription(id))
        } else {
            Ok(())
        }
    }

    /// Number of live streaming subscriptions.
    pub fn subscriber_count(&self) -> usize {
        self.subscriptions.lock().len()
    }

    /// Publish one event into the gateway (called by the sensor manager).
    ///
    /// Returns the number of consumers the event was delivered to.
    pub fn publish(&self, event: &Event) -> usize {
        self.stats.events_in.fetch_add(1, Ordering::Relaxed);
        // Most-recent cache for query mode.
        self.latest
            .write()
            .insert((event.host.clone(), event.event_type.clone()), event.clone());
        // Summaries.
        self.summaries.lock().record(event);
        // Fan out to streaming subscribers.
        let size = event.approx_size() as u64;
        let mut delivered = 0;
        let mut subs = self.subscriptions.lock();
        subs.retain_mut(|sub| {
            if sub.chain.accept(event) {
                if sub.tx.send(event.clone()).is_err() {
                    // Consumer went away; drop the subscription.
                    return false;
                }
                sub.delivered += 1;
                sub.delivered_bytes += size;
                delivered += 1;
            }
            true
        });
        self.stats
            .events_out
            .fetch_add(delivered as u64, Ordering::Relaxed);
        self.stats
            .bytes_out
            .fetch_add(delivered as u64 * size, Ordering::Relaxed);
        delivered
    }

    /// Publish a batch of events.
    pub fn publish_all<'a>(&self, events: impl IntoIterator<Item = &'a Event>) -> usize {
        events.into_iter().map(|e| self.publish(e)).sum()
    }

    /// Query mode: the most recent event of `event_type` from `host`.
    pub fn query(&self, consumer: &str, host: &str, event_type: &str) -> Result<Option<Event>> {
        self.check(consumer, Action::Query)?;
        self.stats.queries.fetch_add(1, Ordering::Relaxed);
        Ok(self
            .latest
            .read()
            .get(&(host.to_string(), event_type.to_string()))
            .cloned())
    }

    /// Summary data for consumers entitled to summaries only (or anyone who
    /// prefers them): one synthetic event per tracked series per window.
    pub fn summaries(&self, consumer: &str, now: Timestamp) -> Result<Vec<Event>> {
        self.check(consumer, Action::Summary)?;
        Ok(self.summaries.lock().summary_events(
            &self.config.summary_windows,
            now,
            &self.config.name,
        ))
    }

    /// Per-subscription delivery counts `(subscription id, consumer, events,
    /// bytes)` — used by the experiments and the status GUI.
    pub fn delivery_report(&self) -> Vec<(u64, String, u64, u64)> {
        self.subscriptions
            .lock()
            .iter()
            .map(|s| (s.id, s.consumer.clone(), s.delivered, s.delivered_bytes))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jamm_auth::acl::Principal;
    use jamm_ulm::Level;

    fn ev(host: &str, ty: &str, value: f64, t: u64) -> Event {
        Event::builder("vmstat", host)
            .level(Level::Usage)
            .event_type(ty)
            .timestamp(Timestamp::from_secs(t))
            .value(value)
            .build()
    }

    #[test]
    fn streaming_subscription_receives_matching_events_only() {
        let gw = EventGateway::new(GatewayConfig::open("gw1"));
        let sub = gw
            .subscribe(SubscribeRequest {
                consumer: "collector".into(),
                mode: SubscriptionMode::Stream,
                filters: vec![EventFilter::EventTypes(vec!["CPU_TOTAL".into()])],
            })
            .unwrap();
        assert_eq!(gw.subscriber_count(), 1);
        gw.publish(&ev("h1", "CPU_TOTAL", 10.0, 1));
        gw.publish(&ev("h1", "VMSTAT_FREE_MEMORY", 999.0, 1));
        gw.publish(&ev("h2", "CPU_TOTAL", 20.0, 2));
        let got: Vec<Event> = sub.events.try_iter().collect();
        assert_eq!(got.len(), 2);
        assert!(got.iter().all(|e| e.event_type == "CPU_TOTAL"));
        assert_eq!(gw.stats().events_in.load(Ordering::Relaxed), 3);
        assert_eq!(gw.stats().events_out.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn query_mode_returns_most_recent_event() {
        let gw = EventGateway::new(GatewayConfig::open("gw1"));
        assert_eq!(gw.query("c", "h1", "CPU_TOTAL").unwrap(), None);
        gw.publish(&ev("h1", "CPU_TOTAL", 10.0, 1));
        gw.publish(&ev("h1", "CPU_TOTAL", 55.0, 2));
        let latest = gw.query("c", "h1", "CPU_TOTAL").unwrap().unwrap();
        assert_eq!(latest.value(), Some(55.0));
        assert_eq!(gw.stats().queries.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn unsubscribe_and_dead_consumer_cleanup() {
        let gw = EventGateway::new(GatewayConfig::open("gw1"));
        let sub1 = gw
            .subscribe(SubscribeRequest {
                consumer: "a".into(),
                mode: SubscriptionMode::Stream,
                filters: vec![],
            })
            .unwrap();
        let sub2 = gw
            .subscribe(SubscribeRequest {
                consumer: "b".into(),
                mode: SubscriptionMode::Stream,
                filters: vec![],
            })
            .unwrap();
        assert_eq!(gw.subscriber_count(), 2);
        gw.unsubscribe(sub1.id).unwrap();
        assert!(matches!(
            gw.unsubscribe(sub1.id),
            Err(GatewayError::NoSuchSubscription(_))
        ));
        assert_eq!(gw.subscriber_count(), 1);
        // Dropping the receiver makes the next publish prune the subscription.
        drop(sub2);
        gw.publish(&ev("h", "X", 1.0, 1));
        assert_eq!(gw.subscriber_count(), 0);
    }

    #[test]
    fn threshold_subscription_reduces_delivered_volume() {
        let gw = EventGateway::new(GatewayConfig::open("gw1"));
        let everything = gw
            .subscribe(SubscribeRequest {
                consumer: "all".into(),
                mode: SubscriptionMode::Stream,
                filters: vec![],
            })
            .unwrap();
        let filtered = gw
            .subscribe(SubscribeRequest {
                consumer: "ops".into(),
                mode: SubscriptionMode::Stream,
                filters: vec![EventFilter::Above(50.0)],
            })
            .unwrap();
        for i in 0..100 {
            gw.publish(&ev("h", "CPU_TOTAL", (i % 10) as f64 * 10.0, i));
        }
        let all_count = everything.events.try_iter().count();
        let filtered_count = filtered.events.try_iter().count();
        assert_eq!(all_count, 100);
        assert!(filtered_count < 50, "only the >50% readings: {filtered_count}");
        assert!(filtered_count > 0);
        let report = gw.delivery_report();
        assert_eq!(report.len(), 2);
        assert!(report.iter().any(|(_, c, n, _)| c == "ops" && *n == filtered_count as u64));
    }

    #[test]
    fn acl_restricts_streaming_to_internal_users() {
        let mut acl = AccessControlList::summary_for_others();
        acl.grant(
            Principal::OrgPrefix("/O=Grid/O=LBNL".into()),
            "gateway:gw1",
            [Action::SubscribeStream, Action::Query, Action::Summary],
        );
        let gw = EventGateway::new(GatewayConfig::with_acl("gw1", acl));
        // Internal consumer streams.
        assert!(gw
            .subscribe(SubscribeRequest {
                consumer: "/O=Grid/O=LBNL/CN=Dan Gunter".into(),
                mode: SubscriptionMode::Stream,
                filters: vec![],
            })
            .is_ok());
        // Off-site consumer cannot stream but can query and get summaries.
        let offsite = "/O=Grid/O=NCSA/CN=Remote";
        assert!(matches!(
            gw.subscribe(SubscribeRequest {
                consumer: offsite.into(),
                mode: SubscriptionMode::Stream,
                filters: vec![],
            }),
            Err(GatewayError::AccessDenied(_))
        ));
        gw.publish(&ev("h", "CPU_TOTAL", 42.0, 10));
        assert!(gw.query(offsite, "h", "CPU_TOTAL").unwrap().is_some());
        assert!(gw.summaries(offsite, Timestamp::from_secs(11)).is_ok());
    }

    #[test]
    fn summaries_reflect_published_readings() {
        let gw = EventGateway::new(GatewayConfig::open("gw1"));
        for i in 0..30u64 {
            gw.publish(&ev("h", "CPU_TOTAL", 60.0, 1_000 + i));
        }
        let summaries = gw.summaries("c", Timestamp::from_secs(1_030)).unwrap();
        let one_min = summaries
            .iter()
            .find(|e| e.event_type == "CPU_TOTAL_AVG_1MIN")
            .expect("1-minute summary present");
        assert_eq!(one_min.value(), Some(60.0));
        assert_eq!(one_min.program, "gw1");
    }

    #[test]
    fn on_change_filter_state_is_per_subscription() {
        let gw = EventGateway::new(GatewayConfig::open("gw1"));
        let s1 = gw
            .subscribe(SubscribeRequest {
                consumer: "a".into(),
                mode: SubscriptionMode::Stream,
                filters: vec![EventFilter::OnChange],
            })
            .unwrap();
        gw.publish(&ev("h", "NETSTAT_RETRANS", 5.0, 1));
        gw.publish(&ev("h", "NETSTAT_RETRANS", 5.0, 2));
        // A subscriber arriving later starts with fresh state.
        let s2 = gw
            .subscribe(SubscribeRequest {
                consumer: "b".into(),
                mode: SubscriptionMode::Stream,
                filters: vec![EventFilter::OnChange],
            })
            .unwrap();
        gw.publish(&ev("h", "NETSTAT_RETRANS", 5.0, 3));
        gw.publish(&ev("h", "NETSTAT_RETRANS", 7.0, 4));
        assert_eq!(s1.events.try_iter().count(), 2, "first + change");
        assert_eq!(s2.events.try_iter().count(), 2, "first seen + change");
    }
}
