//! The event gateway.
//!
//! The gateway receives every event its host's sensors produce (pushed by
//! the sensor manager through the [`EventSink`] trait) and fans it out to
//! subscribed consumers according to their filters — streaming
//! subscriptions get a **bounded** channel with an explicit overflow
//! policy, query consumers ask for the most recent event on demand.  It
//! also keeps the summary engine fed, enforces the site's access policy,
//! and counts what it delivers (and drops) per subscription so the
//! scalability experiments can compare "N consumers hitting the sensor
//! host" with "N consumers hitting one gateway" (E7) and measure how much
//! the filters reduce delivered volume (E10).
//!
//! The publish hot path runs on the sharded fan-out engine in
//! [`crate::routing`]: subscriptions are indexed by event type across
//! [`GatewayConfig::shards`] routing shards, each shard's table is an
//! immutable snapshot swapped on the cold path, and delivery optionally
//! moves to [`GatewayConfig::delivery_workers`] background threads
//! draining the shards in parallel.
//!
//! Consumers subscribe with the fluent [`SubscriptionBuilder`]:
//!
//! ```
//! use jamm_gateway::{EventFilter, EventGateway, GatewayConfig};
//!
//! let gw = EventGateway::new(GatewayConfig::open("gw1"));
//! let sub = gw
//!     .subscribe()
//!     .stream()
//!     .filter(EventFilter::Above(50.0))
//!     .as_consumer("threshold-watcher")
//!     .open()
//!     .unwrap();
//! assert_eq!(sub.delivered(), 0);
//! ```

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use jamm_core::channel::{bounded, Receiver, Sender};
use jamm_core::flow::{DeliveryCounters, EventSink, EventSource, OverflowPolicy, SinkError};
use jamm_core::intern::Sym;
use jamm_core::sync::RwLock;
use jamm_ulm::{keys, Event, SharedEvent, Timestamp};

use jamm_auth::acl::{AccessControlList, Action};
use jamm_core::query::{Plan, Predicate};

use crate::filter::{EventFilter, FilterChain};
use crate::qos::{QosConfig, QosRuntime, QosSnapshot, Tier, TierRow};
use crate::routing::{RouteOutcome, ShardReport, ShardedRouter, DEFAULT_GATEWAY_SHARDS};
use crate::summary::{ShardedSummaryEngine, SummaryWindow};
use crate::{GatewayError, Result};

/// Default bound on a subscription's in-flight event queue.
pub const DEFAULT_SUBSCRIPTION_CAPACITY: usize = 4_096;

/// Bound on each delivery worker's ingest queue, counted in handoffs (one
/// per `publish`, one per worker per batched publish).  Publishing blocks
/// (rather than drops) when a worker falls this far behind, so worker mode
/// trades bounded publisher back-pressure for parallel fan-out — events
/// are never lost between the publisher and the router.
pub const DELIVERY_WORKER_QUEUE_CAPACITY: usize = 8_192;

/// A live streaming subscription handle returned to the consumer.
///
/// Exposes the shared delivery counters: [`Subscription::delivered`] /
/// [`Subscription::dropped`] / [`Subscription::bytes`] report what the
/// gateway pushed into (or evicted from) this subscription's bounded
/// queue.
#[derive(Debug)]
pub struct Subscription {
    /// Subscription identifier (used to unsubscribe).
    pub id: u64,
    /// Channel on which matching events arrive.  Events are shared
    /// ([`SharedEvent`]): the gateway bumps a refcount per delivery
    /// instead of copying the event per subscriber.
    pub events: Receiver<SharedEvent>,
    counters: Arc<DeliveryCounters>,
}

impl Subscription {
    pub(crate) fn from_parts(
        id: u64,
        events: Receiver<SharedEvent>,
        counters: Arc<DeliveryCounters>,
    ) -> Self {
        Subscription {
            id,
            events,
            counters,
        }
    }

    /// Events the gateway delivered into this subscription's queue.
    pub fn delivered(&self) -> u64 {
        self.counters.delivered()
    }

    /// Events dropped because the consumer fell behind its queue bound.
    pub fn dropped(&self) -> u64 {
        self.counters.dropped()
    }

    /// Approximate ULM payload bytes delivered.
    pub fn bytes(&self) -> u64 {
        self.counters.bytes()
    }

    /// Drain everything currently queued.
    pub fn drain(&mut self) -> Vec<SharedEvent> {
        self.events.try_iter().collect()
    }
}

impl EventSource<SharedEvent> for Subscription {
    fn drain_into(&mut self, out: &mut Vec<SharedEvent>) -> usize {
        let before = out.len();
        out.extend(self.events.try_iter());
        out.len() - before
    }
}

/// Fluent builder for a streaming subscription, returned by
/// [`EventGateway::subscribe`].
///
/// ```
/// use jamm_gateway::{EventFilter, EventGateway, GatewayConfig, OverflowPolicy};
///
/// let gw = EventGateway::new(GatewayConfig::open("gw1"));
/// let sub = gw
///     .subscribe()
///     .stream()
///     .filter(EventFilter::EventTypes(vec!["CPU_TOTAL".into()]))
///     .filter(EventFilter::Above(50.0))
///     .as_consumer("ops")
///     .capacity(1_024)
///     .on_overflow(OverflowPolicy::DropNewest)
///     .open()
///     .unwrap();
/// assert_eq!(gw.subscriber_count(), 1);
/// gw.unsubscribe(sub.id).unwrap();
/// ```
#[must_use = "call .open() to register the subscription"]
#[derive(Debug)]
pub struct SubscriptionBuilder<'gw> {
    gateway: &'gw EventGateway,
    consumer: String,
    predicates: Vec<Predicate>,
    queries: Vec<String>,
    capacity: usize,
    overflow: OverflowPolicy,
}

impl<'gw> SubscriptionBuilder<'gw> {
    /// Request streaming delivery (the builder's default; present so call
    /// sites read like the paper: open an event channel, get a stream).
    pub fn stream(self) -> Self {
        self
    }

    /// Add one filter to the conjunction.
    pub fn filter(mut self, filter: EventFilter) -> Self {
        self.predicates.push(filter.to_predicate());
        self
    }

    /// Add several filters.
    pub fn filters(mut self, filters: impl IntoIterator<Item = EventFilter>) -> Self {
        self.predicates
            .extend(filters.into_iter().map(|f| f.to_predicate()));
        self
    }

    /// Add a raw query-plane predicate to the conjunction.
    pub fn predicate(mut self, predicate: Predicate) -> Self {
        self.predicates.push(predicate);
        self
    }

    /// Filter with a query string in the unified grammar, e.g.
    /// `"(&(type=CPU_TOTAL)(val>50))"` — the same language the archive
    /// and the directory answer.  And-combined with any builder-style
    /// filters and with previous `matching` calls; a malformed query
    /// surfaces as [`crate::GatewayError::BadQuery`] from
    /// [`SubscriptionBuilder::open`].
    pub fn matching(mut self, query: &str) -> Self {
        self.queries.push(query.to_string());
        self
    }

    /// Set the consumer principal the subscription is checked and accounted
    /// against.  Defaults to `"anonymous"`.
    pub fn as_consumer(mut self, consumer: impl Into<String>) -> Self {
        self.consumer = consumer.into();
        self
    }

    /// Bound the in-flight queue (default
    /// [`DEFAULT_SUBSCRIPTION_CAPACITY`]).
    pub fn capacity(mut self, events: usize) -> Self {
        self.capacity = events.max(1);
        self
    }

    /// What to do when the queue is full (default
    /// [`OverflowPolicy::DropOldest`]).
    pub fn on_overflow(mut self, policy: OverflowPolicy) -> Self {
        self.overflow = policy;
        self
    }

    /// Register the subscription with the gateway, returning the live
    /// handle.  Fails if the site policy denies this consumer streaming
    /// access, or if a [`SubscriptionBuilder::matching`] query string does
    /// not parse.
    pub fn open(self) -> Result<Subscription> {
        let mut predicates = self.predicates;
        for query in &self.queries {
            let parsed =
                Predicate::parse(query).map_err(|e| GatewayError::BadQuery(e.to_string()))?;
            predicates.push(parsed);
        }
        let chain = FilterChain::from_predicate(Predicate::And(predicates));
        self.gateway
            .open_subscription(self.consumer, chain, self.capacity, self.overflow)
    }
}

/// Gateway configuration.
#[derive(Debug, Clone)]
pub struct GatewayConfig {
    /// Gateway name, used as the `PROG` of summary events and as the ACL
    /// resource prefix.
    pub name: String,
    /// Access policy; `None` means a completely open gateway (the prototype
    /// default in the paper's current-status section).
    pub acl: Option<AccessControlList>,
    /// Summary windows the gateway maintains.
    pub summary_windows: Vec<SummaryWindow>,
    /// Routing (and summary) shards the fan-out engine is split across.
    /// More shards mean less contention between publisher threads carrying
    /// different event types; one shard serializes everything.  Clamped to
    /// at least 1.
    pub shards: usize,
    /// Background delivery-worker threads.  `0` (the default) delivers
    /// synchronously inside [`EventGateway::publish`]; with `N > 0`
    /// workers, publish hands the event to the owning shard's worker and
    /// returns immediately — call [`EventGateway::quiesce`] to wait for
    /// in-flight deliveries before reading counters.
    pub delivery_workers: usize,
    /// Record per-publish routing latency into
    /// [`GatewayStats::route_us`] (two clock reads plus one atomic add
    /// per publish call).  On by default; switch off to reproduce the
    /// uninstrumented hot path (the `e18_observability` bench's
    /// baseline row).
    pub route_timing: bool,
    /// Self-lifeline tracer: when set, a sampled fraction of published
    /// events is followed through the pipeline with NetLogger-style
    /// trace points (see [`crate::trace::PipelineTracer`]).  The
    /// tracer's own sink gateway must be left untraced.
    pub tracer: Option<Arc<crate::trace::PipelineTracer>>,
    /// Delivery QoS plane (see [`crate::qos`]): when set, subscriptions
    /// are classified into drain-rate tiers with per-tier queue budgets,
    /// the gateway sheds lowest-tier raw events under declared overload,
    /// and (with worker delivery) each tier gets its own worker pool
    /// sized by [`QosConfig::workers_per_tier`] — `delivery_workers`
    /// then only selects worker mode (`> 0`) versus synchronous (`0`).
    pub qos: Option<QosConfig>,
}

impl GatewayConfig {
    /// An open gateway with the standard 1/10/60-minute summaries.
    pub fn open(name: impl Into<String>) -> Self {
        GatewayConfig {
            name: name.into(),
            acl: None,
            summary_windows: SummaryWindow::all().to_vec(),
            shards: DEFAULT_GATEWAY_SHARDS,
            delivery_workers: 0,
            route_timing: true,
            tracer: None,
            qos: None,
        }
    }

    /// A gateway enforcing the given ACL.
    pub fn with_acl(name: impl Into<String>, acl: AccessControlList) -> Self {
        GatewayConfig {
            acl: Some(acl),
            ..GatewayConfig::open(name)
        }
    }

    /// Set the number of routing/summary shards.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Set the number of background delivery workers (0 = synchronous).
    pub fn with_delivery_workers(mut self, workers: usize) -> Self {
        self.delivery_workers = workers;
        self
    }

    /// Enable or disable per-publish route-latency recording.
    pub fn with_route_timing(mut self, on: bool) -> Self {
        self.route_timing = on;
        self
    }

    /// Attach a self-lifeline tracer (see
    /// [`crate::trace::PipelineTracer`]).
    pub fn with_tracer(mut self, tracer: Arc<crate::trace::PipelineTracer>) -> Self {
        self.tracer = Some(tracer);
        self
    }

    /// Enable the delivery QoS plane (see [`crate::qos`]).
    pub fn with_qos(mut self, qos: QosConfig) -> Self {
        self.qos = Some(qos);
        self
    }
}

/// Cumulative gateway statistics.
#[derive(Debug, Default)]
pub struct GatewayStats {
    /// Events published into the gateway by sensor managers.
    pub events_in: AtomicU64,
    /// Event copies delivered to streaming consumers.
    pub events_out: AtomicU64,
    /// Event copies dropped on full subscription queues.
    pub events_dropped: AtomicU64,
    /// Bytes (approximate ULM size) delivered to streaming consumers.
    pub bytes_out: AtomicU64,
    /// Query-mode requests served.
    pub queries: AtomicU64,
    /// Latency distribution of routing (fan-out) per publish call,
    /// microseconds.  Recorded only while
    /// [`GatewayConfig::route_timing`] is on.
    pub route_us: jamm_core::obs::Histogram,
}

impl GatewayStats {
    fn apply(&self, out: &RouteOutcome) {
        self.events_out.fetch_add(out.delivered, Ordering::Relaxed);
        self.events_dropped
            .fetch_add(out.dropped, Ordering::Relaxed);
        self.bytes_out.fetch_add(out.bytes, Ordering::Relaxed);
    }
}

/// One row of [`EventGateway::delivery_report`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeliveryReport {
    /// Subscription id.
    pub id: u64,
    /// Consumer principal.
    pub consumer: String,
    /// Events delivered into the subscription queue.
    pub delivered: u64,
    /// Events dropped on queue overflow.
    pub dropped: u64,
    /// Approximate payload bytes delivered.
    pub bytes: u64,
    /// Current delivery tier (always [`Tier::Fast`] without a QoS plane).
    pub tier: Tier,
}

/// One background delivery worker: its ingest queue (carrying batches, so
/// a batched publish hands a worker all its events in one send) plus the
/// join handle used for clean shutdown when the gateway is dropped.
struct DeliveryWorker {
    tx: Option<Sender<Vec<SharedEvent>>>,
    handle: Option<std::thread::JoinHandle<()>>,
}

/// The JAMM event gateway.
pub struct EventGateway {
    config: GatewayConfig,
    router: Arc<ShardedRouter>,
    /// The query cache, sharded by series key like the summary engine so
    /// parallel publishers do not serialize on one write lock.  Keys are
    /// interned and values shared: caching the latest event of a series
    /// is a refcount bump, not a deep copy plus two string clones.
    latest: Vec<RwLock<HashMap<(Sym, Sym), SharedEvent>>>,
    summaries: ShardedSummaryEngine,
    stats: Arc<GatewayStats>,
    next_id: AtomicU64,
    workers: Vec<DeliveryWorker>,
    /// Events handed to a worker but not yet routed (see
    /// [`EventGateway::quiesce`]).
    in_flight: Arc<AtomicU64>,
    /// The QoS plane shared with the router, when configured.
    qos: Option<Arc<QosRuntime>>,
    /// `(offset, len)` into `workers` of each tier's pool, indexed by
    /// tier — set only under QoS worker delivery.
    tier_pools: Option<[(usize, usize); 3]>,
    /// Publishes since the gateway opened, driving the re-tier cadence.
    qos_publishes: AtomicU64,
    /// Continuous queries materialized on the publish path.
    views: crate::views::ViewEngine,
}

impl std::fmt::Debug for EventGateway {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventGateway")
            .field("name", &self.config.name)
            .field("shards", &self.router.shard_count())
            .field("workers", &self.workers.len())
            .field("subscribers", &self.router.live_count())
            .finish_non_exhaustive()
    }
}

impl Drop for EventGateway {
    fn drop(&mut self) {
        // Dropping the senders disconnects the worker queues; each worker
        // drains what it already holds and exits.
        for w in &mut self.workers {
            w.tx.take();
        }
        for w in &mut self.workers {
            if let Some(handle) = w.handle.take() {
                let _ = handle.join();
            }
        }
    }
}

impl EventGateway {
    /// Create a gateway.
    pub fn new(config: GatewayConfig) -> Self {
        let shards = config.shards.max(1);
        let qos = config.qos.clone().map(|c| Arc::new(QosRuntime::new(c)));
        let router = Arc::new(ShardedRouter::new(
            shards,
            config.tracer.clone(),
            qos.clone(),
        ));
        let stats = Arc::new(GatewayStats::default());
        let in_flight = Arc::new(AtomicU64::new(0));
        // Worker layout.  Without QoS: `delivery_workers` generic workers,
        // capped at the shard count (a shard's traffic is pinned to one
        // worker to preserve per-type ordering; more would sit idle).
        // With QoS: one pool per tier sized by `workers_per_tier`, so a
        // stalled probation consumer's delivery cost lands on the
        // probation pool's threads alone.
        let mut assignments: Vec<Option<Tier>> = Vec::new();
        let mut tier_pools = None;
        if config.delivery_workers > 0 {
            match &qos {
                None => assignments = vec![None; config.delivery_workers.min(shards)],
                Some(q) => {
                    let mut spans = [(0usize, 0usize); 3];
                    for t in Tier::ALL {
                        let n = q.config.workers_per_tier[t as usize].max(1);
                        spans[t as usize] = (assignments.len(), n);
                        assignments.extend(std::iter::repeat_n(Some(t), n));
                    }
                    tier_pools = Some(spans);
                }
            }
        }
        let workers = assignments
            .into_iter()
            .map(|tier_filter| {
                let (tx, rx) = bounded::<Vec<SharedEvent>>(DELIVERY_WORKER_QUEUE_CAPACITY);
                let router = Arc::clone(&router);
                let stats = Arc::clone(&stats);
                let in_flight = Arc::clone(&in_flight);
                let tracer = config.tracer.clone();
                let gw_name = config.name.clone();
                let timing = config.route_timing;
                let handle = std::thread::spawn(move || {
                    while let Ok(mut batch) = rx.recv() {
                        let n = batch.len() as u64;
                        // Watched-event ids must be taken before routing
                        // moves the batch's `Arc`s into the queues.
                        let traced: Vec<u64> = match &tracer {
                            Some(t) => batch.iter().filter_map(|e| t.trace_id(e)).collect(),
                            None => Vec::new(),
                        };
                        let start = timing.then(std::time::Instant::now);
                        let out = match tier_filter {
                            Some(tier) => router.route_batch_tier(&batch, tier),
                            None if batch.len() == 1 => {
                                let event = batch.pop().expect("len checked");
                                let ty = Sym::intern(&event.event_type);
                                router.route(ty, event)
                            }
                            None => router.route_batch(&batch),
                        };
                        if let Some(start) = start {
                            stats.route_us.record_micros(start.elapsed());
                        }
                        if let Some(t) = &tracer {
                            for id in traced {
                                t.stage_id(id, jamm_ulm::keys::jamm::GW_ROUTED, &gw_name);
                            }
                        }
                        stats.apply(&out);
                        in_flight.fetch_sub(n, Ordering::Release);
                    }
                });
                DeliveryWorker {
                    tx: Some(tx),
                    handle: Some(handle),
                }
            })
            .collect();
        EventGateway {
            summaries: ShardedSummaryEngine::new(shards),
            config,
            router,
            latest: (0..shards).map(|_| RwLock::new(HashMap::new())).collect(),
            stats,
            next_id: AtomicU64::new(1),
            workers,
            in_flight,
            qos,
            tier_pools,
            qos_publishes: AtomicU64::new(0),
            views: crate::views::ViewEngine::new(),
        }
    }

    /// The query-cache shard owning an interned (host, event type) series.
    fn latest_shard(
        &self,
        host: Sym,
        event_type: Sym,
    ) -> &RwLock<HashMap<(Sym, Sym), SharedEvent>> {
        let idx = (crate::hash::sym_series(host, event_type) % self.latest.len() as u64) as usize;
        &self.latest[idx]
    }

    /// The gateway's name.
    pub fn name(&self) -> &str {
        &self.config.name
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> &GatewayStats {
        &self.stats
    }

    /// A shareable handle to the cumulative statistics (for metrics
    /// collectors that outlive a borrow of the gateway).
    pub fn stats_handle(&self) -> Arc<GatewayStats> {
        Arc::clone(&self.stats)
    }

    /// The self-lifeline tracer attached to this gateway, if any.
    pub fn tracer(&self) -> Option<&Arc<crate::trace::PipelineTracer>> {
        self.config.tracer.as_ref()
    }

    /// Number of routing (and summary) shards.
    pub fn shard_count(&self) -> usize {
        self.router.shard_count()
    }

    /// Number of background delivery workers (0 = synchronous delivery).
    pub fn delivery_worker_count(&self) -> usize {
        self.workers.len()
    }

    fn check(&self, consumer: &str, action: Action) -> Result<()> {
        if let Some(acl) = &self.config.acl {
            acl.check(consumer, &format!("gateway:{}", self.config.name), action)
                .map_err(|e| GatewayError::AccessDenied(e.to_string()))?;
        }
        Ok(())
    }

    /// Start building a streaming subscription.  Query-mode consumers do
    /// not subscribe; they call [`EventGateway::query`].
    pub fn subscribe(&self) -> SubscriptionBuilder<'_> {
        SubscriptionBuilder {
            gateway: self,
            consumer: "anonymous".to_string(),
            predicates: Vec::new(),
            queries: Vec::new(),
            capacity: DEFAULT_SUBSCRIPTION_CAPACITY,
            overflow: OverflowPolicy::default(),
        }
    }

    fn open_subscription(
        &self,
        consumer: String,
        chain: FilterChain,
        capacity: usize,
        overflow: OverflowPolicy,
    ) -> Result<Subscription> {
        self.check(&consumer, Action::SubscribeStream)?;
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        Ok(self.router.insert(id, consumer, chain, capacity, overflow))
    }

    /// Cancel a streaming subscription.
    ///
    /// Publishes racing this call (or already handed to a delivery
    /// worker) may still deliver a final few events into the
    /// subscription's queue after it returns; drop the [`Subscription`]
    /// handle when a hard delivery cutoff is needed — a send to a dropped
    /// receiver always fails.
    pub fn unsubscribe(&self, id: u64) -> Result<()> {
        if self.router.remove(id) {
            Ok(())
        } else {
            Err(GatewayError::NoSuchSubscription(id))
        }
    }

    /// Number of live streaming subscriptions.
    pub fn subscriber_count(&self) -> usize {
        self.router.live_count()
    }

    /// Record an event in the query cache and the summary engine (the
    /// parts of publish that always run synchronously, so query mode and
    /// summaries stay ordered even when fan-out is asynchronous).  The
    /// series identity is interned once here and shared by both consumers
    /// — and the event-type handle is returned so the publish paths route
    /// and pin workers without hashing the string again.
    fn observe(&self, event: &SharedEvent) -> Sym {
        self.stats.events_in.fetch_add(1, Ordering::Relaxed);
        let host = Sym::intern(&event.host);
        let ty = Sym::intern(&event.event_type);
        self.latest_shard(host, ty)
            .write()
            .insert((host, ty), SharedEvent::clone(event));
        self.summaries.record_interned(host, ty, event);
        self.views.observe(host, ty, event);
        ty
    }

    /// Publish one event into the gateway (called by the sensor manager).
    ///
    /// Copies the event into a fresh [`SharedEvent`] allocation — the one
    /// allocation of its pipeline life; fan-out, summaries, caching and
    /// archiving all share it.  Producers that already hold a
    /// `SharedEvent` should call [`EventGateway::publish_shared`], which
    /// copies nothing at all.
    ///
    /// With synchronous delivery (the default), returns the number of
    /// consumers the event was delivered to.  With delivery workers
    /// configured, the event is handed to the owning shard's worker and the
    /// return value is 1 (accepted); delivery counts accumulate in
    /// [`EventGateway::stats`] and are exact after
    /// [`EventGateway::quiesce`].
    pub fn publish(&self, event: &Event) -> usize {
        self.publish_shared(Arc::new(event.clone()))
    }

    /// Publish an already-shared event: the zero-copy entry point.  The
    /// gateway performs no event copy on any path reachable from here —
    /// delivery to N subscribers is N-1 refcount bumps plus one move.
    pub fn publish_shared(&self, event: SharedEvent) -> usize {
        let ty = self.observe(&event);
        self.maybe_retier(1);
        if let Some(tracer) = &self.config.tracer {
            tracer.on_publish(&event, &self.config.name);
        }
        if self.workers.is_empty() {
            let traced = self
                .config
                .tracer
                .as_deref()
                .and_then(|t| t.trace_id(&event));
            let start = self.config.route_timing.then(std::time::Instant::now);
            let out = self.router.route(ty, event);
            if let Some(start) = start {
                self.stats.route_us.record_micros(start.elapsed());
            }
            if let (Some(tracer), Some(id)) = (&self.config.tracer, traced) {
                tracer.stage_id(id, keys::jamm::GW_ROUTED, &self.config.name);
            }
            self.stats.apply(&out);
            return out.delivered as usize;
        }
        let base = self.router.shard_of_sym(ty);
        match self.tier_pools {
            None => self.hand_to_worker(base % self.workers.len(), vec![event]),
            Some(spans) => {
                // One worker per tier pool routes the event to its own
                // tier's subscriptions; each hand-off bumps the refcount,
                // the last takes the owned Arc.
                let mut event = Some(event);
                let mut accepted = 0;
                for (i, (off, len)) in spans.iter().enumerate() {
                    let ev = if i + 1 == spans.len() {
                        event.take().expect("event held until last pool")
                    } else {
                        SharedEvent::clone(event.as_ref().expect("event held until last pool"))
                    };
                    accepted += self.hand_to_worker(off + base % len, vec![ev]).min(1);
                }
                usize::from(accepted > 0)
            }
        }
    }

    /// Hand a batch to one worker's queue, keeping the in-flight count
    /// exact whether or not the worker is still accepting.
    fn hand_to_worker(&self, widx: usize, batch: Vec<SharedEvent>) -> usize {
        let n = batch.len();
        let tx = self.workers[widx].tx.as_ref().expect("worker running");
        self.in_flight.fetch_add(n as u64, Ordering::Acquire);
        if tx.send(batch).is_err() {
            self.in_flight.fetch_sub(n as u64, Ordering::Release);
            return 0;
        }
        n
    }

    /// Publish a batch of already-shared events through the batched
    /// fan-out path: filters are still evaluated per event in order, but
    /// each subscription's queue is locked once per batch instead of once
    /// per event (and under worker delivery each worker receives its whole
    /// sub-batch in one queue handoff).  Returns total deliveries
    /// (accepted events under worker delivery, as with
    /// [`EventGateway::publish`]).
    pub fn publish_shared_batch(&self, events: &[SharedEvent]) -> usize {
        if events.is_empty() {
            return 0;
        }
        self.maybe_retier(events.len() as u64);
        if self.workers.is_empty() {
            for event in events {
                self.observe(event);
                if let Some(tracer) = &self.config.tracer {
                    tracer.on_publish(event, &self.config.name);
                }
            }
            let traced: Vec<u64> = match &self.config.tracer {
                Some(t) => events.iter().filter_map(|e| t.trace_id(e)).collect(),
                None => Vec::new(),
            };
            let start = self.config.route_timing.then(std::time::Instant::now);
            let out = self.router.route_batch(events);
            if let Some(start) = start {
                self.stats.route_us.record_micros(start.elapsed());
            }
            if let Some(tracer) = &self.config.tracer {
                for id in traced {
                    tracer.stage_id(id, keys::jamm::GW_ROUTED, &self.config.name);
                }
            }
            self.stats.apply(&out);
            return out.delivered as usize;
        }
        // Group by owning worker (publish order preserved within a group,
        // and a type always maps to the same worker, so per-type order
        // survives) and hand each worker its whole sub-batch in one send.
        // Grouping bumps refcounts — it never copies events — and reuses
        // the event-type handle observe() already interned.
        let mut groups: Vec<Vec<SharedEvent>> =
            (0..self.workers.len()).map(|_| Vec::new()).collect();
        for event in events {
            let ty = self.observe(event);
            if let Some(tracer) = &self.config.tracer {
                tracer.on_publish(event, &self.config.name);
            }
            let base = self.router.shard_of_sym(ty);
            match self.tier_pools {
                None => groups[base % self.workers.len()].push(SharedEvent::clone(event)),
                Some(spans) => {
                    // Every tier pool receives the event (a refcount bump
                    // per pool); each pool delivers only to its own tier.
                    for (off, len) in spans {
                        groups[off + base % len].push(SharedEvent::clone(event));
                    }
                }
            }
        }
        match self.tier_pools {
            None => groups
                .into_iter()
                .enumerate()
                .filter(|(_, g)| !g.is_empty())
                .map(|(widx, g)| self.hand_to_worker(widx, g))
                .sum(),
            Some(spans) => {
                // Count each event once — via the fast pool's hand-offs —
                // even though all three pools receive it.
                let (foff, flen) = spans[Tier::Fast as usize];
                let mut accepted = 0;
                for (widx, g) in groups.into_iter().enumerate() {
                    if g.is_empty() {
                        continue;
                    }
                    let n = self.hand_to_worker(widx, g);
                    if widx >= foff && widx < foff + flen {
                        accepted += n;
                    }
                }
                accepted
            }
        }
    }

    /// Publish a batch of by-value events (each is copied once into its
    /// shared allocation; see [`EventGateway::publish_shared_batch`] for
    /// the zero-copy form).
    pub fn publish_batch(&self, events: &[Event]) -> usize {
        let shared: Vec<SharedEvent> = events.iter().map(|e| Arc::new(e.clone())).collect();
        self.publish_shared_batch(&shared)
    }

    /// Publish a batch of events.
    pub fn publish_all<'a>(&self, events: impl IntoIterator<Item = &'a Event>) -> usize {
        let shared: Vec<SharedEvent> = events.into_iter().map(|e| Arc::new(e.clone())).collect();
        self.publish_shared_batch(&shared)
    }

    /// Wait until every event handed to a delivery worker has been routed.
    /// A no-op under synchronous delivery.  After this returns (with no
    /// concurrent publishers), [`EventGateway::stats`] and the
    /// per-subscription counters are exact.
    pub fn quiesce(&self) {
        // Yield while the drain is short, then back off to short sleeps so
        // a long drain does not burn a core the workers could be using.
        let mut spins = 0u32;
        while self.in_flight.load(Ordering::Acquire) > 0 {
            spins += 1;
            if spins < 64 {
                std::thread::yield_now();
            } else {
                std::thread::sleep(std::time::Duration::from_micros(200));
            }
        }
    }

    /// Query mode: the most recent event of `event_type` from `host`.
    /// The returned handle shares the cached event — queries do not copy.
    pub fn query(
        &self,
        consumer: &str,
        host: &str,
        event_type: &str,
    ) -> Result<Option<SharedEvent>> {
        self.check(consumer, Action::Query)?;
        self.stats.queries.fetch_add(1, Ordering::Relaxed);
        // A series the gateway never saw has no interned identity; asking
        // for it must not grow the intern table.
        let (Some(host), Some(ty)) = (Sym::lookup(host), Sym::lookup(event_type)) else {
            return Ok(None);
        };
        Ok(self.latest_shard(host, ty).read().get(&(host, ty)).cloned())
    }

    /// Query mode over the whole cache: every cached latest-event that a
    /// compiled query-plane [`Plan`] accepts, in `(host, type)` order.
    /// This is the gateway's leg of the facade's unified query endpoint —
    /// one plan answers the live cache here, the summaries, and the
    /// archive's historical scan.  Returned handles share the cached
    /// events; nothing is copied.
    pub fn query_matching(&self, consumer: &str, plan: &Plan) -> Result<Vec<SharedEvent>> {
        self.check(consumer, Action::Query)?;
        self.stats.queries.fetch_add(1, Ordering::Relaxed);
        let mut out: Vec<SharedEvent> = Vec::new();
        for shard in &self.latest {
            let shard = shard.read();
            for event in shard.values() {
                if plan.eval(&**event) {
                    out.push(SharedEvent::clone(event));
                }
            }
        }
        out.sort_by(|a, b| (&a.host, &a.event_type).cmp(&(&b.host, &b.event_type)));
        Ok(out)
    }

    /// Summary data for consumers entitled to summaries only (or anyone who
    /// prefers them): one synthetic event per tracked series per window.
    pub fn summaries(&self, consumer: &str, now: Timestamp) -> Result<Vec<Event>> {
        self.check(consumer, Action::Summary)?;
        Ok(self
            .summaries
            .summary_events(&self.config.summary_windows, now, &self.config.name))
    }

    /// Register a continuous query: `text` is parsed, compiled, and from
    /// now on maintained incrementally on the publish path.  Readers get
    /// its contents from [`EventGateway::view_snapshot`] without any
    /// rescan.  Re-registering a name replaces the view with fresh state.
    pub fn register_view(
        &self,
        name: &str,
        text: &str,
    ) -> Result<Arc<crate::views::ContinuousQuery>> {
        self.views.register(name, text)
    }

    /// The current snapshot of a continuous query — one `Arc` clone per
    /// call, never a rescan.  Gated by the same [`Action::Query`] right
    /// as the live cache.
    pub fn view_snapshot(
        &self,
        consumer: &str,
        name: &str,
    ) -> Result<Arc<crate::views::ViewSnapshot>> {
        self.check(consumer, Action::Query)?;
        let view = self
            .views
            .by_name(name)
            .ok_or_else(|| GatewayError::BadQuery(format!("no such view {name:?}")))?;
        Ok(view.snapshot())
    }

    /// The continuous-query engine (for the facade's view-first query
    /// routing and for deterministic snapshot flushes in tests).
    pub fn views(&self) -> &crate::views::ViewEngine {
        &self.views
    }

    /// Per-subscription delivery/drop counts — used by the experiments and
    /// the status GUI.
    pub fn delivery_report(&self) -> Vec<DeliveryReport> {
        self.router.delivery_report()
    }

    /// Per-shard routing statistics: how traffic and deliveries distribute
    /// across the fan-out engine's shards.  Feeds the facade's admin stats
    /// and the gateway-tuning guidance in `docs/ARCHITECTURE.md`.
    pub fn shard_report(&self) -> Vec<ShardReport> {
        self.router.shard_reports()
    }

    /// Advance the publish counter and run a re-tier pass whenever the
    /// cadence boundary is crossed.  Counted in publishes rather than
    /// wall time so simulated-clock runs stay deterministic.
    fn maybe_retier(&self, n: u64) {
        let Some(q) = &self.qos else { return };
        let every = q.config.retier_every.max(1);
        let prev = self.qos_publishes.fetch_add(n, Ordering::Relaxed);
        if prev / every != (prev + n) / every {
            self.retier_now();
        }
    }

    /// Run one re-tier pass immediately: re-classify every subscription
    /// from its queue fill and interval drop ratio, refresh the overload
    /// state from the aggregate pressure, and return the new tier rows.
    /// A no-op (empty) without a QoS plane.
    pub fn retier_now(&self) -> Vec<TierRow> {
        let Some(q) = &self.qos else {
            return Vec::new();
        };
        let (rows, fill) = self.router.retier(q);
        q.update_overload(fill);
        rows
    }

    /// Current tier assignment per subscription, without advancing the
    /// classifier (every row is [`Tier::Fast`] without a QoS plane).
    pub fn tier_report(&self) -> Vec<TierRow> {
        self.router.tier_rows()
    }

    /// Snapshot of the QoS plane — shed level, pressure, per-tier shed
    /// and budget-drop counters.  `None` without a QoS plane.
    pub fn qos_snapshot(&self) -> Option<QosSnapshot> {
        self.qos.as_ref().map(|q| q.snapshot())
    }

    /// Feed an external saturation gauge (e.g. the network reactor's
    /// event-loop saturation) into the overload machine; max-combined
    /// with queue pressure at the next re-tier pass.  A no-op without a
    /// QoS plane.
    pub fn set_external_pressure(&self, saturation: f64) {
        if let Some(q) = &self.qos {
            q.set_external_pressure(saturation);
        }
    }
}

/// The gateway is the canonical event sink: the sensor manager (or any
/// other producer) pushes events through `&dyn EventSink<Event>` without
/// knowing it is talking to a gateway.  Each accepted event is copied once
/// into its shared allocation; producers that can hand over
/// [`SharedEvent`]s should use the `EventSink<SharedEvent>` impl instead.
impl EventSink<Event> for EventGateway {
    fn accept(&self, event: &Event) -> std::result::Result<usize, SinkError> {
        Ok(self.publish(event))
    }

    fn accept_batch(&self, events: &[Event]) -> std::result::Result<usize, SinkError> {
        Ok(self.publish_batch(events))
    }
}

/// The zero-copy sink: accepting a [`SharedEvent`] bumps its refcount and
/// fans it out without any event copy.  This is the hop the sensor
/// manager's push path uses.
impl EventSink<SharedEvent> for EventGateway {
    fn accept(&self, event: &SharedEvent) -> std::result::Result<usize, SinkError> {
        Ok(self.publish_shared(SharedEvent::clone(event)))
    }

    fn accept_batch(&self, events: &[SharedEvent]) -> std::result::Result<usize, SinkError> {
        Ok(self.publish_shared_batch(events))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jamm_auth::acl::Principal;
    use jamm_ulm::Level;

    fn ev(host: &str, ty: &str, value: f64, t: u64) -> Event {
        Event::builder("vmstat", host)
            .level(Level::Usage)
            .event_type(ty)
            .timestamp(Timestamp::from_secs(t))
            .value(value)
            .build()
    }

    #[test]
    fn streaming_subscription_receives_matching_events_only() {
        let gw = EventGateway::new(GatewayConfig::open("gw1"));
        let sub = gw
            .subscribe()
            .stream()
            .filter(EventFilter::EventTypes(vec!["CPU_TOTAL".into()]))
            .as_consumer("collector")
            .open()
            .unwrap();
        assert_eq!(gw.subscriber_count(), 1);
        gw.publish(&ev("h1", "CPU_TOTAL", 10.0, 1));
        gw.publish(&ev("h1", "VMSTAT_FREE_MEMORY", 999.0, 1));
        gw.publish(&ev("h2", "CPU_TOTAL", 20.0, 2));
        let got: Vec<SharedEvent> = sub.events.try_iter().collect();
        assert_eq!(got.len(), 2);
        assert!(got.iter().all(|e| e.event_type == "CPU_TOTAL"));
        assert_eq!(gw.stats().events_in.load(Ordering::Relaxed), 3);
        assert_eq!(gw.stats().events_out.load(Ordering::Relaxed), 2);
        assert_eq!(sub.delivered(), 2);
        assert_eq!(sub.dropped(), 0);
        assert!(sub.bytes() > 0);
    }

    #[test]
    fn query_mode_returns_most_recent_event() {
        let gw = EventGateway::new(GatewayConfig::open("gw1"));
        assert_eq!(gw.query("c", "h1", "CPU_TOTAL").unwrap(), None);
        gw.publish(&ev("h1", "CPU_TOTAL", 10.0, 1));
        gw.publish(&ev("h1", "CPU_TOTAL", 55.0, 2));
        let latest = gw.query("c", "h1", "CPU_TOTAL").unwrap().unwrap();
        assert_eq!(latest.value(), Some(55.0));
        assert_eq!(gw.stats().queries.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn unsubscribe_and_dead_consumer_cleanup() {
        let gw = EventGateway::new(GatewayConfig::open("gw1"));
        let sub1 = gw.subscribe().as_consumer("a").open().unwrap();
        let sub2 = gw.subscribe().as_consumer("b").open().unwrap();
        assert_eq!(gw.subscriber_count(), 2);
        gw.unsubscribe(sub1.id).unwrap();
        assert!(matches!(
            gw.unsubscribe(sub1.id),
            Err(GatewayError::NoSuchSubscription(_))
        ));
        assert_eq!(gw.subscriber_count(), 1);
        // Dropping the receiver makes the next publish prune the subscription.
        drop(sub2);
        gw.publish(&ev("h", "X", 1.0, 1));
        assert_eq!(gw.subscriber_count(), 0);
    }

    #[test]
    fn threshold_subscription_reduces_delivered_volume() {
        let gw = EventGateway::new(GatewayConfig::open("gw1"));
        let everything = gw.subscribe().as_consumer("all").open().unwrap();
        let filtered = gw
            .subscribe()
            .stream()
            .filter(EventFilter::Above(50.0))
            .as_consumer("ops")
            .open()
            .unwrap();
        for i in 0..100 {
            gw.publish(&ev("h", "CPU_TOTAL", (i % 10) as f64 * 10.0, i));
        }
        let all_count = everything.events.try_iter().count();
        let filtered_count = filtered.events.try_iter().count();
        assert_eq!(all_count, 100);
        assert!(
            filtered_count < 50,
            "only the >50% readings: {filtered_count}"
        );
        assert!(filtered_count > 0);
        let report = gw.delivery_report();
        assert_eq!(report.len(), 2);
        assert!(report
            .iter()
            .any(|r| r.consumer == "ops" && r.delivered == filtered_count as u64));
        assert!(report.iter().all(|r| r.dropped == 0));
    }

    #[test]
    fn bounded_queue_drop_oldest_keeps_freshest_events() {
        let gw = EventGateway::new(GatewayConfig::open("gw1"));
        let sub = gw
            .subscribe()
            .as_consumer("slow")
            .capacity(10)
            .open()
            .unwrap();
        for i in 0..25u64 {
            gw.publish(&ev("h", "CPU_TOTAL", i as f64, i));
        }
        let got: Vec<SharedEvent> = sub.events.try_iter().collect();
        assert_eq!(got.len(), 10, "queue bounded at 10");
        // The oldest were evicted: what remains is the freshest tail.
        let times: Vec<u64> = got.iter().map(|e| e.timestamp.as_secs()).collect();
        assert_eq!(times, (15..25).collect::<Vec<_>>());
        assert_eq!(sub.dropped(), 15);
        assert_eq!(sub.delivered(), 25);
        assert_eq!(gw.stats().events_dropped.load(Ordering::Relaxed), 15);
        let report = gw.delivery_report();
        assert_eq!(report[0].dropped, 15);
    }

    #[test]
    fn bounded_queue_drop_newest_keeps_earliest_events() {
        let gw = EventGateway::new(GatewayConfig::open("gw1"));
        let sub = gw
            .subscribe()
            .as_consumer("slow")
            .capacity(10)
            .on_overflow(OverflowPolicy::DropNewest)
            .open()
            .unwrap();
        for i in 0..25u64 {
            gw.publish(&ev("h", "CPU_TOTAL", i as f64, i));
        }
        let got: Vec<SharedEvent> = sub.events.try_iter().collect();
        let times: Vec<u64> = got.iter().map(|e| e.timestamp.as_secs()).collect();
        assert_eq!(times, (0..10).collect::<Vec<_>>());
        assert_eq!(sub.dropped(), 15);
        assert_eq!(sub.delivered(), 10);
    }

    #[test]
    fn gateway_is_an_event_sink() {
        let gw = EventGateway::new(GatewayConfig::open("gw1"));
        let sub = gw.subscribe().as_consumer("c").open().unwrap();
        let sink: &dyn EventSink<Event> = &gw;
        assert_eq!(sink.accept(&ev("h", "X", 1.0, 1)).unwrap(), 1);
        let batch = [ev("h", "X", 2.0, 2), ev("h", "Y", 3.0, 3)];
        assert_eq!(sink.accept_batch(&batch).unwrap(), 2);
        assert_eq!(sub.events.try_iter().count(), 3);
    }

    #[test]
    fn batch_publish_matches_per_event_publish() {
        let make_subs = |gw: &EventGateway| {
            vec![
                gw.subscribe().as_consumer("all").open().unwrap(),
                gw.subscribe()
                    .filter(EventFilter::EventTypes(vec!["CPU_TOTAL".into()]))
                    .filter(EventFilter::OnChange)
                    .as_consumer("cpu-changes")
                    .open()
                    .unwrap(),
                gw.subscribe()
                    .as_consumer("tiny")
                    .capacity(3)
                    .on_overflow(OverflowPolicy::DropNewest)
                    .open()
                    .unwrap(),
            ]
        };
        let events: Vec<Event> = (0..40u64)
            .map(|i| {
                let ty = if i % 3 == 0 { "CPU_TOTAL" } else { "MEM_FREE" };
                ev("h", ty, (i % 4) as f64, i)
            })
            .collect();
        let one = EventGateway::new(GatewayConfig::open("one"));
        let one_subs = make_subs(&one);
        for e in &events {
            one.publish(e);
        }
        let batch = EventGateway::new(GatewayConfig::open("batch"));
        let mut batch_subs = make_subs(&batch);
        batch.publish_batch(&events);
        for (a, b) in one_subs.into_iter().zip(batch_subs.iter_mut()) {
            let left: Vec<SharedEvent> = a.events.try_iter().collect();
            let right: Vec<SharedEvent> = b.drain();
            assert_eq!(left, right, "same deliveries either way");
            assert_eq!(a.delivered(), b.delivered());
            assert_eq!(a.dropped(), b.dropped());
            assert_eq!(a.bytes(), b.bytes());
        }
        assert_eq!(
            one.stats().events_out.load(Ordering::Relaxed),
            batch.stats().events_out.load(Ordering::Relaxed)
        );
    }

    #[test]
    fn shard_report_accounts_for_routed_traffic() {
        let gw = EventGateway::new(GatewayConfig::open("gw1").with_shards(4));
        assert_eq!(gw.shard_count(), 4);
        let _all = gw.subscribe().as_consumer("all").open().unwrap();
        let _cpu = gw
            .subscribe()
            .filter(EventFilter::EventTypes(vec!["CPU_TOTAL".into()]))
            .as_consumer("cpu")
            .open()
            .unwrap();
        for i in 0..20u64 {
            gw.publish(&ev("h", "CPU_TOTAL", 1.0, i));
            gw.publish(&ev("h", "MEM_FREE", 2.0, i));
        }
        let report = gw.shard_report();
        assert_eq!(report.len(), 4);
        let events_in: u64 = report.iter().map(|r| r.events_in).sum();
        assert_eq!(events_in, 40, "each event routed to exactly one shard");
        let delivered: u64 = report.iter().map(|r| r.delivered).sum();
        assert_eq!(
            delivered,
            gw.stats().events_out.load(Ordering::Relaxed),
            "shard rows add up to the gateway total"
        );
        // The wildcard subscription is reachable from every shard; the
        // typed one only from the shard owning CPU_TOTAL.
        assert!(report.iter().all(|r| r.subscriptions >= 1));
        assert!(report.iter().any(|r| r.subscriptions == 2));
    }

    #[test]
    fn delivery_workers_fan_out_in_parallel() {
        let gw = std::sync::Arc::new(EventGateway::new(
            GatewayConfig::open("gw1")
                .with_shards(4)
                .with_delivery_workers(2),
        ));
        assert_eq!(gw.delivery_worker_count(), 2);
        let sub = gw.subscribe().as_consumer("c").open().unwrap();
        let publishers: Vec<_> = (0..4)
            .map(|p| {
                let gw = std::sync::Arc::clone(&gw);
                std::thread::spawn(move || {
                    for i in 0..250u64 {
                        gw.publish(&ev("h", &format!("TYPE_{p}"), i as f64, i));
                    }
                })
            })
            .collect();
        for h in publishers {
            h.join().unwrap();
        }
        gw.quiesce();
        assert_eq!(gw.stats().events_in.load(Ordering::Relaxed), 1_000);
        assert_eq!(gw.stats().events_out.load(Ordering::Relaxed), 1_000);
        assert_eq!(sub.delivered(), 1_000);
        let mut got: Vec<SharedEvent> = sub.events.try_iter().collect();
        assert_eq!(got.len(), 1_000);
        // Per-type ordering survives parallel delivery: a type is pinned to
        // one shard, a shard to one worker.
        got.sort_by_key(|e| e.timestamp);
        for ty in ["TYPE_0", "TYPE_1", "TYPE_2", "TYPE_3"] {
            let times: Vec<u64> = got
                .iter()
                .filter(|e| e.event_type == ty)
                .map(|e| e.timestamp.as_secs())
                .collect();
            assert_eq!(times, (0..250).collect::<Vec<_>>(), "{ty} stayed ordered");
        }
    }

    #[test]
    fn batch_publish_through_workers_delivers_everything_in_type_order() {
        let gw = EventGateway::new(
            GatewayConfig::open("gw1")
                .with_shards(4)
                .with_delivery_workers(2),
        );
        let sub = gw.subscribe().as_consumer("c").open().unwrap();
        let events: Vec<Event> = (0..300u64)
            .map(|i| ev("h", &format!("TYPE_{}", i % 3), i as f64, i))
            .collect();
        // One grouped handoff per worker per chunk, not one send per event.
        for chunk in events.chunks(50) {
            assert_eq!(gw.publish_batch(chunk), 50, "all accepted");
        }
        gw.quiesce();
        assert_eq!(gw.stats().events_out.load(Ordering::Relaxed), 300);
        assert_eq!(sub.delivered(), 300);
        let got: Vec<SharedEvent> = sub.events.try_iter().collect();
        assert_eq!(got.len(), 300);
        for ty in ["TYPE_0", "TYPE_1", "TYPE_2"] {
            let times: Vec<u64> = got
                .iter()
                .filter(|e| e.event_type == ty)
                .map(|e| e.timestamp.as_secs())
                .collect();
            let mut sorted = times.clone();
            sorted.sort_unstable();
            assert_eq!(times, sorted, "{ty} stayed in publish order");
            assert_eq!(times.len(), 100);
        }
    }

    #[test]
    fn acl_restricts_streaming_to_internal_users() {
        let mut acl = AccessControlList::summary_for_others();
        acl.grant(
            Principal::OrgPrefix("/O=Grid/O=LBNL".into()),
            "gateway:gw1",
            [Action::SubscribeStream, Action::Query, Action::Summary],
        );
        let gw = EventGateway::new(GatewayConfig::with_acl("gw1", acl));
        // Internal consumer streams.
        assert!(gw
            .subscribe()
            .as_consumer("/O=Grid/O=LBNL/CN=Dan Gunter")
            .open()
            .is_ok());
        // Off-site consumer cannot stream but can query and get summaries.
        let offsite = "/O=Grid/O=NCSA/CN=Remote";
        assert!(matches!(
            gw.subscribe().as_consumer(offsite).open(),
            Err(GatewayError::AccessDenied(_))
        ));
        gw.publish(&ev("h", "CPU_TOTAL", 42.0, 10));
        assert!(gw.query(offsite, "h", "CPU_TOTAL").unwrap().is_some());
        assert!(gw.summaries(offsite, Timestamp::from_secs(11)).is_ok());
    }

    #[test]
    fn summaries_reflect_published_readings() {
        let gw = EventGateway::new(GatewayConfig::open("gw1"));
        for i in 0..30u64 {
            gw.publish(&ev("h", "CPU_TOTAL", 60.0, 1_000 + i));
        }
        let summaries = gw.summaries("c", Timestamp::from_secs(1_030)).unwrap();
        let one_min = summaries
            .iter()
            .find(|e| e.event_type == "CPU_TOTAL_AVG_1MIN")
            .expect("1-minute summary present");
        assert_eq!(one_min.value(), Some(60.0));
        assert_eq!(one_min.program, "gw1");
    }

    #[test]
    fn query_string_subscriptions_route_and_filter_like_builders() {
        let gw = EventGateway::new(GatewayConfig::open("gw1").with_shards(4));
        let by_text = gw
            .subscribe()
            .stream()
            .matching("(&(type=CPU_TOTAL)(val>50))")
            .as_consumer("text")
            .open()
            .unwrap();
        let by_builder = gw
            .subscribe()
            .stream()
            .filter(EventFilter::EventTypes(vec!["CPU_TOTAL".into()]))
            .filter(EventFilter::Above(50.0))
            .as_consumer("builder")
            .open()
            .unwrap();
        // Both are typed: together they occupy exactly one routing shard
        // slot each (the shard owning CPU_TOTAL), not every shard.
        let occupied: usize = gw.shard_report().iter().map(|s| s.subscriptions).sum();
        assert_eq!(occupied, 2, "query-string subscription is routed by type");
        for i in 0..40u64 {
            gw.publish(&ev("h", "CPU_TOTAL", (i % 10) as f64 * 10.0, i));
            gw.publish(&ev("h", "MEM_FREE", 99.0, i));
        }
        let text_events: Vec<SharedEvent> = by_text.events.try_iter().collect();
        let builder_events: Vec<SharedEvent> = by_builder.events.try_iter().collect();
        assert_eq!(text_events, builder_events, "same plan either way");
        assert!(!text_events.is_empty());
        // A malformed query surfaces as an error, not a panic.
        assert!(matches!(
            gw.subscribe().matching("(type=").as_consumer("bad").open(),
            Err(GatewayError::BadQuery(_))
        ));
    }

    #[test]
    fn repeated_matching_calls_and_combine() {
        let gw = EventGateway::new(GatewayConfig::open("gw1"));
        let sub = gw
            .subscribe()
            .matching("(type=CPU_TOTAL)")
            .matching("(val>50)")
            .as_consumer("c")
            .open()
            .unwrap();
        gw.publish(&ev("h", "CPU_TOTAL", 80.0, 1)); // passes both
        gw.publish(&ev("h", "CPU_TOTAL", 10.0, 2)); // fails the second
        gw.publish(&ev("h", "MEM_FREE", 80.0, 3)); // fails the first
        let got: Vec<SharedEvent> = sub.events.try_iter().collect();
        assert_eq!(got.len(), 1, "both query strings constrain the stream");
        assert_eq!(got[0].value(), Some(80.0));
        assert_eq!(got[0].event_type, "CPU_TOTAL");
    }

    #[test]
    fn query_matching_answers_a_plan_over_the_whole_cache() {
        use jamm_core::query::Predicate;
        let gw = EventGateway::new(GatewayConfig::open("gw1"));
        for i in 0..10u64 {
            gw.publish(&ev("h1", "CPU_TOTAL", i as f64, i));
            gw.publish(&ev("h2", "CPU_TOTAL", 90.0, i));
            gw.publish(&ev("h1", "MEM_FREE", 5.0, i));
        }
        let plan = Predicate::parse("(&(type=CPU_TOTAL)(val>50))")
            .unwrap()
            .compile();
        let hits = gw.query_matching("c", &plan).unwrap();
        assert_eq!(hits.len(), 1, "only h2's latest CPU reading is >50");
        assert_eq!(hits[0].host, "h2");
        let all = gw
            .query_matching("c", &Predicate::everything().compile())
            .unwrap();
        assert_eq!(all.len(), 3, "one latest event per live series");
    }

    #[test]
    fn qos_retier_moves_a_stalled_subscriber_to_probation_and_back() {
        let gw = EventGateway::new(GatewayConfig::open("gw1").with_qos(QosConfig {
            retier_every: u64::MAX, // driven manually below
            ..QosConfig::default()
        }));
        let mut fast = gw
            .subscribe()
            .as_consumer("fast")
            .capacity(64)
            .open()
            .unwrap();
        let mut stalled = gw
            .subscribe()
            .as_consumer("stalled")
            .capacity(64)
            .open()
            .unwrap();
        for round in 0..6u64 {
            for i in 0..64u64 {
                gw.publish(&ev("h", "CPU_TOTAL", i as f64, round * 64 + i));
            }
            fast.drain();
            gw.retier_now();
        }
        let tier_of =
            |rows: &[TierRow], name: &str| rows.iter().find(|r| r.consumer == name).unwrap().tier;
        let rows = gw.tier_report();
        assert_eq!(tier_of(&rows, "fast"), Tier::Fast, "draining consumer");
        assert_eq!(tier_of(&rows, "stalled"), Tier::Probation, "full queue");
        assert!(
            gw.delivery_report()
                .iter()
                .find(|r| r.consumer == "stalled")
                .unwrap()
                .dropped
                > 0
        );
        // Once the consumer drains again, hysteresis walks it back down.
        for round in 0..8u64 {
            for i in 0..8u64 {
                gw.publish(&ev("h", "CPU_TOTAL", i as f64, 1_000 + round * 8 + i));
            }
            fast.drain();
            stalled.drain();
            gw.retier_now();
        }
        assert_eq!(tier_of(&gw.tier_report(), "stalled"), Tier::Fast);
    }

    #[test]
    fn overload_sheds_raw_events_but_never_summaries_or_lifelines() {
        use crate::qos::{protected, ShedLevel};
        let gw = EventGateway::new(GatewayConfig::open("gw1").with_qos(QosConfig {
            retier_every: u64::MAX,
            ..QosConfig::default()
        }));
        let sub = gw.subscribe().as_consumer("c").open().unwrap();
        gw.set_external_pressure(1.0);
        gw.retier_now();
        assert_eq!(gw.qos_snapshot().unwrap().level, ShedLevel::All);
        // A raw event is shed even to a fast-tier subscription...
        gw.publish(&ev("h", "CPU_TOTAL", 1.0, 1));
        // ...but the plane's own lifelines and summary events pass.
        let lifeline = Event::builder("_jamm", "h")
            .level(Level::Usage)
            .event_type("JAMM_GW_PUB")
            .timestamp(Timestamp::from_secs(2))
            .build();
        let summary = Event::builder("gw1", "h")
            .level(Level::Usage)
            .event_type("CPU_TOTAL_AVG_1MIN")
            .timestamp(Timestamp::from_secs(3))
            .value(1.0)
            .build();
        gw.publish(&lifeline);
        gw.publish(&summary);
        let got: Vec<SharedEvent> = sub.events.try_iter().collect();
        assert_eq!(got.len(), 2, "only the protected streams survived");
        assert!(got.iter().all(protected));
        let snap = gw.qos_snapshot().unwrap();
        assert_eq!(snap.shed[Tier::Fast as usize], 1);
        assert_eq!(sub.dropped(), 1);
        // Pressure released: de-escalation is one level per pass.
        gw.set_external_pressure(0.0);
        gw.retier_now();
        assert_eq!(gw.qos_snapshot().unwrap().level, ShedLevel::Lagging);
        gw.retier_now();
        gw.retier_now();
        assert_eq!(gw.qos_snapshot().unwrap().level, ShedLevel::None);
        gw.publish(&ev("h", "CPU_TOTAL", 2.0, 4));
        assert_eq!(sub.events.try_iter().count(), 1, "shedding stopped");
    }

    #[test]
    fn tier_pools_deliver_each_event_exactly_once_per_subscription() {
        let gw = EventGateway::new(
            GatewayConfig::open("gw1")
                .with_shards(4)
                .with_delivery_workers(1)
                .with_qos(QosConfig {
                    retier_every: u64::MAX,
                    ..QosConfig::default()
                }),
        );
        // One pool per tier: 2 fast + 1 lagging + 1 probation workers.
        assert_eq!(gw.delivery_worker_count(), 4);
        let sub = gw.subscribe().as_consumer("c").open().unwrap();
        for i in 0..100u64 {
            gw.publish(&ev("h", "CPU_TOTAL", i as f64, i));
        }
        let events: Vec<Event> = (100..200u64)
            .map(|i| ev("h", "MEM_FREE", i as f64, i))
            .collect();
        gw.publish_batch(&events);
        gw.quiesce();
        assert_eq!(sub.delivered(), 200, "fast pool delivers, others skip");
        assert_eq!(sub.events.try_iter().count(), 200);
        assert_eq!(gw.stats().events_in.load(Ordering::Relaxed), 200);
        let ingest: u64 = gw.shard_report().iter().map(|r| r.events_in).sum();
        assert_eq!(ingest, 200, "shard ingest counted once, not per pool");
    }

    #[test]
    fn on_change_filter_state_is_per_subscription() {
        let gw = EventGateway::new(GatewayConfig::open("gw1"));
        let s1 = gw
            .subscribe()
            .filter(EventFilter::OnChange)
            .as_consumer("a")
            .open()
            .unwrap();
        gw.publish(&ev("h", "NETSTAT_RETRANS", 5.0, 1));
        gw.publish(&ev("h", "NETSTAT_RETRANS", 5.0, 2));
        // A subscriber arriving later starts with fresh state.
        let s2 = gw
            .subscribe()
            .filter(EventFilter::OnChange)
            .as_consumer("b")
            .open()
            .unwrap();
        gw.publish(&ev("h", "NETSTAT_RETRANS", 5.0, 3));
        gw.publish(&ev("h", "NETSTAT_RETRANS", 7.0, 4));
        assert_eq!(s1.events.try_iter().count(), 2, "first + change");
        assert_eq!(s2.events.try_iter().count(), 2, "first seen + change");
    }
}
