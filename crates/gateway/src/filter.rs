//! Per-subscription event filters.
//!
//! "The consumer may request all event data, or only to be notified of
//! certain types of events.  For example the netstat sensor may output the
//! value of the TCP retransmission counter every second, but most consumers
//! only want to be notified when the counter changes. ...  A consumer can
//! also request that an event be sent only if its value crosses a certain
//! threshold.  Examples of such a threshold would be if CPU load becomes
//! greater than 50%, or if load changes by more than 20%." (§2.2)
//!
//! [`EventFilter`] is the builder-style surface consumers compose; since
//! the query-plane refactor a [`FilterChain`] lowers the filters into one
//! [`jamm_core::query::Predicate`] and evaluates events through its
//! compiled [`Plan`] — the same evaluator the archive's historical scans
//! and the directory's searches run.  Stateful predicates (on-change,
//! crosses, relative-change) keep their per-series memory inside the plan,
//! keyed by interned [`jamm_core::intern::Sym`] pairs, so the hot path
//! allocates nothing per event.

use jamm_core::query::{Plan, Predicate, ValueCmp};
use jamm_core::Sym;
use jamm_ulm::{Event, Level};

/// A single filter predicate.  A subscription carries a list of filters
/// that must all pass ([`FilterChain`]).
#[derive(Debug, Clone, PartialEq)]
pub enum EventFilter {
    /// Pass every event.
    All,
    /// Pass only the listed event types.
    EventTypes(Vec<String>),
    /// Pass only events from the listed hosts.
    Hosts(Vec<String>),
    /// Pass only events whose severity is at least this level
    /// (Warning passes Error, etc.).
    MinLevel(Level),
    /// Pass an event only when its `VAL` reading differs from the previous
    /// reading of the same (host, event type).
    OnChange,
    /// Pass an event only when its `VAL` reading is above the threshold.
    Above(f64),
    /// Pass an event only when its `VAL` reading is below the threshold.
    Below(f64),
    /// Pass an event only when its `VAL` reading crosses the threshold in
    /// either direction relative to the previous reading (the "CPU load
    /// becomes greater than 50%" request).
    Crosses(f64),
    /// Pass an event only when its `VAL` reading changed by more than the
    /// given fraction relative to the previous reading ("load changes by more
    /// than 20%" is `RelativeChange(0.2)`).
    RelativeChange(f64),
}

impl EventFilter {
    /// Lower this builder-style filter into the query-plane IR.
    pub fn to_predicate(&self) -> Predicate {
        match self {
            EventFilter::All => Predicate::True,
            EventFilter::EventTypes(types) => Predicate::EventTypes(types.clone()),
            EventFilter::Hosts(hosts) => Predicate::Hosts(hosts.clone()),
            EventFilter::MinLevel(min) => Predicate::MinLevel(min.severity()),
            EventFilter::OnChange => Predicate::OnChange,
            EventFilter::Above(t) => Predicate::Value(ValueCmp::Gt, *t),
            EventFilter::Below(t) => Predicate::Value(ValueCmp::Lt, *t),
            EventFilter::Crosses(t) => Predicate::Crosses(*t),
            EventFilter::RelativeChange(frac) => Predicate::RelativeChange(*frac),
        }
    }
}

/// A subscription's filter conjunction, compiled to a query-plane
/// [`Plan`].
///
/// Cloning a chain clones the predicate but starts **fresh** stateful
/// memory (a clone is a new subscription's view, not a fork of another
/// subscriber's change-tracking).
#[derive(Debug, Clone)]
pub struct FilterChain {
    pred: Predicate,
    plan: Plan,
}

impl Default for FilterChain {
    fn default() -> Self {
        FilterChain::new(Vec::new())
    }
}

impl FilterChain {
    /// Build a chain from a list of filters (empty list passes everything).
    pub fn new(filters: Vec<EventFilter>) -> Self {
        FilterChain::from_predicate(Predicate::And(
            filters.iter().map(EventFilter::to_predicate).collect(),
        ))
    }

    /// Build a chain from an arbitrary query-plane predicate (e.g. a
    /// parsed query string).
    pub fn from_predicate(pred: Predicate) -> Self {
        let plan = pred.compile();
        FilterChain { pred, plan }
    }

    /// The chain's predicate.
    pub fn predicate(&self) -> &Predicate {
        &self.pred
    }

    /// The compiled plan the chain evaluates through.
    pub fn plan(&self) -> &Plan {
        &self.plan
    }

    /// The event types this chain can ever pass, if the chain constrains
    /// them: the compiled plan's pushdown fact.  `None` means the chain
    /// passes events of any type.
    ///
    /// This is what the sharded router indexes subscriptions by — a
    /// subscription whose chain names explicit event types is registered
    /// only in the routing buckets for those types and is never even
    /// *looked at* when other traffic is published.
    ///
    /// `Some(&[])` (an empty `EventTypes` list, or a disjoint
    /// intersection) means the chain passes **nothing**: the subscription
    /// is registered in no bucket, which is exactly what its filters
    /// would deliver anyway.
    pub fn routed_syms(&self) -> Option<&[Sym]> {
        self.plan.routed_types()
    }

    /// [`FilterChain::routed_syms`] resolved to owned strings (kept for
    /// introspection and tests; the router itself uses the `Sym` form).
    pub fn routed_types(&self) -> Option<Vec<String>> {
        self.routed_syms()
            .map(|syms| syms.iter().map(|s| s.as_str().to_string()).collect())
    }

    /// Evaluate the chain against an event, updating change-tracking state.
    ///
    /// The previous-reading state is updated whenever the event carries a
    /// numeric `VAL`, whether or not the event ultimately passes, so "on
    /// change" and "crosses" behave like the paper describes even when other
    /// predicates in the chain reject a particular event.
    pub fn accept(&self, event: &Event) -> bool {
        self.plan.eval(event)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jamm_ulm::Timestamp;

    fn ev(host: &str, ty: &str, level: Level, value: Option<f64>) -> Event {
        let mut b = Event::builder("prog", host)
            .level(level)
            .event_type(ty)
            .timestamp(Timestamp::from_secs(1));
        if let Some(v) = value {
            b = b.value(v);
        }
        b.build()
    }

    #[test]
    fn event_type_and_host_selection() {
        let c = FilterChain::new(vec![
            EventFilter::EventTypes(vec!["CPU_TOTAL".into()]),
            EventFilter::Hosts(vec!["a".into(), "b".into()]),
        ]);
        assert!(c.accept(&ev("a", "CPU_TOTAL", Level::Usage, Some(1.0))));
        assert!(!c.accept(&ev("c", "CPU_TOTAL", Level::Usage, Some(1.0))));
        assert!(!c.accept(&ev("a", "VMSTAT_FREE_MEMORY", Level::Usage, Some(1.0))));
    }

    #[test]
    fn min_level_floor() {
        let c = FilterChain::new(vec![EventFilter::MinLevel(Level::Warning)]);
        assert!(c.accept(&ev("h", "X", Level::Error, None)));
        assert!(c.accept(&ev("h", "X", Level::Warning, None)));
        assert!(!c.accept(&ev("h", "X", Level::Info, None)));
        assert!(!c.accept(&ev("h", "X", Level::Usage, None)));
    }

    #[test]
    fn on_change_suppresses_repeats_per_host_and_type() {
        let c = FilterChain::new(vec![EventFilter::OnChange]);
        assert!(c.accept(&ev("h", "NETSTAT_RETRANS", Level::Usage, Some(5.0))));
        assert!(!c.accept(&ev("h", "NETSTAT_RETRANS", Level::Usage, Some(5.0))));
        assert!(!c.accept(&ev("h", "NETSTAT_RETRANS", Level::Usage, Some(5.0))));
        assert!(c.accept(&ev("h", "NETSTAT_RETRANS", Level::Usage, Some(6.0))));
        // A different host is tracked independently.
        assert!(c.accept(&ev("h2", "NETSTAT_RETRANS", Level::Usage, Some(6.0))));
    }

    #[test]
    fn paper_example_cpu_above_50() {
        let c = FilterChain::new(vec![
            EventFilter::EventTypes(vec!["CPU_TOTAL".into()]),
            EventFilter::Above(50.0),
        ]);
        assert!(!c.accept(&ev("h", "CPU_TOTAL", Level::Usage, Some(30.0))));
        assert!(c.accept(&ev("h", "CPU_TOTAL", Level::Usage, Some(75.0))));
    }

    #[test]
    fn crossing_fires_on_both_directions_but_not_within_a_side() {
        let c = FilterChain::new(vec![EventFilter::Crosses(50.0)]);
        assert!(!c.accept(&ev("h", "CPU_TOTAL", Level::Usage, Some(30.0))));
        assert!(c.accept(&ev("h", "CPU_TOTAL", Level::Usage, Some(60.0)))); // up-cross
        assert!(!c.accept(&ev("h", "CPU_TOTAL", Level::Usage, Some(70.0)))); // still above
        assert!(c.accept(&ev("h", "CPU_TOTAL", Level::Usage, Some(40.0)))); // down-cross
        assert!(!c.accept(&ev("h", "CPU_TOTAL", Level::Usage, Some(45.0))));
    }

    #[test]
    fn paper_example_load_changes_by_20_percent() {
        let c = FilterChain::new(vec![EventFilter::RelativeChange(0.2)]);
        assert!(c.accept(&ev("h", "CPU_TOTAL", Level::Usage, Some(50.0)))); // first
        assert!(!c.accept(&ev("h", "CPU_TOTAL", Level::Usage, Some(55.0)))); // +10%
        assert!(c.accept(&ev("h", "CPU_TOTAL", Level::Usage, Some(70.0)))); // +27%
        assert!(!c.accept(&ev("h", "CPU_TOTAL", Level::Usage, Some(60.0)))); // -14%
        assert!(c.accept(&ev("h", "CPU_TOTAL", Level::Usage, Some(20.0)))); // -66%
    }

    #[test]
    fn below_filter_and_empty_chain() {
        let below = FilterChain::new(vec![EventFilter::Below(1_000.0)]);
        assert!(below.accept(&ev("h", "VMSTAT_FREE_MEMORY", Level::Usage, Some(500.0))));
        assert!(!below.accept(&ev("h", "VMSTAT_FREE_MEMORY", Level::Usage, Some(5_000.0))));
        let all = FilterChain::new(vec![]);
        assert!(all.accept(&ev("h", "ANYTHING", Level::Usage, None)));
    }

    #[test]
    fn stateful_filters_track_even_when_other_predicates_reject() {
        // Host filter rejects h2 events, but the change tracking for h1 is
        // unaffected by them.
        let c = FilterChain::new(vec![
            EventFilter::Hosts(vec!["h1".into()]),
            EventFilter::OnChange,
        ]);
        assert!(c.accept(&ev("h1", "X", Level::Usage, Some(1.0))));
        assert!(!c.accept(&ev("h2", "X", Level::Usage, Some(2.0))));
        assert!(
            !c.accept(&ev("h1", "X", Level::Usage, Some(1.0))),
            "unchanged"
        );
        assert!(c.accept(&ev("h1", "X", Level::Usage, Some(3.0))));
    }

    #[test]
    fn routed_types_is_the_event_types_intersection() {
        let c = FilterChain::new(vec![
            EventFilter::EventTypes(vec!["A".into(), "B".into()]),
            EventFilter::EventTypes(vec!["B".into(), "C".into()]),
        ]);
        assert_eq!(c.routed_types(), Some(vec!["B".to_string()]));
        let open = FilterChain::new(vec![EventFilter::Above(1.0)]);
        assert_eq!(open.routed_types(), None);
        let closed = FilterChain::new(vec![EventFilter::EventTypes(vec![])]);
        assert_eq!(closed.routed_types(), Some(vec![]));
    }

    #[test]
    fn chains_accept_parsed_query_predicates() {
        let c = FilterChain::from_predicate(
            Predicate::parse("(&(type=CPU_TOTAL)(val>50)(onchange))").unwrap(),
        );
        assert_eq!(c.routed_types(), Some(vec!["CPU_TOTAL".to_string()]));
        assert!(c.accept(&ev("h", "CPU_TOTAL", Level::Usage, Some(75.0))));
        assert!(
            !c.accept(&ev("h", "CPU_TOTAL", Level::Usage, Some(75.0))),
            "unchanged"
        );
        assert!(!c.accept(&ev("h", "CPU_TOTAL", Level::Usage, Some(30.0))));
        assert!(!c.accept(&ev("h", "MEM_FREE", Level::Usage, Some(99.0))));
    }
}
