//! Per-subscription event filters.
//!
//! "The consumer may request all event data, or only to be notified of
//! certain types of events.  For example the netstat sensor may output the
//! value of the TCP retransmission counter every second, but most consumers
//! only want to be notified when the counter changes. ...  A consumer can
//! also request that an event be sent only if its value crosses a certain
//! threshold.  Examples of such a threshold would be if CPU load becomes
//! greater than 50%, or if load changes by more than 20%." (§2.2)

use std::collections::HashMap;

use jamm_ulm::{Event, Level};
/// A single filter predicate.  A subscription carries a list of filters that
/// must all pass ([`FilterChain`]).
#[derive(Debug, Clone, PartialEq)]
pub enum EventFilter {
    /// Pass every event.
    All,
    /// Pass only the listed event types.
    EventTypes(Vec<String>),
    /// Pass only events from the listed hosts.
    Hosts(Vec<String>),
    /// Pass only events whose severity is at least this level
    /// (Warning passes Error, etc.).
    MinLevel(Level),
    /// Pass an event only when its `VAL` reading differs from the previous
    /// reading of the same (host, event type).
    OnChange,
    /// Pass an event only when its `VAL` reading is above the threshold.
    Above(f64),
    /// Pass an event only when its `VAL` reading is below the threshold.
    Below(f64),
    /// Pass an event only when its `VAL` reading crosses the threshold in
    /// either direction relative to the previous reading (the "CPU load
    /// becomes greater than 50%" request).
    Crosses(f64),
    /// Pass an event only when its `VAL` reading changed by more than the
    /// given fraction relative to the previous reading ("load changes by more
    /// than 20%" is `RelativeChange(0.2)`).
    RelativeChange(f64),
}

impl EventFilter {
    /// Whether this filter needs to remember previous readings.
    fn is_stateful(&self) -> bool {
        matches!(
            self,
            EventFilter::OnChange | EventFilter::Crosses(_) | EventFilter::RelativeChange(_)
        )
    }
}

/// Severity ordering helper: is `lvl` at least as severe as `min`?
fn at_least(lvl: Level, min: Level) -> bool {
    severity(lvl) >= severity(min)
}

fn severity(l: Level) -> u8 {
    match l {
        Level::Usage => 0,
        Level::Debug => 1,
        Level::Info => 2,
        Level::Notice => 3,
        Level::Warning => 4,
        Level::Error => 5,
        Level::Critical => 6,
        Level::Alert => 7,
        Level::Emergency => 8,
    }
}

/// A conjunction of filters with the per-(host, event-type) state the
/// stateful predicates need.
#[derive(Debug, Clone, Default)]
pub struct FilterChain {
    filters: Vec<EventFilter>,
    last_value: HashMap<(String, String), f64>,
}

impl FilterChain {
    /// Build a chain from a list of filters (empty list passes everything).
    pub fn new(filters: Vec<EventFilter>) -> Self {
        FilterChain {
            filters,
            last_value: HashMap::new(),
        }
    }

    /// The filters in the chain.
    pub fn filters(&self) -> &[EventFilter] {
        &self.filters
    }

    /// The event types this chain can ever pass, if the chain constrains
    /// them: the intersection of every [`EventFilter::EventTypes`]
    /// predicate.  `None` means the chain passes events of any type.
    ///
    /// This is what the sharded router indexes subscriptions by — a
    /// subscription whose chain names explicit event types is registered
    /// only in the routing buckets for those types and is never even
    /// *looked at* when other traffic is published.
    ///
    /// `Some(vec![])` (an empty `EventTypes` list, or a disjoint
    /// intersection) means the chain passes **nothing**: the subscription
    /// is registered in no bucket, which is exactly what its filters
    /// would deliver anyway.
    pub fn routed_types(&self) -> Option<Vec<String>> {
        let mut acc: Option<Vec<String>> = None;
        for f in &self.filters {
            if let EventFilter::EventTypes(types) = f {
                acc = Some(match acc {
                    None => {
                        let mut t = types.clone();
                        t.sort_unstable();
                        t.dedup();
                        t
                    }
                    Some(prev) => prev.into_iter().filter(|t| types.contains(t)).collect(),
                });
            }
        }
        acc
    }

    /// Evaluate the chain against an event, updating change-tracking state.
    ///
    /// The previous-reading state is updated whenever the event carries a
    /// numeric `VAL`, whether or not the event ultimately passes, so "on
    /// change" and "crosses" behave like the paper describes even when other
    /// predicates in the chain reject a particular event.
    pub fn accept(&mut self, event: &Event) -> bool {
        let key = (event.host.clone(), event.event_type.clone());
        let value = event.value();
        let prev = self.last_value.get(&key).copied();

        let mut pass = true;
        for f in &self.filters {
            let ok = match f {
                EventFilter::All => true,
                EventFilter::EventTypes(types) => types.contains(&event.event_type),
                EventFilter::Hosts(hosts) => hosts.contains(&event.host),
                EventFilter::MinLevel(min) => at_least(event.level, *min),
                EventFilter::OnChange => match (value, prev) {
                    (Some(v), Some(p)) => v != p,
                    (Some(_), None) => true,
                    (None, _) => true,
                },
                EventFilter::Above(t) => value.is_some_and(|v| v > *t),
                EventFilter::Below(t) => value.is_some_and(|v| v < *t),
                EventFilter::Crosses(t) => match (value, prev) {
                    (Some(v), Some(p)) => (p <= *t && v > *t) || (p >= *t && v < *t),
                    (Some(v), None) => v > *t,
                    (None, _) => false,
                },
                EventFilter::RelativeChange(frac) => match (value, prev) {
                    (Some(v), Some(p)) if p.abs() > f64::EPSILON => ((v - p) / p).abs() > *frac,
                    (Some(_), _) => true,
                    (None, _) => false,
                },
            };
            if !ok {
                pass = false;
                break;
            }
        }

        if let Some(v) = value {
            if self.filters.iter().any(EventFilter::is_stateful) {
                self.last_value.insert(key, v);
            }
        }
        pass
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jamm_ulm::Timestamp;

    fn ev(host: &str, ty: &str, level: Level, value: Option<f64>) -> Event {
        let mut b = Event::builder("prog", host)
            .level(level)
            .event_type(ty)
            .timestamp(Timestamp::from_secs(1));
        if let Some(v) = value {
            b = b.value(v);
        }
        b.build()
    }

    #[test]
    fn event_type_and_host_selection() {
        let mut c = FilterChain::new(vec![
            EventFilter::EventTypes(vec!["CPU_TOTAL".into()]),
            EventFilter::Hosts(vec!["a".into(), "b".into()]),
        ]);
        assert!(c.accept(&ev("a", "CPU_TOTAL", Level::Usage, Some(1.0))));
        assert!(!c.accept(&ev("c", "CPU_TOTAL", Level::Usage, Some(1.0))));
        assert!(!c.accept(&ev("a", "VMSTAT_FREE_MEMORY", Level::Usage, Some(1.0))));
    }

    #[test]
    fn min_level_floor() {
        let mut c = FilterChain::new(vec![EventFilter::MinLevel(Level::Warning)]);
        assert!(c.accept(&ev("h", "X", Level::Error, None)));
        assert!(c.accept(&ev("h", "X", Level::Warning, None)));
        assert!(!c.accept(&ev("h", "X", Level::Info, None)));
        assert!(!c.accept(&ev("h", "X", Level::Usage, None)));
    }

    #[test]
    fn on_change_suppresses_repeats_per_host_and_type() {
        let mut c = FilterChain::new(vec![EventFilter::OnChange]);
        assert!(c.accept(&ev("h", "NETSTAT_RETRANS", Level::Usage, Some(5.0))));
        assert!(!c.accept(&ev("h", "NETSTAT_RETRANS", Level::Usage, Some(5.0))));
        assert!(!c.accept(&ev("h", "NETSTAT_RETRANS", Level::Usage, Some(5.0))));
        assert!(c.accept(&ev("h", "NETSTAT_RETRANS", Level::Usage, Some(6.0))));
        // A different host is tracked independently.
        assert!(c.accept(&ev("h2", "NETSTAT_RETRANS", Level::Usage, Some(6.0))));
    }

    #[test]
    fn paper_example_cpu_above_50() {
        let mut c = FilterChain::new(vec![
            EventFilter::EventTypes(vec!["CPU_TOTAL".into()]),
            EventFilter::Above(50.0),
        ]);
        assert!(!c.accept(&ev("h", "CPU_TOTAL", Level::Usage, Some(30.0))));
        assert!(c.accept(&ev("h", "CPU_TOTAL", Level::Usage, Some(75.0))));
    }

    #[test]
    fn crossing_fires_on_both_directions_but_not_within_a_side() {
        let mut c = FilterChain::new(vec![EventFilter::Crosses(50.0)]);
        assert!(!c.accept(&ev("h", "CPU_TOTAL", Level::Usage, Some(30.0))));
        assert!(c.accept(&ev("h", "CPU_TOTAL", Level::Usage, Some(60.0)))); // up-cross
        assert!(!c.accept(&ev("h", "CPU_TOTAL", Level::Usage, Some(70.0)))); // still above
        assert!(c.accept(&ev("h", "CPU_TOTAL", Level::Usage, Some(40.0)))); // down-cross
        assert!(!c.accept(&ev("h", "CPU_TOTAL", Level::Usage, Some(45.0))));
    }

    #[test]
    fn paper_example_load_changes_by_20_percent() {
        let mut c = FilterChain::new(vec![EventFilter::RelativeChange(0.2)]);
        assert!(c.accept(&ev("h", "CPU_TOTAL", Level::Usage, Some(50.0)))); // first
        assert!(!c.accept(&ev("h", "CPU_TOTAL", Level::Usage, Some(55.0)))); // +10%
        assert!(c.accept(&ev("h", "CPU_TOTAL", Level::Usage, Some(70.0)))); // +27%
        assert!(!c.accept(&ev("h", "CPU_TOTAL", Level::Usage, Some(60.0)))); // -14%
        assert!(c.accept(&ev("h", "CPU_TOTAL", Level::Usage, Some(20.0)))); // -66%
    }

    #[test]
    fn below_filter_and_empty_chain() {
        let mut below = FilterChain::new(vec![EventFilter::Below(1_000.0)]);
        assert!(below.accept(&ev("h", "VMSTAT_FREE_MEMORY", Level::Usage, Some(500.0))));
        assert!(!below.accept(&ev("h", "VMSTAT_FREE_MEMORY", Level::Usage, Some(5_000.0))));
        let mut all = FilterChain::new(vec![]);
        assert!(all.accept(&ev("h", "ANYTHING", Level::Usage, None)));
    }

    #[test]
    fn stateful_filters_track_even_when_other_predicates_reject() {
        // Host filter rejects h2 events, but the change tracking for h1 is
        // unaffected by them.
        let mut c = FilterChain::new(vec![
            EventFilter::Hosts(vec!["h1".into()]),
            EventFilter::OnChange,
        ]);
        assert!(c.accept(&ev("h1", "X", Level::Usage, Some(1.0))));
        assert!(!c.accept(&ev("h2", "X", Level::Usage, Some(2.0))));
        assert!(
            !c.accept(&ev("h1", "X", Level::Usage, Some(1.0))),
            "unchanged"
        );
        assert!(c.accept(&ev("h1", "X", Level::Usage, Some(3.0))));
    }
}
