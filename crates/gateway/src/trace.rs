//! Self-lifelines: the monitoring pipeline traced with its own NetLogger
//! instrumentation.
//!
//! The paper diagnoses application bottlenecks by correlating NetLogger
//! events that share an `NL.OID` as an object moves through a system
//! (§4, §6).  [`PipelineTracer`] applies exactly that technique to JAMM
//! itself: a sampled fraction of published events is "watched" through
//! the pipeline, and every stage a watched event passes — publish, route,
//! subscription delivery, consumer drain, edge encode, broadcast, archive
//! append — emits an ordinary ULM event (program `_jamm`, one of the
//! [`jamm_ulm::keys::jamm`] stage types) carrying the shared correlation
//! id.  Those events flow through an internal `_jamm` gateway like any
//! other monitoring data, so the existing netlogger merge / nlv / analysis
//! machinery consumes them unchanged.
//!
//! ## Hot-path cost
//!
//! Identifying a watched event must not tax the events that are *not*
//! watched (the overwhelming majority).  A [`SharedEvent`] is an `Arc`,
//! so its pointer is a process-unique identity while the tracer holds a
//! clone: the tracer keeps a small fixed ring of watched pointers, and a
//! stage check is a handful of relaxed loads and compares — no locks, no
//! allocation, no hashing.  The sampling decision itself is one relaxed
//! `fetch_add` per publish.  Only the sampled path (1 in `sample_every`)
//! allocates, to build the trace events themselves.
//!
//! The ring has [`TRACE_SLOTS`] entries, so a watched event's lifeline is
//! complete as long as its journey finishes within `TRACE_SLOTS ×
//! sample_every` subsequent publishes; after that its slot is recycled and
//! the lifeline is simply truncated — acceptable for sampled diagnostics,
//! and exactly the failure mode the bounded design buys its zero cost
//! with.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use jamm_core::sync::Mutex;
use jamm_ulm::{keys, Event, Level, SharedEvent, Timestamp};

use crate::gateway::EventGateway;

/// Watched-pointer ring size: how many sampled events can be in flight
/// through the pipeline at once before the oldest slot is recycled.
pub const TRACE_SLOTS: usize = 8;

/// Default sampling rate: one publish in 64 is traced.
pub const DEFAULT_SAMPLE_EVERY: u64 = 64;

/// Time source for trace points.
///
/// A live deployment stamps lifeline points with the wall clock; a
/// simulated one (the netsim scenario engine) shares one cell holding
/// simulated microseconds-since-epoch, so stage-to-stage durations are
/// measured in *simulated* time and a run is reproducible bit-for-bit
/// regardless of how fast the host machine executes it.
#[derive(Clone, Debug, Default)]
pub enum TraceClock {
    /// Stamp points with [`Timestamp::now`] (the default).
    #[default]
    Wall,
    /// Stamp points from a shared cell of microseconds since the Unix
    /// epoch, advanced by whoever owns the simulation clock.
    Shared(Arc<AtomicU64>),
}

impl TraceClock {
    /// A shared-cell clock reading `cell` (microseconds since the epoch).
    pub fn shared(cell: Arc<AtomicU64>) -> Self {
        TraceClock::Shared(cell)
    }

    /// The current instant according to this clock.
    pub fn now(&self) -> Timestamp {
        match self {
            TraceClock::Wall => Timestamp::now(),
            TraceClock::Shared(cell) => Timestamp::from_micros(cell.load(Ordering::Relaxed)),
        }
    }
}

struct TraceSlot {
    /// `Arc::as_ptr` of the watched event (0 = empty).  The slot's `keep`
    /// entry holds a clone of the event, so the pointer cannot be
    /// recycled by the allocator while it is watched.
    ptr: AtomicUsize,
    /// Correlation id for this slot's event.
    id: AtomicU64,
}

/// Sampled correlation-id tracing through the event pipeline.
///
/// Created once per [`crate::gateway::GatewayConfig`] deployment (see the
/// jamm facade's `self_monitor` knob) with an internal `_jamm` gateway as
/// its sink; shared by every traced component.  The sink gateway must
/// itself be untraced — giving it a tracer would make every trace event
/// emit further trace events.
pub struct PipelineTracer {
    sink: Arc<EventGateway>,
    host: String,
    clock: TraceClock,
    /// `sample_every - 1` for power-of-two rates (sampling is a mask
    /// test).
    mask: u64,
    publishes: AtomicU64,
    next_id: AtomicU64,
    slots: [TraceSlot; TRACE_SLOTS],
    cursor: AtomicU64,
    /// Keeps each watched event's allocation alive (slot-parallel), so a
    /// watched pointer can never be A-B-A'd by a freed-and-reallocated
    /// event.  Locked only on the sampled path.
    keep: Mutex<[Option<SharedEvent>; TRACE_SLOTS]>,
    sampled: AtomicU64,
    points: AtomicU64,
}

impl std::fmt::Debug for PipelineTracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PipelineTracer")
            .field("sample_every", &(self.mask + 1))
            .field("sampled", &self.sampled_count())
            .field("points", &self.point_count())
            .finish_non_exhaustive()
    }
}

impl PipelineTracer {
    /// A tracer emitting into `sink` (the `_jamm` gateway), stamping its
    /// points with `host`, sampling one publish in `sample_every`
    /// (rounded up to a power of two, minimum 1).
    pub fn new(sink: Arc<EventGateway>, host: impl Into<String>, sample_every: u64) -> Arc<Self> {
        Self::with_clock(sink, host, sample_every, TraceClock::Wall)
    }

    /// Like [`PipelineTracer::new`], but stamping trace points from the
    /// given [`TraceClock`] instead of the wall clock — the hook the
    /// simulated scenario engine uses to keep lifeline durations in
    /// simulated time.
    pub fn with_clock(
        sink: Arc<EventGateway>,
        host: impl Into<String>,
        sample_every: u64,
        clock: TraceClock,
    ) -> Arc<Self> {
        let every = sample_every.max(1).next_power_of_two();
        Arc::new(PipelineTracer {
            sink,
            host: host.into(),
            clock,
            mask: every - 1,
            publishes: AtomicU64::new(0),
            next_id: AtomicU64::new(1),
            slots: std::array::from_fn(|_| TraceSlot {
                ptr: AtomicUsize::new(0),
                id: AtomicU64::new(0),
            }),
            cursor: AtomicU64::new(0),
            keep: Mutex::new(std::array::from_fn(|_| None)),
            sampled: AtomicU64::new(0),
            points: AtomicU64::new(0),
        })
    }

    /// The internal gateway trace events flow through (subscribe to it to
    /// consume the self-lifeline stream).
    pub fn sink(&self) -> &Arc<EventGateway> {
        &self.sink
    }

    /// Effective sampling rate (publishes per sampled lifeline).
    pub fn sample_every(&self) -> u64 {
        self.mask + 1
    }

    /// Lifelines started so far.
    pub fn sampled_count(&self) -> u64 {
        self.sampled.load(Ordering::Relaxed)
    }

    /// Trace points emitted so far (across all stages).
    pub fn point_count(&self) -> u64 {
        self.points.load(Ordering::Relaxed)
    }

    /// Sampling decision at the pipeline entry: called once per publish by
    /// the traced gateway.  The unsampled path is one relaxed `fetch_add`;
    /// the sampled path claims a ring slot and emits the
    /// [`keys::jamm::GW_PUBLISH`] point (`TARGET` = gateway name).
    pub fn on_publish(&self, event: &SharedEvent, gateway: &str) {
        if self.publishes.fetch_add(1, Ordering::Relaxed) & self.mask != 0 {
            return;
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let slot = (self.cursor.fetch_add(1, Ordering::Relaxed) as usize) % TRACE_SLOTS;
        {
            // Keep the allocation alive *before* publishing the pointer.
            let mut keep = self.keep.lock();
            keep[slot] = Some(SharedEvent::clone(event));
        }
        self.slots[slot].id.store(id, Ordering::Relaxed);
        self.slots[slot]
            .ptr
            .store(Arc::as_ptr(event) as usize, Ordering::Release);
        self.sampled.fetch_add(1, Ordering::Relaxed);
        self.emit(id, keys::jamm::GW_PUBLISH, gateway, None);
    }

    /// The correlation id of a watched event, or `None` for the (vastly
    /// more common) unwatched case.  A ring scan: at most [`TRACE_SLOTS`]
    /// relaxed loads, no locks, no allocation.
    #[inline]
    pub fn trace_id(&self, event: &SharedEvent) -> Option<u64> {
        let p = Arc::as_ptr(event) as usize;
        for slot in &self.slots {
            if slot.ptr.load(Ordering::Acquire) == p {
                return Some(slot.id.load(Ordering::Relaxed));
            }
        }
        None
    }

    /// Emit a stage point for a watched event (no-op otherwise).
    #[inline]
    pub fn stage(&self, event: &SharedEvent, stage: &'static str, target: &str) {
        if let Some(id) = self.trace_id(event) {
            self.emit(id, stage, target, None);
        }
    }

    /// Emit a stage point carrying a duration reading (`VAL`,
    /// microseconds) for a watched event.
    #[inline]
    pub fn stage_timed(&self, event: &SharedEvent, stage: &'static str, target: &str, us: f64) {
        if let Some(id) = self.trace_id(event) {
            self.emit(id, stage, target, Some(us));
        }
    }

    /// Emit a stage point for an already-resolved correlation id (for
    /// callers that looked the id up before the event's `Arc` moved on).
    pub fn stage_id(&self, id: u64, stage: &'static str, target: &str) {
        self.emit(id, stage, target, None);
    }

    /// Build and publish one trace point (the sampled slow path — this
    /// allocates, like any event publish).
    fn emit(&self, id: u64, stage: &'static str, target: &str, value_us: Option<f64>) {
        self.points.fetch_add(1, Ordering::Relaxed);
        let mut b = Event::builder("_jamm", self.host.clone())
            .level(Level::Usage)
            .event_type(stage)
            .timestamp(self.clock.now())
            .field(keys::OBJECT_ID, format!("jamm-{id}"))
            .field(keys::TARGET, target.to_string());
        if let Some(us) = value_us {
            b = b.value(us);
        }
        self.sink.publish_shared(Arc::new(b.build()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gateway::GatewayConfig;
    use jamm_core::EventSource;

    fn ev(ty: &str, t: u64) -> SharedEvent {
        Arc::new(
            Event::builder("prog", "h")
                .event_type(ty)
                .timestamp(Timestamp::from_secs(t))
                .build(),
        )
    }

    fn tracer_with_sub(every: u64) -> (Arc<PipelineTracer>, crate::Subscription) {
        let sink = Arc::new(EventGateway::new(GatewayConfig::open("_jamm")));
        let sub = sink
            .subscribe()
            .stream()
            .as_consumer("monitor")
            .open()
            .unwrap();
        (PipelineTracer::new(sink, "test.host", every), sub)
    }

    #[test]
    fn samples_one_in_every_and_correlates_stages() {
        let (tracer, mut sub) = tracer_with_sub(4);
        assert_eq!(tracer.sample_every(), 4);
        let mut watched = Vec::new();
        for i in 0..8 {
            let e = ev("X", i);
            tracer.on_publish(&e, "gw1");
            if let Some(id) = tracer.trace_id(&e) {
                watched.push((e, id));
            }
        }
        assert_eq!(watched.len(), 2, "1-in-4 of 8 publishes");
        // Later stages of a watched event reuse its correlation id.
        for (e, id) in &watched {
            tracer.stage(e, keys::jamm::SUB_DELIVER, "nlv");
            assert_eq!(tracer.trace_id(e), Some(*id));
        }
        // Unwatched events emit nothing.
        tracer.stage(&ev("X", 99), keys::jamm::SUB_DELIVER, "nlv");
        let mut points = Vec::new();
        sub.drain_into(&mut points);
        let publishes = points
            .iter()
            .filter(|e| e.event_type == keys::jamm::GW_PUBLISH)
            .count();
        let delivers: Vec<_> = points
            .iter()
            .filter(|e| e.event_type == keys::jamm::SUB_DELIVER)
            .collect();
        assert_eq!(publishes, 2);
        assert_eq!(delivers.len(), 2);
        // The deliver points carry the watched events' correlation ids.
        let ids: Vec<String> = watched.iter().map(|(_, id)| format!("jamm-{id}")).collect();
        for d in delivers {
            assert!(ids.iter().any(|i| Some(i.as_str()) == d.object_id()));
            assert_eq!(d.field(keys::TARGET).and_then(|v| v.as_str()), Some("nlv"));
        }
    }

    #[test]
    fn ring_recycles_oldest_slot() {
        let (tracer, _sub) = tracer_with_sub(1);
        let first = ev("X", 0);
        tracer.on_publish(&first, "gw");
        assert!(tracer.trace_id(&first).is_some());
        // TRACE_SLOTS further samples overwrite every slot.
        let later: Vec<SharedEvent> = (1..=TRACE_SLOTS as u64).map(|i| ev("X", i)).collect();
        for e in &later {
            tracer.on_publish(e, "gw");
        }
        assert_eq!(tracer.trace_id(&first), None, "oldest slot recycled");
        assert!(later.iter().all(|e| tracer.trace_id(e).is_some()));
        assert_eq!(tracer.sampled_count(), 1 + TRACE_SLOTS as u64);
    }

    #[test]
    fn shared_clock_stamps_points_with_simulated_time() {
        let sink = Arc::new(EventGateway::new(GatewayConfig::open("_jamm")));
        let mut sub = sink
            .subscribe()
            .stream()
            .as_consumer("monitor")
            .open()
            .unwrap();
        let cell = Arc::new(AtomicU64::new(5_000_000));
        let tracer =
            PipelineTracer::with_clock(sink, "sim.host", 1, TraceClock::shared(cell.clone()));
        let e = ev("X", 0);
        tracer.on_publish(&e, "gw");
        cell.store(5_080_000, Ordering::Relaxed);
        tracer.stage(&e, keys::jamm::SUB_DELIVER, "nlv");
        let mut points = Vec::new();
        sub.drain_into(&mut points);
        let stamps: Vec<u64> = points.iter().map(|p| p.timestamp.as_micros()).collect();
        assert_eq!(stamps, vec![5_000_000, 5_080_000]);
    }

    #[test]
    fn sample_every_rounds_to_power_of_two() {
        let sink = Arc::new(EventGateway::new(GatewayConfig::open("_jamm")));
        assert_eq!(PipelineTracer::new(sink.clone(), "h", 0).sample_every(), 1);
        assert_eq!(PipelineTracer::new(sink.clone(), "h", 3).sample_every(), 4);
        assert_eq!(PipelineTracer::new(sink, "h", 64).sample_every(), 64);
    }
}
