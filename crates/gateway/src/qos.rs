//! Delivery tiers and adaptive overload shedding.
//!
//! The paper's scaling claim — added consumers load the gateway, not the
//! monitored host — only holds if one pathological consumer cannot
//! degrade every other subscriber on its shard.  Following the TiFL
//! discipline (tier clients by *observed* responsiveness, re-evaluate
//! continuously), this module classifies each subscription into a
//! [`Tier`] from an EWMA over the delivery counters the router already
//! keeps, and layers two mechanisms on the sharded fan-out:
//!
//! * **per-tier queue budgets** — a lagging subscription may only fill a
//!   fraction of its declared queue bound, so its eviction churn stays
//!   its own;
//! * **declared overload** — when aggregate queue pressure (or an
//!   externally fed gauge such as reactor loop saturation) crosses a
//!   threshold, the gateway sheds deliveries **lowest tier outward**,
//!   while `_jamm` self-lifelines and summary events are never shed
//!   (the plane must stay diagnosable exactly when it is drowning).
//!
//! Both state machines carry hysteresis: a subscription whose score
//! oscillates inside the band never flaps between tiers (asserted by a
//! property test), and the overload state de-escalates one level at a
//! time only after pressure falls below the exit threshold.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};

use jamm_ulm::SharedEvent;

/// A subscription's delivery tier, ordered fastest first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Tier {
    /// Draining at pace: full queue budget, shed last.
    Fast = 0,
    /// Falling behind: reduced queue budget, shed before fast.
    Lagging = 1,
    /// Effectively stalled: minimal budget, shed first.
    Probation = 2,
}

impl Tier {
    /// Every tier, fastest first.
    pub const ALL: [Tier; 3] = [Tier::Fast, Tier::Lagging, Tier::Probation];

    /// Stable lower-case name (metric label, admin rows, `.scn` specs).
    pub fn as_str(self) -> &'static str {
        match self {
            Tier::Fast => "fast",
            Tier::Lagging => "lagging",
            Tier::Probation => "probation",
        }
    }

    /// Inverse of the `repr(u8)` discriminant (atomics store tiers as u8).
    pub fn from_u8(v: u8) -> Tier {
        match v {
            0 => Tier::Fast,
            1 => Tier::Lagging,
            _ => Tier::Probation,
        }
    }
}

impl std::fmt::Display for Tier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Thresholds of the tier classifier.
///
/// The lag score of a subscription is an EWMA of
/// `max(queue_fill, interval_drop_ratio)` — 0 for a consumer keeping
/// pace, approaching 1 for one that is stalled.  Transitions carry
/// hysteresis: a tier is *entered* above its `enter` threshold and only
/// *left* below the (strictly lower) `exit` threshold, so scores
/// oscillating inside `(exit, enter)` never flap.  The invariant
/// `lag_exit <= lag_enter <= probation_exit <= probation_enter` makes
/// the classifier monotone: a strictly slower consumer never lands in a
/// faster tier (both properties are asserted by `prop_qos`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TierPolicy {
    /// Score at which a fast subscription becomes lagging.
    pub lag_enter: f64,
    /// Score below which a lagging subscription returns to fast.
    pub lag_exit: f64,
    /// Score at which a lagging subscription enters probation.
    pub probation_enter: f64,
    /// Score below which a probation subscription returns to lagging.
    pub probation_exit: f64,
    /// EWMA weight of the newest observation (0..=1; 1 = no smoothing).
    pub alpha: f64,
}

impl Default for TierPolicy {
    fn default() -> Self {
        TierPolicy {
            lag_enter: 0.25,
            lag_exit: 0.10,
            probation_enter: 0.60,
            probation_exit: 0.35,
            alpha: 0.5,
        }
    }
}

impl TierPolicy {
    /// One classifier step: the tier a subscription currently in `cur`
    /// with smoothed score `score` belongs to.  Pure, so the property
    /// tests drive it directly.
    pub fn classify(&self, cur: Tier, score: f64) -> Tier {
        match cur {
            Tier::Fast => {
                if score >= self.probation_enter {
                    Tier::Probation
                } else if score >= self.lag_enter {
                    Tier::Lagging
                } else {
                    Tier::Fast
                }
            }
            Tier::Lagging => {
                if score >= self.probation_enter {
                    Tier::Probation
                } else if score < self.lag_exit {
                    Tier::Fast
                } else {
                    Tier::Lagging
                }
            }
            Tier::Probation => {
                if score < self.lag_exit {
                    Tier::Fast
                } else if score < self.probation_exit {
                    Tier::Lagging
                } else {
                    Tier::Probation
                }
            }
        }
    }
}

/// Per-subscription classifier state: the EWMA score, the current tier,
/// and the counter snapshot the next interval's drop ratio is computed
/// against.
#[derive(Debug, Clone)]
pub struct TierState {
    /// Smoothed lag score.
    pub score: f64,
    /// Current assignment.
    pub tier: Tier,
    /// Delivered counter at the last re-tier pass.
    pub last_delivered: u64,
    /// Dropped counter at the last re-tier pass.
    pub last_dropped: u64,
}

impl Default for TierState {
    fn default() -> Self {
        TierState {
            score: 0.0,
            tier: Tier::Fast,
            last_delivered: 0,
            last_dropped: 0,
        }
    }
}

impl TierState {
    /// Fold one raw observation into the EWMA and re-classify.
    pub fn observe(&mut self, raw: f64, policy: &TierPolicy) -> Tier {
        let alpha = policy.alpha.clamp(0.0, 1.0);
        self.score = alpha * raw.clamp(0.0, 1.0) + (1.0 - alpha) * self.score;
        self.tier = policy.classify(self.tier, self.score);
        self.tier
    }
}

/// Overload entry/exit thresholds over the gateway's pressure gauge
/// (aggregate subscription-queue fill, max-combined with any externally
/// fed saturation gauge).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverloadPolicy {
    /// Pressure at which the gateway declares overload and starts
    /// shedding probation-tier deliveries.  Escalation to lagging and
    /// fast raw events happens at evenly spaced steps between `enter`
    /// and 1.0.
    pub enter: f64,
    /// Pressure below which the shed level steps back down (one level
    /// per re-tier pass — de-escalation is gradual, entry is immediate).
    pub exit: f64,
}

impl Default for OverloadPolicy {
    fn default() -> Self {
        OverloadPolicy {
            enter: 0.75,
            exit: 0.40,
        }
    }
}

/// How aggressively the gateway is shedding, ordered by severity.
/// Deliveries to a tier at or below the level's cut are dropped before
/// they reach the queue; protected events (see [`protected`]) always
/// pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
#[derive(Default)]
pub enum ShedLevel {
    /// Normal operation, nothing shed.
    #[default]
    None = 0,
    /// Shed probation-tier deliveries only.
    Probation = 1,
    /// Shed lagging and probation tiers.
    Lagging = 2,
    /// Shed raw events to every tier (protected streams still pass).
    All = 3,
}

impl ShedLevel {
    /// Does this level shed (unprotected) deliveries to `tier`?
    pub fn sheds(self, tier: Tier) -> bool {
        match self {
            ShedLevel::None => false,
            ShedLevel::Probation => tier == Tier::Probation,
            ShedLevel::Lagging => tier >= Tier::Lagging,
            ShedLevel::All => true,
        }
    }

    /// Stable lower-case name for metrics and admin rows.
    pub fn as_str(self) -> &'static str {
        match self {
            ShedLevel::None => "none",
            ShedLevel::Probation => "probation",
            ShedLevel::Lagging => "lagging",
            ShedLevel::All => "all",
        }
    }

    fn from_u8(v: u8) -> ShedLevel {
        match v {
            0 => ShedLevel::None,
            1 => ShedLevel::Probation,
            2 => ShedLevel::Lagging,
            _ => ShedLevel::All,
        }
    }
}

impl std::fmt::Display for ShedLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The overload state machine: escalates immediately on pressure,
/// de-escalates one level per update once below the exit threshold.
#[derive(Debug, Clone, Copy, Default)]
pub struct OverloadState {
    level: ShedLevel,
}

impl OverloadState {
    /// Fold one pressure reading and return the (possibly new) level.
    pub fn update(&mut self, pressure: f64, policy: &OverloadPolicy) -> ShedLevel {
        let enter = policy.enter.clamp(0.0, 1.0);
        let exit = policy.exit.clamp(0.0, enter);
        let span = (1.0 - enter).max(f64::EPSILON);
        let target = if pressure >= enter + span * 0.8 {
            ShedLevel::All
        } else if pressure >= enter + span * 0.4 {
            ShedLevel::Lagging
        } else if pressure >= enter {
            ShedLevel::Probation
        } else {
            ShedLevel::None
        };
        if target > self.level {
            self.level = target; // escalate immediately
        } else if pressure < exit {
            // De-escalate gradually, one level per pass.
            self.level = ShedLevel::from_u8((self.level as u8).saturating_sub(1));
        }
        self.level
    }

    /// The current level.
    pub fn level(&self) -> ShedLevel {
        self.level
    }
}

/// Full QoS configuration attached to a gateway via
/// [`crate::GatewayConfig::with_qos`].
#[derive(Debug, Clone, PartialEq)]
pub struct QosConfig {
    /// Tier classifier thresholds.
    pub tiers: TierPolicy,
    /// Overload entry/exit thresholds.
    pub overload: OverloadPolicy,
    /// Per-tier queue budgets as a fraction of each subscription's
    /// declared capacity, indexed by tier.
    pub budgets: [f64; 3],
    /// Publishes between re-tier passes (the dynamic-tiering cadence).
    /// Counted, not timed, so simulated-clock runs stay deterministic.
    pub retier_every: u64,
    /// Delivery workers per tier when the gateway runs worker delivery:
    /// each tier gets its own pool, so a stalled probation consumer's
    /// delivery cost is confined to the probation pool.
    pub workers_per_tier: [usize; 3],
}

impl Default for QosConfig {
    fn default() -> Self {
        QosConfig {
            tiers: TierPolicy::default(),
            overload: OverloadPolicy::default(),
            budgets: [1.0, 0.5, 0.25],
            retier_every: 512,
            workers_per_tier: [2, 1, 1],
        }
    }
}

/// Monotonic per-tier shed/budget counters.
#[derive(Debug, Default)]
pub struct QosStats {
    shed: [AtomicU64; 3],
    budget_drops: [AtomicU64; 3],
    retiers: AtomicU64,
}

impl QosStats {
    pub(crate) fn record_shed(&self, tier: Tier) {
        self.shed[tier as usize].fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_budget_drop(&self, tier: Tier) {
        self.budget_drops[tier as usize].fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_retier(&self) {
        self.retiers.fetch_add(1, Ordering::Relaxed);
    }

    /// Events shed to `tier` subscriptions under declared overload.
    pub fn shed(&self, tier: Tier) -> u64 {
        self.shed[tier as usize].load(Ordering::Relaxed)
    }

    /// Events dropped by `tier`'s reduced queue budget.
    pub fn budget_drops(&self, tier: Tier) -> u64 {
        self.budget_drops[tier as usize].load(Ordering::Relaxed)
    }

    /// Re-tier passes run.
    pub fn retiers(&self) -> u64 {
        self.retiers.load(Ordering::Relaxed)
    }
}

/// The live QoS plane of one gateway: configuration, the declared
/// overload level (read on the hot path as one atomic load), the
/// pressure gauges, and the shed counters.
#[derive(Debug)]
pub struct QosRuntime {
    /// The configuration the gateway was opened with.
    pub config: QosConfig,
    level: AtomicU8,
    overload: jamm_core::sync::Mutex<OverloadState>,
    pressure_bits: AtomicU64,
    external_bits: AtomicU64,
    /// Shed and budget-drop counters, per tier.
    pub stats: QosStats,
}

impl QosRuntime {
    pub(crate) fn new(config: QosConfig) -> Self {
        QosRuntime {
            config,
            level: AtomicU8::new(ShedLevel::None as u8),
            overload: jamm_core::sync::Mutex::new(OverloadState::default()),
            pressure_bits: AtomicU64::new(0),
            external_bits: AtomicU64::new(0),
            stats: QosStats::default(),
        }
    }

    /// The declared shed level (one relaxed load; the publish hot path).
    pub fn shed_level(&self) -> ShedLevel {
        ShedLevel::from_u8(self.level.load(Ordering::Relaxed))
    }

    /// The queue budget fraction for a tier.
    pub fn budget(&self, tier: Tier) -> f64 {
        self.config.budgets[tier as usize].clamp(0.0, 1.0)
    }

    /// The pressure reading of the last re-tier pass.
    pub fn pressure(&self) -> f64 {
        f64::from_bits(self.pressure_bits.load(Ordering::Relaxed))
    }

    /// Feed an external saturation gauge (e.g. the reactor event loop's
    /// saturation fraction); max-combined with queue pressure at the
    /// next re-tier pass.
    pub fn set_external_pressure(&self, saturation: f64) {
        self.external_bits
            .store(saturation.clamp(0.0, 1.0).to_bits(), Ordering::Relaxed);
    }

    /// Fold the aggregate queue fill into the overload machine and
    /// publish the new shed level.  Called from the re-tier pass.
    pub(crate) fn update_overload(&self, queue_fill: f64) -> ShedLevel {
        let external = f64::from_bits(self.external_bits.load(Ordering::Relaxed));
        let pressure = queue_fill.max(external);
        self.pressure_bits
            .store(pressure.to_bits(), Ordering::Relaxed);
        let level = self.overload.lock().update(pressure, &self.config.overload);
        self.level.store(level as u8, Ordering::Relaxed);
        level
    }
}

/// A point-in-time snapshot of a gateway's QoS plane, for admin stats
/// and metrics collection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QosSnapshot {
    /// Declared shed level.
    pub level: ShedLevel,
    /// Pressure reading of the last re-tier pass.
    pub pressure: f64,
    /// Events shed per tier under overload, indexed by tier.
    pub shed: [u64; 3],
    /// Events dropped by per-tier queue budgets, indexed by tier.
    pub budget_drops: [u64; 3],
    /// Re-tier passes run.
    pub retiers: u64,
}

impl QosRuntime {
    /// Snapshot the shed level, pressure and counters.
    pub fn snapshot(&self) -> QosSnapshot {
        QosSnapshot {
            level: self.shed_level(),
            pressure: self.pressure(),
            shed: [
                self.stats.shed(Tier::Fast),
                self.stats.shed(Tier::Lagging),
                self.stats.shed(Tier::Probation),
            ],
            budget_drops: [
                self.stats.budget_drops(Tier::Fast),
                self.stats.budget_drops(Tier::Lagging),
                self.stats.budget_drops(Tier::Probation),
            ],
            retiers: self.stats.retiers(),
        }
    }
}

/// One row of [`crate::EventGateway::tier_report`].
#[derive(Debug, Clone, PartialEq)]
pub struct TierRow {
    /// Subscription id.
    pub id: u64,
    /// Consumer principal.
    pub consumer: String,
    /// Current tier assignment.
    pub tier: Tier,
    /// Smoothed lag score (0 = keeping pace, 1 = stalled).
    pub score: f64,
    /// Events currently queued.
    pub queue_len: usize,
    /// Declared queue capacity.
    pub capacity: usize,
}

/// Events that must never be shed: the monitoring plane's own
/// self-lifelines (`PROG == "_jamm"`) and summary events (the
/// `*_AVG_<window>` series the summary engine emits) — under overload
/// the plane degrades to summaries, it does not go dark.
pub fn protected(event: &SharedEvent) -> bool {
    event.program == "_jamm" || event.event_type.contains("_AVG_")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classifier_enters_and_exits_with_hysteresis() {
        let p = TierPolicy::default();
        let mut st = TierState::default();
        assert_eq!(st.observe(0.0, &p), Tier::Fast);
        // A sustained high score walks the EWMA over both thresholds.
        for _ in 0..8 {
            st.observe(1.0, &p);
        }
        assert_eq!(st.tier, Tier::Probation);
        // Scores inside the band change nothing.
        let before = st.tier;
        st.observe(0.5, &p);
        assert_eq!(st.tier, before, "inside (probation_exit, probation_enter)");
        // A sustained recovery walks back down through lagging to fast.
        for _ in 0..3 {
            st.observe(0.15, &p);
        }
        assert_eq!(st.tier, Tier::Lagging);
        for _ in 0..8 {
            st.observe(0.0, &p);
        }
        assert_eq!(st.tier, Tier::Fast);
    }

    #[test]
    fn overload_escalates_immediately_and_backs_off_gradually() {
        let p = OverloadPolicy {
            enter: 0.5,
            exit: 0.3,
        };
        let mut st = OverloadState::default();
        assert_eq!(st.update(0.2, &p), ShedLevel::None);
        assert_eq!(st.update(0.55, &p), ShedLevel::Probation);
        assert_eq!(st.update(0.95, &p), ShedLevel::All, "straight to the top");
        // Between exit and enter: hold the level (hysteresis).
        assert_eq!(st.update(0.4, &p), ShedLevel::All);
        // Below exit: one level per pass.
        assert_eq!(st.update(0.1, &p), ShedLevel::Lagging);
        assert_eq!(st.update(0.1, &p), ShedLevel::Probation);
        assert_eq!(st.update(0.1, &p), ShedLevel::None);
        assert_eq!(st.update(0.1, &p), ShedLevel::None);
    }

    #[test]
    fn shed_levels_cut_lowest_tier_outward() {
        assert!(!ShedLevel::None.sheds(Tier::Probation));
        assert!(ShedLevel::Probation.sheds(Tier::Probation));
        assert!(!ShedLevel::Probation.sheds(Tier::Lagging));
        assert!(ShedLevel::Lagging.sheds(Tier::Probation));
        assert!(ShedLevel::Lagging.sheds(Tier::Lagging));
        assert!(!ShedLevel::Lagging.sheds(Tier::Fast));
        assert!(ShedLevel::All.sheds(Tier::Fast));
    }

    #[test]
    fn protected_streams_are_never_shed() {
        use jamm_ulm::{Event, Level, Timestamp};
        let lifeline = std::sync::Arc::new(
            Event::builder("_jamm", "h")
                .level(Level::Usage)
                .event_type("JAMM_GW_PUB")
                .timestamp(Timestamp::from_secs(1))
                .build(),
        );
        let summary = std::sync::Arc::new(
            Event::builder("gw1", "h")
                .level(Level::Usage)
                .event_type("CPU_TOTAL_AVG_1MIN")
                .timestamp(Timestamp::from_secs(1))
                .build(),
        );
        let raw = std::sync::Arc::new(
            Event::builder("vmstat", "h")
                .level(Level::Usage)
                .event_type("CPU_TOTAL")
                .timestamp(Timestamp::from_secs(1))
                .build(),
        );
        assert!(protected(&lifeline));
        assert!(protected(&summary));
        assert!(!protected(&raw));
    }
}
