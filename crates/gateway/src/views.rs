//! Continuous queries: incrementally-maintained materialized views.
//!
//! A *continuous query* is a compiled query-plane [`Plan`] registered on
//! the gateway and maintained on the publish path — the
//! [`crate::summary::SummaryEngine`] generalized from fixed per-series
//! averages to arbitrary predicates with optional group-by / top-k / rate
//! aggregation.  Each published event is evaluated once per view; matches
//! land in a bounded ring (most recent first out) and fold into the view's
//! [`Aggregator`].  Readers never touch any of that: they grab the view's
//! current [`ViewSnapshot`], an immutable `Arc` swapped in periodically,
//! so a million dashboards re-reading a view cost refcount bumps — not
//! rescans, not even a per-reader clone of the data.
//!
//! **Staleness semantics**: snapshots are rebuilt every
//! [`REFRESH_EVERY`] matching updates (and on [`ViewEngine::flush`],
//! which tests and deterministic drivers call), so a reader can lag the
//! publish path by at most `REFRESH_EVERY - 1` matching events.  That is
//! the explicit trade: bounded staleness for contention-free reads.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use jamm_core::intern::Sym;
use jamm_core::query::{AggRow, Aggregator, Plan, Predicate};
use jamm_core::sync::{Mutex, RwLock};
use jamm_ulm::{SharedEvent, Timestamp};

use crate::{GatewayError, Result};

/// Matching updates between automatic snapshot rebuilds.
pub const REFRESH_EVERY: u64 = 64;

/// Most recent matching events a view's ring retains (and thus the most a
/// snapshot exposes).
pub const VIEW_RING_CAPACITY: usize = 1_024;

/// An immutable, shareable read of one view's current contents.  Cheap to
/// hand out (one `Arc` clone) and safe to hold across publishes — it
/// never changes after construction.
#[derive(Debug, Clone)]
pub struct ViewSnapshot {
    /// View name.
    pub name: String,
    /// Canonical text of the view's predicate.
    pub query: String,
    /// Timestamp of the newest event folded in when the snapshot was cut.
    pub as_of: Timestamp,
    /// The most recent matching events, oldest first (bounded by
    /// [`VIEW_RING_CAPACITY`]).
    pub events: Vec<SharedEvent>,
    /// Aggregate rows (group-by / top-k / rate), when the view's query
    /// carries aggregate directives.
    pub aggregates: Vec<AggRow>,
    /// Matching updates folded into the view since registration.
    pub updates: u64,
}

/// Mutable maintenance state of one view, touched only by the publish
/// path (under a mutex — observation is already serialized per gateway
/// by the synchronous observe step).
#[derive(Debug)]
struct ViewState {
    ring: VecDeque<SharedEvent>,
    agg: Option<Aggregator>,
    /// Matching updates since the last snapshot cut.
    dirty: u64,
    /// Newest event timestamp seen.
    as_of: Timestamp,
}

/// One registered continuous query.
#[derive(Debug)]
pub struct ContinuousQuery {
    name: String,
    /// Canonical (display-normalized) predicate text — the lookup key for
    /// "is this query already materialized?".
    text: String,
    plan: Plan,
    state: Mutex<ViewState>,
    snap: RwLock<Arc<ViewSnapshot>>,
    /// Snapshot reads served.
    reads: AtomicU64,
    /// Matching updates folded in.
    updates: AtomicU64,
}

impl ContinuousQuery {
    fn new(name: String, predicate: &Predicate) -> ContinuousQuery {
        let text = predicate.to_string();
        let plan = predicate.compile();
        let agg = plan.aggregate().cloned().map(Aggregator::new);
        let empty = Arc::new(ViewSnapshot {
            name: name.clone(),
            query: text.clone(),
            as_of: Timestamp::EPOCH,
            events: Vec::new(),
            aggregates: Vec::new(),
            updates: 0,
        });
        ContinuousQuery {
            name,
            text,
            plan,
            state: Mutex::new(ViewState {
                ring: VecDeque::with_capacity(VIEW_RING_CAPACITY.min(64)),
                agg,
                dirty: 0,
                as_of: Timestamp::EPOCH,
            }),
            snap: RwLock::new(empty),
            reads: AtomicU64::new(0),
            updates: AtomicU64::new(0),
        }
    }

    /// View name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Canonical predicate text this view materializes.
    pub fn query_text(&self) -> &str {
        &self.text
    }

    /// Snapshot reads served so far.
    pub fn reads(&self) -> u64 {
        self.reads.load(Ordering::Relaxed)
    }

    /// Matching updates folded in so far.
    pub fn updates(&self) -> u64 {
        self.updates.load(Ordering::Relaxed)
    }

    /// Fold one published event in (publish path).  The host/type syms
    /// are already interned by the gateway's observe step.
    fn observe(&self, host: Sym, ty: Sym, event: &SharedEvent) {
        if !self.plan.eval(&**event) {
            return;
        }
        let mut st = self.state.lock();
        if st.ring.len() == VIEW_RING_CAPACITY {
            st.ring.pop_front();
        }
        st.ring.push_back(SharedEvent::clone(event));
        if let Some(agg) = &mut st.agg {
            agg.observe(
                Some(host),
                Some(ty),
                event.timestamp.as_micros(),
                event.value(),
            );
        }
        st.as_of = st.as_of.max(event.timestamp);
        st.dirty += 1;
        let total = self.updates.fetch_add(1, Ordering::Relaxed) + 1;
        if st.dirty >= REFRESH_EVERY {
            self.rebuild(&mut st, total);
        }
    }

    /// Cut a fresh snapshot from the current state.
    fn rebuild(&self, st: &mut ViewState, total_updates: u64) {
        st.dirty = 0;
        let snapshot = Arc::new(ViewSnapshot {
            name: self.name.clone(),
            query: self.text.clone(),
            as_of: st.as_of,
            events: st.ring.iter().cloned().collect(),
            aggregates: st
                .agg
                .as_ref()
                .map(|a| a.rows(st.as_of.as_micros()))
                .unwrap_or_default(),
            updates: total_updates,
        });
        *self.snap.write() = snapshot;
    }

    /// The current snapshot: one read-lock acquisition and one `Arc`
    /// clone, regardless of how much data the view holds.
    pub fn snapshot(&self) -> Arc<ViewSnapshot> {
        self.reads.fetch_add(1, Ordering::Relaxed);
        Arc::clone(&self.snap.read())
    }

    /// Force a snapshot cut if anything changed since the last one.
    pub fn flush(&self) {
        let mut st = self.state.lock();
        if st.dirty > 0 {
            let total = self.updates.load(Ordering::Relaxed);
            self.rebuild(&mut st, total);
        }
    }
}

/// The registry of continuous queries attached to one gateway.
///
/// The view list itself is an `Arc`-swapped immutable snapshot (the same
/// discipline as the routing tables): the publish path reads it with one
/// read-lock + `Arc` clone and registration rebuilds it on the cold path.
#[derive(Debug, Default)]
pub struct ViewEngine {
    views: RwLock<Vec<Arc<ContinuousQuery>>>,
    /// Registered-view count mirrored out of the lock so the publish hot
    /// path pays one relaxed load — not a read-lock — when no views exist.
    active: AtomicU64,
}

impl ViewEngine {
    /// An empty engine.
    pub fn new() -> ViewEngine {
        ViewEngine::default()
    }

    /// Register `text` as a continuous query named `name`.  Re-registering
    /// the same name replaces the view (fresh state).  Errors on a query
    /// that does not parse.
    pub fn register(&self, name: &str, text: &str) -> Result<Arc<ContinuousQuery>> {
        let predicate = Predicate::parse(text)
            .map_err(|e| GatewayError::BadQuery(format!("view {name:?}: {e}")))?;
        let view = Arc::new(ContinuousQuery::new(name.to_string(), &predicate));
        let mut views = self.views.write();
        views.retain(|v| v.name != name);
        views.push(Arc::clone(&view));
        self.active.store(views.len() as u64, Ordering::Relaxed);
        Ok(view)
    }

    /// Number of registered views.
    pub fn len(&self) -> usize {
        self.views.read().len()
    }

    /// True when no views are registered.
    pub fn is_empty(&self) -> bool {
        self.views.read().is_empty()
    }

    /// Fold one published event into every view (publish path).
    pub fn observe(&self, host: Sym, ty: Sym, event: &SharedEvent) {
        if self.active.load(Ordering::Relaxed) == 0 {
            return;
        }
        let views = self.views.read();
        for view in views.iter() {
            view.observe(host, ty, event);
        }
    }

    /// Look up a view by name.
    pub fn by_name(&self, name: &str) -> Option<Arc<ContinuousQuery>> {
        self.views.read().iter().find(|v| v.name == name).cloned()
    }

    /// Look up a view materializing exactly this canonical predicate text
    /// — the facade's "can a view answer this query?" probe.
    pub fn by_query_text(&self, canonical: &str) -> Option<Arc<ContinuousQuery>> {
        self.views
            .read()
            .iter()
            .find(|v| v.text == canonical)
            .cloned()
    }

    /// All registered views.
    pub fn all(&self) -> Vec<Arc<ContinuousQuery>> {
        self.views.read().clone()
    }

    /// Cut fresh snapshots on every view that changed since its last cut.
    /// Deterministic drivers (tests, the scenario engine's sampling tick)
    /// call this so assertions never race the refresh cadence.
    pub fn flush(&self) {
        for view in self.views.read().iter() {
            view.flush();
        }
    }

    /// Total snapshot reads served across views.
    pub fn total_reads(&self) -> u64 {
        self.views.read().iter().map(|v| v.reads()).sum()
    }

    /// Total matching updates folded across views.
    pub fn total_updates(&self) -> u64 {
        self.views.read().iter().map(|v| v.updates()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jamm_ulm::{Event, Level};

    fn ev(host: &str, ty: &str, t: u64, v: f64) -> SharedEvent {
        Arc::new(
            Event::builder("prog", host)
                .level(Level::Usage)
                .event_type(ty)
                .timestamp(Timestamp::from_micros(t))
                .value(v)
                .build(),
        )
    }

    fn feed(engine: &ViewEngine, e: &SharedEvent) {
        let host = Sym::intern(&e.host);
        let ty = Sym::intern(&e.event_type);
        engine.observe(host, ty, e);
    }

    #[test]
    fn views_fold_matches_and_snapshot_after_flush() {
        let engine = ViewEngine::new();
        engine
            .register("hot-cpu", "(&(type=CPU_TOTAL)(val>50))")
            .unwrap();
        feed(&engine, &ev("h1", "CPU_TOTAL", 1_000, 80.0));
        feed(&engine, &ev("h1", "CPU_TOTAL", 2_000, 20.0)); // filtered
        feed(&engine, &ev("h2", "MEM_FREE", 3_000, 90.0)); // filtered
        feed(&engine, &ev("h2", "CPU_TOTAL", 4_000, 60.0));
        let view = engine.by_name("hot-cpu").unwrap();
        // Below the refresh cadence the snapshot is still the empty one.
        assert_eq!(view.snapshot().events.len(), 0);
        engine.flush();
        let snap = view.snapshot();
        assert_eq!(snap.events.len(), 2);
        assert_eq!(snap.updates, 2);
        assert_eq!(snap.as_of, Timestamp::from_micros(4_000));
        assert_eq!(view.updates(), 2);
        assert!(view.reads() >= 2);
    }

    #[test]
    fn snapshots_auto_refresh_on_cadence() {
        let engine = ViewEngine::new();
        engine.register("all", "(&)").unwrap();
        for i in 0..REFRESH_EVERY {
            feed(&engine, &ev("h", "T", i, i as f64));
        }
        let snap = engine.by_name("all").unwrap().snapshot();
        assert_eq!(snap.updates, REFRESH_EVERY);
        assert_eq!(snap.events.len(), REFRESH_EVERY as usize);
    }

    #[test]
    fn ring_is_bounded() {
        let engine = ViewEngine::new();
        engine.register("all", "(&)").unwrap();
        for i in 0..(VIEW_RING_CAPACITY as u64 + 100) {
            feed(&engine, &ev("h", "T", i, 0.0));
        }
        engine.flush();
        let snap = engine.by_name("all").unwrap().snapshot();
        assert_eq!(snap.events.len(), VIEW_RING_CAPACITY);
        // Oldest entries were evicted: the ring starts at event 100.
        assert_eq!(snap.events[0].timestamp.as_micros(), 100);
    }

    #[test]
    fn aggregate_views_maintain_group_rows() {
        let engine = ViewEngine::new();
        engine
            .register(
                "rates",
                "(&(type=CPU_TOTAL)(groupby=host)(topk=2)(rate=1s))",
            )
            .unwrap();
        for i in 0..10u64 {
            feed(
                &engine,
                &ev("busy", "CPU_TOTAL", 1_000_000 + i * 50_000, 1.0),
            );
        }
        feed(&engine, &ev("idle", "CPU_TOTAL", 1_200_000, 1.0));
        feed(&engine, &ev("calm", "CPU_TOTAL", 1_300_000, 1.0));
        engine.flush();
        let snap = engine.by_name("rates").unwrap().snapshot();
        assert_eq!(snap.aggregates.len(), 2, "top-k cuts to 2 groups");
        assert_eq!(snap.aggregates[0].host.unwrap().as_str(), "busy");
        assert_eq!(snap.aggregates[0].count, 10);
        assert!(snap.aggregates[0].rate.unwrap() > snap.aggregates[1].rate.unwrap());
    }

    #[test]
    fn reregistering_replaces_and_lookup_by_text_uses_canonical_form() {
        let engine = ViewEngine::new();
        engine.register("v", "(host=h1)").unwrap();
        engine.register("v", "(host=h2)").unwrap();
        assert_eq!(engine.len(), 1);
        // Lookup key is the *canonical* display form.
        let canonical = Predicate::parse("(host=h2)").unwrap().to_string();
        assert!(engine.by_query_text(&canonical).is_some());
        assert!(engine.by_query_text("(host=h1)").is_none());
        // Bad queries are rejected with BadQuery.
        assert!(matches!(
            engine.register("bad", "(((").unwrap_err(),
            GatewayError::BadQuery(_)
        ));
    }
}
