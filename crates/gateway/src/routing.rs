//! The sharded fan-out engine behind [`crate::EventGateway`].
//!
//! The paper's scalability claim is that "added consumers load the gateway
//! rather than the monitored host" (§2.3) — which only holds if the gateway
//! itself does not collapse as subscriptions accumulate.  The first
//! implementation kept every subscription in one `Mutex<Vec<_>>` and
//! scanned the whole list under the lock for every published event, so the
//! hot path was O(subscribers) with a global serialization point exactly
//! where the paper promises linear scaling.
//!
//! This module replaces that list with a routing table:
//!
//! * subscriptions are **indexed by event type** — a subscription whose
//!   filter chain names explicit event types (see
//!   [`crate::filter::FilterChain::routed_types`]) is registered only in
//!   the buckets for those types; only subscriptions with no type
//!   constraint sit in the per-shard wildcard list;
//! * the table is split across **N shards** by a hash of the event type,
//!   so two publisher threads carrying different event types touch
//!   different shards;
//! * each shard's table is an immutable [`Arc`] snapshot behind a
//!   reader/writer lock.  Publishing clones the `Arc` (a refcount bump
//!   under a briefly-held read lock) and fans out **without any lock
//!   held**; subscribing, unsubscribing and dead-consumer collection
//!   rebuild the snapshot and swap the `Arc` on the cold path;
//! * delivery into a subscription's bounded queue goes through the batch
//!   send primitives of `jamm_core::channel` when events are published in
//!   batches, so a burst costs one queue-lock acquisition per subscription
//!   instead of one per event.
//!
//! [`FlatFanout`] preserves the original flat-list algorithm as a reference
//! implementation: the property tests assert the sharded router delivers
//! exactly the same event sets, and the `e14_gateway_fanout` bench records
//! it as the baseline the sharded engine is compared against.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;

use jamm_core::channel::{bounded, Sender, TrySendError};
use jamm_core::flow::{DeliveryCounters, OverflowPolicy};
use jamm_core::intern::Sym;
use jamm_core::sync::{Mutex, RwLock};
use jamm_ulm::SharedEvent;

use crate::filter::{EventFilter, FilterChain};
use crate::gateway::{DeliveryReport, Subscription};
use crate::qos::{self, QosRuntime, Tier, TierRow, TierState};

/// Default number of routing (and summary) shards a gateway runs with.
pub const DEFAULT_GATEWAY_SHARDS: usize = 8;

/// Where a subscription is registered in the routing table.
#[derive(Debug, Clone)]
enum RouteKeys {
    /// No type constraint: present in every shard's wildcard list.
    Wildcard,
    /// Constrained to these event types (the intersection of the chain's
    /// `EventTypes` predicates, interned): present only in those types'
    /// buckets.
    Types(Vec<Sym>),
}

/// One live subscription as the router sees it.
///
/// Shared (`Arc`) between the routing snapshots that reference it and the
/// router's own registry.  The filter chain's compiled plan carries its
/// own (Sym-keyed, mutex-guarded) per-series memory for stateful
/// predicates, so parallel delivery workers evaluate the same wildcard
/// subscription concurrently through `&FilterChain` with no outer lock.
pub(crate) struct RouteEntry {
    id: u64,
    consumer: String,
    chain: FilterChain,
    routes: RouteKeys,
    tx: Sender<SharedEvent>,
    overflow: OverflowPolicy,
    counters: Arc<DeliveryCounters>,
    /// Set once the consumer side is observed gone; the entry is skipped
    /// thereafter and physically removed by the next garbage collection.
    closed: AtomicBool,
    /// Current delivery tier as a `Tier` discriminant, read on the hot
    /// path with one relaxed load; written by the re-tier pass.
    tier: AtomicU8,
    /// The tier classifier's EWMA state, touched only on the cold
    /// re-tier cadence.
    qos_state: Mutex<TierState>,
}

/// What delivering one event to one subscription did.
enum Delivery {
    /// Pushed into the queue; `true` when an older event was evicted.
    Sent { evicted: bool },
    /// Rejected by the subscription's drop-newest bound.
    Dropped,
    /// The filter chain did not pass the event.
    Filtered,
    /// The consumer is gone; the entry was marked closed.
    Closed,
}

impl RouteEntry {
    fn new(
        id: u64,
        consumer: String,
        chain: FilterChain,
        tx: Sender<SharedEvent>,
        overflow: OverflowPolicy,
        counters: Arc<DeliveryCounters>,
    ) -> Self {
        // The compiled plan already interned the routed types; registering
        // the subscription is a copy of the Sym slice, no re-hashing.
        let routes = match chain.routed_syms() {
            Some(types) => RouteKeys::Types(types.to_vec()),
            None => RouteKeys::Wildcard,
        };
        RouteEntry {
            id,
            consumer,
            chain,
            routes,
            tx,
            overflow,
            counters,
            closed: AtomicBool::new(false),
            tier: AtomicU8::new(Tier::Fast as u8),
            qos_state: Mutex::new(TierState::default()),
        }
    }

    /// The tier the re-tier pass last assigned.
    fn current_tier(&self) -> Tier {
        Tier::from_u8(self.tier.load(Ordering::Relaxed))
    }

    /// QoS admission check, run after the filter chain accepts the
    /// event: returns `true` when the delivery must be dropped before
    /// queueing — shed under declared overload, or rejected by the
    /// tier's reduced queue budget.  Protected streams (`_jamm`
    /// self-lifelines, summary events) always pass.  `extra_queued`
    /// accounts for deliveries already buffered for this entry in the
    /// current batch but not yet in the queue.
    fn qos_gate(&self, event: &SharedEvent, q: &QosRuntime, extra_queued: usize) -> bool {
        if qos::protected(event) {
            return false;
        }
        let tier = self.current_tier();
        if q.shed_level().sheds(tier) {
            q.stats.record_shed(tier);
            self.counters.record_dropped(1);
            return true;
        }
        if tier != Tier::Fast {
            if let Some(cap) = self.tx.capacity() {
                let budget = ((cap as f64) * q.budget(tier)) as usize;
                if budget < cap && self.tx.len() + extra_queued >= budget.max(1) {
                    q.stats.record_budget_drop(tier);
                    self.counters.record_dropped(1);
                    return true;
                }
            }
        }
        false
    }

    /// Evaluate the chain and push one event.  Takes the event by value:
    /// queuing it is a move of the `Arc`, never a copy of the event — the
    /// caller bumps the refcount for all but its last delivery, so a
    /// single-subscriber fan-out moves the published `Arc` straight into
    /// the queue.
    fn deliver(&self, event: SharedEvent, size: u64, qos: Option<&QosRuntime>) -> Delivery {
        if self.closed.load(Ordering::Relaxed) {
            return Delivery::Closed;
        }
        if !self.chain.accept(&event) {
            return Delivery::Filtered;
        }
        if let Some(q) = qos {
            if self.qos_gate(&event, q, 0) {
                return Delivery::Dropped;
            }
        }
        match self.overflow {
            OverflowPolicy::DropOldest => match self.tx.send_overwriting(event) {
                Ok(evicted) => {
                    if evicted {
                        self.counters.record_dropped(1);
                    }
                    self.counters.record_delivered(size);
                    Delivery::Sent { evicted }
                }
                Err(_) => {
                    self.closed.store(true, Ordering::Relaxed);
                    Delivery::Closed
                }
            },
            OverflowPolicy::DropNewest => match self.tx.try_send(event) {
                Ok(()) => {
                    self.counters.record_delivered(size);
                    Delivery::Sent { evicted: false }
                }
                Err(TrySendError::Full(_)) => {
                    self.counters.record_dropped(1);
                    Delivery::Dropped
                }
                Err(TrySendError::Disconnected(_)) => {
                    self.closed.store(true, Ordering::Relaxed);
                    Delivery::Closed
                }
            },
        }
    }
}

/// An immutable routing snapshot for one shard.
#[derive(Default)]
struct ShardTable {
    /// Subscriptions constrained to an event type owned by this shard,
    /// keyed by the interned type: the per-publish lookup hashes a `u32`,
    /// not the event-type string.
    by_type: HashMap<Sym, Vec<Arc<RouteEntry>>>,
    /// Subscriptions with no type constraint (present in every shard).
    wildcard: Vec<Arc<RouteEntry>>,
}

impl ShardTable {
    /// Distinct live subscriptions this shard can deliver to.
    fn subscription_count(&self) -> usize {
        let mut ids: Vec<u64> = self
            .by_type
            .values()
            .flatten()
            .chain(self.wildcard.iter())
            .map(|e| e.id)
            .collect();
        ids.sort_unstable();
        ids.dedup();
        ids.len()
    }
}

/// Per-shard monotonic delivery counters, readable without any lock.
#[derive(Debug, Default)]
struct ShardStats {
    events_in: AtomicU64,
    delivered: AtomicU64,
    dropped: AtomicU64,
    bytes: AtomicU64,
}

/// One row of [`crate::EventGateway::shard_report`]: what one routing shard
/// has seen and done since the gateway started.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardReport {
    /// Shard index, `0..gateway_shards`.
    pub shard: usize,
    /// Distinct subscriptions currently routable in this shard.
    pub subscriptions: usize,
    /// Events routed into this shard (each event hits exactly one shard).
    pub events_in: u64,
    /// Event copies delivered to subscriptions from this shard.
    pub delivered: u64,
    /// Event copies dropped (queue overflow) from this shard.
    pub dropped: u64,
    /// Approximate payload bytes delivered from this shard.
    pub bytes: u64,
}

/// Aggregate result of routing one event (or one batch).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct RouteOutcome {
    /// Event copies pushed into subscription queues.
    pub delivered: u64,
    /// Event copies dropped on full queues (including evictions).
    pub dropped: u64,
    /// Approximate payload bytes delivered.
    pub bytes: u64,
}

struct Shard {
    table: RwLock<Arc<ShardTable>>,
    stats: ShardStats,
}

/// The event-type-indexed, sharded routing table.
pub(crate) struct ShardedRouter {
    shards: Vec<Shard>,
    /// Registry of every live entry in subscription order — the source of
    /// truth the per-shard snapshots are rebuilt from on the cold path.
    entries: Mutex<Vec<Arc<RouteEntry>>>,
    /// Self-lifeline tracer: watched events emit a
    /// [`jamm_ulm::keys::jamm::SUB_DELIVER`] point per subscription queue
    /// they are pushed into.
    tracer: Option<Arc<crate::trace::PipelineTracer>>,
    /// The QoS plane, when the gateway was opened with one: deliveries
    /// pass the shed/budget gate and the re-tier pass runs here.
    qos: Option<Arc<QosRuntime>>,
}

impl ShardedRouter {
    pub(crate) fn new(
        shards: usize,
        tracer: Option<Arc<crate::trace::PipelineTracer>>,
        qos: Option<Arc<QosRuntime>>,
    ) -> Self {
        let shards = shards.max(1);
        ShardedRouter {
            shards: (0..shards)
                .map(|_| Shard {
                    table: RwLock::new(Arc::new(ShardTable::default())),
                    stats: ShardStats::default(),
                })
                .collect(),
            entries: Mutex::new(Vec::new()),
            tracer,
            qos,
        }
    }

    pub(crate) fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard that owns an interned event type: pure integer
    /// arithmetic, no string hashing.
    pub(crate) fn shard_of_sym(&self, ty: Sym) -> usize {
        (crate::hash::mix64(ty.index() as u64) % self.shards.len() as u64) as usize
    }

    /// Shards an entry is registered in.
    fn shards_of_entry(&self, entry: &RouteEntry) -> Vec<usize> {
        match &entry.routes {
            RouteKeys::Wildcard => (0..self.shards.len()).collect(),
            RouteKeys::Types(types) => {
                let mut idxs: Vec<usize> = types.iter().map(|t| self.shard_of_sym(*t)).collect();
                idxs.sort_unstable();
                idxs.dedup();
                idxs
            }
        }
    }

    /// Rebuild one shard's snapshot from the registry and swap it in.
    /// Caller holds the registry lock, so rebuilds are serialized.
    fn rebuild_shard(&self, idx: usize, entries: &[Arc<RouteEntry>]) {
        let mut table = ShardTable::default();
        for entry in entries {
            if entry.closed.load(Ordering::Relaxed) {
                continue;
            }
            match &entry.routes {
                RouteKeys::Wildcard => table.wildcard.push(Arc::clone(entry)),
                RouteKeys::Types(types) => {
                    for t in types {
                        if self.shard_of_sym(*t) == idx {
                            table.by_type.entry(*t).or_default().push(Arc::clone(entry));
                        }
                    }
                }
            }
        }
        *self.shards[idx].table.write() = Arc::new(table);
    }

    /// Register a new subscription, returning the consumer-side handle.
    pub(crate) fn insert(
        &self,
        id: u64,
        consumer: String,
        chain: FilterChain,
        capacity: usize,
        overflow: OverflowPolicy,
    ) -> Subscription {
        let (tx, rx) = bounded(capacity);
        let counters = Arc::new(DeliveryCounters::new());
        let entry = Arc::new(RouteEntry::new(
            id,
            consumer,
            chain,
            tx,
            overflow,
            Arc::clone(&counters),
        ));
        let mut entries = self.entries.lock();
        let affected = self.shards_of_entry(&entry);
        entries.push(entry);
        for idx in affected {
            self.rebuild_shard(idx, &entries);
        }
        Subscription::from_parts(id, rx, counters)
    }

    /// Remove a subscription by id.  Returns whether it existed.
    ///
    /// Removal is cutoff-eventual, not immediate: a publish racing this
    /// call may hold an older shard snapshot (or have already buffered a
    /// batch) and still deliver into the subscription's queue after this
    /// returns.  The old flat list serialized publish and unsubscribe on
    /// one mutex and so gave a hard cutoff — the sharded engine trades
    /// that for a lock-free publish path.  Dropping the `Subscription`
    /// (its receiver) is the hard cutoff: every subsequent send fails.
    pub(crate) fn remove(&self, id: u64) -> bool {
        let mut entries = self.entries.lock();
        let Some(pos) = entries.iter().position(|e| e.id == id) else {
            return false;
        };
        let entry = entries.remove(pos);
        entry.closed.store(true, Ordering::Relaxed);
        for idx in self.shards_of_entry(&entry) {
            self.rebuild_shard(idx, &entries);
        }
        true
    }

    /// Drop every entry marked closed (dead consumers observed during
    /// delivery) and rebuild the shards they were registered in.
    fn gc(&self) {
        let mut entries = self.entries.lock();
        let mut affected: Vec<usize> = Vec::new();
        entries.retain(|e| {
            if e.closed.load(Ordering::Relaxed) {
                affected.extend(self.shards_of_entry(e));
                false
            } else {
                true
            }
        });
        affected.sort_unstable();
        affected.dedup();
        for idx in affected {
            self.rebuild_shard(idx, &entries);
        }
    }

    /// Live subscriptions.
    pub(crate) fn live_count(&self) -> usize {
        self.entries.lock().len()
    }

    /// Per-subscription accounting rows, in subscription order.
    pub(crate) fn delivery_report(&self) -> Vec<DeliveryReport> {
        self.entries
            .lock()
            .iter()
            .map(|e| DeliveryReport {
                id: e.id,
                consumer: e.consumer.clone(),
                delivered: e.counters.delivered(),
                dropped: e.counters.dropped(),
                bytes: e.counters.bytes(),
                tier: e.current_tier(),
            })
            .collect()
    }

    /// Current tier assignment rows, without advancing the classifier.
    pub(crate) fn tier_rows(&self) -> Vec<TierRow> {
        self.entries
            .lock()
            .iter()
            .filter(|e| !e.closed.load(Ordering::Relaxed))
            .map(|e| TierRow {
                id: e.id,
                consumer: e.consumer.clone(),
                tier: e.current_tier(),
                score: e.qos_state.lock().score,
                queue_len: e.tx.len(),
                capacity: e.tx.capacity().unwrap_or(0),
            })
            .collect()
    }

    /// One re-tier pass: fold each subscription's queue fill and
    /// interval drop ratio into its EWMA, re-classify with hysteresis,
    /// and publish the new tier for the hot path's relaxed load.
    /// Returns the new rows plus the aggregate queue-fill fraction (the
    /// overload machine's internal pressure input).
    pub(crate) fn retier(&self, q: &QosRuntime) -> (Vec<TierRow>, f64) {
        let entries = self.entries.lock();
        let mut rows = Vec::with_capacity(entries.len());
        let mut queued_total = 0usize;
        let mut cap_total = 0usize;
        for e in entries.iter() {
            if e.closed.load(Ordering::Relaxed) {
                continue;
            }
            let queue_len = e.tx.len();
            let capacity = e.tx.capacity().unwrap_or(0);
            let delivered = e.counters.delivered();
            let dropped = e.counters.dropped();
            let mut st = e.qos_state.lock();
            let d_del = delivered.saturating_sub(st.last_delivered);
            let d_drop = dropped.saturating_sub(st.last_dropped);
            st.last_delivered = delivered;
            st.last_dropped = dropped;
            let fill = if capacity > 0 {
                queue_len as f64 / capacity as f64
            } else {
                0.0
            };
            let drop_ratio = if d_del + d_drop > 0 {
                d_drop as f64 / (d_del + d_drop) as f64
            } else {
                0.0
            };
            let tier = st.observe(fill.max(drop_ratio), &q.config.tiers);
            e.tier.store(tier as u8, Ordering::Relaxed);
            queued_total += queue_len;
            cap_total += capacity;
            rows.push(TierRow {
                id: e.id,
                consumer: e.consumer.clone(),
                tier,
                score: st.score,
                queue_len,
                capacity,
            });
        }
        q.stats.record_retier();
        let fill = if cap_total > 0 {
            queued_total as f64 / cap_total as f64
        } else {
            0.0
        };
        (rows, fill)
    }

    /// Per-shard accounting rows.
    pub(crate) fn shard_reports(&self) -> Vec<ShardReport> {
        self.shards
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let table = s.table.read().clone();
                ShardReport {
                    shard: i,
                    subscriptions: table.subscription_count(),
                    events_in: s.stats.events_in.load(Ordering::Relaxed),
                    delivered: s.stats.delivered.load(Ordering::Relaxed),
                    dropped: s.stats.dropped.load(Ordering::Relaxed),
                    bytes: s.stats.bytes.load(Ordering::Relaxed),
                }
            })
            .collect()
    }

    /// Route one event: snapshot the owning shard's table and deliver to
    /// the type bucket plus the wildcard list, with no lock held during
    /// delivery.  Each delivery bumps the `Arc` refcount; the final
    /// candidate receives the owned `Arc` itself, so routing to N
    /// subscribers performs exactly N-1 refcount bumps and zero event
    /// copies.
    pub(crate) fn route(&self, ty: Sym, event: SharedEvent) -> RouteOutcome {
        let size = event.approx_size() as u64;
        let idx = self.shard_of_sym(ty);
        let shard = &self.shards[idx];
        shard.stats.events_in.fetch_add(1, Ordering::Relaxed);
        let table = shard.table.read().clone();
        let mut out = RouteOutcome::default();
        let mut saw_closed = false;
        // One watched-ring scan per event, not one per candidate.
        let traced = self.tracer.as_ref().and_then(|t| t.trace_id(&event));
        let typed = table.by_type.get(&ty);
        let mut candidates = typed.into_iter().flatten().chain(table.wildcard.iter());
        let mut current = candidates.next();
        let mut event = Some(event);
        while let Some(entry) = current {
            current = candidates.next();
            // The last candidate takes the owned Arc — no refcount
            // round-trip for the single-subscriber (or final) delivery.
            let ev = match current {
                Some(_) => SharedEvent::clone(event.as_ref().expect("event held until last")),
                None => event.take().expect("event held until last"),
            };
            match entry.deliver(ev, size, self.qos.as_deref()) {
                Delivery::Sent { evicted } => {
                    if let (Some(tracer), Some(id)) = (&self.tracer, traced) {
                        tracer.stage_id(id, jamm_ulm::keys::jamm::SUB_DELIVER, &entry.consumer);
                    }
                    out.delivered += 1;
                    out.bytes += size;
                    if evicted {
                        out.dropped += 1;
                    }
                }
                Delivery::Dropped => out.dropped += 1,
                Delivery::Filtered => {}
                Delivery::Closed => saw_closed = true,
            }
        }
        shard
            .stats
            .delivered
            .fetch_add(out.delivered, Ordering::Relaxed);
        shard
            .stats
            .dropped
            .fetch_add(out.dropped, Ordering::Relaxed);
        shard.stats.bytes.fetch_add(out.bytes, Ordering::Relaxed);
        if saw_closed {
            self.gc();
        }
        out
    }

    /// Route a batch: filters are evaluated per event **in publish order**
    /// (so stateful predicates behave exactly as under per-event routing),
    /// but queue pushes are buffered per subscription and flushed with one
    /// batched send each.  Buffering an event for a subscription is an
    /// `Arc` refcount bump, never a copy.
    pub(crate) fn route_batch(&self, events: &[SharedEvent]) -> RouteOutcome {
        self.route_batch_filtered(events, None)
    }

    /// Route a batch to subscriptions of one tier only.  The per-tier
    /// delivery worker pools each call this with their own tier: a
    /// publish fans out once per pool, but every subscription is
    /// delivered by exactly one pool, so a stalled probation consumer's
    /// queue churn is paid on the probation pool's thread alone.
    pub(crate) fn route_batch_tier(&self, events: &[SharedEvent], tier: Tier) -> RouteOutcome {
        self.route_batch_filtered(events, Some(tier))
    }

    fn route_batch_filtered(
        &self,
        events: &[SharedEvent],
        tier_filter: Option<Tier>,
    ) -> RouteOutcome {
        /// One buffered delivery: the owning shard, payload size, event.
        type Buffered = (usize, u64, SharedEvent);
        let mut snapshots: Vec<Option<Arc<ShardTable>>> = vec![None; self.shards.len()];
        // Per-subscription buffers of (shard, size, event), in first-match
        // order; `index` maps subscription id -> buffer slot.
        let mut buffers: Vec<(Arc<RouteEntry>, Vec<Buffered>)> = Vec::new();
        let mut index: HashMap<u64, usize> = HashMap::new();
        let mut saw_closed = false;
        let mut out = RouteOutcome::default();
        // Per-shard (delivered, bytes, dropped), accumulated locally and
        // flushed with one atomic RMW per counter per shard at the end —
        // not one per delivered event.
        let mut shard_acc: Vec<(u64, u64, u64)> = vec![(0, 0, 0); self.shards.len()];
        // When the tier pools each route the same batch, only the fast
        // pool attributes shard ingest, so `events_in` stays per-event.
        let count_ingest = tier_filter.is_none() || tier_filter == Some(Tier::Fast);
        for event in events {
            let size = event.approx_size() as u64;
            let ty = Sym::intern(&event.event_type);
            let idx = self.shard_of_sym(ty);
            if count_ingest {
                self.shards[idx]
                    .stats
                    .events_in
                    .fetch_add(1, Ordering::Relaxed);
            }
            // Borrow the cached snapshot in place — no per-event Arc
            // refcount round-trip on the table itself.
            let table = snapshots[idx].get_or_insert_with(|| self.shards[idx].table.read().clone());
            let typed = table.by_type.get(&ty);
            for entry in typed.into_iter().flatten().chain(table.wildcard.iter()) {
                if entry.closed.load(Ordering::Relaxed) {
                    saw_closed = true;
                    continue;
                }
                if let Some(t) = tier_filter {
                    if entry.current_tier() != t {
                        continue;
                    }
                }
                if !entry.chain.accept(event) {
                    continue;
                }
                if let Some(q) = self.qos.as_deref() {
                    let queued = index.get(&entry.id).map_or(0, |s| buffers[*s].1.len());
                    if entry.qos_gate(event, q, queued) {
                        out.dropped += 1;
                        shard_acc[idx].2 += 1;
                        continue;
                    }
                }
                let slot = *index.entry(entry.id).or_insert_with(|| {
                    buffers.push((Arc::clone(entry), Vec::new()));
                    buffers.len() - 1
                });
                buffers[slot].1.push((idx, size, SharedEvent::clone(event)));
            }
        }
        for (entry, buffered) in buffers {
            let shard_idxs: Vec<usize> = buffered.iter().map(|(i, _, _)| *i).collect();
            let sizes: Vec<u64> = buffered.iter().map(|(_, s, _)| *s).collect();
            let batch: Vec<SharedEvent> = buffered.into_iter().map(|(_, _, e)| e).collect();
            // (position, correlation id) of watched events, resolved
            // before the batched send moves the `Arc`s away.
            let traced: Vec<(usize, u64)> = match &self.tracer {
                Some(t) => batch
                    .iter()
                    .enumerate()
                    .filter_map(|(i, e)| t.trace_id(e).map(|id| (i, id)))
                    .collect(),
                None => Vec::new(),
            };
            match entry.overflow {
                OverflowPolicy::DropOldest => match entry.tx.send_batch_overwriting(batch) {
                    Ok(evicted) => {
                        if let Some(tracer) = &self.tracer {
                            for (_, id) in &traced {
                                tracer.stage_id(
                                    *id,
                                    jamm_ulm::keys::jamm::SUB_DELIVER,
                                    &entry.consumer,
                                );
                            }
                        }
                        let n = shard_idxs.len() as u64;
                        let bytes: u64 = sizes.iter().sum();
                        entry.counters.record_delivered_n(n, bytes);
                        entry.counters.record_dropped(evicted as u64);
                        out.delivered += n;
                        out.bytes += bytes;
                        out.dropped += evicted as u64;
                        for (pos, idx) in shard_idxs.iter().enumerate() {
                            shard_acc[*idx].0 += 1;
                            shard_acc[*idx].1 += sizes[pos];
                        }
                        // Evicted events may span earlier batches; attribute
                        // the drops to the shard of the first buffered event.
                        if evicted > 0 {
                            shard_acc[shard_idxs[0]].2 += evicted as u64;
                        }
                    }
                    Err(_) => {
                        entry.closed.store(true, Ordering::Relaxed);
                        saw_closed = true;
                    }
                },
                OverflowPolicy::DropNewest => match entry.tx.try_send_batch(batch) {
                    Ok((accepted, rejected)) => {
                        if let Some(tracer) = &self.tracer {
                            for (pos, id) in &traced {
                                if *pos < accepted {
                                    tracer.stage_id(
                                        *id,
                                        jamm_ulm::keys::jamm::SUB_DELIVER,
                                        &entry.consumer,
                                    );
                                }
                            }
                        }
                        let bytes: u64 = sizes[..accepted].iter().sum();
                        entry.counters.record_delivered_n(accepted as u64, bytes);
                        entry.counters.record_dropped(rejected as u64);
                        out.delivered += accepted as u64;
                        out.bytes += bytes;
                        out.dropped += rejected as u64;
                        for (pos, idx) in shard_idxs.iter().enumerate() {
                            if pos < accepted {
                                shard_acc[*idx].0 += 1;
                                shard_acc[*idx].1 += sizes[pos];
                            } else {
                                shard_acc[*idx].2 += 1;
                            }
                        }
                    }
                    Err(_) => {
                        entry.closed.store(true, Ordering::Relaxed);
                        saw_closed = true;
                    }
                },
            }
        }
        for (idx, (delivered, bytes, dropped)) in shard_acc.into_iter().enumerate() {
            let stats = &self.shards[idx].stats;
            if delivered > 0 {
                stats.delivered.fetch_add(delivered, Ordering::Relaxed);
                stats.bytes.fetch_add(bytes, Ordering::Relaxed);
            }
            if dropped > 0 {
                stats.dropped.fetch_add(dropped, Ordering::Relaxed);
            }
        }
        if saw_closed {
            self.gc();
        }
        out
    }
}

/// The original flat-list fan-out, kept as the reference implementation.
///
/// Every subscription lives in one mutex-guarded vector that is scanned
/// linearly — under the lock — for every published event: O(subscribers)
/// work and a global serialization point per event.  The property tests
/// assert the sharded router delivers exactly the same event sets as this
/// list, and the `e14_gateway_fanout` bench records it as the baseline the
/// sharded engine's scaling is measured against.
#[derive(Default)]
pub struct FlatFanout {
    subs: Mutex<Vec<Arc<RouteEntry>>>,
    next_id: AtomicU64,
}

impl FlatFanout {
    /// An empty flat fan-out list.
    pub fn new() -> Self {
        FlatFanout {
            subs: Mutex::new(Vec::new()),
            next_id: AtomicU64::new(1),
        }
    }

    /// Open a subscription with the given filters, queue bound and
    /// overflow policy (the flat-list equivalent of
    /// `EventGateway::subscribe`).
    pub fn subscribe(
        &self,
        filters: Vec<EventFilter>,
        capacity: usize,
        overflow: OverflowPolicy,
    ) -> Subscription {
        let (tx, rx) = bounded(capacity.max(1));
        let counters = Arc::new(DeliveryCounters::new());
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.subs.lock().push(Arc::new(RouteEntry::new(
            id,
            "flat".to_string(),
            FilterChain::new(filters),
            tx,
            overflow,
            Arc::clone(&counters),
        )));
        Subscription::from_parts(id, rx, counters)
    }

    /// Publish one event to every matching subscription, scanning the whole
    /// list under the lock.  Returns the aggregate outcome.
    pub fn publish(&self, event: &SharedEvent) -> RouteOutcome {
        let size = event.approx_size() as u64;
        let mut out = RouteOutcome::default();
        let mut subs = self.subs.lock();
        subs.retain(
            |entry| match entry.deliver(SharedEvent::clone(event), size, None) {
                Delivery::Sent { evicted } => {
                    out.delivered += 1;
                    out.bytes += size;
                    if evicted {
                        out.dropped += 1;
                    }
                    true
                }
                Delivery::Dropped => {
                    out.dropped += 1;
                    true
                }
                Delivery::Filtered => true,
                Delivery::Closed => false,
            },
        );
        out
    }

    /// Live subscriptions.
    pub fn subscriber_count(&self) -> usize {
        self.subs.lock().len()
    }
}

impl std::fmt::Debug for FlatFanout {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlatFanout")
            .field("subscribers", &self.subscriber_count())
            .finish()
    }
}
