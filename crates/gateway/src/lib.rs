//! # jamm-gateway — the JAMM event gateway
//!
//! "Event gateways are responsible for listening for requests from event
//! consumers.  Event gateways can service 'streaming' or 'query' requests
//! from consumers." (§2.2)  The gateway is the *producer* in JAMM's
//! producer/consumer model: the event channel is embedded here, it
//! multiplexes sensor output to any number of consumers, filters what each
//! consumer asked for, computes summary data, and enforces site access
//! policy — all without the monitored host seeing any additional load.
//!
//! * [`filter`] — per-subscription event filters: event-type selection,
//!   on-change delivery, absolute and relative thresholds, severity floors;
//! * [`summary`] — 1/10/60-minute windowed averages of numeric readings,
//!   shardable by series key ([`summary::ShardedSummaryEngine`]);
//! * [`routing`] — the sharded fan-out engine: an event-type-indexed
//!   routing table split across N shards, each an immutable snapshot
//!   swapped on the cold path so publish fans out without holding a lock
//!   (plus [`routing::FlatFanout`], the original flat-list reference the
//!   property tests and the `e14_gateway_fanout` bench compare against);
//! * [`qos`] — the delivery QoS plane: drain-rate tier classification
//!   with hysteresis, per-tier queue budgets and worker pools, and
//!   declared overload shedding that drops lowest-tier raw events first
//!   while summaries and `_jamm` self-lifelines survive;
//! * [`views`] — continuous queries: registered query-plane plans
//!   maintained incrementally on the publish path (the summary engine
//!   generalized to arbitrary predicates plus group-by/top-k/rate
//!   aggregation), snapshot-readable by any number of concurrent
//!   dashboards without rescanning;
//! * [`gateway`] — the [`EventGateway`] itself: publish (as a
//!   [`jamm_core::flow::EventSink`]), the fluent [`SubscriptionBuilder`]
//!   for bounded streaming subscriptions, query (most recent event),
//!   access control, per-subscription and per-shard delivery/drop
//!   accounting, and optional parallel delivery workers.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod filter;
pub mod gateway;
mod hash;
pub mod qos;
pub mod routing;
pub mod summary;
pub mod trace;
pub mod views;

pub use filter::{EventFilter, FilterChain};
pub use gateway::{
    DeliveryReport, EventGateway, GatewayConfig, GatewayStats, Subscription, SubscriptionBuilder,
    DEFAULT_SUBSCRIPTION_CAPACITY,
};
pub use jamm_core::flow::OverflowPolicy;
pub use jamm_core::query::{Plan, Predicate};
pub use qos::{
    OverloadPolicy, QosConfig, QosRuntime, QosSnapshot, ShedLevel, Tier, TierPolicy, TierRow,
};
pub use routing::{FlatFanout, RouteOutcome, ShardReport, DEFAULT_GATEWAY_SHARDS};
pub use summary::{ShardedSummaryEngine, SummaryEngine, SummaryWindow};
pub use trace::{PipelineTracer, TraceClock, DEFAULT_SAMPLE_EVERY};
pub use views::{ContinuousQuery, ViewEngine, ViewSnapshot, VIEW_RING_CAPACITY};

/// Errors returned by gateway operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GatewayError {
    /// The consumer is not allowed to perform the request.
    AccessDenied(String),
    /// The referenced subscription does not exist.
    NoSuchSubscription(u64),
    /// A subscription query string did not parse.
    BadQuery(String),
}

impl std::fmt::Display for GatewayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GatewayError::AccessDenied(what) => write!(f, "access denied: {what}"),
            GatewayError::NoSuchSubscription(id) => write!(f, "no such subscription: {id}"),
            GatewayError::BadQuery(what) => write!(f, "bad query: {what}"),
        }
    }
}

impl std::error::Error for GatewayError {}

/// Convenience result alias.
pub type Result<T> = std::result::Result<T, GatewayError>;
