//! Summary data computation.
//!
//! "The event gateway can also be configured to compute summary data.  For
//! example, it can compute 1, 10, and 60 minute averages of CPU usage, and
//! make this information available to consumers." (§2.2)  The same machinery
//! backs the summary-data service sketched in §7.0 that the network-aware
//! client uses to pick its TCP buffer size.

use std::collections::{HashMap, VecDeque};

use jamm_ulm::{keys, Event, Level, Timestamp};

/// A summary window length.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SummaryWindow {
    /// One minute.
    OneMinute,
    /// Ten minutes.
    TenMinutes,
    /// Sixty minutes.
    OneHour,
}

impl SummaryWindow {
    /// Window length in microseconds.
    pub fn micros(self) -> u64 {
        match self {
            SummaryWindow::OneMinute => 60_000_000,
            SummaryWindow::TenMinutes => 600_000_000,
            SummaryWindow::OneHour => 3_600_000_000,
        }
    }

    /// Suffix appended to the event type of the summary event.
    pub fn suffix(self) -> &'static str {
        match self {
            SummaryWindow::OneMinute => "AVG_1MIN",
            SummaryWindow::TenMinutes => "AVG_10MIN",
            SummaryWindow::OneHour => "AVG_60MIN",
        }
    }

    /// The three windows the paper names.
    pub fn all() -> [SummaryWindow; 3] {
        [
            SummaryWindow::OneMinute,
            SummaryWindow::TenMinutes,
            SummaryWindow::OneHour,
        ]
    }
}

/// Summary statistics for one (host, event type) over one window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Window the summary covers.
    pub window: SummaryWindow,
    /// Number of readings in the window.
    pub count: usize,
    /// Mean reading.
    pub mean: f64,
    /// Minimum reading.
    pub min: f64,
    /// Maximum reading.
    pub max: f64,
}

/// Maintains sliding-window summaries of numeric readings.
#[derive(Debug, Default)]
pub struct SummaryEngine {
    series: HashMap<(String, String), VecDeque<(Timestamp, f64)>>,
}

impl SummaryEngine {
    /// Create an empty engine.
    pub fn new() -> Self {
        SummaryEngine::default()
    }

    /// Record an event's numeric reading (events without a `VAL` are ignored).
    pub fn record(&mut self, event: &Event) {
        let Some(value) = event.value() else { return };
        let key = (event.host.clone(), event.event_type.clone());
        let series = self.series.entry(key).or_default();
        series.push_back((event.timestamp, value));
        // Prune anything older than the longest window to bound memory.
        let horizon = SummaryWindow::OneHour.micros();
        let cutoff = event.timestamp.sub_micros(horizon);
        while series.front().is_some_and(|(t, _)| *t < cutoff) {
            series.pop_front();
        }
    }

    /// Compute the summary of one (host, event type) over one window ending
    /// at `now`.  Returns `None` when the window holds no readings.
    pub fn summary(
        &self,
        host: &str,
        event_type: &str,
        window: SummaryWindow,
        now: Timestamp,
    ) -> Option<Summary> {
        let series = self
            .series
            .get(&(host.to_string(), event_type.to_string()))?;
        let cutoff = now.sub_micros(window.micros());
        let mut count = 0usize;
        let mut sum = 0.0;
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for (t, v) in series.iter().rev() {
            if *t < cutoff || *t > now {
                if *t < cutoff {
                    break;
                }
                continue;
            }
            count += 1;
            sum += v;
            min = min.min(*v);
            max = max.max(*v);
        }
        if count == 0 {
            return None;
        }
        Some(Summary {
            window,
            count,
            mean: sum / count as f64,
            min,
            max,
        })
    }

    /// Produce summary *events* for every tracked series and every requested
    /// window — this is what the gateway hands to consumers who are only
    /// entitled to (or only want) summary data.
    pub fn summary_events(
        &self,
        windows: &[SummaryWindow],
        now: Timestamp,
        gateway_name: &str,
    ) -> Vec<Event> {
        let mut out = Vec::new();
        let mut keys_sorted: Vec<&(String, String)> = self.series.keys().collect();
        keys_sorted.sort();
        for (host, event_type) in keys_sorted {
            for window in windows {
                if let Some(s) = self.summary(host, event_type, *window, now) {
                    out.push(
                        Event::builder(gateway_name, host.clone())
                            .level(Level::Usage)
                            .event_type(format!("{event_type}_{}", window.suffix()))
                            .timestamp(now)
                            .field(keys::SENSOR, "summary")
                            .value(s.mean)
                            .field("MIN", s.min)
                            .field("MAX", s.max)
                            .field("COUNT", s.count as u64)
                            .build(),
                    );
                }
            }
        }
        out
    }

    /// Number of (host, event type) series being tracked.
    pub fn series_count(&self) -> usize {
        self.series.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reading(host: &str, ty: &str, t_secs: u64, value: f64) -> Event {
        Event::builder("vmstat", host)
            .level(Level::Usage)
            .event_type(ty)
            .timestamp(Timestamp::from_secs(t_secs))
            .value(value)
            .build()
    }

    #[test]
    fn one_minute_average_of_cpu_usage() {
        let mut eng = SummaryEngine::new();
        // Readings every 10 s for 2 minutes: 0..12 readings of increasing load.
        for i in 0..12u64 {
            eng.record(&reading("h", "CPU_TOTAL", 1_000 + i * 10, i as f64 * 10.0));
        }
        let now = Timestamp::from_secs(1_000 + 110);
        let one = eng
            .summary("h", "CPU_TOTAL", SummaryWindow::OneMinute, now)
            .unwrap();
        // The last 60 s contain readings at t=1050..1110 -> values 50..110.
        assert_eq!(one.count, 7);
        assert!((one.mean - 80.0).abs() < 1e-9);
        assert_eq!(one.min, 50.0);
        assert_eq!(one.max, 110.0);
        // The 10-minute window sees everything.
        let ten = eng
            .summary("h", "CPU_TOTAL", SummaryWindow::TenMinutes, now)
            .unwrap();
        assert_eq!(ten.count, 12);
        assert!((ten.mean - 55.0).abs() < 1e-9);
    }

    #[test]
    fn empty_window_returns_none() {
        let mut eng = SummaryEngine::new();
        eng.record(&reading("h", "CPU_TOTAL", 100, 10.0));
        let much_later = Timestamp::from_secs(100 + 7_200);
        assert!(eng
            .summary("h", "CPU_TOTAL", SummaryWindow::OneMinute, much_later)
            .is_none());
        assert!(eng
            .summary(
                "h",
                "UNKNOWN",
                SummaryWindow::OneMinute,
                Timestamp::from_secs(100)
            )
            .is_none());
    }

    #[test]
    fn non_numeric_events_are_ignored() {
        let mut eng = SummaryEngine::new();
        let ev = Event::builder("p", "h")
            .event_type("PROC_DIED")
            .timestamp(Timestamp::from_secs(1))
            .build();
        eng.record(&ev);
        assert_eq!(eng.series_count(), 0);
    }

    #[test]
    fn old_readings_are_pruned() {
        let mut eng = SummaryEngine::new();
        for i in 0..200u64 {
            eng.record(&reading("h", "CPU_TOTAL", i * 60, 1.0));
        }
        // Only about an hour's worth (60 one-minute-spaced readings) remains.
        let series = eng
            .series
            .get(&("h".to_string(), "CPU_TOTAL".to_string()))
            .unwrap();
        assert!(series.len() <= 62, "len = {}", series.len());
    }

    #[test]
    fn summary_events_cover_all_series_and_windows() {
        let mut eng = SummaryEngine::new();
        for i in 0..10u64 {
            eng.record(&reading("h1", "CPU_TOTAL", 1_000 + i, 50.0));
            eng.record(&reading("h2", "VMSTAT_FREE_MEMORY", 1_000 + i, 1_000.0));
        }
        let now = Timestamp::from_secs(1_010);
        let events = eng.summary_events(&SummaryWindow::all(), now, "gw1");
        // 2 series x 3 windows.
        assert_eq!(events.len(), 6);
        assert!(events.iter().any(|e| e.event_type == "CPU_TOTAL_AVG_1MIN"));
        assert!(events
            .iter()
            .any(|e| e.event_type == "VMSTAT_FREE_MEMORY_AVG_60MIN"));
        let cpu1 = events
            .iter()
            .find(|e| e.event_type == "CPU_TOTAL_AVG_1MIN")
            .unwrap();
        assert_eq!(cpu1.value(), Some(50.0));
        assert_eq!(cpu1.field_f64("COUNT"), Some(10.0));
    }
}
