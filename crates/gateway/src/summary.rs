//! Summary data computation.
//!
//! "The event gateway can also be configured to compute summary data.  For
//! example, it can compute 1, 10, and 60 minute averages of CPU usage, and
//! make this information available to consumers." (§2.2)  The same machinery
//! backs the summary-data service sketched in §7.0 that the network-aware
//! client uses to pick its TCP buffer size.

use std::collections::{HashMap, VecDeque};

use jamm_core::intern::Sym;
use jamm_core::sync::Mutex;
use jamm_ulm::{keys, Event, Level, Timestamp};

/// A summary window length.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SummaryWindow {
    /// One minute.
    OneMinute,
    /// Ten minutes.
    TenMinutes,
    /// Sixty minutes.
    OneHour,
}

impl SummaryWindow {
    /// Window length in microseconds.
    pub fn micros(self) -> u64 {
        match self {
            SummaryWindow::OneMinute => 60_000_000,
            SummaryWindow::TenMinutes => 600_000_000,
            SummaryWindow::OneHour => 3_600_000_000,
        }
    }

    /// Suffix appended to the event type of the summary event.
    pub fn suffix(self) -> &'static str {
        match self {
            SummaryWindow::OneMinute => "AVG_1MIN",
            SummaryWindow::TenMinutes => "AVG_10MIN",
            SummaryWindow::OneHour => "AVG_60MIN",
        }
    }

    /// The three windows the paper names.
    pub fn all() -> [SummaryWindow; 3] {
        [
            SummaryWindow::OneMinute,
            SummaryWindow::TenMinutes,
            SummaryWindow::OneHour,
        ]
    }
}

/// Summary statistics for one (host, event type) over one window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Window the summary covers.
    pub window: SummaryWindow,
    /// Number of readings in the window.
    pub count: usize,
    /// Mean reading.
    pub mean: f64,
    /// Minimum reading.
    pub min: f64,
    /// Maximum reading.
    pub max: f64,
}

/// Maintains sliding-window summaries of numeric readings.
///
/// A window covers `[now - length, now]`, both edges inclusive: a reading
/// exactly one window-length old still counts, a reading exactly at `now`
/// counts, and a reading after `now` (clock skew) is ignored.
///
/// ```
/// use jamm_gateway::summary::{SummaryEngine, SummaryWindow};
/// use jamm_ulm::{Event, Level, Timestamp};
///
/// let mut engine = SummaryEngine::new();
/// for i in 0..6u64 {
///     engine.record(
///         &Event::builder("vmstat", "h1")
///             .level(Level::Usage)
///             .event_type("CPU_TOTAL")
///             .timestamp(Timestamp::from_secs(1_000 + i * 10))
///             .value(40.0 + i as f64 * 4.0)
///             .build(),
///     );
/// }
/// let s = engine
///     .summary("h1", "CPU_TOTAL", SummaryWindow::OneMinute, Timestamp::from_secs(1_050))
///     .unwrap();
/// assert_eq!(s.count, 6);
/// assert_eq!(s.mean, 50.0);
/// assert_eq!((s.min, s.max), (40.0, 60.0));
/// ```
#[derive(Debug, Default)]
pub struct SummaryEngine {
    /// Series keyed by interned (host, event type): recording a reading
    /// hashes two `u32`s and allocates nothing, where the string-keyed map
    /// used to clone both strings on every lookup-or-insert.
    series: HashMap<(Sym, Sym), VecDeque<(Timestamp, f64)>>,
}

impl SummaryEngine {
    /// Create an empty engine.
    pub fn new() -> Self {
        SummaryEngine::default()
    }

    /// Record an event's numeric reading (events without a `VAL` are ignored).
    ///
    /// Readings are kept in timestamp order even when events arrive out of
    /// order (sensors on different hosts feed one gateway, so modest
    /// reordering is normal); the common in-order case is a plain append.
    pub fn record(&mut self, event: &Event) {
        self.record_interned(
            Sym::intern(&event.host),
            Sym::intern(&event.event_type),
            event,
        );
    }

    /// Record with pre-interned series identity — the gateway interns
    /// host/type once per publish and shares the handles with the query
    /// cache, so recording is pure integer work.
    pub(crate) fn record_interned(&mut self, host: Sym, event_type: Sym, event: &Event) {
        let Some(value) = event.value() else { return };
        let series = self.series.entry((host, event_type)).or_default();
        if series.back().is_some_and(|(t, _)| *t > event.timestamp) {
            let pos = series.partition_point(|(t, _)| *t <= event.timestamp);
            series.insert(pos, (event.timestamp, value));
        } else {
            series.push_back((event.timestamp, value));
        }
        // Prune anything older than the longest window to bound memory —
        // relative to the *newest* reading, so a late arrival never
        // truncates fresher data.
        let horizon = SummaryWindow::OneHour.micros();
        let newest = series.back().map(|(t, _)| *t).unwrap_or(event.timestamp);
        let cutoff = newest.sub_micros(horizon);
        while series.front().is_some_and(|(t, _)| *t < cutoff) {
            series.pop_front();
        }
    }

    /// Compute the summary of one (host, event type) over one window ending
    /// at `now`.  Returns `None` when the window holds no readings.
    pub fn summary(
        &self,
        host: &str,
        event_type: &str,
        window: SummaryWindow,
        now: Timestamp,
    ) -> Option<Summary> {
        // Query path: a never-recorded series has no interned identity;
        // `lookup` avoids growing the intern table for probes.
        let (host, event_type) = (Sym::lookup(host)?, Sym::lookup(event_type)?);
        self.summary_interned(host, event_type, window, now)
    }

    /// Compute one series' summary from already-resolved handles (shared
    /// by the sharded engine so a query resolves each string once).
    pub(crate) fn summary_interned(
        &self,
        host: Sym,
        event_type: Sym,
        window: SummaryWindow,
        now: Timestamp,
    ) -> Option<Summary> {
        let series = self.series.get(&(host, event_type))?;
        summarize(series, window, now)
    }

    /// Produce summary *events* for every tracked series and every requested
    /// window — this is what the gateway hands to consumers who are only
    /// entitled to (or only want) summary data.
    pub fn summary_events(
        &self,
        windows: &[SummaryWindow],
        now: Timestamp,
        gateway_name: &str,
    ) -> Vec<Event> {
        let mut rows = self.summary_rows(windows, now, gateway_name);
        rows.sort_by(|a, b| a.0.cmp(&b.0));
        rows.into_iter().flat_map(|(_, events)| events).collect()
    }

    /// One row per tracked series, unsorted: the resolved series key plus
    /// its summary events for the requested windows (in window order).
    /// The sharded engine collects these under one lock per shard and
    /// merge-sorts across shards.  Keys are resolved to strings here (the
    /// cold path) so the cross-shard ordering matches the seed-era
    /// string-keyed output exactly.
    fn summary_rows(
        &self,
        windows: &[SummaryWindow],
        now: Timestamp,
        gateway_name: &str,
    ) -> Vec<((&'static str, &'static str), Vec<Event>)> {
        self.series
            .iter()
            .map(|((host, ty), series)| {
                let (host, ty) = (host.as_str(), ty.as_str());
                let events = windows
                    .iter()
                    .filter_map(|w| {
                        summarize(series, *w, now)
                            .map(|s| summary_event(gateway_name, host, ty, &s, now))
                    })
                    .collect();
                ((host, ty), events)
            })
            .collect()
    }

    /// Number of (host, event type) series being tracked.
    pub fn series_count(&self) -> usize {
        self.series.len()
    }
}

/// A [`SummaryEngine`] split across N shards by series key, so concurrent
/// publishers (or parallel delivery workers) recording readings for
/// different (host, event type) series do not serialize on one lock.
///
/// One series always lands in one shard, so per-series computations are
/// exactly those of a single [`SummaryEngine`]; only the cross-series
/// aggregation ([`ShardedSummaryEngine::summary_events`]) has to merge.
///
/// ```
/// use jamm_gateway::summary::{ShardedSummaryEngine, SummaryWindow};
/// use jamm_ulm::{Event, Level, Timestamp};
///
/// let engine = ShardedSummaryEngine::new(4);
/// engine.record(
///     &Event::builder("vmstat", "h1")
///         .level(Level::Usage)
///         .event_type("CPU_TOTAL")
///         .timestamp(Timestamp::from_secs(1_000))
///         .value(42.0)
///         .build(),
/// );
/// let s = engine
///     .summary("h1", "CPU_TOTAL", SummaryWindow::OneMinute, Timestamp::from_secs(1_000))
///     .unwrap();
/// assert_eq!((s.count, s.mean), (1, 42.0));
/// ```
#[derive(Debug)]
pub struct ShardedSummaryEngine {
    shards: Vec<Mutex<SummaryEngine>>,
}

/// Compute one window's statistics over a time-ordered reading series.
fn summarize(
    series: &VecDeque<(Timestamp, f64)>,
    window: SummaryWindow,
    now: Timestamp,
) -> Option<Summary> {
    let cutoff = now.sub_micros(window.micros());
    let mut count = 0usize;
    let mut sum = 0.0;
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for (t, v) in series.iter().rev() {
        if *t < cutoff || *t > now {
            if *t < cutoff {
                break;
            }
            continue;
        }
        count += 1;
        sum += v;
        min = min.min(*v);
        max = max.max(*v);
    }
    if count == 0 {
        return None;
    }
    Some(Summary {
        window,
        count,
        mean: sum / count as f64,
        min,
        max,
    })
}

/// Build the synthetic ULM event carrying one series' window summary —
/// the one event shape both the flat and the sharded engine emit (the
/// sharded == flat property test depends on them agreeing byte for byte).
fn summary_event(
    gateway_name: &str,
    host: &str,
    event_type: &str,
    s: &Summary,
    now: Timestamp,
) -> Event {
    Event::builder(gateway_name, host)
        .level(Level::Usage)
        .event_type(format!("{event_type}_{}", s.window.suffix()))
        .timestamp(now)
        .field(keys::SENSOR, "summary")
        .value(s.mean)
        .field("MIN", s.min)
        .field("MAX", s.max)
        .field("COUNT", s.count as u64)
        .build()
}

use crate::hash::sym_series;

impl ShardedSummaryEngine {
    /// Create an engine split across `shards` locks (clamped to at least 1).
    pub fn new(shards: usize) -> Self {
        ShardedSummaryEngine {
            shards: (0..shards.max(1))
                .map(|_| Mutex::new(SummaryEngine::new()))
                .collect(),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard_of(&self, host: Sym, event_type: Sym) -> &Mutex<SummaryEngine> {
        let idx = (sym_series(host, event_type) % self.shards.len() as u64) as usize;
        &self.shards[idx]
    }

    /// Record an event's numeric reading (see [`SummaryEngine::record`]).
    /// Takes `&self`: only the owning shard's lock is held, briefly.
    pub fn record(&self, event: &Event) {
        self.record_interned(
            Sym::intern(&event.host),
            Sym::intern(&event.event_type),
            event,
        );
    }

    /// Record with pre-interned series identity (the gateway's publish
    /// path): shard selection and the series lookup are integer-only.
    pub(crate) fn record_interned(&self, host: Sym, event_type: Sym, event: &Event) {
        self.shard_of(host, event_type)
            .lock()
            .record_interned(host, event_type, event);
    }

    /// Compute one series' summary over one window ending at `now` (see
    /// [`SummaryEngine::summary`]).
    pub fn summary(
        &self,
        host: &str,
        event_type: &str,
        window: SummaryWindow,
        now: Timestamp,
    ) -> Option<Summary> {
        let (h, t) = (Sym::lookup(host)?, Sym::lookup(event_type)?);
        self.shard_of(h, t)
            .lock()
            .summary_interned(h, t, window, now)
    }

    /// Produce summary events for every tracked series and every requested
    /// window, across all shards, ordered by (host, event type) with the
    /// windows in the order requested — the same output a single
    /// [`SummaryEngine::summary_events`] fed the same readings produces.
    /// Each shard is locked exactly once.
    pub fn summary_events(
        &self,
        windows: &[SummaryWindow],
        now: Timestamp,
        gateway_name: &str,
    ) -> Vec<Event> {
        let mut rows: Vec<((&'static str, &'static str), Vec<Event>)> = self
            .shards
            .iter()
            .flat_map(|s| s.lock().summary_rows(windows, now, gateway_name))
            .collect();
        rows.sort_by(|a, b| a.0.cmp(&b.0));
        rows.into_iter().flat_map(|(_, events)| events).collect()
    }

    /// Total (host, event type) series tracked across all shards.
    pub fn series_count(&self) -> usize {
        self.shards.iter().map(|s| s.lock().series_count()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reading(host: &str, ty: &str, t_secs: u64, value: f64) -> Event {
        Event::builder("vmstat", host)
            .level(Level::Usage)
            .event_type(ty)
            .timestamp(Timestamp::from_secs(t_secs))
            .value(value)
            .build()
    }

    #[test]
    fn one_minute_average_of_cpu_usage() {
        let mut eng = SummaryEngine::new();
        // Readings every 10 s for 2 minutes: 0..12 readings of increasing load.
        for i in 0..12u64 {
            eng.record(&reading("h", "CPU_TOTAL", 1_000 + i * 10, i as f64 * 10.0));
        }
        let now = Timestamp::from_secs(1_000 + 110);
        let one = eng
            .summary("h", "CPU_TOTAL", SummaryWindow::OneMinute, now)
            .unwrap();
        // The last 60 s contain readings at t=1050..1110 -> values 50..110.
        assert_eq!(one.count, 7);
        assert!((one.mean - 80.0).abs() < 1e-9);
        assert_eq!(one.min, 50.0);
        assert_eq!(one.max, 110.0);
        // The 10-minute window sees everything.
        let ten = eng
            .summary("h", "CPU_TOTAL", SummaryWindow::TenMinutes, now)
            .unwrap();
        assert_eq!(ten.count, 12);
        assert!((ten.mean - 55.0).abs() < 1e-9);
    }

    #[test]
    fn empty_window_returns_none() {
        let mut eng = SummaryEngine::new();
        eng.record(&reading("h", "CPU_TOTAL", 100, 10.0));
        let much_later = Timestamp::from_secs(100 + 7_200);
        assert!(eng
            .summary("h", "CPU_TOTAL", SummaryWindow::OneMinute, much_later)
            .is_none());
        assert!(eng
            .summary(
                "h",
                "UNKNOWN",
                SummaryWindow::OneMinute,
                Timestamp::from_secs(100)
            )
            .is_none());
    }

    #[test]
    fn non_numeric_events_are_ignored() {
        let mut eng = SummaryEngine::new();
        let ev = Event::builder("p", "h")
            .event_type("PROC_DIED")
            .timestamp(Timestamp::from_secs(1))
            .build();
        eng.record(&ev);
        assert_eq!(eng.series_count(), 0);
    }

    #[test]
    fn old_readings_are_pruned() {
        let mut eng = SummaryEngine::new();
        for i in 0..200u64 {
            eng.record(&reading("h", "CPU_TOTAL", i * 60, 1.0));
        }
        // Only about an hour's worth (60 one-minute-spaced readings) remains.
        let series = eng
            .series
            .get(&(Sym::intern("h"), Sym::intern("CPU_TOTAL")))
            .unwrap();
        assert!(series.len() <= 62, "len = {}", series.len());
    }

    #[test]
    fn window_edges_are_inclusive() {
        // A window covers [now - length, now]: a reading exactly one
        // window-length old still counts, a reading exactly at `now` counts.
        let mut eng = SummaryEngine::new();
        eng.record(&reading("h", "CPU_TOTAL", 1_000, 10.0)); // == now - 60
        eng.record(&reading("h", "CPU_TOTAL", 1_001, 20.0)); // just inside
        eng.record(&reading("h", "CPU_TOTAL", 1_060, 30.0)); // == now
        let now = Timestamp::from_secs(1_060);
        let s = eng
            .summary("h", "CPU_TOTAL", SummaryWindow::OneMinute, now)
            .unwrap();
        assert_eq!(s.count, 3, "both edges inclusive");
        assert_eq!((s.min, s.max), (10.0, 30.0));
        // One microsecond past the trailing edge the reading ages out, for
        // each of the paper's three windows.
        for (w, secs) in [
            (SummaryWindow::OneMinute, 60u64),
            (SummaryWindow::TenMinutes, 600),
            (SummaryWindow::OneHour, 3_600),
        ] {
            let mut eng = SummaryEngine::new();
            eng.record(&reading("h", "X", 10_000, 1.0));
            let on_edge = Timestamp::from_secs(10_000 + secs);
            assert_eq!(
                eng.summary("h", "X", w, on_edge).unwrap().count,
                1,
                "reading exactly on the {secs}s trailing edge still counts"
            );
            let past_edge = Timestamp::from_micros((10_000 + secs) * 1_000_000 + 1);
            assert!(
                eng.summary("h", "X", w, past_edge).is_none(),
                "one microsecond past the {secs}s edge it has aged out"
            );
        }
        // Readings *after* `now` (clock skew between hosts) are ignored.
        let early = Timestamp::from_secs(1_001);
        let s = eng
            .summary("h", "CPU_TOTAL", SummaryWindow::OneMinute, early)
            .unwrap();
        assert_eq!(s.count, 2, "the t=1060 reading is in the future of `now`");
        assert_eq!((s.min, s.max), (10.0, 20.0));
    }

    #[test]
    fn out_of_order_arrivals_are_integrated_in_timestamp_order() {
        let mut in_order = SummaryEngine::new();
        let mut reordered = SummaryEngine::new();
        let times = [1_000u64, 1_010, 1_020, 1_030, 1_040];
        for &t in &times {
            in_order.record(&reading("h", "CPU_TOTAL", t, t as f64));
        }
        // The same readings arriving shuffled (a late sensor catching up).
        for &t in &[1_020u64, 1_000, 1_040, 1_010, 1_030] {
            reordered.record(&reading("h", "CPU_TOTAL", t, t as f64));
        }
        let now = Timestamp::from_secs(1_040);
        for w in SummaryWindow::all() {
            assert_eq!(
                in_order.summary("h", "CPU_TOTAL", w, now),
                reordered.summary("h", "CPU_TOTAL", w, now),
                "summaries are arrival-order independent"
            );
        }
        // A late arrival never truncates fresher data: pruning is relative
        // to the newest reading, not the last-recorded one.
        let mut eng = SummaryEngine::new();
        eng.record(&reading("h", "X", 10_000, 1.0));
        eng.record(&reading("h", "X", 5_000, 2.0)); // 83 min late
        let s = eng
            .summary(
                "h",
                "X",
                SummaryWindow::OneMinute,
                Timestamp::from_secs(10_000),
            )
            .unwrap();
        assert_eq!(s.count, 1, "fresh reading survives the late arrival");
    }

    #[test]
    fn empty_window_rollover_recovers_when_data_resumes() {
        let mut eng = SummaryEngine::new();
        eng.record(&reading("h", "CPU_TOTAL", 1_000, 50.0));
        // The 1-minute window empties while the 10-minute one still holds
        // the reading...
        let now = Timestamp::from_secs(1_200);
        assert!(eng
            .summary("h", "CPU_TOTAL", SummaryWindow::OneMinute, now)
            .is_none());
        assert_eq!(
            eng.summary("h", "CPU_TOTAL", SummaryWindow::TenMinutes, now)
                .unwrap()
                .count,
            1
        );
        // ...and summary_events emits only the non-empty windows.
        let events = eng.summary_events(&SummaryWindow::all(), now, "gw");
        assert_eq!(events.len(), 2, "10- and 60-minute only");
        assert!(events.iter().all(|e| !e.event_type.ends_with("AVG_1MIN")));
        // When readings resume, the rolled-over window fills again with
        // only the new data.
        eng.record(&reading("h", "CPU_TOTAL", 1_201, 80.0));
        let s = eng
            .summary(
                "h",
                "CPU_TOTAL",
                SummaryWindow::OneMinute,
                Timestamp::from_secs(1_201),
            )
            .unwrap();
        assert_eq!((s.count, s.mean), (1, 80.0));
    }

    #[test]
    fn summary_events_cover_all_series_and_windows() {
        let mut eng = SummaryEngine::new();
        for i in 0..10u64 {
            eng.record(&reading("h1", "CPU_TOTAL", 1_000 + i, 50.0));
            eng.record(&reading("h2", "VMSTAT_FREE_MEMORY", 1_000 + i, 1_000.0));
        }
        let now = Timestamp::from_secs(1_010);
        let events = eng.summary_events(&SummaryWindow::all(), now, "gw1");
        // 2 series x 3 windows.
        assert_eq!(events.len(), 6);
        assert!(events.iter().any(|e| e.event_type == "CPU_TOTAL_AVG_1MIN"));
        assert!(events
            .iter()
            .any(|e| e.event_type == "VMSTAT_FREE_MEMORY_AVG_60MIN"));
        let cpu1 = events
            .iter()
            .find(|e| e.event_type == "CPU_TOTAL_AVG_1MIN")
            .unwrap();
        assert_eq!(cpu1.value(), Some(50.0));
        assert_eq!(cpu1.field_f64("COUNT"), Some(10.0));
    }
}
