//! Crate-private hashing for the sharding decisions.
//!
//! Every shard key is derived from interned [`jamm_core::intern::Sym`]
//! handles, mixed through [`mix64`] so consecutive intern indexes spread
//! across shards — no string bytes are hashed per published event.
//! Placement is stable for the life of the process (intern order), which
//! is all the tests and reports rely on.

/// SplitMix64 finalizer: a few integer ops that turn dense intern indexes
/// into well-spread shard keys.  Stable for the life of the process.
pub(crate) fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Shard key of an interned (host, event type) series — integer mixing
/// only, used by the summary engine and the gateway query cache.
pub(crate) fn sym_series(host: jamm_core::intern::Sym, event_type: jamm_core::intern::Sym) -> u64 {
    mix64(((host.index() as u64) << 32) | event_type.index() as u64)
}
