//! Crate-private FNV-1a, the one hash both sharding decisions use: stable
//! across runs (routing and summary placement are reproducible in tests)
//! and fast on the short strings it is fed.

const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(h: u64, bytes: &[u8]) -> u64 {
    bytes
        .iter()
        .fold(h, |h, b| (h ^ u64::from(*b)).wrapping_mul(PRIME))
}

/// Hash an event type (the routing table's shard key).
pub(crate) fn fnv1a_str(s: &str) -> u64 {
    fnv1a(OFFSET, s.as_bytes())
}

/// Hash a (host, event type) series key (the summary engine's shard key),
/// NUL-separated so ("ab", "c") and ("a", "bc") differ.
pub(crate) fn fnv1a_series(host: &str, event_type: &str) -> u64 {
    fnv1a(
        fnv1a(fnv1a(OFFSET, host.as_bytes()), &[0]),
        event_type.as_bytes(),
    )
}
