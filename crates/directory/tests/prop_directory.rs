//! Property-based tests of the directory service: DN algebra, filter
//! evaluation, and store consistency under arbitrary entry populations.

use jamm_core::check::{forall, Gen};
use jamm_directory::{DirectoryServer, Dn, Entry, Filter, Scope};

fn arb_name(g: &mut Gen) -> String {
    let first = g.string_from("abcdefghijklmnopqrstuvwxyz", 1);
    let len = g.usize_in(0, 12);
    first + &g.string_from("abcdefghijklmnopqrstuvwxyz0123456789-", len)
}

fn arb_dn(g: &mut Gen) -> Dn {
    let mut dn = Dn::parse("o=grid").unwrap();
    for _ in 0..g.usize_in(1, 4) {
        let attr = arb_name(g);
        let value = arb_name(g);
        dn = dn.child(attr, value);
    }
    dn
}

fn arb_entry(g: &mut Gen) -> Entry {
    let mut e = Entry::new(arb_dn(g)).with("objectclass", "thing");
    for _ in 0..g.usize_in(0, 5) {
        let k = arb_name(g);
        let v = arb_name(g);
        e.add(k, v);
    }
    e
}

/// DN text form round-trips through the parser.
#[test]
fn dn_round_trips() {
    forall("dn round-trip", 64, |g| {
        let dn = arb_dn(g);
        let text = dn.to_string();
        let parsed = Dn::parse(&text).unwrap();
        assert_eq!(parsed, dn);
    });
}

/// A child DN is always under its parent and under the root, and the
/// parent chain terminates at the root in `depth` steps.
#[test]
fn dn_hierarchy_laws() {
    forall("dn hierarchy", 64, |g| {
        let dn = arb_dn(g);
        assert!(dn.is_under(&Dn::root()));
        if let Some(parent) = dn.parent() {
            assert!(dn.is_under(&parent));
            assert!(dn.is_child_of(&parent));
            assert!(!parent.is_under(&dn) || parent == dn);
        }
        let mut steps = 0;
        let mut cur = dn.clone();
        while let Some(p) = cur.parent() {
            cur = p;
            steps += 1;
        }
        assert_eq!(steps, dn.depth());
    });
}

/// Every stored entry is findable by exact lookup, by a subtree search at
/// the root, and by an equality filter on one of its own attributes.
#[test]
fn stored_entries_are_findable() {
    forall("stored entries findable", 64, |g| {
        let entries: Vec<Entry> = (0..g.usize_in(1, 24)).map(|_| arb_entry(g)).collect();
        let server = DirectoryServer::new("ldap://test", Dn::parse("o=grid").unwrap());
        let mut stored = Vec::new();
        for e in entries {
            if server.add_or_replace(e.clone()).is_ok() {
                stored.push(e);
            }
        }
        // The store holds at most one entry per DN, so count distinct DNs.
        let mut dns: Vec<String> = stored.iter().map(|e| e.dn.to_string()).collect();
        dns.sort();
        dns.dedup();
        assert_eq!(server.entry_count(), dns.len());

        let all = server
            .search(
                &Dn::parse("o=grid").unwrap(),
                Scope::Subtree,
                &Filter::everything(),
            )
            .unwrap();
        assert_eq!(all.entries.len(), dns.len());

        for e in &stored {
            let looked_up = server.lookup(&e.dn).unwrap();
            // The last write for this DN wins; it still carries objectclass.
            assert!(looked_up.has_value("objectclass", "thing"));
            let by_filter = server
                .search(
                    &Dn::parse("o=grid").unwrap(),
                    Scope::Subtree,
                    &Filter::eq("objectclass", "thing"),
                )
                .unwrap();
            assert_eq!(by_filter.entries.len(), dns.len());
        }
    });
}

/// Deleting everything empties the server and makes lookups fail.
#[test]
fn delete_is_complete() {
    forall("delete complete", 64, |g| {
        let entries: Vec<Entry> = (0..g.usize_in(1, 14)).map(|_| arb_entry(g)).collect();
        let server = DirectoryServer::new("ldap://test", Dn::parse("o=grid").unwrap());
        for e in &entries {
            let _ = server.add_or_replace(e.clone());
        }
        let all = server
            .search(
                &Dn::parse("o=grid").unwrap(),
                Scope::Subtree,
                &Filter::everything(),
            )
            .unwrap();
        for e in &all.entries {
            server.delete(&e.dn).unwrap();
        }
        assert_eq!(server.entry_count(), 0);
        for e in &entries {
            assert!(server.lookup(&e.dn).is_err());
        }
    });
}

/// Filter parsing never panics on arbitrary input.
#[test]
fn filter_parser_is_total() {
    forall("filter parser total", 256, |g| {
        let s = g.printable_string(60);
        let _ = Filter::parse(&s);
    });
}

/// Substring filters agree with plain string matching.
#[test]
fn substring_filter_matches_prefix_and_suffix() {
    forall("substring filters", 64, |g| {
        let lp = g.usize_in(1, 6);
        let prefix = g.string_from("abcdefghijklmnopqrstuvwxyz", lp);
        let lm = g.usize_in(0, 6);
        let middle = g.string_from("abcdefghijklmnopqrstuvwxyz", lm);
        let ls = g.usize_in(1, 6);
        let suffix = g.string_from("abcdefghijklmnopqrstuvwxyz", ls);
        let value = format!("{prefix}{middle}{suffix}");
        let entry = Entry::new(Dn::parse("host=x,o=grid").unwrap()).with("name", value.clone());
        let starts = Filter::parse(&format!("(name={prefix}*)")).unwrap();
        let ends = Filter::parse(&format!("(name=*{suffix})")).unwrap();
        let contains = Filter::parse(&format!("(name=*{middle}*)")).unwrap();
        assert!(starts.matches(&entry));
        assert!(ends.matches(&entry));
        if !middle.is_empty() {
            assert!(contains.matches(&entry));
        }
        let nomatch = Filter::parse("(name=zzzzzzzz*)").unwrap();
        assert!(!nomatch.matches(&entry) || value.starts_with("zzzzzzzz"));
    });
}
