//! Property-based tests of the directory service: DN algebra, filter
//! evaluation, and store consistency under arbitrary entry populations.

use jamm_directory::{DirectoryServer, Dn, Entry, Filter, Scope};
use proptest::prelude::*;

fn arb_name() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9-]{0,12}"
}

fn arb_dn() -> impl Strategy<Value = Dn> {
    prop::collection::vec((arb_name(), arb_name()), 1..5).prop_map(|parts| {
        let mut dn = Dn::parse("o=grid").unwrap();
        for (attr, value) in parts.into_iter().rev() {
            dn = dn.child(attr, value);
        }
        dn
    })
}

fn arb_entry() -> impl Strategy<Value = Entry> {
    (
        arb_dn(),
        prop::collection::vec((arb_name(), arb_name()), 0..6),
    )
        .prop_map(|(dn, attrs)| {
            let mut e = Entry::new(dn).with("objectclass", "thing");
            for (k, v) in attrs {
                e.add(k, v);
            }
            e
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// DN text form round-trips through the parser.
    #[test]
    fn dn_round_trips(dn in arb_dn()) {
        let text = dn.to_string();
        let parsed = Dn::parse(&text).unwrap();
        prop_assert_eq!(parsed, dn);
    }

    /// A child DN is always under its parent and under the root, and the
    /// parent chain terminates at the root in `depth` steps.
    #[test]
    fn dn_hierarchy_laws(dn in arb_dn()) {
        prop_assert!(dn.is_under(&Dn::root()));
        if let Some(parent) = dn.parent() {
            prop_assert!(dn.is_under(&parent));
            prop_assert!(dn.is_child_of(&parent));
            prop_assert!(!parent.is_under(&dn) || parent == dn);
        }
        let mut steps = 0;
        let mut cur = dn.clone();
        while let Some(p) = cur.parent() {
            cur = p;
            steps += 1;
        }
        prop_assert_eq!(steps, dn.depth());
    }

    /// Every stored entry is findable by exact lookup, by a subtree search at
    /// the root, and by an equality filter on one of its own attributes.
    #[test]
    fn stored_entries_are_findable(entries in prop::collection::vec(arb_entry(), 1..25)) {
        let server = DirectoryServer::new("ldap://test", Dn::parse("o=grid").unwrap());
        let mut stored = Vec::new();
        for e in entries {
            if server.add_or_replace(e.clone()).is_ok() {
                stored.push(e);
            }
        }
        // The store holds at most one entry per DN, so count distinct DNs.
        let mut dns: Vec<String> = stored.iter().map(|e| e.dn.to_string()).collect();
        dns.sort();
        dns.dedup();
        prop_assert_eq!(server.entry_count(), dns.len());

        let all = server
            .search(&Dn::parse("o=grid").unwrap(), Scope::Subtree, &Filter::everything())
            .unwrap();
        prop_assert_eq!(all.entries.len(), dns.len());

        for e in &stored {
            let looked_up = server.lookup(&e.dn).unwrap();
            // The last write for this DN wins; it still carries objectclass.
            prop_assert!(looked_up.has_value("objectclass", "thing"));
            let by_filter = server
                .search(
                    &Dn::parse("o=grid").unwrap(),
                    Scope::Subtree,
                    &Filter::eq("objectclass", "thing"),
                )
                .unwrap();
            prop_assert_eq!(by_filter.entries.len(), dns.len());
        }
    }

    /// Deleting everything empties the server and makes lookups fail.
    #[test]
    fn delete_is_complete(entries in prop::collection::vec(arb_entry(), 1..15)) {
        let server = DirectoryServer::new("ldap://test", Dn::parse("o=grid").unwrap());
        for e in &entries {
            let _ = server.add_or_replace(e.clone());
        }
        let all = server
            .search(&Dn::parse("o=grid").unwrap(), Scope::Subtree, &Filter::everything())
            .unwrap();
        for e in &all.entries {
            server.delete(&e.dn).unwrap();
        }
        prop_assert_eq!(server.entry_count(), 0);
        for e in &entries {
            prop_assert!(server.lookup(&e.dn).is_err());
        }
    }

    /// Filter parsing never panics on arbitrary input, and parsing the
    /// canonical rendering of a simple filter gives an equivalent decision.
    #[test]
    fn filter_parser_is_total(s in "\\PC{0,60}") {
        let _ = Filter::parse(&s);
    }

    /// Substring filters agree with plain string matching.
    #[test]
    fn substring_filter_matches_prefix_and_suffix(
        prefix in "[a-z]{1,6}",
        middle in "[a-z]{0,6}",
        suffix in "[a-z]{1,6}",
    ) {
        let value = format!("{prefix}{middle}{suffix}");
        let entry = Entry::new(Dn::parse("host=x,o=grid").unwrap()).with("name", value.clone());
        let starts = Filter::parse(&format!("(name={prefix}*)")).unwrap();
        let ends = Filter::parse(&format!("(name=*{suffix})")).unwrap();
        let contains = Filter::parse(&format!("(name=*{middle}*)")).unwrap();
        prop_assert!(starts.matches(&entry));
        prop_assert!(ends.matches(&entry));
        if !middle.is_empty() {
            prop_assert!(contains.matches(&entry));
        }
        let nomatch = Filter::parse("(name=zzzzzzzz*)").unwrap();
        prop_assert!(!nomatch.matches(&entry) || value.starts_with("zzzzzzzz"));
    }
}
