//! The directory server: a read-optimised hierarchical entry store.
//!
//! The paper notes that "current implementations of LDAP servers are
//! optimized for read access" — so is this one: entries live in a sorted map
//! behind a `jamm_core::sync::RwLock`, searches take the read lock and proceed
//! concurrently, and updates take the write lock.  Simple bind (user /
//! password) authentication protects subtrees, mirroring the user/password
//! protection discussed in §7.1, and per-operation statistics feed the
//! directory-scalability experiment (E11).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

use jamm_core::sync::RwLock;

use crate::dn::Dn;
use crate::entry::Entry;
use crate::filter::Filter;
use crate::notify::{ChangeKind, Notifier, PersistentSearch};
use crate::{DirectoryError, Result};

/// Search scope, as in LDAP.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scope {
    /// Only the base entry itself.
    Base,
    /// Immediate children of the base.
    OneLevel,
    /// The base and everything underneath it.
    Subtree,
}

/// Outcome of a search: matching entries, plus referrals to other servers
/// whose naming contexts intersect the search base.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SearchResult {
    /// Entries that matched the filter, sorted by DN.
    pub entries: Vec<Entry>,
    /// URLs (server names) of servers that should also be consulted.
    pub referrals: Vec<String>,
}

/// Cumulative operation counters (read by the scalability experiments).
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Completed search operations.
    pub searches: AtomicU64,
    /// Entries returned by searches.
    pub entries_returned: AtomicU64,
    /// Add/modify/delete operations.
    pub writes: AtomicU64,
    /// Rejected bind attempts.
    pub failed_binds: AtomicU64,
}

/// A single directory server instance.
#[derive(Debug)]
pub struct DirectoryServer {
    name: String,
    suffix: Dn,
    entries: RwLock<BTreeMap<String, Entry>>,
    referrals: RwLock<Vec<(Dn, String)>>,
    credentials: RwLock<BTreeMap<String, String>>,
    notifier: Notifier,
    stats: ServerStats,
    available: RwLock<bool>,
}

impl DirectoryServer {
    /// Create a server named `name` (its "LDAP URL") holding the naming
    /// context under `suffix`.
    pub fn new(name: impl Into<String>, suffix: Dn) -> Self {
        DirectoryServer {
            name: name.into(),
            suffix,
            entries: RwLock::new(BTreeMap::new()),
            referrals: RwLock::new(Vec::new()),
            credentials: RwLock::new(BTreeMap::new()),
            notifier: Notifier::new(),
            stats: ServerStats::default(),
            available: RwLock::new(true),
        }
    }

    /// The server's name / URL.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The naming context (suffix) this server is authoritative for.
    pub fn suffix(&self) -> &Dn {
        &self.suffix
    }

    /// Operation statistics.
    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }

    /// Mark the server down or up (fault injection for the replication and
    /// failover tests — the paper calls replication "critical to JAMM").
    pub fn set_available(&self, up: bool) {
        *self.available.write() = up;
    }

    /// Whether the server is currently reachable.
    pub fn is_available(&self) -> bool {
        *self.available.read()
    }

    fn check_available(&self) -> Result<()> {
        if self.is_available() {
            Ok(())
        } else {
            Err(DirectoryError::ServerUnavailable(self.name.clone()))
        }
    }

    /// Register simple-bind credentials allowed to write to this server.
    pub fn add_credential(&self, user: impl Into<String>, password: impl Into<String>) {
        self.credentials
            .write()
            .insert(user.into(), password.into());
    }

    /// Verify simple-bind credentials.  Servers with no registered
    /// credentials accept anonymous binds (the default in the prototype).
    pub fn bind(&self, user: &str, password: &str) -> Result<()> {
        self.check_available()?;
        let creds = self.credentials.read();
        if creds.is_empty() {
            return Ok(());
        }
        match creds.get(user) {
            Some(p) if p == password => Ok(()),
            _ => {
                self.stats.failed_binds.fetch_add(1, Ordering::Relaxed);
                Err(DirectoryError::AuthenticationFailed)
            }
        }
    }

    /// Register a referral: queries under `subtree` should go to `server`.
    pub fn add_referral(&self, subtree: Dn, server: impl Into<String>) {
        self.referrals.write().push((subtree, server.into()));
    }

    /// Add a new entry.
    pub fn add(&self, entry: Entry) -> Result<()> {
        self.check_available()?;
        if !entry.dn.is_under(&self.suffix) {
            return Err(DirectoryError::NotAuthorized(format!(
                "{} is outside naming context {}",
                entry.dn, self.suffix
            )));
        }
        let key = entry.dn.to_string();
        let mut entries = self.entries.write();
        if entries.contains_key(&key) {
            return Err(DirectoryError::AlreadyExists(key));
        }
        self.stats.writes.fetch_add(1, Ordering::Relaxed);
        self.notifier.publish(ChangeKind::Added, &entry);
        entries.insert(key, entry);
        Ok(())
    }

    /// Add the entry, or replace it completely if it already exists.  This is
    /// what sensor managers use to refresh publication records.
    pub fn add_or_replace(&self, entry: Entry) -> Result<()> {
        self.check_available()?;
        if !entry.dn.is_under(&self.suffix) {
            return Err(DirectoryError::NotAuthorized(format!(
                "{} is outside naming context {}",
                entry.dn, self.suffix
            )));
        }
        let key = entry.dn.to_string();
        let mut entries = self.entries.write();
        self.stats.writes.fetch_add(1, Ordering::Relaxed);
        let kind = if entries.contains_key(&key) {
            ChangeKind::Modified
        } else {
            ChangeKind::Added
        };
        self.notifier.publish(kind, &entry);
        entries.insert(key, entry);
        Ok(())
    }

    /// Modify an existing entry in place via the supplied closure.
    pub fn modify<F: FnOnce(&mut Entry)>(&self, dn: &Dn, f: F) -> Result<()> {
        self.check_available()?;
        let key = dn.to_string();
        let mut entries = self.entries.write();
        let entry = entries
            .get_mut(&key)
            .ok_or_else(|| DirectoryError::NoSuchEntry(key.clone()))?;
        f(entry);
        self.stats.writes.fetch_add(1, Ordering::Relaxed);
        self.notifier.publish(ChangeKind::Modified, entry);
        Ok(())
    }

    /// Delete an entry.
    pub fn delete(&self, dn: &Dn) -> Result<Entry> {
        self.check_available()?;
        let key = dn.to_string();
        let mut entries = self.entries.write();
        let removed = entries
            .remove(&key)
            .ok_or(DirectoryError::NoSuchEntry(key))?;
        self.stats.writes.fetch_add(1, Ordering::Relaxed);
        self.notifier.publish(ChangeKind::Deleted, &removed);
        Ok(removed)
    }

    /// Fetch one entry by DN.
    pub fn lookup(&self, dn: &Dn) -> Result<Entry> {
        self.check_available()?;
        self.stats.searches.fetch_add(1, Ordering::Relaxed);
        let entries = self.entries.read();
        entries
            .get(&dn.to_string())
            .cloned()
            .inspect(|_| {
                self.stats.entries_returned.fetch_add(1, Ordering::Relaxed);
            })
            .ok_or_else(|| DirectoryError::NoSuchEntry(dn.to_string()))
    }

    /// Search under `base` with the given scope and filter.
    pub fn search(&self, base: &Dn, scope: Scope, filter: &Filter) -> Result<SearchResult> {
        self.check_available()?;
        self.stats.searches.fetch_add(1, Ordering::Relaxed);
        let mut result = SearchResult::default();

        // Referrals whose subtree could contain matches for this base.
        for (subtree, server) in self.referrals.read().iter() {
            if subtree.is_under(base) || base.is_under(subtree) {
                result.referrals.push(server.clone());
            }
        }

        let entries = self.entries.read();
        for entry in entries.values() {
            let in_scope = match scope {
                Scope::Base => entry.dn == *base,
                Scope::OneLevel => entry.dn.is_child_of(base),
                Scope::Subtree => entry.dn.is_under(base),
            };
            if in_scope && filter.matches(entry) {
                result.entries.push(entry.clone());
            }
        }
        self.stats
            .entries_returned
            .fetch_add(result.entries.len() as u64, Ordering::Relaxed);
        Ok(result)
    }

    /// Number of entries held.
    pub fn entry_count(&self) -> usize {
        self.entries.read().len()
    }

    /// Register a persistent search ("event notification" in LDAPv3 terms):
    /// the returned handle yields a [`crate::notify::Change`] whenever an
    /// entry under `base` matching `filter` is added, modified or deleted.
    pub fn persistent_search(&self, base: Dn, filter: Filter) -> PersistentSearch {
        self.notifier.subscribe(base, filter)
    }

    /// A full copy of the server's contents (used by replication).
    pub fn snapshot(&self) -> Vec<Entry> {
        self.entries.read().values().cloned().collect()
    }

    /// Bulk-load entries (used by replication catch-up).  Existing entries
    /// with the same DN are replaced; no notifications fire.
    pub fn load(&self, entries: Vec<Entry>) {
        let mut map = self.entries.write();
        for e in entries {
            map.insert(e.dn.to_string(), e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_suffix() -> Dn {
        Dn::parse("o=grid").unwrap()
    }

    fn sensor(host: &str, sensor: &str, gateway: &str) -> Entry {
        Entry::new(Dn::parse(&format!("sensor={sensor},host={host},o=lbl,o=grid")).unwrap())
            .with("objectclass", "sensor")
            .with("host", host)
            .with("sensor", sensor)
            .with("gateway", gateway)
            .with("status", "running")
    }

    fn populated() -> DirectoryServer {
        let s = DirectoryServer::new("ldap://dir.lbl.gov", grid_suffix());
        for host in ["dpss1.lbl.gov", "dpss2.lbl.gov", "mems.cairn.net"] {
            for kind in ["cpu", "memory", "tcp"] {
                s.add(sensor(host, kind, "gw1.lbl.gov:8765")).unwrap();
            }
        }
        s
    }

    #[test]
    fn add_lookup_delete_lifecycle() {
        let s = populated();
        assert_eq!(s.entry_count(), 9);
        let dn = Dn::parse("sensor=cpu,host=dpss1.lbl.gov,o=lbl,o=grid").unwrap();
        let e = s.lookup(&dn).unwrap();
        assert_eq!(e.get("gateway"), Some("gw1.lbl.gov:8765"));
        // Duplicate add is rejected.
        assert!(matches!(
            s.add(sensor("dpss1.lbl.gov", "cpu", "x")),
            Err(DirectoryError::AlreadyExists(_))
        ));
        s.delete(&dn).unwrap();
        assert!(matches!(s.lookup(&dn), Err(DirectoryError::NoSuchEntry(_))));
        assert_eq!(s.entry_count(), 8);
    }

    #[test]
    fn entries_outside_the_naming_context_are_rejected() {
        let s = DirectoryServer::new("ldap://dir.lbl.gov", Dn::parse("o=lbl,o=grid").unwrap());
        let foreign = Entry::new(Dn::parse("host=x,o=anl,o=grid").unwrap());
        assert!(matches!(
            s.add(foreign),
            Err(DirectoryError::NotAuthorized(_))
        ));
    }

    #[test]
    fn subtree_onelevel_and_base_scopes() {
        let s = populated();
        let base = Dn::parse("host=dpss1.lbl.gov,o=lbl,o=grid").unwrap();
        let all = s
            .search(&base, Scope::Subtree, &Filter::everything())
            .unwrap();
        assert_eq!(all.entries.len(), 3);
        let children = s
            .search(&base, Scope::OneLevel, &Filter::everything())
            .unwrap();
        assert_eq!(children.entries.len(), 3);
        let just_base = s.search(&base, Scope::Base, &Filter::everything()).unwrap();
        assert_eq!(
            just_base.entries.len(),
            0,
            "no entry exists at the host DN itself"
        );
        let root = s
            .search(
                &Dn::parse("o=grid").unwrap(),
                Scope::Subtree,
                &Filter::everything(),
            )
            .unwrap();
        assert_eq!(root.entries.len(), 9);
    }

    #[test]
    fn filtered_search_finds_sensors_by_type_and_host() {
        let s = populated();
        let f = Filter::parse("(&(objectclass=sensor)(sensor=cpu)(host=dpss*))").unwrap();
        let r = s
            .search(&Dn::parse("o=grid").unwrap(), Scope::Subtree, &f)
            .unwrap();
        assert_eq!(r.entries.len(), 2);
        assert!(r.entries.iter().all(|e| e.get("sensor") == Some("cpu")));
    }

    #[test]
    fn modify_updates_in_place_and_counts_writes() {
        let s = populated();
        let dn = Dn::parse("sensor=cpu,host=dpss1.lbl.gov,o=lbl,o=grid").unwrap();
        s.modify(&dn, |e| e.set("status", vec!["stopped".into()]))
            .unwrap();
        assert_eq!(s.lookup(&dn).unwrap().get("status"), Some("stopped"));
        assert!(matches!(
            s.modify(&Dn::parse("sensor=zzz,o=grid").unwrap(), |_| {}),
            Err(DirectoryError::NoSuchEntry(_))
        ));
        assert!(s.stats().writes.load(Ordering::Relaxed) >= 10);
        assert!(s.stats().searches.load(Ordering::Relaxed) >= 1);
    }

    #[test]
    fn add_or_replace_is_idempotent_refresh() {
        let s = populated();
        let mut e = sensor("dpss1.lbl.gov", "cpu", "gw2.lbl.gov:8765");
        e.set("status", vec!["running".into()]);
        s.add_or_replace(e).unwrap();
        let dn = Dn::parse("sensor=cpu,host=dpss1.lbl.gov,o=lbl,o=grid").unwrap();
        assert_eq!(
            s.lookup(&dn).unwrap().get("gateway"),
            Some("gw2.lbl.gov:8765")
        );
        assert_eq!(s.entry_count(), 9, "replace does not duplicate");
    }

    #[test]
    fn bind_requires_matching_credentials_once_registered() {
        let s = populated();
        assert!(
            s.bind("anyone", "anything").is_ok(),
            "anonymous ok by default"
        );
        s.add_credential("jamm-manager", "secret");
        assert!(s.bind("jamm-manager", "secret").is_ok());
        assert!(matches!(
            s.bind("jamm-manager", "wrong"),
            Err(DirectoryError::AuthenticationFailed)
        ));
        assert!(matches!(
            s.bind("stranger", "secret"),
            Err(DirectoryError::AuthenticationFailed)
        ));
        assert_eq!(s.stats().failed_binds.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn unavailable_server_rejects_everything() {
        let s = populated();
        s.set_available(false);
        assert!(!s.is_available());
        let dn = Dn::parse("sensor=cpu,host=dpss1.lbl.gov,o=lbl,o=grid").unwrap();
        assert!(matches!(
            s.lookup(&dn),
            Err(DirectoryError::ServerUnavailable(_))
        ));
        assert!(matches!(
            s.search(&grid_suffix(), Scope::Subtree, &Filter::everything()),
            Err(DirectoryError::ServerUnavailable(_))
        ));
        s.set_available(true);
        assert!(s.lookup(&dn).is_ok());
    }

    #[test]
    fn search_returns_relevant_referrals() {
        let s = populated();
        s.add_referral(Dn::parse("o=anl,o=grid").unwrap(), "ldap://dir.anl.gov");
        s.add_referral(Dn::parse("o=isi,o=grid").unwrap(), "ldap://dir.isi.edu");
        // A grid-wide search sees both referrals.
        let r = s
            .search(&grid_suffix(), Scope::Subtree, &Filter::everything())
            .unwrap();
        assert_eq!(r.referrals.len(), 2);
        // A search scoped to the ANL subtree sees only the ANL referral.
        let r = s
            .search(
                &Dn::parse("host=x.anl.gov,o=anl,o=grid").unwrap(),
                Scope::Subtree,
                &Filter::everything(),
            )
            .unwrap();
        assert_eq!(r.referrals, vec!["ldap://dir.anl.gov".to_string()]);
        // A search inside LBL's own data sees none.
        let r = s
            .search(
                &Dn::parse("o=lbl,o=grid").unwrap(),
                Scope::Subtree,
                &Filter::everything(),
            )
            .unwrap();
        assert!(r.referrals.is_empty());
    }

    #[test]
    fn snapshot_and_load_round_trip() {
        let s = populated();
        let copy = DirectoryServer::new("ldap://replica.lbl.gov", grid_suffix());
        copy.load(s.snapshot());
        assert_eq!(copy.entry_count(), s.entry_count());
        let f = Filter::eq("sensor", "memory");
        let a = s.search(&grid_suffix(), Scope::Subtree, &f).unwrap();
        let b = copy.search(&grid_suffix(), Scope::Subtree, &f).unwrap();
        assert_eq!(a.entries, b.entries);
    }

    #[test]
    fn concurrent_readers_do_not_block_each_other() {
        use std::sync::Arc;
        let s = Arc::new(populated());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                let f = Filter::eq("objectclass", "sensor");
                let mut found = 0;
                for _ in 0..200 {
                    found += s
                        .search(&Dn::parse("o=grid").unwrap(), Scope::Subtree, &f)
                        .unwrap()
                        .entries
                        .len();
                }
                found
            }));
        }
        for h in handles {
            assert_eq!(h.join().unwrap(), 200 * 9);
        }
    }
}
