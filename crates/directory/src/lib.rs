//! # jamm-directory — the JAMM sensor directory service
//!
//! JAMM publishes *which sensors exist and which event gateway serves them*
//! in a directory service; consumers look sensors up there and then contact
//! the gateway directly (paper §2.2).  The paper uses LDAP because it is a
//! simple standard solution, relies on its hierarchical naming, referrals
//! between per-site servers, and replication for fault tolerance, and looks
//! forward to the LDAPv3 persistent-search ("event notification") extension.
//!
//! Rust's LDAP-server ecosystem is thin, so this crate implements the subset
//! of LDAP semantics JAMM actually depends on, in process:
//!
//! * [`dn::Dn`] — hierarchical distinguished names;
//! * [`entry::Entry`] — multi-valued attribute records;
//! * [`filter::Filter`] — search filters (`(&(objectclass=sensor)(host=x*))`);
//! * [`server::DirectoryServer`] — a read-optimised tree store with
//!   base/one-level/subtree search, simple bind authentication and access
//!   statistics;
//! * [`referral`] — per-site servers that refer queries for foreign subtrees
//!   to their owning site, plus a federation helper that chases referrals;
//! * [`replication`] — master/replica replication with failover reads;
//! * [`notify`] — persistent search: register interest in a subtree and be
//!   notified when matching entries appear, change or disappear.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dn;
pub mod entry;
pub mod filter;
pub mod notify;
pub mod referral;
pub mod replication;
pub mod server;

pub use dn::Dn;
pub use entry::Entry;
pub use filter::Filter;
pub use server::{DirectoryServer, Scope, SearchResult};

/// Errors returned by directory operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DirectoryError {
    /// The target entry does not exist.
    NoSuchEntry(String),
    /// An entry with that DN already exists.
    AlreadyExists(String),
    /// The DN string could not be parsed.
    InvalidDn(String),
    /// The filter string could not be parsed.
    InvalidFilter(String),
    /// The bind credentials were rejected.
    AuthenticationFailed,
    /// The caller is not authorised for the operation.
    NotAuthorized(String),
    /// The operation must be performed at another server.
    Referral(String),
    /// The server is down (used by the replication/failover layer).
    ServerUnavailable(String),
}

impl std::fmt::Display for DirectoryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DirectoryError::NoSuchEntry(dn) => write!(f, "no such entry: {dn}"),
            DirectoryError::AlreadyExists(dn) => write!(f, "entry already exists: {dn}"),
            DirectoryError::InvalidDn(s) => write!(f, "invalid DN: {s}"),
            DirectoryError::InvalidFilter(s) => write!(f, "invalid filter: {s}"),
            DirectoryError::AuthenticationFailed => write!(f, "authentication failed"),
            DirectoryError::NotAuthorized(what) => write!(f, "not authorized: {what}"),
            DirectoryError::Referral(url) => write!(f, "referral to {url}"),
            DirectoryError::ServerUnavailable(name) => write!(f, "server unavailable: {name}"),
        }
    }
}

impl std::error::Error for DirectoryError {}

/// Convenience result alias for directory operations.
pub type Result<T> = std::result::Result<T, DirectoryError>;
