//! LDAP-style search filters, answered by the unified query plane.
//!
//! The directory's filter syntax — equality, presence, substring
//! (`*` wildcards) and the parenthesised boolean combinators, e.g.
//! `(&(objectclass=sensor)(host=dpss*)(!(status=stopped)))` — is a subset
//! of the workspace-wide query grammar in [`jamm_core::query`].  Since the
//! query-plane refactor a [`Filter`] is a thin wrapper around a parsed
//! [`Predicate`] compiled once into a [`Plan`]; evaluation against an
//! [`Entry`] runs through exactly the same evaluator the event gateway and
//! the archive use.
//!
//! Two semantic notes inherited from the shared grammar:
//!
//! * `host=` and `type=`/`eventtype=` equality leaves are **exact** string
//!   matches (they feed routing and storage pruning); every other
//!   attribute matches case-insensitively, as LDAP does.  Wildcarded and
//!   presence forms of any attribute stay case-insensitive.
//! * Values may escape literal `(`, `)`, `*` and `\` with a backslash,
//!   and [`Filter`]'s `Display` form re-escapes them, so
//!   parse → display → parse round-trips.

use jamm_core::query::{Plan, Predicate};

use crate::entry::Entry;
use crate::DirectoryError;

/// A search filter: a parsed query-plane predicate plus its compiled
/// evaluation plan.
#[derive(Debug, Clone)]
pub struct Filter {
    pred: Predicate,
    plan: Plan,
}

impl PartialEq for Filter {
    fn eq(&self, other: &Filter) -> bool {
        self.pred == other.pred
    }
}

impl std::fmt::Display for Filter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.pred)
    }
}

impl From<Predicate> for Filter {
    fn from(pred: Predicate) -> Filter {
        let plan = pred.compile();
        Filter { pred, plan }
    }
}

impl Filter {
    /// A filter that matches every entry.
    pub fn everything() -> Filter {
        Predicate::And(Vec::new()).into()
    }

    /// Convenience: case-insensitive equality filter.
    pub fn eq(attr: impl Into<String>, value: impl Into<String>) -> Filter {
        Predicate::attr_eq(attr, value).into()
    }

    /// Convenience: presence filter.
    pub fn present(attr: impl Into<String>) -> Filter {
        Predicate::attr_present(attr).into()
    }

    /// Convenience: conjunction.
    pub fn and(filters: Vec<Filter>) -> Filter {
        Predicate::And(filters.into_iter().map(|f| f.pred).collect()).into()
    }

    /// Convenience: disjunction.
    pub fn or(filters: Vec<Filter>) -> Filter {
        Predicate::Or(filters.into_iter().map(|f| f.pred).collect()).into()
    }

    /// Convenience: negation.
    pub fn negate(filter: Filter) -> Filter {
        Predicate::Not(Box::new(filter.pred)).into()
    }

    /// The underlying query-plane predicate.
    pub fn predicate(&self) -> &Predicate {
        &self.pred
    }

    /// Evaluate the filter against an entry through the compiled plan.
    pub fn matches(&self, entry: &Entry) -> bool {
        self.plan.eval(entry)
    }

    /// Parse the textual filter syntax.  The error message carries the
    /// offending input and the parser's position/reason.
    pub fn parse(s: &str) -> crate::Result<Filter> {
        match Predicate::parse(s) {
            Ok(pred) => Ok(pred.into()),
            Err(e) => Err(DirectoryError::InvalidFilter(format!("{s:?}: {e}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dn::Dn;

    fn entry() -> Entry {
        Entry::new(Dn::parse("sensor=cpu,host=dpss1.lbl.gov,o=lbl").unwrap())
            .with("objectclass", "sensor")
            .with("host", "dpss1.lbl.gov")
            .with("eventtype", "CPU_TOTAL")
            .with("status", "running")
    }

    #[test]
    fn equality_and_presence() {
        let e = entry();
        // Generic attributes stay case-insensitive...
        assert!(Filter::eq("status", "RUNNING").matches(&e));
        assert!(!Filter::eq("status", "stopped").matches(&e));
        assert!(Filter::present("status").matches(&e));
        assert!(!Filter::present("gateway").matches(&e));
        // ...while parsed host= equality is exact (it feeds pruning).
        assert!(Filter::parse("(host=dpss1.lbl.gov)").unwrap().matches(&e));
        assert!(!Filter::parse("(host=other)").unwrap().matches(&e));
        assert!(Filter::parse("(eventtype=CPU_TOTAL)").unwrap().matches(&e));
    }

    #[test]
    fn boolean_combinators() {
        let e = entry();
        let f = Filter::and(vec![
            Filter::eq("objectclass", "sensor"),
            Filter::negate(Filter::eq("status", "stopped")),
        ]);
        assert!(f.matches(&e));
        let g = Filter::or(vec![
            Filter::eq("host", "nope"),
            Filter::eq("host", "dpss1.lbl.gov"),
        ]);
        assert!(g.matches(&e));
        assert!(Filter::everything().matches(&e));
        assert!(!Filter::or(vec![]).matches(&e), "empty OR matches nothing");
    }

    #[test]
    fn substring_patterns() {
        let e = entry();
        assert!(Filter::parse("(host=dpss*)").unwrap().matches(&e));
        assert!(Filter::parse("(host=*.lbl.gov)").unwrap().matches(&e));
        assert!(Filter::parse("(host=dpss*gov)").unwrap().matches(&e));
        assert!(Filter::parse("(host=*lbl*)").unwrap().matches(&e));
        assert!(!Filter::parse("(host=*.anl.gov)").unwrap().matches(&e));
        assert!(!Filter::parse("(host=isi*)").unwrap().matches(&e));
    }

    #[test]
    fn parse_canonical_jamm_query() {
        let f = Filter::parse("(&(objectclass=sensor)(host=dpss1.lbl.gov)(!(status=stopped)))")
            .unwrap();
        assert!(f.matches(&entry()));
        let mut stopped = entry();
        stopped.set("status", vec!["stopped".into()]);
        assert!(!f.matches(&stopped));
    }

    #[test]
    fn parse_rejects_garbage_with_a_reason() {
        for (bad, reason) in [
            ("", "expected '('"),
            ("(", "unexpected end of input"),
            ("()", "missing comparator"),
            ("(a)", "missing comparator"),
            ("(&(a=b)", "expected ')'"),
            ("(a=b))", "trailing input"),
            ("junk", "expected '('"),
            ("(=x)", "empty attribute name"),
        ] {
            let err = Filter::parse(bad).expect_err(bad);
            let msg = err.to_string();
            assert!(msg.contains("invalid filter"), "{bad:?}: {msg}");
            assert!(msg.contains(reason), "{bad:?}: {msg} missing {reason:?}");
        }
    }

    #[test]
    fn parse_whitespace_tolerant() {
        let f = Filter::parse(" ( & ( objectclass=sensor ) ( status=* ) ) ").unwrap();
        assert!(f.matches(&entry()));
    }

    #[test]
    fn display_parse_round_trips_including_escaping() {
        for text in [
            "(objectclass=sensor)",
            "(&(objectclass=sensor)(host=dpss*)(!(status=stopped)))",
            "(|(host=a)(host=b))",
            "(status=*)",
            "(name=*mid*dle*)",
            "(name=literal\\*star)",
            "(name=parens \\(and\\) backslash \\\\)",
            "(&)",
            "(|)",
        ] {
            let parsed = Filter::parse(text).unwrap();
            let shown = parsed.to_string();
            let again =
                Filter::parse(&shown).unwrap_or_else(|e| panic!("reparse of {shown:?}: {e}"));
            assert_eq!(again, parsed, "structure round-trips for {text:?}");
            assert_eq!(again.to_string(), shown, "display fixed point for {text:?}");
        }
    }

    #[test]
    fn builder_host_equality_round_trips_without_changing_semantics() {
        // Filter::eq is case-insensitive even on `host`; its text form
        // uses the grammar's `~=` approximate match, so serializing and
        // re-parsing keeps matching the same entries.
        let e = entry();
        let f = Filter::eq("host", "DPSS1.LBL.GOV");
        assert!(f.matches(&e));
        let shown = f.to_string();
        assert_eq!(shown, "(host~=DPSS1.LBL.GOV)");
        let reparsed = Filter::parse(&shown).unwrap();
        assert_eq!(reparsed, f);
        assert!(reparsed.matches(&e), "round-trip preserves CI matching");
    }

    #[test]
    fn escaped_wildcards_match_literally() {
        let e = Entry::new(Dn::parse("x=y,o=lbl").unwrap()).with("name", "a*b");
        assert!(Filter::parse("(name=a\\*b)").unwrap().matches(&e));
        assert!(Filter::parse("(name=a*b)").unwrap().matches(&e));
        let plain = Entry::new(Dn::parse("x=z,o=lbl").unwrap()).with("name", "axxb");
        assert!(!Filter::parse("(name=a\\*b)").unwrap().matches(&plain));
        assert!(Filter::parse("(name=a*b)").unwrap().matches(&plain));
    }
}
