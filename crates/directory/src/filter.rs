//! LDAP-style search filters.
//!
//! Supports the subset JAMM needs: equality, presence, substring (leading /
//! trailing `*`), and the boolean combinators, with the standard
//! parenthesised prefix syntax, e.g.
//! `(&(objectclass=sensor)(host=dpss*)(!(status=stopped)))`.

use crate::entry::Entry;
use crate::DirectoryError;

/// A search filter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Filter {
    /// `(attr=value)` — case-insensitive equality.
    Equals(String, String),
    /// `(attr=*)` — attribute present.
    Present(String),
    /// `(attr=pattern)` where pattern contains `*` wildcards.
    Substring(String, Vec<String>),
    /// `(&(f1)(f2)...)` — all must match.  An empty AND matches everything.
    And(Vec<Filter>),
    /// `(|(f1)(f2)...)` — at least one must match.
    Or(Vec<Filter>),
    /// `(!(f))` — negation.
    Not(Box<Filter>),
}

impl Filter {
    /// A filter that matches every entry.
    pub fn everything() -> Filter {
        Filter::And(Vec::new())
    }

    /// Convenience: equality filter.
    pub fn eq(attr: impl Into<String>, value: impl Into<String>) -> Filter {
        Filter::Equals(attr.into().to_ascii_lowercase(), value.into())
    }

    /// Convenience: presence filter.
    pub fn present(attr: impl Into<String>) -> Filter {
        Filter::Present(attr.into().to_ascii_lowercase())
    }

    /// Convenience: conjunction.
    pub fn and(filters: Vec<Filter>) -> Filter {
        Filter::And(filters)
    }

    /// Convenience: disjunction.
    pub fn or(filters: Vec<Filter>) -> Filter {
        Filter::Or(filters)
    }

    /// Evaluate the filter against an entry.
    pub fn matches(&self, entry: &Entry) -> bool {
        match self {
            Filter::Equals(attr, value) => entry.has_value(attr, value),
            Filter::Present(attr) => entry.has(attr),
            Filter::Substring(attr, parts) => entry
                .get_all(attr)
                .iter()
                .any(|v| substring_match(v, parts)),
            Filter::And(fs) => fs.iter().all(|f| f.matches(entry)),
            Filter::Or(fs) => fs.iter().any(|f| f.matches(entry)),
            Filter::Not(f) => !f.matches(entry),
        }
    }

    /// Parse the textual filter syntax.
    pub fn parse(s: &str) -> crate::Result<Filter> {
        let s = s.trim();
        let mut parser = Parser { input: s, pos: 0 };
        let f = parser.parse_filter()?;
        parser.skip_ws();
        if parser.pos != parser.input.len() {
            return Err(DirectoryError::InvalidFilter(s.to_string()));
        }
        Ok(f)
    }
}

/// Case-insensitive glob match where `parts` are the literal segments between
/// `*` wildcards (empty leading/trailing segments anchor nothing).
fn substring_match(value: &str, parts: &[String]) -> bool {
    let value = value.to_ascii_lowercase();
    let mut pos = 0usize;
    for (i, part) in parts.iter().enumerate() {
        if part.is_empty() {
            continue;
        }
        let p = part.to_ascii_lowercase();
        if i == 0 {
            if !value.starts_with(&p) {
                return false;
            }
            pos = p.len();
        } else if i == parts.len() - 1 {
            return value.len() >= pos && value[pos..].ends_with(&p);
        } else {
            match value[pos..].find(&p) {
                Some(found) => pos += found + p.len(),
                None => return false,
            }
        }
    }
    true
}

struct Parser<'a> {
    input: &'a str,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self) -> DirectoryError {
        DirectoryError::InvalidFilter(self.input.to_string())
    }

    fn skip_ws(&mut self) {
        while self.input[self.pos..].starts_with(char::is_whitespace) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: char) -> crate::Result<()> {
        self.skip_ws();
        if self.input[self.pos..].starts_with(c) {
            self.pos += c.len_utf8();
            Ok(())
        } else {
            Err(self.err())
        }
    }

    fn peek(&mut self) -> Option<char> {
        self.skip_ws();
        self.input[self.pos..].chars().next()
    }

    fn parse_filter(&mut self) -> crate::Result<Filter> {
        self.expect('(')?;
        let f = match self.peek() {
            Some('&') => {
                self.pos += 1;
                Filter::And(self.parse_list()?)
            }
            Some('|') => {
                self.pos += 1;
                Filter::Or(self.parse_list()?)
            }
            Some('!') => {
                self.pos += 1;
                Filter::Not(Box::new(self.parse_filter()?))
            }
            Some(_) => self.parse_simple()?,
            None => return Err(self.err()),
        };
        self.expect(')')?;
        Ok(f)
    }

    fn parse_list(&mut self) -> crate::Result<Vec<Filter>> {
        let mut out = Vec::new();
        while self.peek() == Some('(') {
            out.push(self.parse_filter()?);
        }
        Ok(out)
    }

    fn parse_simple(&mut self) -> crate::Result<Filter> {
        let rest = &self.input[self.pos..];
        let end = rest.find(')').ok_or_else(|| self.err())?;
        let body = &rest[..end];
        self.pos += end;
        let (attr, value) = body.split_once('=').ok_or_else(|| self.err())?;
        let attr = attr.trim();
        let value = value.trim();
        if attr.is_empty() {
            return Err(self.err());
        }
        if value == "*" {
            Ok(Filter::Present(attr.to_ascii_lowercase()))
        } else if value.contains('*') {
            let parts: Vec<String> = value.split('*').map(|p| p.to_string()).collect();
            Ok(Filter::Substring(attr.to_ascii_lowercase(), parts))
        } else {
            Ok(Filter::Equals(attr.to_ascii_lowercase(), value.to_string()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dn::Dn;

    fn entry() -> Entry {
        Entry::new(Dn::parse("sensor=cpu,host=dpss1.lbl.gov,o=lbl").unwrap())
            .with("objectclass", "sensor")
            .with("host", "dpss1.lbl.gov")
            .with("eventtype", "CPU_TOTAL")
            .with("status", "running")
    }

    #[test]
    fn equality_and_presence() {
        let e = entry();
        assert!(Filter::eq("host", "DPSS1.LBL.GOV").matches(&e));
        assert!(!Filter::eq("host", "other").matches(&e));
        assert!(Filter::present("status").matches(&e));
        assert!(!Filter::present("gateway").matches(&e));
    }

    #[test]
    fn boolean_combinators() {
        let e = entry();
        let f = Filter::and(vec![
            Filter::eq("objectclass", "sensor"),
            Filter::Not(Box::new(Filter::eq("status", "stopped"))),
        ]);
        assert!(f.matches(&e));
        let g = Filter::or(vec![
            Filter::eq("host", "nope"),
            Filter::eq("host", "dpss1.lbl.gov"),
        ]);
        assert!(g.matches(&e));
        assert!(Filter::everything().matches(&e));
        assert!(!Filter::Or(vec![]).matches(&e), "empty OR matches nothing");
    }

    #[test]
    fn substring_patterns() {
        let e = entry();
        assert!(Filter::parse("(host=dpss*)").unwrap().matches(&e));
        assert!(Filter::parse("(host=*.lbl.gov)").unwrap().matches(&e));
        assert!(Filter::parse("(host=dpss*gov)").unwrap().matches(&e));
        assert!(Filter::parse("(host=*lbl*)").unwrap().matches(&e));
        assert!(!Filter::parse("(host=*.anl.gov)").unwrap().matches(&e));
        assert!(!Filter::parse("(host=isi*)").unwrap().matches(&e));
    }

    #[test]
    fn parse_canonical_jamm_query() {
        let f = Filter::parse("(&(objectclass=sensor)(host=dpss1.lbl.gov)(!(status=stopped)))")
            .unwrap();
        assert!(f.matches(&entry()));
        let mut stopped = entry();
        stopped.set("status", vec!["stopped".into()]);
        assert!(!f.matches(&stopped));
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in ["", "(", "()", "(a)", "(&(a=b)", "(a=b))", "junk", "(=x)"] {
            assert!(Filter::parse(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn parse_whitespace_tolerant() {
        let f = Filter::parse(" ( & ( objectclass=sensor ) ( status=* ) ) ").unwrap();
        assert!(f.matches(&entry()));
    }
}
