//! Master/replica replication and failover reads.
//!
//! "LDAP also supports the notion of replicated servers, providing fault
//! tolerance.  Replication is critical to JAMM.  Otherwise, failure of the
//! sensor directory server could take down the entire system." (§2.2)
//!
//! [`ReplicatedDirectory`] accepts writes at the master, pushes them
//! synchronously to every reachable replica, brings replicas that were down
//! back up to date with a snapshot, and serves reads from the first
//! reachable server (master first, then replicas) so the directory keeps
//! answering when the master fails.

use std::sync::Arc;

use jamm_core::sync::Mutex;

use crate::dn::Dn;
use crate::entry::Entry;
use crate::filter::Filter;
use crate::server::{DirectoryServer, Scope, SearchResult};
use crate::{DirectoryError, Result};

/// A master directory server with zero or more replicas.
#[derive(Debug, Clone)]
pub struct ReplicatedDirectory {
    master: Arc<DirectoryServer>,
    replicas: Vec<Arc<DirectoryServer>>,
    /// Replicas that missed at least one write while unreachable and need a
    /// full resynchronisation before they can serve reads again.
    stale: Arc<Mutex<Vec<String>>>,
}

impl ReplicatedDirectory {
    /// Create a replicated directory.
    pub fn new(master: Arc<DirectoryServer>, replicas: Vec<Arc<DirectoryServer>>) -> Self {
        ReplicatedDirectory {
            master,
            replicas,
            stale: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// The master server.
    pub fn master(&self) -> &Arc<DirectoryServer> {
        &self.master
    }

    /// The replica servers.
    pub fn replicas(&self) -> &[Arc<DirectoryServer>] {
        &self.replicas
    }

    /// Apply a write through the master and propagate it to replicas.
    /// Replicas that are down are marked stale and resynchronised when they
    /// come back (see [`ReplicatedDirectory::resync`]).
    pub fn add_or_replace(&self, entry: Entry) -> Result<()> {
        self.master.add_or_replace(entry.clone())?;
        for r in &self.replicas {
            if r.add_or_replace(entry.clone()).is_err() {
                self.mark_stale(r.name());
            }
        }
        Ok(())
    }

    /// Delete through the master and propagate.
    pub fn delete(&self, dn: &Dn) -> Result<()> {
        self.master.delete(dn)?;
        for r in &self.replicas {
            match r.delete(dn) {
                Ok(_) | Err(DirectoryError::NoSuchEntry(_)) => {}
                Err(_) => self.mark_stale(r.name()),
            }
        }
        Ok(())
    }

    fn mark_stale(&self, name: &str) {
        let mut stale = self.stale.lock();
        if !stale.iter().any(|n| n == name) {
            stale.push(name.to_string());
        }
    }

    /// Names of replicas known to be out of date.
    pub fn stale_replicas(&self) -> Vec<String> {
        self.stale.lock().clone()
    }

    /// Push a full snapshot of the master to every stale (and reachable)
    /// replica, clearing its stale mark.  Returns the number resynchronised.
    pub fn resync(&self) -> usize {
        let snapshot = self.master.snapshot();
        let mut resynced = 0;
        let mut stale = self.stale.lock();
        stale.retain(|name| {
            let Some(replica) = self.replicas.iter().find(|r| r.name() == name) else {
                return false;
            };
            if replica.is_available() {
                replica.load(snapshot.clone());
                resynced += 1;
                false
            } else {
                true
            }
        });
        resynced
    }

    /// Read one entry, trying the master first and then each replica.
    pub fn lookup(&self, dn: &Dn) -> Result<Entry> {
        let mut last_err = DirectoryError::ServerUnavailable("no servers".into());
        for server in self.read_order() {
            match server.lookup(dn) {
                Ok(e) => return Ok(e),
                Err(DirectoryError::ServerUnavailable(_)) => {
                    last_err = DirectoryError::ServerUnavailable(server.name().to_string());
                }
                Err(e) => return Err(e),
            }
        }
        Err(last_err)
    }

    /// Search, trying the master first and then each replica.
    pub fn search(&self, base: &Dn, scope: Scope, filter: &Filter) -> Result<SearchResult> {
        let mut last_err = DirectoryError::ServerUnavailable("no servers".into());
        for server in self.read_order() {
            match server.search(base, scope, filter) {
                Ok(r) => return Ok(r),
                Err(DirectoryError::ServerUnavailable(_)) => {
                    last_err = DirectoryError::ServerUnavailable(server.name().to_string());
                }
                Err(e) => return Err(e),
            }
        }
        Err(last_err)
    }

    fn read_order(&self) -> impl Iterator<Item = &Arc<DirectoryServer>> {
        let stale = self.stale.lock().clone();
        std::iter::once(&self.master).chain(
            self.replicas
                .iter()
                .filter(move |r| !stale.iter().any(|s| s == r.name())),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn suffix() -> Dn {
        Dn::parse("o=grid").unwrap()
    }

    fn sensor(host: &str, kind: &str) -> Entry {
        Entry::new(Dn::parse(&format!("sensor={kind},host={host},o=grid")).unwrap())
            .with("objectclass", "sensor")
            .with("host", host)
            .with("sensor", kind)
    }

    fn replicated(n_replicas: usize) -> ReplicatedDirectory {
        let master = Arc::new(DirectoryServer::new("ldap://master", suffix()));
        let replicas: Vec<_> = (0..n_replicas)
            .map(|i| Arc::new(DirectoryServer::new(format!("ldap://replica{i}"), suffix())))
            .collect();
        ReplicatedDirectory::new(master, replicas)
    }

    #[test]
    fn writes_propagate_to_all_replicas() {
        let d = replicated(2);
        d.add_or_replace(sensor("h1", "cpu")).unwrap();
        d.add_or_replace(sensor("h2", "cpu")).unwrap();
        assert_eq!(d.master().entry_count(), 2);
        for r in d.replicas() {
            assert_eq!(r.entry_count(), 2);
        }
        d.delete(&Dn::parse("sensor=cpu,host=h1,o=grid").unwrap())
            .unwrap();
        for r in d.replicas() {
            assert_eq!(r.entry_count(), 1);
        }
    }

    #[test]
    fn reads_fail_over_when_the_master_is_down() {
        let d = replicated(2);
        d.add_or_replace(sensor("h1", "cpu")).unwrap();
        d.master().set_available(false);
        let dn = Dn::parse("sensor=cpu,host=h1,o=grid").unwrap();
        assert_eq!(d.lookup(&dn).unwrap().get("host"), Some("h1"));
        let r = d
            .search(&suffix(), Scope::Subtree, &Filter::everything())
            .unwrap();
        assert_eq!(r.entries.len(), 1);
    }

    #[test]
    fn all_servers_down_is_an_error() {
        let d = replicated(1);
        d.add_or_replace(sensor("h1", "cpu")).unwrap();
        d.master().set_available(false);
        d.replicas()[0].set_available(false);
        assert!(matches!(
            d.lookup(&Dn::parse("sensor=cpu,host=h1,o=grid").unwrap()),
            Err(DirectoryError::ServerUnavailable(_))
        ));
    }

    #[test]
    fn missed_writes_mark_replica_stale_and_resync_catches_up() {
        let d = replicated(2);
        d.add_or_replace(sensor("h1", "cpu")).unwrap();
        // Replica 0 goes down and misses two writes.
        d.replicas()[0].set_available(false);
        d.add_or_replace(sensor("h2", "cpu")).unwrap();
        d.add_or_replace(sensor("h3", "cpu")).unwrap();
        assert_eq!(d.stale_replicas(), vec!["ldap://replica0".to_string()]);
        assert_eq!(d.replicas()[1].entry_count(), 3);
        // While stale it is excluded from failover reads.
        d.master().set_available(false);
        d.replicas()[1].set_available(false);
        assert!(d
            .search(&suffix(), Scope::Subtree, &Filter::everything())
            .is_err());
        // It comes back, resync pushes the snapshot, and reads resume.
        d.master().set_available(true);
        d.replicas()[0].set_available(true);
        assert_eq!(d.resync(), 1);
        assert!(d.stale_replicas().is_empty());
        assert_eq!(d.replicas()[0].entry_count(), 3);
    }

    #[test]
    fn resync_skips_replicas_still_down() {
        let d = replicated(1);
        d.replicas()[0].set_available(false);
        d.add_or_replace(sensor("h1", "cpu")).unwrap();
        assert_eq!(d.resync(), 0, "replica still down");
        assert_eq!(d.stale_replicas().len(), 1);
    }
}
