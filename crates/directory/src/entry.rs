//! Directory entries: a DN plus multi-valued attributes.

use std::collections::BTreeMap;

use crate::dn::Dn;

/// A directory entry.
///
/// Attribute names are case-insensitive (stored lower-case); each attribute
/// holds one or more string values, like LDAP.  JAMM publishes sensors as
/// entries with attributes such as `objectclass=sensor`, `host=...`,
/// `gateway=...`, `eventtype=...`, `frequency=...`, `status=...`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    /// The entry's distinguished name.
    pub dn: Dn,
    attributes: BTreeMap<String, Vec<String>>,
}

impl Entry {
    /// Create an entry with no attributes.
    pub fn new(dn: Dn) -> Self {
        Entry {
            dn,
            attributes: BTreeMap::new(),
        }
    }

    /// Builder-style: add one value of an attribute.
    pub fn with(mut self, attr: impl Into<String>, value: impl Into<String>) -> Self {
        self.add(attr, value);
        self
    }

    /// Add one value of an attribute (duplicates are ignored).
    pub fn add(&mut self, attr: impl Into<String>, value: impl Into<String>) {
        let attr = attr.into().to_ascii_lowercase();
        let value = value.into();
        let values = self.attributes.entry(attr).or_default();
        if !values.iter().any(|v| v.eq_ignore_ascii_case(&value)) {
            values.push(value);
        }
    }

    /// Replace every value of an attribute.
    pub fn set(&mut self, attr: impl Into<String>, values: Vec<String>) {
        self.attributes
            .insert(attr.into().to_ascii_lowercase(), values);
    }

    /// Remove an attribute entirely.  Returns true if it existed.
    pub fn remove(&mut self, attr: &str) -> bool {
        self.attributes.remove(&attr.to_ascii_lowercase()).is_some()
    }

    /// All values of an attribute (empty slice when absent).
    pub fn get_all(&self, attr: &str) -> &[String] {
        self.attributes
            .get(&attr.to_ascii_lowercase())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// First value of an attribute.
    pub fn get(&self, attr: &str) -> Option<&str> {
        self.get_all(attr).first().map(String::as_str)
    }

    /// True if the attribute is present with at least one value.
    pub fn has(&self, attr: &str) -> bool {
        !self.get_all(attr).is_empty()
    }

    /// True if the attribute holds the value (case-insensitive).
    pub fn has_value(&self, attr: &str, value: &str) -> bool {
        self.get_all(attr)
            .iter()
            .any(|v| v.eq_ignore_ascii_case(value))
    }

    /// Iterate over `(attribute, values)` pairs, sorted by attribute name.
    pub fn attributes(&self) -> impl Iterator<Item = (&str, &[String])> {
        self.attributes
            .iter()
            .map(|(k, v)| (k.as_str(), v.as_slice()))
    }

    /// Number of attributes.
    pub fn attribute_count(&self) -> usize {
        self.attributes.len()
    }
}

/// Entries answer the unified query plane through their attributes: the
/// typed accessors stay `None`, so `host=` / `type=` leaves match against
/// the (possibly multi-valued) `host` / `eventtype` attributes.
impl jamm_core::query::Record for Entry {
    fn attr_any(&self, attr: &str, f: &mut dyn FnMut(&str) -> bool) -> bool {
        self.get_all(attr).iter().any(|v| f(v))
    }

    fn attr_present(&self, attr: &str) -> bool {
        self.has(attr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sensor_entry() -> Entry {
        Entry::new(Dn::parse("sensor=cpu,host=dpss1.lbl.gov,o=lbl").unwrap())
            .with("objectClass", "sensor")
            .with("objectClass", "jammObject")
            .with("host", "dpss1.lbl.gov")
            .with("gateway", "gw1.lbl.gov:8765")
            .with("eventType", "CPU_TOTAL")
            .with("frequency", "1.0")
    }

    #[test]
    fn attribute_access_is_case_insensitive() {
        let e = sensor_entry();
        assert_eq!(e.get("GATEWAY"), Some("gw1.lbl.gov:8765"));
        assert!(e.has("objectclass"));
        assert!(e.has_value("OBJECTCLASS", "SENSOR"));
        assert_eq!(e.get_all("objectclass").len(), 2);
        assert_eq!(e.get("missing"), None);
        assert!(!e.has("missing"));
    }

    #[test]
    fn duplicate_values_are_ignored() {
        let mut e = sensor_entry();
        e.add("objectclass", "Sensor");
        assert_eq!(e.get_all("objectclass").len(), 2);
    }

    #[test]
    fn set_and_remove() {
        let mut e = sensor_entry();
        e.set("status", vec!["running".into()]);
        assert_eq!(e.get("status"), Some("running"));
        e.set("status", vec!["stopped".into()]);
        assert_eq!(e.get_all("status"), &["stopped".to_string()]);
        assert!(e.remove("status"));
        assert!(!e.remove("status"));
        assert!(!e.has("status"));
    }

    #[test]
    fn attribute_iteration_is_sorted() {
        let e = sensor_entry();
        let names: Vec<_> = e.attributes().map(|(k, _)| k.to_string()).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
        assert_eq!(e.attribute_count(), names.len());
    }
}
