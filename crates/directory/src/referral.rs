//! Per-site servers and referral chasing.
//!
//! "LDAP servers can be hierarchical, with referrals to other LDAP servers
//! which contain the directory service information for each site" (§2.2).
//! A [`Federation`] holds one server per site; searching it chases referrals
//! so a consumer sees one logical grid-wide directory.

use std::collections::HashMap;
use std::sync::Arc;

use crate::dn::Dn;
use crate::filter::Filter;
use crate::server::{DirectoryServer, Scope, SearchResult};
use crate::{DirectoryError, Result};

/// A set of cooperating per-site directory servers.
#[derive(Debug, Default, Clone)]
pub struct Federation {
    servers: HashMap<String, Arc<DirectoryServer>>,
}

impl Federation {
    /// Create an empty federation.
    pub fn new() -> Self {
        Federation::default()
    }

    /// Add a server, keyed by its name/URL.
    pub fn add_server(&mut self, server: Arc<DirectoryServer>) {
        self.servers.insert(server.name().to_string(), server);
    }

    /// Look up a member server by name.
    pub fn server(&self, name: &str) -> Option<&Arc<DirectoryServer>> {
        self.servers.get(name)
    }

    /// Number of member servers.
    pub fn server_count(&self) -> usize {
        self.servers.len()
    }

    /// Search starting at `start_server`, chasing referrals (breadth-first,
    /// each server visited at most once).  Entries from every visited server
    /// are merged; referrals that point outside the federation are surfaced
    /// in the result so the caller knows coverage was incomplete.
    pub fn search(
        &self,
        start_server: &str,
        base: &Dn,
        scope: Scope,
        filter: &Filter,
    ) -> Result<SearchResult> {
        let mut merged = SearchResult::default();
        let mut visited: Vec<String> = Vec::new();
        let mut queue: Vec<String> = vec![start_server.to_string()];

        while let Some(name) = queue.pop() {
            if visited.contains(&name) {
                continue;
            }
            visited.push(name.clone());
            let Some(server) = self.servers.get(&name) else {
                merged.referrals.push(name);
                continue;
            };
            match server.search(base, scope, filter) {
                Ok(mut r) => {
                    merged.entries.append(&mut r.entries);
                    for referral in r.referrals {
                        if !visited.contains(&referral) {
                            queue.push(referral);
                        }
                    }
                }
                Err(DirectoryError::ServerUnavailable(_)) => {
                    // A down site does not fail the whole grid query; its
                    // name is reported as an unreachable referral.
                    merged.referrals.push(name);
                }
                Err(e) => return Err(e),
            }
        }
        merged.entries.sort_by_key(|e| e.dn.to_string());
        merged.entries.dedup_by_key(|e| e.dn.to_string());
        Ok(merged)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::Entry;

    fn site_server(site: &str) -> Arc<DirectoryServer> {
        let suffix = Dn::parse(&format!("o={site},o=grid")).unwrap();
        let s = DirectoryServer::new(format!("ldap://dir.{site}.example"), suffix.clone());
        for i in 0..3 {
            let dn = suffix
                .child("host", format!("node{i}.{site}.example"))
                .child("sensor", "cpu");
            s.add(
                Entry::new(dn)
                    .with("objectclass", "sensor")
                    .with("site", site)
                    .with("sensor", "cpu"),
            )
            .unwrap();
        }
        Arc::new(s)
    }

    fn federation() -> (
        Federation,
        Arc<DirectoryServer>,
        Arc<DirectoryServer>,
        Arc<DirectoryServer>,
    ) {
        let lbl = site_server("lbl");
        let anl = site_server("anl");
        let isi = site_server("isi");
        // LBL refers to ANL and ISI; ANL refers back to LBL (cycle on purpose).
        lbl.add_referral(Dn::parse("o=anl,o=grid").unwrap(), anl.name());
        lbl.add_referral(Dn::parse("o=isi,o=grid").unwrap(), isi.name());
        anl.add_referral(Dn::parse("o=lbl,o=grid").unwrap(), lbl.name());
        let mut fed = Federation::new();
        fed.add_server(Arc::clone(&lbl));
        fed.add_server(Arc::clone(&anl));
        fed.add_server(Arc::clone(&isi));
        (fed, lbl, anl, isi)
    }

    #[test]
    fn grid_wide_search_chases_referrals_and_merges() {
        let (fed, lbl, _, _) = federation();
        assert_eq!(fed.server_count(), 3);
        let r = fed
            .search(
                lbl.name(),
                &Dn::parse("o=grid").unwrap(),
                Scope::Subtree,
                &Filter::eq("objectclass", "sensor"),
            )
            .unwrap();
        assert_eq!(r.entries.len(), 9, "three sites x three sensors");
        assert!(r.referrals.is_empty());
    }

    #[test]
    fn referral_cycles_terminate() {
        let (fed, _, anl, _) = federation();
        // Starting at ANL follows the back-referral to LBL and onward to ISI.
        let r = fed
            .search(
                anl.name(),
                &Dn::parse("o=grid").unwrap(),
                Scope::Subtree,
                &Filter::everything(),
            )
            .unwrap();
        assert_eq!(r.entries.len(), 9);
    }

    #[test]
    fn scoped_search_only_visits_relevant_sites() {
        let (fed, lbl, _, _) = federation();
        let r = fed
            .search(
                lbl.name(),
                &Dn::parse("o=anl,o=grid").unwrap(),
                Scope::Subtree,
                &Filter::everything(),
            )
            .unwrap();
        assert_eq!(r.entries.len(), 3);
        assert!(r.entries.iter().all(|e| e.get("site") == Some("anl")));
    }

    #[test]
    fn down_site_is_reported_not_fatal() {
        let (fed, lbl, anl, _) = federation();
        anl.set_available(false);
        let r = fed
            .search(
                lbl.name(),
                &Dn::parse("o=grid").unwrap(),
                Scope::Subtree,
                &Filter::everything(),
            )
            .unwrap();
        assert_eq!(r.entries.len(), 6, "LBL + ISI still answer");
        assert_eq!(r.referrals, vec![anl.name().to_string()]);
    }

    #[test]
    fn referral_to_unknown_server_is_surfaced() {
        let (mut fed, lbl, _, _) = federation();
        lbl.add_referral(
            Dn::parse("o=ornl,o=grid").unwrap(),
            "ldap://dir.ornl.example",
        );
        // Remove ISI from the federation to simulate an unknown server too.
        fed.servers.remove("ldap://dir.isi.example");
        let r = fed
            .search(
                lbl.name(),
                &Dn::parse("o=grid").unwrap(),
                Scope::Subtree,
                &Filter::everything(),
            )
            .unwrap();
        assert_eq!(r.entries.len(), 6);
        assert!(r.referrals.contains(&"ldap://dir.ornl.example".to_string()));
        assert!(r.referrals.contains(&"ldap://dir.isi.example".to_string()));
    }
}
