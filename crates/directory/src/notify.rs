//! Persistent search / event notification.
//!
//! The paper (§2.2) looks forward to the LDAPv3 "event notification" service:
//! "This service lets a client register interest in an entry (i.e., sensor
//! running) with the LDAP server, and LDAP will notify the client when that
//! entry becomes available or is updated."  This module provides exactly
//! that: consumers register a base DN and filter and receive change events
//! over a channel whenever a matching entry is added, modified or deleted.

use jamm_core::channel::{unbounded, Receiver, Sender, TryRecvError};
use jamm_core::sync::Mutex;

use crate::dn::Dn;
use crate::entry::Entry;
use crate::filter::Filter;

/// The kind of change that occurred.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChangeKind {
    /// A matching entry was created.
    Added,
    /// A matching entry was modified.
    Modified,
    /// A matching entry was removed.
    Deleted,
}

/// A change notification delivered to a persistent search.
#[derive(Debug, Clone, PartialEq)]
pub struct Change {
    /// What happened.
    pub kind: ChangeKind,
    /// The entry after the change (or as it was, for deletions).
    pub entry: Entry,
}

struct Subscription {
    base: Dn,
    filter: Filter,
    tx: Sender<Change>,
}

/// Dispatches change notifications to registered persistent searches.
#[derive(Default)]
pub struct Notifier {
    subs: Mutex<Vec<Subscription>>,
}

impl std::fmt::Debug for Notifier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Notifier({} subscriptions)", self.subs.lock().len())
    }
}

impl Notifier {
    /// Create an empty notifier.
    pub fn new() -> Self {
        Notifier::default()
    }

    /// Register a persistent search.
    pub fn subscribe(&self, base: Dn, filter: Filter) -> PersistentSearch {
        let (tx, rx) = unbounded();
        self.subs.lock().push(Subscription { base, filter, tx });
        PersistentSearch { rx }
    }

    /// Publish a change to every interested subscriber.  Subscribers whose
    /// receiving end has been dropped are pruned.
    pub fn publish(&self, kind: ChangeKind, entry: &Entry) {
        let mut subs = self.subs.lock();
        subs.retain(|sub| {
            if entry.dn.is_under(&sub.base) && sub.filter.matches(entry) {
                sub.tx
                    .send(Change {
                        kind,
                        entry: entry.clone(),
                    })
                    .is_ok()
            } else {
                // Non-matching changes never evict a subscription; dead
                // channels are pruned the next time they would have matched.
                true
            }
        });
    }

    /// Number of live subscriptions.
    pub fn subscription_count(&self) -> usize {
        self.subs.lock().len()
    }
}

/// The consumer side of a persistent search.
#[derive(Debug)]
pub struct PersistentSearch {
    rx: Receiver<Change>,
}

impl PersistentSearch {
    /// Non-blocking: the next pending change, if any.
    pub fn try_next(&self) -> Option<Change> {
        match self.rx.try_recv() {
            Ok(c) => Some(c),
            Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => None,
        }
    }

    /// Drain all pending changes.
    pub fn drain(&self) -> Vec<Change> {
        let mut out = Vec::new();
        while let Some(c) = self.try_next() {
            out.push(c);
        }
        out
    }

    /// Blocking receive with a timeout; `None` on timeout or disconnect.
    pub fn next_timeout(&self, timeout: std::time::Duration) -> Option<Change> {
        self.rx.recv_timeout(timeout).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sensor(host: &str, kind: &str) -> Entry {
        Entry::new(Dn::parse(&format!("sensor={kind},host={host},o=lbl")).unwrap())
            .with("objectclass", "sensor")
            .with("host", host)
            .with("sensor", kind)
    }

    #[test]
    fn matching_changes_are_delivered() {
        let n = Notifier::new();
        let watch = n.subscribe(
            Dn::parse("host=dpss1.lbl.gov,o=lbl").unwrap(),
            Filter::eq("objectclass", "sensor"),
        );
        n.publish(ChangeKind::Added, &sensor("dpss1.lbl.gov", "cpu"));
        n.publish(ChangeKind::Added, &sensor("dpss2.lbl.gov", "cpu")); // other host
        n.publish(ChangeKind::Modified, &sensor("dpss1.lbl.gov", "cpu"));
        let changes = watch.drain();
        assert_eq!(changes.len(), 2);
        assert_eq!(changes[0].kind, ChangeKind::Added);
        assert_eq!(changes[1].kind, ChangeKind::Modified);
        assert!(watch.try_next().is_none());
    }

    #[test]
    fn filter_restricts_notifications() {
        let n = Notifier::new();
        let watch = n.subscribe(Dn::parse("o=lbl").unwrap(), Filter::eq("sensor", "tcp"));
        n.publish(ChangeKind::Added, &sensor("a.lbl.gov", "cpu"));
        n.publish(ChangeKind::Added, &sensor("a.lbl.gov", "tcp"));
        n.publish(ChangeKind::Deleted, &sensor("b.lbl.gov", "tcp"));
        let changes = watch.drain();
        assert_eq!(changes.len(), 2);
        assert!(changes.iter().all(|c| c.entry.get("sensor") == Some("tcp")));
        assert_eq!(changes[1].kind, ChangeKind::Deleted);
    }

    #[test]
    fn multiple_subscribers_each_get_their_copy() {
        let n = Notifier::new();
        let w1 = n.subscribe(Dn::root(), Filter::everything());
        let w2 = n.subscribe(Dn::root(), Filter::everything());
        assert_eq!(n.subscription_count(), 2);
        n.publish(ChangeKind::Added, &sensor("h", "cpu"));
        assert_eq!(w1.drain().len(), 1);
        assert_eq!(w2.drain().len(), 1);
    }

    #[test]
    fn dropped_subscribers_are_pruned_on_next_match() {
        let n = Notifier::new();
        let w = n.subscribe(Dn::root(), Filter::everything());
        drop(w);
        n.publish(ChangeKind::Added, &sensor("h", "cpu"));
        assert_eq!(n.subscription_count(), 0);
    }

    #[test]
    fn timeout_receive() {
        let n = Notifier::new();
        let w = n.subscribe(Dn::root(), Filter::everything());
        assert!(w
            .next_timeout(std::time::Duration::from_millis(10))
            .is_none());
        n.publish(ChangeKind::Added, &sensor("h", "cpu"));
        assert!(w
            .next_timeout(std::time::Duration::from_millis(10))
            .is_some());
    }
}
