//! Distinguished names.
//!
//! A DN is an ordered list of `attribute=value` components, most specific
//! first, exactly as in LDAP: `sensor=cpu, host=dpss1.lbl.gov, o=lbl, o=grid`.
//! The hierarchy is what lets one site's server hold a subtree and refer
//! queries about other subtrees elsewhere.

use crate::DirectoryError;

/// One relative distinguished name component (`attribute=value`).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Rdn {
    /// Attribute name, stored lower-case.
    pub attr: String,
    /// Attribute value (case preserved, compared case-insensitively).
    pub value: String,
}

impl Rdn {
    /// Create a component.
    pub fn new(attr: impl Into<String>, value: impl Into<String>) -> Self {
        Rdn {
            attr: attr.into().to_ascii_lowercase(),
            value: value.into(),
        }
    }

    fn matches(&self, other: &Rdn) -> bool {
        self.attr == other.attr && self.value.eq_ignore_ascii_case(&other.value)
    }
}

impl std::fmt::Display for Rdn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}={}", self.attr, self.value)
    }
}

/// A distinguished name: ordered RDN components, most specific first.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Dn {
    components: Vec<Rdn>,
}

impl Dn {
    /// The root DN (no components).
    pub fn root() -> Self {
        Dn {
            components: Vec::new(),
        }
    }

    /// Build a DN from components, most specific first.
    pub fn from_components(components: Vec<Rdn>) -> Self {
        Dn { components }
    }

    /// Parse a DN string such as `sensor=cpu,host=dpss1.lbl.gov,o=lbl`.
    /// Whitespace around commas is ignored.  The empty string is the root.
    pub fn parse(s: &str) -> crate::Result<Self> {
        let s = s.trim();
        if s.is_empty() {
            return Ok(Dn::root());
        }
        let mut components = Vec::new();
        for part in s.split(',') {
            let part = part.trim();
            let (attr, value) = part
                .split_once('=')
                .ok_or_else(|| DirectoryError::InvalidDn(s.to_string()))?;
            let (attr, value) = (attr.trim(), value.trim());
            if attr.is_empty() || value.is_empty() {
                return Err(DirectoryError::InvalidDn(s.to_string()));
            }
            components.push(Rdn::new(attr, value));
        }
        Ok(Dn { components })
    }

    /// The components, most specific first.
    pub fn components(&self) -> &[Rdn] {
        &self.components
    }

    /// Number of components (0 for the root).
    pub fn depth(&self) -> usize {
        self.components.len()
    }

    /// True for the root DN.
    pub fn is_root(&self) -> bool {
        self.components.is_empty()
    }

    /// The leading (most specific) component, if any.
    pub fn rdn(&self) -> Option<&Rdn> {
        self.components.first()
    }

    /// The parent DN (everything but the leading component).
    pub fn parent(&self) -> Option<Dn> {
        if self.components.is_empty() {
            None
        } else {
            Some(Dn {
                components: self.components[1..].to_vec(),
            })
        }
    }

    /// Prepend a child component, producing a more specific DN.
    pub fn child(&self, attr: impl Into<String>, value: impl Into<String>) -> Dn {
        let mut components = Vec::with_capacity(self.components.len() + 1);
        components.push(Rdn::new(attr, value));
        components.extend(self.components.iter().cloned());
        Dn { components }
    }

    /// True if `self` equals `base` or sits underneath it.
    pub fn is_under(&self, base: &Dn) -> bool {
        if base.components.len() > self.components.len() {
            return false;
        }
        let offset = self.components.len() - base.components.len();
        self.components[offset..]
            .iter()
            .zip(&base.components)
            .all(|(a, b)| a.matches(b))
    }

    /// True if `self` is an immediate child of `base`.
    pub fn is_child_of(&self, base: &Dn) -> bool {
        self.components.len() == base.components.len() + 1 && self.is_under(base)
    }
}

impl std::fmt::Display for Dn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut first = true;
        for c in &self.components {
            if !first {
                f.write_str(",")?;
            }
            write!(f, "{c}")?;
            first = false;
        }
        Ok(())
    }
}

impl std::str::FromStr for Dn {
    type Err = DirectoryError;
    fn from_str(s: &str) -> crate::Result<Self> {
        Dn::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_round_trip() {
        let dn = Dn::parse("sensor=cpu, host=dpss1.lbl.gov, o=lbl, o=grid").unwrap();
        assert_eq!(dn.depth(), 4);
        assert_eq!(dn.to_string(), "sensor=cpu,host=dpss1.lbl.gov,o=lbl,o=grid");
        assert_eq!(Dn::parse(&dn.to_string()).unwrap(), dn);
    }

    #[test]
    fn root_and_empty() {
        assert!(Dn::parse("").unwrap().is_root());
        assert_eq!(Dn::root().to_string(), "");
        assert_eq!(Dn::root().parent(), None);
    }

    #[test]
    fn invalid_dns_rejected() {
        assert!(Dn::parse("no-equals-sign").is_err());
        assert!(Dn::parse("a=,b=c").is_err());
        assert!(Dn::parse("=v").is_err());
    }

    #[test]
    fn parent_child_relations() {
        let base = Dn::parse("o=lbl,o=grid").unwrap();
        let host = base.child("host", "dpss1.lbl.gov");
        let sensor = host.child("sensor", "cpu");
        assert_eq!(
            sensor.to_string(),
            "sensor=cpu,host=dpss1.lbl.gov,o=lbl,o=grid"
        );
        assert_eq!(sensor.parent().unwrap(), host);
        assert!(sensor.is_under(&base));
        assert!(sensor.is_under(&host));
        assert!(sensor.is_under(&sensor));
        assert!(!sensor.is_child_of(&base));
        assert!(sensor.is_child_of(&host));
        assert!(host.is_child_of(&base));
        assert!(!base.is_under(&host));
        // Everything is under the root.
        assert!(sensor.is_under(&Dn::root()));
    }

    #[test]
    fn matching_is_case_insensitive() {
        let a = Dn::parse("HOST=DPSS1.LBL.GOV,o=lbl").unwrap();
        let b = Dn::parse("host=dpss1.lbl.gov,O=LBL").unwrap();
        assert!(a.is_under(&b) && b.is_under(&a));
    }

    #[test]
    fn rdn_accessor() {
        let dn = Dn::parse("sensor=cpu,host=x").unwrap();
        let rdn = dn.rdn().unwrap();
        assert_eq!(rdn.attr, "sensor");
        assert_eq!(rdn.value, "cpu");
        assert!(Dn::root().rdn().is_none());
    }
}
