//! Log collection and merging.
//!
//! "a set of tools for collecting and sorting log files" (§4.1).  Event logs
//! arrive from many hosts and sensors; before analysis they are merged into
//! one stream ordered by timestamp.  Because the merge is by absolute
//! timestamp, its correctness depends on clock synchronisation (§4.3) — the
//! [`crate::clock`] module quantifies what happens when that assumption is
//! violated.

use jamm_ulm::{text, Event};

/// Merge several already-collected logs into one time-ordered log.
///
/// The sort is stable, so events with identical timestamps keep the order of
/// their source logs (earlier argument first).
pub fn merge_logs(logs: &[Vec<Event>]) -> Vec<Event> {
    let mut merged: Vec<Event> = logs.iter().flatten().cloned().collect();
    merged.sort_by_key(|e| e.timestamp);
    merged
}

/// Merge several ULM text documents (one event per line) into one
/// time-ordered log, dropping malformed lines.
pub fn merge_ulm_documents(docs: &[&str]) -> Vec<Event> {
    let logs: Vec<Vec<Event>> = docs.iter().map(|d| text::decode_all_lossy(d)).collect();
    merge_logs(&logs)
}

/// Check whether a log is ordered by timestamp (what analysis tools assume).
pub fn is_time_ordered(events: &[Event]) -> bool {
    events.windows(2).all(|w| w[0].timestamp <= w[1].timestamp)
}

/// Count the number of adjacent inversions (places where time goes
/// backwards).  With synchronised clocks this is zero after a merge; with
/// skewed clocks the lifeline of a request can appear to run backwards, and
/// this is the simplest scalar symptom of it.
pub fn inversion_count(events: &[Event]) -> usize {
    events
        .windows(2)
        .filter(|w| w[0].timestamp > w[1].timestamp)
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use jamm_ulm::{Level, Timestamp};

    fn ev(host: &str, ty: &str, micros: u64) -> Event {
        Event::builder("p", host)
            .level(Level::Usage)
            .event_type(ty)
            .timestamp(Timestamp::from_micros(micros))
            .build()
    }

    #[test]
    fn merge_orders_across_sources() {
        let client = vec![
            ev("client", "REQ_SENT", 100),
            ev("client", "RESP_RECV", 500),
        ];
        let server = vec![
            ev("server", "REQ_RECV", 200),
            ev("server", "RESP_SENT", 400),
        ];
        let merged = merge_logs(&[client, server]);
        let types: Vec<_> = merged.iter().map(|e| e.event_type.as_str()).collect();
        assert_eq!(
            types,
            vec!["REQ_SENT", "REQ_RECV", "RESP_SENT", "RESP_RECV"]
        );
        assert!(is_time_ordered(&merged));
        assert_eq!(inversion_count(&merged), 0);
    }

    #[test]
    fn merge_is_stable_for_equal_timestamps() {
        let a = vec![ev("a", "FIRST", 100)];
        let b = vec![ev("b", "SECOND", 100)];
        let merged = merge_logs(&[a, b]);
        assert_eq!(merged[0].event_type, "FIRST");
        assert_eq!(merged[1].event_type, "SECOND");
    }

    #[test]
    fn ulm_documents_merge_and_skip_garbage() {
        let doc1 = "DATE=20000330112320.000100 HOST=a PROG=p LVL=Usage NL.EVNT=A\nnot a ulm line\n";
        let doc2 = "DATE=20000330112320.000050 HOST=b PROG=p LVL=Usage NL.EVNT=B\n";
        let merged = merge_ulm_documents(&[doc1, doc2]);
        assert_eq!(merged.len(), 2);
        assert_eq!(merged[0].event_type, "B");
    }

    #[test]
    fn inversion_count_detects_unsorted_logs() {
        let log = vec![ev("a", "X", 300), ev("a", "Y", 100), ev("a", "Z", 200)];
        assert!(!is_time_ordered(&log));
        assert_eq!(inversion_count(&log), 1);
    }
}
