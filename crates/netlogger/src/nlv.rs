//! The `nlv` visualisation data model (§4.5, Figure 2).
//!
//! `nlv` draws three graph primitives on a common time axis:
//!
//! * the **lifeline** — "the 'life' of an object (datum or computation) as it
//!   travels through a distributed system", built by correlating events that
//!   share an object id and plotting them against an ordered list of event
//!   types on the y-axis; the slope shows where time is spent;
//! * the **loadline** — "a series of scaled values into a continuous
//!   segmented curve", e.g. CPU load or free memory;
//! * the **point** — "single occurrences of events, often error or warning
//!   conditions such as TCP retransmits", optionally scaled by a value to
//!   give a scatter plot (Figure 3).
//!
//! This module produces those series from an event log; rendering is left to
//! whatever plots the numbers (the benches print them as data tables, and
//! [`NlvChart::render_ascii`] gives a quick terminal view).

use std::collections::BTreeMap;

use jamm_ulm::{Event, Timestamp};
/// One object's lifeline: its events in time order, with the y-position of
/// each event taken from the chart's event ordering.
#[derive(Debug, Clone, PartialEq)]
pub struct Lifeline {
    /// The correlation id (`NL.OID`) of the object.
    pub object_id: String,
    /// `(time, y index, event type)` triples in time order.
    pub points: Vec<(Timestamp, usize, String)>,
}

impl Lifeline {
    /// Total elapsed time from the first to the last event, microseconds.
    pub fn span_us(&self) -> u64 {
        match (self.points.first(), self.points.last()) {
            (Some((a, _, _)), Some((b, _, _))) => (*b - *a).max(0) as u64,
            _ => 0,
        }
    }

    /// Duration of each stage: `(from event, to event, microseconds)`.
    pub fn stage_durations(&self) -> Vec<(String, String, u64)> {
        self.points
            .windows(2)
            .map(|w| {
                (
                    w[0].2.clone(),
                    w[1].2.clone(),
                    (w[1].0 - w[0].0).max(0) as u64,
                )
            })
            .collect()
    }
}

/// A loadline: scaled values forming a continuous curve.
#[derive(Debug, Clone, PartialEq)]
pub struct Loadline {
    /// Host the readings came from.
    pub host: String,
    /// Event type of the readings (e.g. `VMSTAT_SYS_TIME`).
    pub event_type: String,
    /// `(time, value)` samples in time order.
    pub samples: Vec<(Timestamp, f64)>,
}

/// A point series: single occurrences, optionally value-scaled.
#[derive(Debug, Clone, PartialEq)]
pub struct PointSeries {
    /// Host the events came from.
    pub host: String,
    /// Event type (e.g. `TCPD_RETRANSMITS`).
    pub event_type: String,
    /// `(time, optional value)` occurrences in time order.
    pub points: Vec<(Timestamp, Option<f64>)>,
}

/// Extract lifelines from a log given the y-axis ordering of event types.
/// Events whose type is not in `event_order` or that carry no object id are
/// ignored.
pub fn lifelines(events: &[Event], event_order: &[&str]) -> Vec<Lifeline> {
    let index: BTreeMap<&str, usize> = event_order
        .iter()
        .enumerate()
        .map(|(i, t)| (*t, i))
        .collect();
    let mut by_object: BTreeMap<String, Vec<(Timestamp, usize, String)>> = BTreeMap::new();
    for e in events {
        let Some(oid) = e.object_id() else { continue };
        let Some(&y) = index.get(e.event_type.as_str()) else {
            continue;
        };
        by_object
            .entry(oid.to_string())
            .or_default()
            .push((e.timestamp, y, e.event_type.clone()));
    }
    by_object
        .into_iter()
        .map(|(object_id, mut points)| {
            points.sort_by_key(|(t, _, _)| *t);
            Lifeline { object_id, points }
        })
        .collect()
}

/// Extract a loadline for one host and event type.
pub fn loadline(events: &[Event], host: &str, event_type: &str) -> Loadline {
    let mut samples: Vec<(Timestamp, f64)> = events
        .iter()
        .filter(|e| e.host == host && e.event_type == event_type)
        .filter_map(|e| e.value().map(|v| (e.timestamp, v)))
        .collect();
    samples.sort_by_key(|(t, _)| *t);
    Loadline {
        host: host.to_string(),
        event_type: event_type.to_string(),
        samples,
    }
}

/// Extract a point series for one event type (all hosts, or one host).
pub fn points(events: &[Event], host: Option<&str>, event_type: &str) -> PointSeries {
    let mut pts: Vec<(Timestamp, Option<f64>)> = events
        .iter()
        .filter(|e| e.event_type == event_type && host.is_none_or(|h| e.host == h))
        .map(|e| (e.timestamp, e.value()))
        .collect();
    pts.sort_by_key(|(t, _)| *t);
    PointSeries {
        host: host.unwrap_or("*").to_string(),
        event_type: event_type.to_string(),
        points: pts,
    }
}

/// A complete nlv-style chart: lifelines over an ordered set of event types,
/// plus loadlines and point series on the same time axis — the structure of
/// Figure 7.
#[derive(Debug, Clone)]
pub struct NlvChart {
    /// The y-axis event ordering used for lifelines.
    pub event_order: Vec<String>,
    /// Lifelines, one per object id.
    pub lifelines: Vec<Lifeline>,
    /// Loadlines (CPU, memory, ...).
    pub loadlines: Vec<Loadline>,
    /// Point series (retransmits, errors, ...).
    pub point_series: Vec<PointSeries>,
}

impl NlvChart {
    /// Build a chart from a log.
    ///
    /// * `event_order` — lifeline event types, bottom to top;
    /// * `load_specs` — `(host, event type)` pairs to draw as loadlines;
    /// * `point_specs` — `(host or None, event type)` pairs to draw as points.
    pub fn build(
        events: &[Event],
        event_order: &[&str],
        load_specs: &[(&str, &str)],
        point_specs: &[(Option<&str>, &str)],
    ) -> Self {
        NlvChart {
            event_order: event_order.iter().map(|s| s.to_string()).collect(),
            lifelines: lifelines(events, event_order),
            loadlines: load_specs
                .iter()
                .map(|(h, t)| loadline(events, h, t))
                .collect(),
            point_series: point_specs
                .iter()
                .map(|(h, t)| points(events, *h, t))
                .collect(),
        }
    }

    /// The chart's overall time range.
    pub fn time_range(&self) -> Option<(Timestamp, Timestamp)> {
        let mut min: Option<Timestamp> = None;
        let mut max: Option<Timestamp> = None;
        let mut consider = |t: Timestamp| {
            min = Some(min.map_or(t, |m| m.min(t)));
            max = Some(max.map_or(t, |m| m.max(t)));
        };
        for l in &self.lifelines {
            for (t, _, _) in &l.points {
                consider(*t);
            }
        }
        for l in &self.loadlines {
            for (t, _) in &l.samples {
                consider(*t);
            }
        }
        for p in &self.point_series {
            for (t, _) in &p.points {
                consider(*t);
            }
        }
        match (min, max) {
            (Some(a), Some(b)) => Some((a, b)),
            _ => None,
        }
    }

    /// A quick fixed-width terminal rendering: one row per lifeline event
    /// type / loadline / point series, time binned into `width` columns.
    /// Used by the examples to show the "shape" of Figure 7 without a GUI.
    pub fn render_ascii(&self, width: usize) -> String {
        let Some((t0, t1)) = self.time_range() else {
            return String::from("(empty chart)\n");
        };
        let span = ((t1 - t0).max(1)) as f64;
        let col = |t: Timestamp| {
            (((t - t0) as f64 / span) * (width.saturating_sub(1)) as f64).round() as usize
        };
        let mut out = String::new();
        // Lifeline rows, top-most event type first (like nlv's y axis).
        for (y, ty) in self.event_order.iter().enumerate().rev() {
            let mut row = vec![b' '; width];
            for l in &self.lifelines {
                for (t, yy, _) in &l.points {
                    if *yy == y {
                        row[col(*t).min(width - 1)] = b'o';
                    }
                }
            }
            out.push_str(&format!("{ty:>28} |{}|\n", String::from_utf8_lossy(&row)));
        }
        for load in &self.loadlines {
            let max = load
                .samples
                .iter()
                .map(|(_, v)| *v)
                .fold(f64::MIN, f64::max)
                .max(1e-9);
            let mut row = vec![b' '; width];
            for (t, v) in &load.samples {
                let c = col(*t).min(width - 1);
                let level = (v / max * 8.0).round() as u8;
                row[c] = match level {
                    0 => b'.',
                    1..=2 => b'-',
                    3..=5 => b'=',
                    _ => b'#',
                };
            }
            out.push_str(&format!(
                "{:>28} |{}|\n",
                format!("{} {}", load.host, load.event_type),
                String::from_utf8_lossy(&row)
            ));
        }
        for ps in &self.point_series {
            let mut row = vec![b' '; width];
            for (t, _) in &ps.points {
                row[col(*t).min(width - 1)] = b'X';
            }
            out.push_str(&format!(
                "{:>28} |{}|\n",
                ps.event_type,
                String::from_utf8_lossy(&row)
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jamm_ulm::{keys, Level};

    fn ev(host: &str, ty: &str, us: u64, oid: Option<&str>, value: Option<f64>) -> Event {
        let mut b = Event::builder("p", host)
            .level(Level::Usage)
            .event_type(ty)
            .timestamp(Timestamp::from_micros(us));
        if let Some(o) = oid {
            b = b.object_id(o);
        }
        if let Some(v) = value {
            b = b.value(v);
        }
        b.build()
    }

    const ORDER: [&str; 4] = [
        keys::matisse::DPSS_SERV_IN,
        keys::matisse::DPSS_END_WRITE,
        keys::matisse::START_READ_FRAME,
        keys::matisse::END_READ_FRAME,
    ];

    fn request_path(oid: &str, start_us: u64, step: u64) -> Vec<Event> {
        // Deliberately out of the canonical order to exercise sorting, and
        // with the client-side START before the server-side events.
        vec![
            ev("mems.cairn.net", ORDER[2], start_us, Some(oid), None),
            ev("dpss1.lbl.gov", ORDER[0], start_us + step, Some(oid), None),
            ev(
                "dpss1.lbl.gov",
                ORDER[1],
                start_us + 2 * step,
                Some(oid),
                None,
            ),
            ev(
                "mems.cairn.net",
                ORDER[3],
                start_us + 3 * step,
                Some(oid),
                None,
            ),
        ]
    }

    #[test]
    fn lifelines_group_by_object_and_sort_by_time() {
        let mut log = request_path("frame-1", 1_000, 100);
        log.extend(request_path("frame-2", 2_000, 400));
        log.push(ev("x", "UNRELATED", 1, None, None));
        let lines = lifelines(&log, &ORDER);
        assert_eq!(lines.len(), 2);
        let f1 = &lines[0];
        assert_eq!(f1.object_id, "frame-1");
        assert_eq!(f1.points.len(), 4);
        assert_eq!(f1.span_us(), 300);
        let stages = f1.stage_durations();
        assert_eq!(stages.len(), 3);
        assert!(stages.iter().all(|(_, _, d)| *d == 100));
        // The slower request has a longer span (a shallower lifeline slope).
        assert_eq!(lines[1].span_us(), 1_200);
    }

    #[test]
    fn loadline_and_points_extraction() {
        let log = vec![
            ev("mems.cairn.net", "VMSTAT_SYS_TIME", 3_000, None, Some(80.0)),
            ev("mems.cairn.net", "VMSTAT_SYS_TIME", 1_000, None, Some(20.0)),
            ev("other.host", "VMSTAT_SYS_TIME", 2_000, None, Some(99.0)),
            ev("mems.cairn.net", "TCPD_RETRANSMITS", 2_500, None, Some(3.0)),
            ev("mems.cairn.net", "TCPD_RETRANSMITS", 1_500, None, None),
        ];
        let load = loadline(&log, "mems.cairn.net", "VMSTAT_SYS_TIME");
        assert_eq!(load.samples.len(), 2);
        assert_eq!(load.samples[0].1, 20.0, "sorted by time");
        let pts = points(&log, Some("mems.cairn.net"), "TCPD_RETRANSMITS");
        assert_eq!(pts.points.len(), 2);
        assert_eq!(pts.points[1].1, Some(3.0));
        let all_hosts = points(&log, None, "VMSTAT_SYS_TIME");
        assert_eq!(all_hosts.points.len(), 3);
    }

    #[test]
    fn chart_assembles_figure7_structure() {
        let mut log = request_path("frame-1", 0, 1_000);
        log.push(ev(
            "mems.cairn.net",
            "VMSTAT_SYS_TIME",
            500,
            None,
            Some(55.0),
        ));
        log.push(ev(
            "mems.cairn.net",
            "TCPD_RETRANSMITS",
            1_200,
            None,
            Some(1.0),
        ));
        let chart = NlvChart::build(
            &log,
            &ORDER,
            &[("mems.cairn.net", "VMSTAT_SYS_TIME")],
            &[(Some("mems.cairn.net"), "TCPD_RETRANSMITS")],
        );
        assert_eq!(chart.lifelines.len(), 1);
        assert_eq!(chart.loadlines.len(), 1);
        assert_eq!(chart.point_series.len(), 1);
        let (t0, t1) = chart.time_range().unwrap();
        assert_eq!(t0.as_micros(), 0);
        assert_eq!(t1.as_micros(), 3_000);
        let ascii = chart.render_ascii(40);
        assert!(ascii.contains("TCPD_RETRANSMITS"));
        assert!(ascii.lines().count() >= ORDER.len() + 2);
        assert!(ascii.contains('X'));
        assert!(ascii.contains('o'));
    }

    #[test]
    fn empty_chart_renders_gracefully() {
        let chart = NlvChart::build(&[], &ORDER, &[], &[]);
        assert!(chart.time_range().is_none());
        assert_eq!(chart.render_ascii(20), "(empty chart)\n");
    }
}
