//! A nonblocking, self-healing socket destination for event streams.
//!
//! The paper's NetLogger writes to "a remote host on port 14830"; the
//! seed code stood that in with an in-process channel ([`Sink::Net`]).
//! [`SocketSink`] closes the gap with a real TCP destination that never
//! blocks the caller: `accept` encodes the event and hands the frame to a
//! [`Reactor`], whose event-loop thread owns the socket and absorbs all
//! write stalls in the connection's bounded outbox.  That makes it safe
//! to drive from latency-sensitive threads — an application's
//! instrumentation path, or `ReplaySource::pump` replaying an archive to
//! a remote consumer — because a slow or dead collector costs an enqueue,
//! never a syscall wait.
//!
//! A collector hangup is no longer terminal: it opens a
//! [`CircuitBreaker`], and once the jittered-exponential backoff deadline
//! passes the next `accept` redials the collector inline.  While the
//! breaker is open, `accept` fails fast with [`SinkError::Closed`] (one
//! atomic load and a comparison — no syscall), so a permanently dead
//! collector costs the caller a counted drop, never a busy-loop of
//! connection attempts.
//!
//! The sink implements both `EventSink<Event>` and
//! `EventSink<SharedEvent>`, so it plugs into [`Sink::Pipeline`], gateway
//! fan-out consumers, and archive replay unchanged.
//!
//! [`Sink::Net`]: crate::api::Sink::Net
//! [`Sink::Pipeline`]: crate::api::Sink::Pipeline

use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use jamm_core::flow::{EventSink, SinkError};
use jamm_core::sync::Mutex;
use jamm_core::{Backoff, BreakerState, BreakerStats, CircuitBreaker};
use jamm_reactor::{ConnHandler, ConnId, ConnIo, Reactor, SocketStats};
use jamm_ulm::codec::{codec_for, EventCodec, BINARY};
use jamm_ulm::{Event, SharedEvent};

/// How long a (re)connect attempt may block the calling thread.
const CONNECT_TIMEOUT: Duration = Duration::from_secs(5);
/// First reconnect delay after a collector hangup.
const RETRY_BASE: Duration = Duration::from_millis(250);
/// Backoff ceiling for a collector that stays dead.
const RETRY_MAX: Duration = Duration::from_secs(30);

/// Inbound bytes from a collector are not part of the protocol; discard
/// them, and remember when the peer goes away.
struct CollectorConn {
    closed: Arc<AtomicBool>,
}

impl ConnHandler for CollectorConn {
    fn on_data(&mut self, _io: &mut ConnIo<'_>, buf: &[u8]) -> usize {
        buf.len()
    }

    fn on_close(&mut self, _id: ConnId, _reason: &jamm_reactor::CloseReason) {
        self.closed.store(true, Ordering::Release);
    }
}

/// The current connection, if any.  A fresh `closed` flag is minted per
/// dial so a stale hangup notification can never mark a newer connection
/// dead.
struct Link {
    conn: Option<ConnId>,
    closed: Arc<AtomicBool>,
}

/// A reactor-backed TCP event destination with reconnect.
///
/// Frames are encoded once on the calling thread and queued on the
/// reactor connection; the loop thread writes them as the socket drains.
/// Under sustained backpressure the connection's outbox policy decides
/// which frames survive — the drop shows up in [`SocketSink::stats`], the
/// caller is never blocked.  A hangup opens the breaker; a later `accept`
/// past the backoff deadline redials (a successful TCP connect counts as
/// the probe's success — there is no response to await on a
/// fire-and-forget sink).
pub struct SocketSink {
    reactor: Arc<Reactor>,
    addr: String,
    codec: EventCodec,
    newline_framed: bool,
    link: Mutex<Link>,
    breaker: Mutex<CircuitBreaker>,
    /// Epoch the breaker's microsecond clock counts from.
    origin: Instant,
    sent: AtomicU64,
    reconnects: AtomicU64,
}

impl std::fmt::Debug for SocketSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SocketSink")
            .field("addr", &self.addr)
            .field("conn", &self.conn())
            .field("content_type", &self.codec.content_type())
            .field("breaker", &self.breaker_state())
            .finish_non_exhaustive()
    }
}

/// Resolve `addr` and connect with a bounded deadline, so a black-holed
/// collector cannot park the calling thread indefinitely.
fn dial(addr: &str) -> io::Result<TcpStream> {
    let sockaddr = addr.to_socket_addrs()?.next().ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("cannot resolve {addr:?}"),
        )
    })?;
    TcpStream::connect_timeout(&sockaddr, CONNECT_TIMEOUT)
}

impl SocketSink {
    /// Connect to a collector at `addr` and hand the socket to `reactor`.
    ///
    /// `content_type` picks the wire format (a [`jamm_ulm::codec`]
    /// content type); text and JSON frames are newline-delimited, binary
    /// frames are self-delimiting — the same convention as the
    /// `EncodedFile` sink.
    pub fn connect(
        reactor: Arc<Reactor>,
        addr: &str,
        content_type: &str,
    ) -> io::Result<SocketSink> {
        let codec = codec_for(content_type).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("no codec for content type {content_type:?}"),
            )
        })?;
        let stream = dial(addr)?;
        let closed = Arc::new(AtomicBool::new(false));
        let conn = reactor.adopt(
            stream,
            Box::new(CollectorConn {
                closed: Arc::clone(&closed),
            }),
        )?;
        let seed = addr.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
            (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3)
        });
        Ok(SocketSink {
            reactor,
            addr: addr.to_string(),
            newline_framed: content_type.trim() != BINARY,
            codec,
            link: Mutex::new(Link {
                conn: Some(conn),
                closed,
            }),
            breaker: Mutex::new(CircuitBreaker::new(
                1,
                Backoff::new(
                    RETRY_BASE.as_micros() as u64,
                    RETRY_MAX.as_micros() as u64,
                    seed,
                ),
            )),
            origin: Instant::now(),
            sent: AtomicU64::new(0),
            reconnects: AtomicU64::new(0),
        })
    }

    /// The reactor connection id (for correlation with
    /// `Reactor::socket_stats` rows), if currently connected.
    pub fn conn(&self) -> Option<ConnId> {
        self.link.lock().conn
    }

    /// True while the collector connection is down (hangup observed, or
    /// the last reconnect attempt failed).  A later [`accept`] past the
    /// backoff deadline may bring it back.
    ///
    /// [`accept`]: EventSink::accept
    pub fn is_closed(&self) -> bool {
        let link = self.link.lock();
        link.conn.is_none() || link.closed.load(Ordering::Acquire)
    }

    /// Events handed to the reactor so far (drops, if any, are counted at
    /// the socket — see [`SocketSink::stats`]).
    pub fn sent(&self) -> u64 {
        self.sent.load(Ordering::Relaxed)
    }

    /// Successful redials since the sink was created.
    pub fn reconnects(&self) -> u64 {
        self.reconnects.load(Ordering::Relaxed)
    }

    /// The reconnect breaker's current state.
    pub fn breaker_state(&self) -> BreakerState {
        self.breaker.lock().state()
    }

    /// The reconnect breaker's lifetime counters.
    pub fn breaker_stats(&self) -> BreakerStats {
        self.breaker.lock().stats()
    }

    /// Replace the reconnect backoff schedule (first delay and ceiling).
    /// Resets the breaker to closed.
    pub fn set_retry_backoff(&self, base: Duration, max: Duration) {
        *self.breaker.lock() = CircuitBreaker::new(
            1,
            Backoff::new(base.as_micros() as u64, max.as_micros() as u64, 0),
        );
    }

    /// Socket-level counters for this connection, if it is still live.
    pub fn stats(&self) -> Option<SocketStats> {
        let conn = self.conn()?;
        self.reactor
            .socket_stats()
            .into_iter()
            .find(|r| r.conn == conn)
            .map(|r| r.stats)
    }

    /// Flush queued frames and close the connection.  The sink stays
    /// usable: a later `accept` redials the collector (subject to the
    /// breaker's backoff).
    pub fn close(&self) {
        let mut link = self.link.lock();
        if let Some(conn) = link.conn.take() {
            self.reactor.close(conn);
        }
    }

    fn now_us(&self) -> u64 {
        self.origin.elapsed().as_micros() as u64
    }

    /// Redial the collector if the breaker allows it.  Returns `true`
    /// with `link.conn` live on success.
    fn try_reconnect(&self, link: &mut Link) -> bool {
        let now = self.now_us();
        let mut breaker = self.breaker.lock();
        if !breaker.allow(now) {
            return false;
        }
        let dialed = dial(&self.addr).and_then(|stream| {
            let closed = Arc::new(AtomicBool::new(false));
            let conn = self.reactor.adopt(
                stream,
                Box::new(CollectorConn {
                    closed: Arc::clone(&closed),
                }),
            )?;
            Ok((conn, closed))
        });
        match dialed {
            Ok((conn, closed)) => {
                link.conn = Some(conn);
                link.closed = closed;
                breaker.record_success();
                self.reconnects.fetch_add(1, Ordering::Relaxed);
                true
            }
            Err(_) => {
                breaker.record_failure(self.now_us());
                false
            }
        }
    }

    fn push(&self, event: &Event) -> Result<usize, SinkError> {
        let mut link = self.link.lock();
        if link.closed.load(Ordering::Acquire) {
            // Hangup observed by the reactor: retire the connection and
            // trip the breaker so redials follow the backoff schedule.
            if let Some(conn) = link.conn.take() {
                self.reactor.close(conn);
                self.breaker.lock().record_failure(self.now_us());
            }
        }
        if link.conn.is_none() && !self.try_reconnect(&mut link) {
            return Err(SinkError::Closed);
        }
        let conn = link.conn.expect("reconnected above");
        let mut frame = Vec::with_capacity(128);
        self.codec.encode_to(&mut frame, event);
        if self.newline_framed {
            frame.push(b'\n');
        }
        self.reactor.send(conn, Arc::new(frame));
        self.sent.fetch_add(1, Ordering::Relaxed);
        Ok(1)
    }
}

impl Drop for SocketSink {
    fn drop(&mut self) {
        self.close();
    }
}

impl EventSink<Event> for SocketSink {
    fn accept(&self, event: &Event) -> Result<usize, SinkError> {
        self.push(event)
    }
}

impl EventSink<SharedEvent> for SocketSink {
    fn accept(&self, event: &SharedEvent) -> Result<usize, SinkError> {
        self.push(event)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jamm_reactor::ReactorConfig;
    use jamm_ulm::{Level, Timestamp};
    use std::io::Read;
    use std::net::TcpListener;
    use std::time::{Duration, Instant};

    fn sample(i: u64) -> Event {
        Event::builder("testProg", "dpss1.lbl.gov")
            .level(Level::Usage)
            .event_type("WriteData")
            .timestamp(Timestamp::from_micros(954_415_400_000_000 + i))
            .field("SEND.SZ", i)
            .build()
    }

    #[test]
    fn events_arrive_at_the_collector_socket() {
        let reactor = Arc::new(Reactor::start(ReactorConfig::default()).unwrap());
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();

        let sink = SocketSink::connect(Arc::clone(&reactor), &addr.to_string(), BINARY).unwrap();
        let (mut collector, _) = listener.accept().unwrap();
        collector
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();

        let events: Vec<Event> = (0..20).map(sample).collect();
        for e in &events {
            EventSink::<Event>::accept(&sink, e).unwrap();
        }

        let codec = codec_for(BINARY).unwrap();
        let expected: usize = events.iter().map(|e| codec.encode(e).len()).sum();
        let mut got = vec![0u8; expected];
        collector.read_exact(&mut got).unwrap();
        assert_eq!(codec.decode_batch(&got).unwrap(), events);
        assert_eq!(sink.sent(), 20);

        drop(sink);
        reactor.shutdown();
    }

    #[test]
    fn a_dead_collector_surfaces_as_closed_not_a_hang() {
        let reactor = Arc::new(Reactor::start(ReactorConfig::default()).unwrap());
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();

        let sink = SocketSink::connect(Arc::clone(&reactor), &addr.to_string(), BINARY).unwrap();
        let (collector, _) = listener.accept().unwrap();
        drop(collector);
        drop(listener);

        // The reactor notices the hangup; until then writes are enqueued
        // (never blocked).  Eventually accept reports Closed.
        let deadline = Instant::now() + Duration::from_secs(10);
        let ev = sample(0);
        loop {
            match EventSink::<Event>::accept(&sink, &ev) {
                Err(SinkError::Closed) => break,
                Ok(_) => {}
                Err(e) => panic!("unexpected error: {e}"),
            }
            assert!(Instant::now() < deadline, "close was never observed");
            std::thread::sleep(Duration::from_millis(2));
        }
        // Nothing is listening, so the breaker stays open and every call
        // fails fast instead of busy-dialing a dead address.
        assert_eq!(sink.breaker_state(), BreakerState::Open);
        assert!(sink.is_closed());
        reactor.shutdown();
    }

    /// A collector crash opens the breaker; when the collector comes back
    /// on the same address, an `accept` past the backoff deadline redials
    /// it and the frame lands at the new collector.
    #[test]
    fn a_recovered_collector_is_redialed_after_backoff() {
        let reactor = Arc::new(Reactor::start(ReactorConfig::default()).unwrap());
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();

        let sink = SocketSink::connect(Arc::clone(&reactor), &addr.to_string(), BINARY).unwrap();
        sink.set_retry_backoff(Duration::from_millis(10), Duration::from_millis(50));
        let (collector, _) = listener.accept().unwrap();
        drop(collector);
        drop(listener);

        // Push until the hangup is observed.
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            match EventSink::<Event>::accept(&sink, &sample(0)) {
                Err(SinkError::Closed) => break,
                Ok(_) => {}
                Err(e) => panic!("unexpected error: {e}"),
            }
            assert!(Instant::now() < deadline, "close was never observed");
            std::thread::sleep(Duration::from_millis(2));
        }

        // Collector comes back on the same port; keep pushing until a
        // probe reconnects.
        let listener = TcpListener::bind(addr).unwrap();
        let ev = sample(7);
        loop {
            match EventSink::<Event>::accept(&sink, &ev) {
                Ok(_) => break,
                Err(SinkError::Closed) => {}
                Err(e) => panic!("unexpected error: {e}"),
            }
            assert!(Instant::now() < deadline, "sink never reconnected");
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(sink.reconnects() >= 1, "redial not counted");
        assert_eq!(sink.breaker_state(), BreakerState::Closed);
        assert!(sink.breaker_stats().revivals >= 1);

        // The frame accepted after the redial lands at the new collector.
        let (mut collector, _) = listener.accept().unwrap();
        collector
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let codec = codec_for(BINARY).unwrap();
        let mut got = vec![0u8; codec.encode(&ev).len()];
        collector.read_exact(&mut got).unwrap();
        assert_eq!(codec.decode_batch(&got).unwrap(), vec![ev]);

        drop(sink);
        reactor.shutdown();
    }
}
