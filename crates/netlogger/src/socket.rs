//! A nonblocking socket destination for event streams.
//!
//! The paper's NetLogger writes to "a remote host on port 14830"; the
//! seed code stood that in with an in-process channel ([`Sink::Net`]).
//! [`SocketSink`] closes the gap with a real TCP destination that never
//! blocks the caller: `accept` encodes the event and hands the frame to a
//! [`Reactor`], whose event-loop thread owns the socket and absorbs all
//! write stalls in the connection's bounded outbox.  That makes it safe
//! to drive from latency-sensitive threads — an application's
//! instrumentation path, or `ReplaySource::pump` replaying an archive to
//! a remote consumer — because a slow or dead collector costs an enqueue,
//! never a syscall wait.
//!
//! The sink implements both `EventSink<Event>` and
//! `EventSink<SharedEvent>`, so it plugs into [`Sink::Pipeline`], gateway
//! fan-out consumers, and archive replay unchanged.
//!
//! [`Sink::Net`]: crate::api::Sink::Net
//! [`Sink::Pipeline`]: crate::api::Sink::Pipeline

use std::io;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use jamm_core::flow::{EventSink, SinkError};
use jamm_reactor::{ConnHandler, ConnId, ConnIo, Reactor, SocketStats};
use jamm_ulm::codec::{codec_for, EventCodec, BINARY};
use jamm_ulm::{Event, SharedEvent};

/// Inbound bytes from a collector are not part of the protocol; discard
/// them, and remember when the peer goes away.
struct CollectorConn {
    closed: Arc<AtomicBool>,
}

impl ConnHandler for CollectorConn {
    fn on_data(&mut self, _io: &mut ConnIo<'_>, buf: &[u8]) -> usize {
        buf.len()
    }

    fn on_close(&mut self, _id: ConnId, _reason: &jamm_reactor::CloseReason) {
        self.closed.store(true, Ordering::Release);
    }
}

/// A reactor-backed TCP event destination.
///
/// Frames are encoded once on the calling thread and queued on the
/// reactor connection; the loop thread writes them as the socket drains.
/// Under sustained backpressure the connection's outbox policy decides
/// which frames survive — the drop shows up in [`SocketSink::stats`], the
/// caller is never blocked.
pub struct SocketSink {
    reactor: Arc<Reactor>,
    conn: ConnId,
    codec: EventCodec,
    newline_framed: bool,
    closed: Arc<AtomicBool>,
    sent: AtomicU64,
}

impl std::fmt::Debug for SocketSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SocketSink")
            .field("conn", &self.conn)
            .field("content_type", &self.codec.content_type())
            .field("closed", &self.closed.load(Ordering::Acquire))
            .finish_non_exhaustive()
    }
}

impl SocketSink {
    /// Connect to a collector at `addr` and hand the socket to `reactor`.
    ///
    /// `content_type` picks the wire format (a [`jamm_ulm::codec`]
    /// content type); text and JSON frames are newline-delimited, binary
    /// frames are self-delimiting — the same convention as the
    /// `EncodedFile` sink.
    pub fn connect(
        reactor: Arc<Reactor>,
        addr: &str,
        content_type: &str,
    ) -> io::Result<SocketSink> {
        let codec = codec_for(content_type).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("no codec for content type {content_type:?}"),
            )
        })?;
        let stream = TcpStream::connect(addr)?;
        let closed = Arc::new(AtomicBool::new(false));
        let conn = reactor.adopt(
            stream,
            Box::new(CollectorConn {
                closed: Arc::clone(&closed),
            }),
        )?;
        Ok(SocketSink {
            reactor,
            conn,
            newline_framed: content_type.trim() != BINARY,
            codec,
            closed,
            sent: AtomicU64::new(0),
        })
    }

    /// The reactor connection id (for correlation with
    /// `Reactor::socket_stats` rows).
    pub fn conn(&self) -> ConnId {
        self.conn
    }

    /// True once the collector connection is gone.
    pub fn is_closed(&self) -> bool {
        self.closed.load(Ordering::Acquire)
    }

    /// Events handed to the reactor so far (drops, if any, are counted at
    /// the socket — see [`SocketSink::stats`]).
    pub fn sent(&self) -> u64 {
        self.sent.load(Ordering::Relaxed)
    }

    /// Socket-level counters for this connection, if it is still live.
    pub fn stats(&self) -> Option<SocketStats> {
        self.reactor
            .socket_stats()
            .into_iter()
            .find(|r| r.conn == self.conn)
            .map(|r| r.stats)
    }

    /// Flush queued frames and close the connection.
    pub fn close(&self) {
        self.reactor.close(self.conn);
    }

    fn push(&self, event: &Event) -> Result<usize, SinkError> {
        if self.is_closed() {
            return Err(SinkError::Closed);
        }
        let mut frame = Vec::with_capacity(128);
        self.codec.encode_to(&mut frame, event);
        if self.newline_framed {
            frame.push(b'\n');
        }
        self.reactor.send(self.conn, Arc::new(frame));
        self.sent.fetch_add(1, Ordering::Relaxed);
        Ok(1)
    }
}

impl Drop for SocketSink {
    fn drop(&mut self) {
        self.close();
    }
}

impl EventSink<Event> for SocketSink {
    fn accept(&self, event: &Event) -> Result<usize, SinkError> {
        self.push(event)
    }
}

impl EventSink<SharedEvent> for SocketSink {
    fn accept(&self, event: &SharedEvent) -> Result<usize, SinkError> {
        self.push(event)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jamm_reactor::ReactorConfig;
    use jamm_ulm::{Level, Timestamp};
    use std::io::Read;
    use std::net::TcpListener;
    use std::time::{Duration, Instant};

    fn sample(i: u64) -> Event {
        Event::builder("testProg", "dpss1.lbl.gov")
            .level(Level::Usage)
            .event_type("WriteData")
            .timestamp(Timestamp::from_micros(954_415_400_000_000 + i))
            .field("SEND.SZ", i)
            .build()
    }

    #[test]
    fn events_arrive_at_the_collector_socket() {
        let reactor = Arc::new(Reactor::start(ReactorConfig::default()).unwrap());
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();

        let sink = SocketSink::connect(Arc::clone(&reactor), &addr.to_string(), BINARY).unwrap();
        let (mut collector, _) = listener.accept().unwrap();
        collector
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();

        let events: Vec<Event> = (0..20).map(sample).collect();
        for e in &events {
            EventSink::<Event>::accept(&sink, e).unwrap();
        }

        let codec = codec_for(BINARY).unwrap();
        let expected: usize = events.iter().map(|e| codec.encode(e).len()).sum();
        let mut got = vec![0u8; expected];
        collector.read_exact(&mut got).unwrap();
        assert_eq!(codec.decode_batch(&got).unwrap(), events);
        assert_eq!(sink.sent(), 20);

        drop(sink);
        reactor.shutdown();
    }

    #[test]
    fn a_dead_collector_surfaces_as_closed_not_a_hang() {
        let reactor = Arc::new(Reactor::start(ReactorConfig::default()).unwrap());
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();

        let sink = SocketSink::connect(Arc::clone(&reactor), &addr.to_string(), BINARY).unwrap();
        let (collector, _) = listener.accept().unwrap();
        drop(collector);
        drop(listener);

        // The reactor notices the hangup; until then writes are enqueued
        // (never blocked).  Eventually accept reports Closed.
        let deadline = Instant::now() + Duration::from_secs(10);
        let ev = sample(0);
        loop {
            match EventSink::<Event>::accept(&sink, &ev) {
                Err(SinkError::Closed) => break,
                Ok(_) => {}
                Err(e) => panic!("unexpected error: {e}"),
            }
            assert!(Instant::now() < deadline, "close was never observed");
            std::thread::sleep(Duration::from_millis(2));
        }
        reactor.shutdown();
    }
}
