//! Quantitative analysis helpers behind the Figure 3 and Figure 7 stories.
//!
//! The paper's §6 analysis is visual: the analyst looks at the nlv graph and
//! *sees* that the gaps in frame delivery line up with bursts of TCP
//! retransmissions and with high system CPU time on the receiving host, and
//! that the distribution of low-level `read()` sizes clusters around two
//! values.  To make the reproduction testable, this module computes those
//! observations as numbers: delivery-gap detection, retransmit/gap
//! correlation, per-stage latency breakdowns, and two-cluster analysis of
//! read sizes.

use crate::nlv::Lifeline;
use jamm_ulm::{Event, Timestamp};

/// A period with no progress events (a stall in frame delivery).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gap {
    /// Start of the gap.
    pub start: Timestamp,
    /// End of the gap (the next progress event).
    pub end: Timestamp,
    /// Gap length in microseconds.
    pub length_us: u64,
}

/// Find gaps between consecutive occurrences of `progress_event` longer than
/// `min_gap_us`.
pub fn delivery_gaps(events: &[Event], progress_event: &str, min_gap_us: u64) -> Vec<Gap> {
    let mut times: Vec<Timestamp> = events
        .iter()
        .filter(|e| e.event_type == progress_event)
        .map(|e| e.timestamp)
        .collect();
    times.sort();
    times
        .windows(2)
        .filter_map(|w| {
            let length = (w[1] - w[0]).max(0) as u64;
            (length >= min_gap_us).then_some(Gap {
                start: w[0],
                end: w[1],
                length_us: length,
            })
        })
        .collect()
}

/// How strongly occurrences of `marker_event` (e.g. retransmissions) line up
/// with the detected gaps.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GapCorrelation {
    /// Number of gaps examined.
    pub gaps: usize,
    /// Gaps that contain (or immediately follow) at least one marker event.
    pub gaps_with_marker: usize,
    /// Marker events that fall inside some gap.
    pub markers_in_gaps: usize,
    /// Total marker events.
    pub markers_total: usize,
}

impl GapCorrelation {
    /// Fraction of gaps explained by the marker (0 when there are no gaps).
    pub fn gap_hit_rate(&self) -> f64 {
        if self.gaps == 0 {
            0.0
        } else {
            self.gaps_with_marker as f64 / self.gaps as f64
        }
    }
}

/// Correlate marker events (e.g. `TCPD_RETRANSMITS`) with delivery gaps.
/// A marker "explains" a gap if it occurs within the gap or within
/// `slack_us` before it starts.
pub fn correlate_gaps(
    events: &[Event],
    gaps: &[Gap],
    marker_event: &str,
    slack_us: u64,
) -> GapCorrelation {
    let markers: Vec<Timestamp> = events
        .iter()
        .filter(|e| e.event_type == marker_event)
        .map(|e| e.timestamp)
        .collect();
    let mut gaps_with_marker = 0;
    for gap in gaps {
        let lo = gap.start.sub_micros(slack_us);
        if markers.iter().any(|m| *m >= lo && *m <= gap.end) {
            gaps_with_marker += 1;
        }
    }
    let markers_in_gaps = markers
        .iter()
        .filter(|m| gaps.iter().any(|g| **m >= g.start && **m <= g.end))
        .count();
    GapCorrelation {
        gaps: gaps.len(),
        gaps_with_marker,
        markers_in_gaps,
        markers_total: markers.len(),
    }
}

/// Mean duration of each lifeline stage across many lifelines:
/// `(from event, to event, mean microseconds, count)`.
pub fn mean_stage_durations(lifelines: &[Lifeline]) -> Vec<(String, String, f64, usize)> {
    let mut acc: Vec<(String, String, f64, usize)> = Vec::new();
    for l in lifelines {
        for (from, to, d) in l.stage_durations() {
            match acc.iter_mut().find(|(f, t, _, _)| *f == from && *t == to) {
                Some(slot) => {
                    slot.2 += d as f64;
                    slot.3 += 1;
                }
                None => acc.push((from, to, d as f64, 1)),
            }
        }
    }
    for slot in &mut acc {
        slot.2 /= slot.3 as f64;
    }
    acc
}

/// Result of splitting a set of readings into two clusters (Figure 3: "the
/// (unexpected) clustering of the data around two distinct values").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TwoClusters {
    /// Centre of the lower cluster.
    pub low_center: f64,
    /// Number of readings in the lower cluster.
    pub low_count: usize,
    /// Centre of the upper cluster.
    pub high_center: f64,
    /// Number of readings in the upper cluster.
    pub high_count: usize,
    /// Separation between the centres divided by the overall spread; > 1
    /// means the clusters are well separated (clearly bimodal).
    pub separation: f64,
}

/// One-dimensional 2-means clustering of readings.  Returns `None` when
/// there are fewer than two distinct values.
pub fn two_cluster(readings: &[f64]) -> Option<TwoClusters> {
    if readings.len() < 2 {
        return None;
    }
    let min = readings.iter().copied().fold(f64::INFINITY, f64::min);
    let max = readings.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if (max - min).abs() < f64::EPSILON {
        return None;
    }
    let mut c_low = min;
    let mut c_high = max;
    for _ in 0..32 {
        let (mut sum_l, mut n_l, mut sum_h, mut n_h) = (0.0, 0usize, 0.0, 0usize);
        for &r in readings {
            if (r - c_low).abs() <= (r - c_high).abs() {
                sum_l += r;
                n_l += 1;
            } else {
                sum_h += r;
                n_h += 1;
            }
        }
        if n_l == 0 || n_h == 0 {
            break;
        }
        let new_low = sum_l / n_l as f64;
        let new_high = sum_h / n_h as f64;
        if (new_low - c_low).abs() < 1e-9 && (new_high - c_high).abs() < 1e-9 {
            break;
        }
        c_low = new_low;
        c_high = new_high;
    }
    let (mut low, mut high): (Vec<f64>, Vec<f64>) = (Vec::new(), Vec::new());
    for &r in readings {
        if (r - c_low).abs() <= (r - c_high).abs() {
            low.push(r);
        } else {
            high.push(r);
        }
    }
    if low.is_empty() || high.is_empty() {
        return None;
    }
    let spread_of = |v: &[f64], c: f64| {
        (v.iter().map(|x| (x - c).powi(2)).sum::<f64>() / v.len() as f64).sqrt()
    };
    let within = (spread_of(&low, c_low) + spread_of(&high, c_high)).max(1e-9);
    Some(TwoClusters {
        low_center: c_low,
        low_count: low.len(),
        high_center: c_high,
        high_count: high.len(),
        separation: (c_high - c_low) / within,
    })
}

/// Throughput (bits/second) of a byte-counting event series over its span,
/// where each event carries the byte count in `field`.
pub fn throughput_bps(events: &[Event], event_type: &str, field: &str) -> f64 {
    let relevant: Vec<&Event> = events
        .iter()
        .filter(|e| e.event_type == event_type)
        .collect();
    if relevant.len() < 2 {
        return 0.0;
    }
    let bytes: f64 = relevant.iter().filter_map(|e| e.field_f64(field)).sum();
    let t0 = relevant.iter().map(|e| e.timestamp).min().unwrap();
    let t1 = relevant.iter().map(|e| e.timestamp).max().unwrap();
    let secs = ((t1 - t0).max(1)) as f64 / 1e6;
    bytes * 8.0 / secs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nlv::lifelines;
    use jamm_ulm::{keys, Level};

    fn ev(ty: &str, us: u64, value: Option<f64>) -> Event {
        let mut b = Event::builder("p", "h")
            .level(Level::Usage)
            .event_type(ty)
            .timestamp(Timestamp::from_micros(us));
        if let Some(v) = value {
            b = b.value(v);
        }
        b.build()
    }

    #[test]
    fn gaps_are_detected_between_sparse_progress_events() {
        let log = vec![
            ev("MPLAY_END_READ_FRAME", 0, None),
            ev("MPLAY_END_READ_FRAME", 200_000, None),
            ev("MPLAY_END_READ_FRAME", 1_700_000, None), // 1.5 s stall
            ev("MPLAY_END_READ_FRAME", 1_900_000, None),
        ];
        let gaps = delivery_gaps(&log, "MPLAY_END_READ_FRAME", 1_000_000);
        assert_eq!(gaps.len(), 1);
        assert_eq!(gaps[0].length_us, 1_500_000);
        // With a lower threshold, the 200 ms inter-frame times count too.
        assert_eq!(
            delivery_gaps(&log, "MPLAY_END_READ_FRAME", 100_000).len(),
            3
        );
        assert!(delivery_gaps(&[], "X", 1).is_empty());
    }

    #[test]
    fn retransmits_inside_gaps_are_correlated() {
        let mut log = vec![
            ev("MPLAY_END_READ_FRAME", 0, None),
            ev("MPLAY_END_READ_FRAME", 2_000_000, None),
            ev("MPLAY_END_READ_FRAME", 2_200_000, None),
            ev("MPLAY_END_READ_FRAME", 5_000_000, None),
        ];
        // Retransmissions during both stalls, and one in quiet time.
        log.push(ev(keys::tcp::RETRANSMITS, 900_000, Some(2.0)));
        log.push(ev(keys::tcp::RETRANSMITS, 3_000_000, Some(1.0)));
        log.push(ev(keys::tcp::RETRANSMITS, 2_100_000, Some(1.0)));
        let gaps = delivery_gaps(&log, "MPLAY_END_READ_FRAME", 1_000_000);
        assert_eq!(gaps.len(), 2);
        let corr = correlate_gaps(&log, &gaps, keys::tcp::RETRANSMITS, 0);
        assert_eq!(corr.gaps_with_marker, 2);
        assert!((corr.gap_hit_rate() - 1.0).abs() < 1e-9);
        assert_eq!(corr.markers_in_gaps, 2);
        assert_eq!(corr.markers_total, 3);
    }

    #[test]
    fn stage_durations_average_across_lifelines() {
        let order = [
            keys::matisse::START_READ_FRAME,
            keys::matisse::END_READ_FRAME,
        ];
        let mut log = Vec::new();
        for (i, dur) in [100_000u64, 300_000].iter().enumerate() {
            let oid = format!("frame-{i}");
            log.push({
                let mut e = ev(order[0], i as u64 * 1_000_000, None);
                e.set_field(keys::OBJECT_ID, oid.clone());
                e
            });
            log.push({
                let mut e = ev(order[1], i as u64 * 1_000_000 + dur, None);
                e.set_field(keys::OBJECT_ID, oid);
                e
            });
        }
        let lines = lifelines(&log, &order);
        let stages = mean_stage_durations(&lines);
        assert_eq!(stages.len(), 1);
        assert_eq!(stages[0].3, 2);
        assert!((stages[0].2 - 200_000.0).abs() < 1e-9);
    }

    #[test]
    fn bimodal_read_sizes_are_separated() {
        // The Figure 3 situation: most reads return the full 64 KB buffer,
        // the rest return a small remainder around 20 KB.
        let mut readings = Vec::new();
        for i in 0..100 {
            readings.push(65_536.0 - (i % 3) as f64);
            readings.push(20_000.0 + (i % 7) as f64 * 100.0);
        }
        let c = two_cluster(&readings).unwrap();
        assert!(c.low_center > 19_000.0 && c.low_center < 22_000.0);
        assert!(c.high_center > 65_000.0);
        assert_eq!(c.low_count + c.high_count, 200);
        assert!(c.separation > 10.0, "clearly bimodal: {}", c.separation);
    }

    #[test]
    fn unimodal_data_has_low_separation_and_degenerate_cases_are_none() {
        let uniform: Vec<f64> = (0..100).map(|i| 1_000.0 + i as f64).collect();
        let c = two_cluster(&uniform).unwrap();
        assert!(c.separation < 3.0, "not strongly bimodal: {}", c.separation);
        assert!(two_cluster(&[]).is_none());
        assert!(two_cluster(&[5.0]).is_none());
        assert!(two_cluster(&[5.0, 5.0, 5.0]).is_none());
    }

    #[test]
    fn throughput_from_byte_events() {
        let log = vec![
            {
                let mut e = ev("WriteData", 0, None);
                e.set_field("SEND.SZ", 500_000u64);
                e
            },
            {
                let mut e = ev("WriteData", 1_000_000, None);
                e.set_field("SEND.SZ", 750_000u64);
                e
            },
        ];
        let bps = throughput_bps(&log, "WriteData", "SEND.SZ");
        assert!(
            (bps - 10_000_000.0).abs() < 1.0,
            "1.25 MB over 1 s = 10 Mbit/s, got {bps}"
        );
        assert_eq!(throughput_bps(&log, "Other", "SEND.SZ"), 0.0);
    }
}
