//! Quantitative analysis helpers behind the Figure 3 and Figure 7 stories.
//!
//! The paper's §6 analysis is visual: the analyst looks at the nlv graph and
//! *sees* that the gaps in frame delivery line up with bursts of TCP
//! retransmissions and with high system CPU time on the receiving host, and
//! that the distribution of low-level `read()` sizes clusters around two
//! values.  To make the reproduction testable, this module computes those
//! observations as numbers: delivery-gap detection, retransmit/gap
//! correlation, per-stage latency breakdowns, and two-cluster analysis of
//! read sizes.

use crate::nlv::Lifeline;
use jamm_ulm::{Event, Timestamp};

/// A period with no progress events (a stall in frame delivery).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gap {
    /// Start of the gap.
    pub start: Timestamp,
    /// End of the gap (the next progress event).
    pub end: Timestamp,
    /// Gap length in microseconds.
    pub length_us: u64,
}

/// Find gaps between consecutive occurrences of `progress_event` longer than
/// `min_gap_us`.
pub fn delivery_gaps(events: &[Event], progress_event: &str, min_gap_us: u64) -> Vec<Gap> {
    let mut times: Vec<Timestamp> = events
        .iter()
        .filter(|e| e.event_type == progress_event)
        .map(|e| e.timestamp)
        .collect();
    times.sort();
    times
        .windows(2)
        .filter_map(|w| {
            let length = (w[1] - w[0]).max(0) as u64;
            (length >= min_gap_us).then_some(Gap {
                start: w[0],
                end: w[1],
                length_us: length,
            })
        })
        .collect()
}

/// How strongly occurrences of `marker_event` (e.g. retransmissions) line up
/// with the detected gaps.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GapCorrelation {
    /// Number of gaps examined.
    pub gaps: usize,
    /// Gaps that contain (or immediately follow) at least one marker event.
    pub gaps_with_marker: usize,
    /// Marker events that fall inside some gap.
    pub markers_in_gaps: usize,
    /// Total marker events.
    pub markers_total: usize,
}

impl GapCorrelation {
    /// Fraction of gaps explained by the marker (0 when there are no gaps).
    pub fn gap_hit_rate(&self) -> f64 {
        if self.gaps == 0 {
            0.0
        } else {
            self.gaps_with_marker as f64 / self.gaps as f64
        }
    }
}

/// Correlate marker events (e.g. `TCPD_RETRANSMITS`) with delivery gaps.
/// A marker "explains" a gap if it occurs within the gap or within
/// `slack_us` before it starts.
pub fn correlate_gaps(
    events: &[Event],
    gaps: &[Gap],
    marker_event: &str,
    slack_us: u64,
) -> GapCorrelation {
    let markers: Vec<Timestamp> = events
        .iter()
        .filter(|e| e.event_type == marker_event)
        .map(|e| e.timestamp)
        .collect();
    let mut gaps_with_marker = 0;
    for gap in gaps {
        let lo = gap.start.sub_micros(slack_us);
        if markers.iter().any(|m| *m >= lo && *m <= gap.end) {
            gaps_with_marker += 1;
        }
    }
    let markers_in_gaps = markers
        .iter()
        .filter(|m| gaps.iter().any(|g| **m >= g.start && **m <= g.end))
        .count();
    GapCorrelation {
        gaps: gaps.len(),
        gaps_with_marker,
        markers_in_gaps,
        markers_total: markers.len(),
    }
}

/// Mean duration of each lifeline stage across many lifelines:
/// `(from event, to event, mean microseconds, count)`.
pub fn mean_stage_durations(lifelines: &[Lifeline]) -> Vec<(String, String, f64, usize)> {
    let mut acc: Vec<(String, String, f64, usize)> = Vec::new();
    for l in lifelines {
        for (from, to, d) in l.stage_durations() {
            match acc.iter_mut().find(|(f, t, _, _)| *f == from && *t == to) {
                Some(slot) => {
                    slot.2 += d as f64;
                    slot.3 += 1;
                }
                None => acc.push((from, to, d as f64, 1)),
            }
        }
    }
    for slot in &mut acc {
        slot.2 /= slot.3 as f64;
    }
    acc
}

/// Result of splitting a set of readings into two clusters (Figure 3: "the
/// (unexpected) clustering of the data around two distinct values").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TwoClusters {
    /// Centre of the lower cluster.
    pub low_center: f64,
    /// Number of readings in the lower cluster.
    pub low_count: usize,
    /// Centre of the upper cluster.
    pub high_center: f64,
    /// Number of readings in the upper cluster.
    pub high_count: usize,
    /// Separation between the centres divided by the overall spread; > 1
    /// means the clusters are well separated (clearly bimodal).
    pub separation: f64,
}

/// One-dimensional 2-means clustering of readings.  Returns `None` when
/// there are fewer than two distinct values.
pub fn two_cluster(readings: &[f64]) -> Option<TwoClusters> {
    if readings.len() < 2 {
        return None;
    }
    let min = readings.iter().copied().fold(f64::INFINITY, f64::min);
    let max = readings.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if (max - min).abs() < f64::EPSILON {
        return None;
    }
    let mut c_low = min;
    let mut c_high = max;
    for _ in 0..32 {
        let (mut sum_l, mut n_l, mut sum_h, mut n_h) = (0.0, 0usize, 0.0, 0usize);
        for &r in readings {
            if (r - c_low).abs() <= (r - c_high).abs() {
                sum_l += r;
                n_l += 1;
            } else {
                sum_h += r;
                n_h += 1;
            }
        }
        if n_l == 0 || n_h == 0 {
            break;
        }
        let new_low = sum_l / n_l as f64;
        let new_high = sum_h / n_h as f64;
        if (new_low - c_low).abs() < 1e-9 && (new_high - c_high).abs() < 1e-9 {
            break;
        }
        c_low = new_low;
        c_high = new_high;
    }
    let (mut low, mut high): (Vec<f64>, Vec<f64>) = (Vec::new(), Vec::new());
    for &r in readings {
        if (r - c_low).abs() <= (r - c_high).abs() {
            low.push(r);
        } else {
            high.push(r);
        }
    }
    if low.is_empty() || high.is_empty() {
        return None;
    }
    let spread_of = |v: &[f64], c: f64| {
        (v.iter().map(|x| (x - c).powi(2)).sum::<f64>() / v.len() as f64).sqrt()
    };
    let within = (spread_of(&low, c_low) + spread_of(&high, c_high)).max(1e-9);
    Some(TwoClusters {
        low_center: c_low,
        low_count: low.len(),
        high_center: c_high,
        high_count: high.len(),
        separation: (c_high - c_low) / within,
    })
}

/// One hop of the monitoring pipeline, aggregated across sampled
/// self-lifelines: how long watched events took to get from stage `from`
/// to stage `to` at component `target`.
#[derive(Debug, Clone, PartialEq)]
pub struct StageLatency {
    /// Stage the hop starts at (a `JAMM_*` event type).
    pub from: String,
    /// Stage the hop ends at.
    pub to: String,
    /// `TARGET` of the destination stage point — the consumer, archiver,
    /// gateway or edge the hop delivered to, i.e. the component to blame
    /// if this hop dominates.
    pub target: String,
    /// Lifelines that contributed this hop.
    pub count: usize,
    /// Mean hop latency in microseconds.
    pub mean_us: f64,
    /// Worst observed hop latency in microseconds.
    pub max_us: u64,
}

/// The automated bottleneck diagnosis over JAMM's own self-lifelines.
///
/// This is the §6 methodology turned on the monitoring system itself:
/// instead of an analyst eyeballing an nlv chart of `_jamm` trace points,
/// [`diagnose`] computes the per-stage latency breakdown and names the
/// slowest hop.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnosis {
    /// Distinct sampled lifelines examined.
    pub traces: usize,
    /// Every observed (from, to, target) hop, sorted by descending mean
    /// latency — `hops[0]` is the bottleneck.
    pub hops: Vec<StageLatency>,
}

impl Diagnosis {
    /// The slowest hop by mean latency, if any hop was observed.
    pub fn bottleneck(&self) -> Option<&StageLatency> {
        self.hops.first()
    }

    /// Human-readable report, bottleneck first.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        match self.bottleneck() {
            Some(b) => out.push_str(&format!(
                "bottleneck: {} -> {} at {} (mean {:.0} us over {} lifelines, max {} us)\n",
                b.from, b.to, b.target, b.mean_us, b.count, b.max_us
            )),
            None => out.push_str("bottleneck: none (no complete hops observed)\n"),
        }
        out.push_str(&format!("lifelines examined: {}\n", self.traces));
        for h in &self.hops {
            out.push_str(&format!(
                "  {:>22} -> {:<22} {:<20} mean {:>10.1} us  max {:>8} us  n={}\n",
                h.from, h.to, h.target, h.mean_us, h.max_us, h.count
            ));
        }
        out
    }
}

/// Which earlier stage each pipeline stage is measured against, in
/// preference order; `true` means the predecessor must carry the same
/// `TARGET` (drain and archive are per-consumer continuations of that
/// consumer's own delivery point).
fn hop_predecessors(stage: &str) -> &'static [(&'static str, bool)] {
    use jamm_ulm::keys::jamm;
    match stage {
        s if s == jamm::GW_ROUTED => &[(jamm::GW_PUBLISH, false)],
        s if s == jamm::SUB_DELIVER => &[(jamm::GW_ROUTED, false), (jamm::GW_PUBLISH, false)],
        s if s == jamm::SUB_DRAIN => &[(jamm::SUB_DELIVER, true), (jamm::GW_ROUTED, false)],
        s if s == jamm::ARCHIVE_APPEND => &[(jamm::SUB_DELIVER, true), (jamm::GW_ROUTED, false)],
        s if s == jamm::EDGE_ENCODE => &[(jamm::GW_ROUTED, false), (jamm::GW_PUBLISH, false)],
        s if s == jamm::EDGE_BROADCAST => &[(jamm::EDGE_ENCODE, false)],
        _ => &[],
    }
}

fn target_of(event: &Event) -> &str {
    event
        .field(jamm_ulm::keys::TARGET)
        .and_then(jamm_ulm::Value::as_str)
        .unwrap_or("?")
}

/// Compute the per-stage latency breakdown of the monitoring pipeline from
/// its self-lifeline trace points (`_jamm` events, `JAMM_*` stage types)
/// and localize the bottleneck.
///
/// Events are grouped by correlation id (`NL.OID`); within each lifeline,
/// each stage point is paired with its most recent predecessor stage (see
/// the module source for the stage graph: publish → route → deliver →
/// {drain, archive-append}, route → encode → broadcast).  Hops are
/// aggregated per `(from, to, target)` so a single slow consumer stands
/// out from its healthy siblings; the hop with the largest mean latency is
/// the diagnosis.
///
/// Accepts any iterator of events so both owned logs (`&[Event]`) and
/// shared ones (`self_events().iter().map(|e| e.as_ref())`) work; non-JAMM
/// events and points without a correlation id are ignored.
pub fn diagnose<'a, I>(events: I) -> Diagnosis
where
    I: IntoIterator<Item = &'a Event>,
{
    use jamm_ulm::keys::jamm;
    // Group stage points by correlation id, preserving discovery order.
    let mut traces: Vec<(&str, Vec<&Event>)> = Vec::new();
    for e in events {
        if !jamm::STAGES.contains(&e.event_type.as_str()) {
            continue;
        }
        let Some(oid) = e.object_id() else { continue };
        match traces.iter_mut().find(|(o, _)| *o == oid) {
            Some((_, points)) => points.push(e),
            None => traces.push((oid, vec![e])),
        }
    }
    // Accumulate (from, to, target) -> (sum_us, max_us, count).
    let mut acc: Vec<(StageLatency, f64)> = Vec::new();
    for (_, points) in &mut traces {
        points.sort_by_key(|e| e.timestamp);
        for (i, point) in points.iter().enumerate() {
            let pred =
                hop_predecessors(&point.event_type)
                    .iter()
                    .find_map(|&(stage, same_target)| {
                        points[..i].iter().rev().find(|p| {
                            p.event_type == stage
                                && (!same_target || target_of(p) == target_of(point))
                        })
                    });
            let Some(pred) = pred else { continue };
            let us = (point.timestamp - pred.timestamp).max(0) as u64;
            let target = target_of(point);
            let slot = acc.iter_mut().find(|(h, _)| {
                h.from == pred.event_type && h.to == point.event_type && h.target == target
            });
            match slot {
                Some((h, sum)) => {
                    *sum += us as f64;
                    h.count += 1;
                    h.max_us = h.max_us.max(us);
                }
                None => acc.push((
                    StageLatency {
                        from: pred.event_type.clone(),
                        to: point.event_type.clone(),
                        target: target.to_string(),
                        count: 1,
                        mean_us: 0.0,
                        max_us: us,
                    },
                    us as f64,
                )),
            }
        }
    }
    let mut hops: Vec<StageLatency> = acc
        .into_iter()
        .map(|(mut h, sum)| {
            h.mean_us = sum / h.count as f64;
            h
        })
        .collect();
    hops.sort_by(|a, b| b.mean_us.total_cmp(&a.mean_us));
    Diagnosis {
        traces: traces.len(),
        hops,
    }
}

/// Throughput (bits/second) of a byte-counting event series over its span,
/// where each event carries the byte count in `field`.
pub fn throughput_bps(events: &[Event], event_type: &str, field: &str) -> f64 {
    let relevant: Vec<&Event> = events
        .iter()
        .filter(|e| e.event_type == event_type)
        .collect();
    if relevant.len() < 2 {
        return 0.0;
    }
    let bytes: f64 = relevant.iter().filter_map(|e| e.field_f64(field)).sum();
    let t0 = relevant.iter().map(|e| e.timestamp).min().unwrap();
    let t1 = relevant.iter().map(|e| e.timestamp).max().unwrap();
    let secs = ((t1 - t0).max(1)) as f64 / 1e6;
    bytes * 8.0 / secs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nlv::lifelines;
    use jamm_ulm::{keys, Level};

    fn ev(ty: &str, us: u64, value: Option<f64>) -> Event {
        let mut b = Event::builder("p", "h")
            .level(Level::Usage)
            .event_type(ty)
            .timestamp(Timestamp::from_micros(us));
        if let Some(v) = value {
            b = b.value(v);
        }
        b.build()
    }

    #[test]
    fn gaps_are_detected_between_sparse_progress_events() {
        let log = vec![
            ev("MPLAY_END_READ_FRAME", 0, None),
            ev("MPLAY_END_READ_FRAME", 200_000, None),
            ev("MPLAY_END_READ_FRAME", 1_700_000, None), // 1.5 s stall
            ev("MPLAY_END_READ_FRAME", 1_900_000, None),
        ];
        let gaps = delivery_gaps(&log, "MPLAY_END_READ_FRAME", 1_000_000);
        assert_eq!(gaps.len(), 1);
        assert_eq!(gaps[0].length_us, 1_500_000);
        // With a lower threshold, the 200 ms inter-frame times count too.
        assert_eq!(
            delivery_gaps(&log, "MPLAY_END_READ_FRAME", 100_000).len(),
            3
        );
        assert!(delivery_gaps(&[], "X", 1).is_empty());
    }

    #[test]
    fn retransmits_inside_gaps_are_correlated() {
        let mut log = vec![
            ev("MPLAY_END_READ_FRAME", 0, None),
            ev("MPLAY_END_READ_FRAME", 2_000_000, None),
            ev("MPLAY_END_READ_FRAME", 2_200_000, None),
            ev("MPLAY_END_READ_FRAME", 5_000_000, None),
        ];
        // Retransmissions during both stalls, and one in quiet time.
        log.push(ev(keys::tcp::RETRANSMITS, 900_000, Some(2.0)));
        log.push(ev(keys::tcp::RETRANSMITS, 3_000_000, Some(1.0)));
        log.push(ev(keys::tcp::RETRANSMITS, 2_100_000, Some(1.0)));
        let gaps = delivery_gaps(&log, "MPLAY_END_READ_FRAME", 1_000_000);
        assert_eq!(gaps.len(), 2);
        let corr = correlate_gaps(&log, &gaps, keys::tcp::RETRANSMITS, 0);
        assert_eq!(corr.gaps_with_marker, 2);
        assert!((corr.gap_hit_rate() - 1.0).abs() < 1e-9);
        assert_eq!(corr.markers_in_gaps, 2);
        assert_eq!(corr.markers_total, 3);
    }

    #[test]
    fn stage_durations_average_across_lifelines() {
        let order = [
            keys::matisse::START_READ_FRAME,
            keys::matisse::END_READ_FRAME,
        ];
        let mut log = Vec::new();
        for (i, dur) in [100_000u64, 300_000].iter().enumerate() {
            let oid = format!("frame-{i}");
            log.push({
                let mut e = ev(order[0], i as u64 * 1_000_000, None);
                e.set_field(keys::OBJECT_ID, oid.clone());
                e
            });
            log.push({
                let mut e = ev(order[1], i as u64 * 1_000_000 + dur, None);
                e.set_field(keys::OBJECT_ID, oid);
                e
            });
        }
        let lines = lifelines(&log, &order);
        let stages = mean_stage_durations(&lines);
        assert_eq!(stages.len(), 1);
        assert_eq!(stages[0].3, 2);
        assert!((stages[0].2 - 200_000.0).abs() < 1e-9);
    }

    #[test]
    fn bimodal_read_sizes_are_separated() {
        // The Figure 3 situation: most reads return the full 64 KB buffer,
        // the rest return a small remainder around 20 KB.
        let mut readings = Vec::new();
        for i in 0..100 {
            readings.push(65_536.0 - (i % 3) as f64);
            readings.push(20_000.0 + (i % 7) as f64 * 100.0);
        }
        let c = two_cluster(&readings).unwrap();
        assert!(c.low_center > 19_000.0 && c.low_center < 22_000.0);
        assert!(c.high_center > 65_000.0);
        assert_eq!(c.low_count + c.high_count, 200);
        assert!(c.separation > 10.0, "clearly bimodal: {}", c.separation);
    }

    #[test]
    fn unimodal_data_has_low_separation_and_degenerate_cases_are_none() {
        let uniform: Vec<f64> = (0..100).map(|i| 1_000.0 + i as f64).collect();
        let c = two_cluster(&uniform).unwrap();
        assert!(c.separation < 3.0, "not strongly bimodal: {}", c.separation);
        assert!(two_cluster(&[]).is_none());
        assert!(two_cluster(&[5.0]).is_none());
        assert!(two_cluster(&[5.0, 5.0, 5.0]).is_none());
    }

    /// A `_jamm` self-lifeline stage point.
    fn trace_point(oid: &str, stage: &str, us: u64, target: &str) -> Event {
        Event::builder("_jamm", "jamm-monitor")
            .level(Level::Usage)
            .event_type(stage)
            .timestamp(Timestamp::from_micros(us))
            .field(keys::OBJECT_ID, oid.to_string())
            .field(keys::TARGET, target.to_string())
            .build()
    }

    #[test]
    fn diagnose_localizes_the_slow_consumer_drain() {
        use keys::jamm as j;
        let mut log = Vec::new();
        // Three lifelines: routing and delivery are fast everywhere, the
        // "nlv" consumer drains promptly, but "mems.cairn.net" sits on its
        // queue for ~80 ms before draining.
        for (i, base) in [0u64, 1_000_000, 2_000_000].iter().enumerate() {
            let oid = format!("jamm-{i}");
            log.push(trace_point(&oid, j::GW_PUBLISH, *base, "gw"));
            log.push(trace_point(&oid, j::GW_ROUTED, base + 120, "gw"));
            log.push(trace_point(&oid, j::SUB_DELIVER, base + 200, "nlv"));
            log.push(trace_point(
                &oid,
                j::SUB_DELIVER,
                base + 210,
                "mems.cairn.net",
            ));
            log.push(trace_point(&oid, j::SUB_DRAIN, base + 700, "nlv"));
            log.push(trace_point(
                &oid,
                j::SUB_DRAIN,
                base + 80_210,
                "mems.cairn.net",
            ));
        }
        // Noise that must be ignored: unrelated events and points with no id.
        log.push(ev("MPLAY_END_READ_FRAME", 5, None));
        log.push({
            let mut e = ev(j::SUB_DRAIN, 9, None);
            e.set_field(keys::TARGET, "anon");
            e
        });

        let d = diagnose(&log);
        assert_eq!(d.traces, 3);
        let b = d.bottleneck().expect("hops observed");
        assert_eq!(b.from, j::SUB_DELIVER);
        assert_eq!(b.to, j::SUB_DRAIN);
        assert_eq!(b.target, "mems.cairn.net");
        assert_eq!(b.count, 3);
        assert!((b.mean_us - 80_000.0).abs() < 1.0, "mean {}", b.mean_us);
        assert_eq!(b.max_us, 80_000);
        // The healthy consumer's drain hop is separate and much smaller.
        let healthy = d
            .hops
            .iter()
            .find(|h| h.to == j::SUB_DRAIN && h.target == "nlv")
            .expect("fast consumer hop present");
        assert!(healthy.mean_us < 1_000.0);
        // Drains paired against the *same consumer's* delivery point, not
        // whichever delivery came last.
        assert_eq!(healthy.from, j::SUB_DELIVER);
        let text = d.render_text();
        assert!(
            text.starts_with("bottleneck: JAMM_SUB_DELIVER -> JAMM_SUB_DRAIN at mems.cairn.net")
        );
        assert!(text.contains("lifelines examined: 3"));
    }

    #[test]
    fn diagnose_covers_edge_and_archive_hops() {
        use keys::jamm as j;
        let log = vec![
            trace_point("jamm-1", j::GW_PUBLISH, 0, "gw"),
            trace_point("jamm-1", j::GW_ROUTED, 100, "gw"),
            trace_point("jamm-1", j::SUB_DELIVER, 150, "keeper"),
            trace_point("jamm-1", j::ARCHIVE_APPEND, 4_150, "keeper"),
            trace_point("jamm-1", j::EDGE_ENCODE, 300, "gw"),
            trace_point("jamm-1", j::EDGE_BROADCAST, 50_300, "gw"),
        ];
        let d = diagnose(&log);
        assert_eq!(d.traces, 1);
        let b = d.bottleneck().unwrap();
        assert_eq!(
            (b.from.as_str(), b.to.as_str()),
            (j::EDGE_ENCODE, j::EDGE_BROADCAST)
        );
        assert_eq!(b.mean_us, 50_000.0);
        let archive = d
            .hops
            .iter()
            .find(|h| h.to == j::ARCHIVE_APPEND)
            .expect("archive hop");
        assert_eq!(archive.from, j::SUB_DELIVER);
        assert_eq!(archive.mean_us, 4_000.0);
        let encode = d.hops.iter().find(|h| h.to == j::EDGE_ENCODE).unwrap();
        assert_eq!(encode.from, j::GW_ROUTED);
    }

    #[test]
    fn diagnose_of_nothing_is_empty() {
        let d = diagnose(&[]);
        assert_eq!(d.traces, 0);
        assert!(d.bottleneck().is_none());
        assert!(d.render_text().contains("bottleneck: none"));
        // Non-JAMM logs diagnose to nothing too.
        let d = diagnose(&[ev("MPLAY_END_READ_FRAME", 0, None)]);
        assert_eq!(d.traces, 0);
    }

    #[test]
    fn diagnose_with_zero_sampled_lifelines_is_empty_not_wrong() {
        use keys::jamm as j;
        // Stage-typed points that were never sampled into a lifeline (no
        // correlation id) must not be grouped into a phantom trace.
        let log = vec![
            {
                let mut e = ev(j::GW_PUBLISH, 0, None);
                e.set_field(keys::TARGET, "gw");
                e
            },
            {
                let mut e = ev(j::SUB_DELIVER, 5_000, None);
                e.set_field(keys::TARGET, "viz");
                e
            },
        ];
        let d = diagnose(&log);
        assert_eq!(d.traces, 0);
        assert!(d.bottleneck().is_none());
        assert!(d.hops.is_empty());
        assert!(d.render_text().contains("lifelines examined: 0"));
    }

    #[test]
    fn diagnose_breaks_ties_between_equally_slow_hops_deterministically() {
        use keys::jamm as j;
        // Two consumers with *identical* drain latency: the sort is stable,
        // so the first-observed hop stays first and repeated runs agree.
        let mut log = Vec::new();
        for (i, base) in [0u64, 1_000_000].iter().enumerate() {
            let oid = format!("jamm-{i}");
            log.push(trace_point(&oid, j::GW_PUBLISH, *base, "gw"));
            log.push(trace_point(&oid, j::GW_ROUTED, base + 100, "gw"));
            log.push(trace_point(&oid, j::SUB_DELIVER, base + 200, "alpha"));
            log.push(trace_point(&oid, j::SUB_DELIVER, base + 250, "beta"));
            log.push(trace_point(&oid, j::SUB_DRAIN, base + 40_200, "alpha"));
            log.push(trace_point(&oid, j::SUB_DRAIN, base + 40_250, "beta"));
        }
        let d = diagnose(&log);
        let drains: Vec<&StageLatency> = d.hops.iter().filter(|h| h.to == j::SUB_DRAIN).collect();
        assert_eq!(drains.len(), 2);
        assert_eq!(drains[0].mean_us, drains[1].mean_us, "an exact tie");
        assert_eq!(drains[0].target, "alpha", "first observed wins the tie");
        assert_eq!(drains[1].target, "beta");
        assert_eq!(d.render_text(), diagnose(&log).render_text());
    }

    #[test]
    fn orphaned_stage_points_contribute_traces_but_no_hops() {
        use keys::jamm as j;
        // A drain with no delivery and a routed point with no publish: real
        // lifelines (they carry correlation ids) but with no predecessor
        // stage to measure against — they must not fabricate hops.
        let log = vec![
            trace_point("jamm-a", j::SUB_DRAIN, 500, "viz"),
            trace_point("jamm-b", j::GW_ROUTED, 900, "gw"),
            // A lone publish is a legitimate lifeline head with nothing to
            // pair backwards to either.
            trace_point("jamm-c", j::GW_PUBLISH, 1_000, "gw"),
        ];
        let d = diagnose(&log);
        assert_eq!(d.traces, 3);
        assert!(d.hops.is_empty(), "no predecessor, no hop: {:?}", d.hops);
        assert!(d.render_text().contains("bottleneck: none"));
        // An orphan alongside a complete lifeline only adds its trace; the
        // complete lifeline's hops are unaffected.
        let mut log = log;
        log.push(trace_point("jamm-d", j::GW_PUBLISH, 2_000, "gw"));
        log.push(trace_point("jamm-d", j::GW_ROUTED, 2_300, "gw"));
        let d = diagnose(&log);
        assert_eq!(d.traces, 4);
        assert_eq!(d.hops.len(), 1);
        assert_eq!(d.hops[0].count, 1);
        assert_eq!(d.hops[0].mean_us, 300.0);
    }

    #[test]
    fn throughput_from_byte_events() {
        let log = vec![
            {
                let mut e = ev("WriteData", 0, None);
                e.set_field("SEND.SZ", 500_000u64);
                e
            },
            {
                let mut e = ev("WriteData", 1_000_000, None);
                e.set_field("SEND.SZ", 750_000u64);
                e
            },
        ];
        let bps = throughput_bps(&log, "WriteData", "SEND.SZ");
        assert!(
            (bps - 10_000_000.0).abs() < 1.0,
            "1.25 MB over 1 s = 10 Mbit/s, got {bps}"
        );
        assert_eq!(throughput_bps(&log, "Other", "SEND.SZ"), 0.0);
    }
}
