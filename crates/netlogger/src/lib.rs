//! # jamm-netlogger — the NetLogger Toolkit
//!
//! JAMM was built to feed the NetLogger Toolkit (paper §4): an
//! instrumentation API that applications use to emit precision-timestamped
//! ULM events at the critical points of a distributed operation, tools to
//! collect and merge the resulting logs, a clock-synchronisation story that
//! makes cross-host timestamps comparable, and the `nlv` visualiser with its
//! three graph primitives (lifeline, loadline, point).
//!
//! * [`api`] — the client API (§4.4): `new`, `open`, `write`, `flush`,
//!   `close`, with memory / file / collector-channel sinks and automatic
//!   timestamping;
//! * [`merge`] — log collection and time-sorting (§4.1's "tools for
//!   collecting and sorting log files");
//! * [`clock`] — host clock offset/drift model and NTP-style synchronisation
//!   (§4.3), used by experiment E6;
//! * [`nlv`] — the visualisation data model: build lifelines, loadlines and
//!   point series from an event log (§4.5, Figures 2, 3 and 7);
//! * [`analysis`] — lifeline latency breakdowns, delivery-gap detection,
//!   retransmit/gap correlation and read-size clustering — the quantitative
//!   backbone of the Figure 3 and Figure 7 reproductions;
//! * [`socket`] — a reactor-backed TCP destination ([`socket::SocketSink`]):
//!   the paper's "log to a remote host on port 14830" over a real socket,
//!   without ever blocking the instrumented thread.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod api;
pub mod clock;
pub mod merge;
pub mod nlv;
pub mod socket;

pub use api::{NetLogger, Sink};
pub use clock::{HostClock, NtpSimulation};
pub use nlv::{Lifeline, Loadline, NlvChart, PointSeries};
pub use socket::SocketSink;
