//! The NetLogger client API.
//!
//! Mirrors the paper's §4.4 example:
//!
//! ```text
//! NetLogger eventLog = new NetLogger("testprog");
//! eventLog.open("dolly.lbl.gov", 14830);
//! eventLog.write("WriteIt", "SEND.SZ=" + sz);
//! eventLog.close();
//! ```
//!
//! The Rust API keeps the same shape: create a logger for a program, open a
//! sink (memory buffer, local file, or a channel to a remote collector),
//! `write` events with automatic microsecond timestamps, and flush/close.
//! Logging to memory buffers with explicit or size-triggered flushing is
//! supported, as the paper describes.

use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Write as _};
use std::path::PathBuf;
use std::sync::Arc;

use jamm_core::channel::Sender;
use jamm_core::flow::EventSink;
use jamm_ulm::codec::{codec_for, EventCodec};
use jamm_ulm::{keys, text, Event, Level, Timestamp, Value};

/// Where a [`NetLogger`] sends its events.
pub enum Sink {
    /// Keep events in an in-memory buffer until flushed to another sink or
    /// read back by the application.
    Memory,
    /// Append ULM lines to a local file.
    File(PathBuf),
    /// Send events to a collector over a channel (the in-process stand-in
    /// for "log to a remote host on port 14830").
    Net(Sender<Event>),
    /// Append frames of the named ULM content type to a local file — the
    /// file-sink analogue of wire codec negotiation: callers pass the
    /// content type the downstream analysis tools asked for (see
    /// [`jamm_ulm::codec`]).
    EncodedFile {
        /// File to append to.
        path: PathBuf,
        /// Negotiated content type, e.g. `application/x-ulm-binary`.
        content_type: &'static str,
    },
    /// Push events into any pipeline sink: a local gateway, an archive, or
    /// a remote gateway behind an RMI event bridge.
    Pipeline(Arc<dyn EventSink<Event>>),
    /// Stream frames to a remote collector over a nonblocking TCP socket
    /// owned by a reactor — the paper's `open("dolly.lbl.gov", 14830)`
    /// with real wire bytes.  Write stalls land in the reactor outbox,
    /// never on the instrumented thread.
    Socket(Arc<crate::socket::SocketSink>),
}

impl std::fmt::Debug for Sink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Sink::Memory => write!(f, "Sink::Memory"),
            Sink::File(p) => write!(f, "Sink::File({})", p.display()),
            Sink::Net(_) => write!(f, "Sink::Net(..)"),
            Sink::EncodedFile { path, content_type } => {
                write!(f, "Sink::EncodedFile({}, {content_type})", path.display())
            }
            Sink::Pipeline(_) => write!(f, "Sink::Pipeline(..)"),
            Sink::Socket(s) => write!(f, "Sink::Socket(conn {:?})", s.conn()),
        }
    }
}

/// Errors from the logging API.
#[derive(Debug)]
pub enum LogError {
    /// The file sink could not be opened or written.
    Io(std::io::Error),
    /// The collector channel was closed.
    CollectorGone,
    /// `write` was called before `open`.
    NotOpen,
    /// The requested content type has no codec.
    UnknownContentType(String),
    /// The downstream pipeline sink refused the event.
    SinkRefused(String),
}

impl std::fmt::Display for LogError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LogError::Io(e) => write!(f, "i/o error: {e}"),
            LogError::CollectorGone => write!(f, "collector channel closed"),
            LogError::NotOpen => write!(f, "logger not opened"),
            LogError::UnknownContentType(ct) => write!(f, "no codec for content type {ct}"),
            LogError::SinkRefused(why) => write!(f, "pipeline sink refused event: {why}"),
        }
    }
}

impl std::error::Error for LogError {}

impl From<std::io::Error> for LogError {
    fn from(e: std::io::Error) -> Self {
        LogError::Io(e)
    }
}

enum OpenSink {
    Memory,
    File(BufWriter<File>),
    Net(Sender<Event>),
    EncodedFile {
        writer: BufWriter<File>,
        codec: EventCodec,
    },
    Pipeline(Arc<dyn EventSink<Event>>),
}

/// The NetLogger instrumentation handle.
pub struct NetLogger {
    program: String,
    host: String,
    sink: Option<OpenSink>,
    buffer: Vec<Event>,
    /// Flush the memory buffer automatically once it reaches this many
    /// events (0 disables auto-flush).
    auto_flush_at: usize,
    written: u64,
    /// Fixed timestamp override used by tests and the simulator; `None`
    /// means stamp with wall-clock time.
    clock_override: Option<Timestamp>,
    /// Reused encode scratch for the file sinks: one line/frame buffer
    /// amortized over the stream instead of an allocation per write.
    scratch: Vec<u8>,
}

impl std::fmt::Debug for NetLogger {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetLogger")
            .field("program", &self.program)
            .field("host", &self.host)
            .field("buffered", &self.buffer.len())
            .field("written", &self.written)
            .finish_non_exhaustive()
    }
}

impl NetLogger {
    /// Create a logger for `program` on the local host.
    pub fn new(program: impl Into<String>) -> Self {
        let host = std::fs::read_to_string("/proc/sys/kernel/hostname")
            .map(|s| s.trim().to_string())
            .unwrap_or_else(|_| "localhost".to_string());
        NetLogger::with_host(program, host)
    }

    /// Create a logger claiming to run on `host` (simulated applications).
    pub fn with_host(program: impl Into<String>, host: impl Into<String>) -> Self {
        NetLogger {
            program: program.into(),
            host: host.into(),
            sink: None,
            buffer: Vec::new(),
            auto_flush_at: 1_024,
            written: 0,
            clock_override: None,
            scratch: Vec::new(),
        }
    }

    /// Open the logger with a sink.
    pub fn open(&mut self, sink: Sink) -> Result<(), LogError> {
        self.sink = Some(match sink {
            Sink::Memory => OpenSink::Memory,
            Sink::File(path) => OpenSink::File(BufWriter::new(
                OpenOptions::new().create(true).append(true).open(path)?,
            )),
            Sink::Net(tx) => OpenSink::Net(tx),
            Sink::EncodedFile { path, content_type } => {
                let codec = codec_for(content_type)
                    .ok_or_else(|| LogError::UnknownContentType(content_type.to_string()))?;
                OpenSink::EncodedFile {
                    writer: BufWriter::new(
                        OpenOptions::new().create(true).append(true).open(path)?,
                    ),
                    codec,
                }
            }
            Sink::Pipeline(sink) => OpenSink::Pipeline(sink),
            // The socket sink is pipeline-shaped: encode + enqueue on the
            // reactor, no blocking I/O on this thread.
            Sink::Socket(sink) => OpenSink::Pipeline(sink),
        });
        Ok(())
    }

    /// Set the number of buffered events that triggers an automatic flush
    /// (only meaningful for the memory sink; 0 disables).
    pub fn set_auto_flush(&mut self, events: usize) {
        self.auto_flush_at = events;
    }

    /// Force timestamps to a fixed value (used by tests / simulation).
    pub fn set_clock_override(&mut self, ts: Option<Timestamp>) {
        self.clock_override = ts;
    }

    /// Number of events written (sent to the sink) so far.
    pub fn events_written(&self) -> u64 {
        self.written
    }

    /// Number of events currently buffered in memory.
    pub fn buffered(&self) -> usize {
        self.buffer.len()
    }

    /// Log an event with the given NetLogger event name and user fields,
    /// automatically timestamped.  This is the `write("WriteIt", ...)` call
    /// from the paper.
    pub fn write(&mut self, event_name: &str, fields: &[(&str, Value)]) -> Result<(), LogError> {
        let mut builder = Event::builder(self.program.clone(), self.host.clone())
            .level(Level::Usage)
            .event_type(event_name);
        if let Some(ts) = self.clock_override {
            builder = builder.timestamp(ts);
        }
        for (k, v) in fields {
            builder = builder.field(*k, v.clone());
        }
        self.write_event(builder.build())
    }

    /// Log an already-constructed event.
    pub fn write_event(&mut self, event: Event) -> Result<(), LogError> {
        match self.sink.as_mut() {
            None => Err(LogError::NotOpen),
            Some(OpenSink::Memory) => {
                self.buffer.push(event);
                self.written += 1;
                if self.auto_flush_at > 0 && self.buffer.len() >= self.auto_flush_at {
                    // With a pure memory sink a "flush" just keeps the data;
                    // the application is expected to drain it.  Nothing to do
                    // beyond honouring the documented trigger point.
                }
                Ok(())
            }
            Some(OpenSink::File(w)) => {
                self.scratch.clear();
                let mut line = String::from_utf8(std::mem::take(&mut self.scratch))
                    .expect("scratch holds previously encoded UTF-8");
                text::encode_into(&mut line, &event);
                line.push('\n');
                w.write_all(line.as_bytes())?;
                self.scratch = line.into_bytes();
                self.written += 1;
                Ok(())
            }
            Some(OpenSink::Net(tx)) => {
                tx.send(event).map_err(|_| LogError::CollectorGone)?;
                self.written += 1;
                Ok(())
            }
            Some(OpenSink::EncodedFile { writer, codec }) => {
                self.scratch.clear();
                codec.encode_to(&mut self.scratch, &event);
                writer.write_all(&self.scratch)?;
                // Binary frames are self-delimiting; the text and JSON
                // formats are one-document-per-line and need the separator
                // (TextCodec::encode emits no trailing newline).
                if codec.content_type() != jamm_ulm::codec::BINARY {
                    writer.write_all(b"\n")?;
                }
                self.written += 1;
                Ok(())
            }
            Some(OpenSink::Pipeline(sink)) => {
                sink.accept(&event)
                    .map_err(|e| LogError::SinkRefused(e.to_string()))?;
                self.written += 1;
                Ok(())
            }
        }
    }

    /// Convenience matching the paper's example: log an event with an object
    /// id so the visualiser can draw its lifeline.
    pub fn write_for_object(
        &mut self,
        event_name: &str,
        object_id: &str,
        fields: &[(&str, Value)],
    ) -> Result<(), LogError> {
        let mut all: Vec<(&str, Value)> = vec![(keys::OBJECT_ID, Value::Str(object_id.into()))];
        all.extend(fields.iter().cloned());
        self.write(event_name, &all)
    }

    /// Drain the memory buffer (memory sink only).
    pub fn drain_buffer(&mut self) -> Vec<Event> {
        std::mem::take(&mut self.buffer)
    }

    /// Flush the underlying sink (meaningful for the file sinks).
    pub fn flush(&mut self) -> Result<(), LogError> {
        match self.sink.as_mut() {
            Some(OpenSink::File(w)) | Some(OpenSink::EncodedFile { writer: w, .. }) => {
                w.flush()?;
            }
            _ => {}
        }
        Ok(())
    }

    /// Flush and close the logger; further writes fail with `NotOpen`.
    pub fn close(&mut self) -> Result<(), LogError> {
        self.flush()?;
        self.sink = None;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jamm_core::channel::unbounded;
    use jamm_core::flow::SinkError;
    use jamm_core::sync::Mutex;

    #[test]
    fn paper_example_produces_the_expected_ulm_line() {
        let mut log = NetLogger::with_host("testProg", "dpss1.lbl.gov");
        log.open(Sink::Memory).unwrap();
        log.set_clock_override(Some(
            Timestamp::parse_ulm_date("20000330112320.957943").unwrap(),
        ));
        log.write("WriteData", &[("SEND.SZ", Value::UInt(49_332))])
            .unwrap();
        let events = log.drain_buffer();
        assert_eq!(events.len(), 1);
        let line = text::encode(&events[0]);
        assert_eq!(
            line,
            "DATE=20000330112320.957943 HOST=dpss1.lbl.gov PROG=testProg LVL=Usage \
             NL.EVNT=WriteData SEND.SZ=49332"
        );
    }

    #[test]
    fn write_before_open_fails_and_close_disables() {
        let mut log = NetLogger::with_host("p", "h");
        assert!(matches!(log.write("X", &[]), Err(LogError::NotOpen)));
        log.open(Sink::Memory).unwrap();
        log.write("X", &[]).unwrap();
        log.close().unwrap();
        assert!(matches!(log.write("Y", &[]), Err(LogError::NotOpen)));
        assert_eq!(log.events_written(), 1);
    }

    #[test]
    fn file_sink_appends_parseable_ulm() {
        let dir = std::env::temp_dir().join(format!("jamm-netlogger-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("app.log");
        let _ = std::fs::remove_file(&path);
        {
            let mut log = NetLogger::with_host("ftpd", "dpss1.lbl.gov");
            log.open(Sink::File(path.clone())).unwrap();
            for i in 0..10u64 {
                log.write_for_object(
                    "SEND_BLOCK",
                    &format!("xfer-{}", i % 2),
                    &[("SZ", Value::UInt(i))],
                )
                .unwrap();
            }
            log.close().unwrap();
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let events = text::decode_all_lossy(&text);
        assert_eq!(events.len(), 10);
        assert_eq!(events[3].object_id(), Some("xfer-1"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn net_sink_delivers_to_collector_channel() {
        let (tx, rx) = unbounded();
        let mut log = NetLogger::with_host("mplay", "mems.cairn.net");
        log.open(Sink::Net(tx)).unwrap();
        log.write("MPLAY_START_READ_FRAME", &[("FRAME.ID", Value::UInt(1))])
            .unwrap();
        log.write("MPLAY_END_READ_FRAME", &[("FRAME.ID", Value::UInt(1))])
            .unwrap();
        let got: Vec<Event> = rx.try_iter().collect();
        assert_eq!(got.len(), 2);
        assert_eq!(got[1].event_type, "MPLAY_END_READ_FRAME");
        // Dropping the receiver turns further writes into CollectorGone.
        drop(rx);
        assert!(matches!(log.write("X", &[]), Err(LogError::CollectorGone)));
    }

    #[test]
    fn timestamps_are_automatic_and_monotone_enough() {
        let mut log = NetLogger::with_host("p", "h");
        log.open(Sink::Memory).unwrap();
        log.write("A", &[]).unwrap();
        log.write("B", &[]).unwrap();
        let events = log.drain_buffer();
        assert!(events[0].timestamp <= events[1].timestamp);
        assert!(events[0].timestamp > Timestamp::from_secs(1_500_000_000));
    }

    #[test]
    fn encoded_file_sink_writes_negotiated_format() {
        let dir = std::env::temp_dir().join(format!("jamm-netlogger-codec-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("app.bin");
        let _ = std::fs::remove_file(&path);
        {
            let mut log = NetLogger::with_host("dpss", "dpss1.lbl.gov");
            log.open(Sink::EncodedFile {
                path: path.clone(),
                content_type: jamm_ulm::codec::BINARY,
            })
            .unwrap();
            for i in 0..6u64 {
                log.write("DPSS_SERV_IN", &[("BLOCK.ID", Value::UInt(i))])
                    .unwrap();
            }
            log.close().unwrap();
        }
        let bytes = std::fs::read(&path).unwrap();
        let events = jamm_ulm::binary::decode_all(&bytes).unwrap();
        assert_eq!(events.len(), 6);
        assert_eq!(events[5].field("BLOCK.ID"), Some(&Value::UInt(5)));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn encoded_file_text_frames_are_line_separated() {
        let dir = std::env::temp_dir().join(format!("jamm-netlogger-text-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("app.ulm");
        let _ = std::fs::remove_file(&path);
        {
            let mut log = NetLogger::with_host("dpss", "dpss1.lbl.gov");
            log.open(Sink::EncodedFile {
                path: path.clone(),
                content_type: jamm_ulm::codec::TEXT,
            })
            .unwrap();
            for i in 0..4u64 {
                log.write("TICK", &[("N", Value::UInt(i))]).unwrap();
            }
            log.close().unwrap();
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let events = jamm_ulm::text::decode_all_lossy(&text);
        assert_eq!(events.len(), 4, "one parseable ULM line per event");
        assert_eq!(events[3].field("N"), Some(&Value::UInt(3)));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unknown_content_type_fails_to_open() {
        let mut log = NetLogger::with_host("p", "h");
        assert!(matches!(
            log.open(Sink::EncodedFile {
                path: std::env::temp_dir().join("never-created.log"),
                content_type: "application/xml",
            }),
            Err(LogError::UnknownContentType(_))
        ));
    }

    #[test]
    fn pipeline_sink_receives_events() {
        struct Probe(Mutex<Vec<Event>>);
        impl EventSink<Event> for Probe {
            fn accept(&self, event: &Event) -> Result<usize, SinkError> {
                self.0.lock().push(event.clone());
                Ok(1)
            }
        }
        let probe = Arc::new(Probe(Mutex::new(Vec::new())));
        let mut log = NetLogger::with_host("mplay", "mems.cairn.net");
        log.open(Sink::Pipeline(
            Arc::clone(&probe) as Arc<dyn EventSink<Event>>
        ))
        .unwrap();
        log.write("MPLAY_START_READ_FRAME", &[("FRAME.ID", Value::UInt(1))])
            .unwrap();
        log.write("MPLAY_END_READ_FRAME", &[("FRAME.ID", Value::UInt(1))])
            .unwrap();
        assert_eq!(probe.0.lock().len(), 2);
        assert_eq!(log.events_written(), 2);
    }
}
