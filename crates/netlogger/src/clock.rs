//! Clock synchronisation model (§4.3).
//!
//! "In order to analyze a network-based system using absolute timestamps,
//! the clocks of all relevant hosts must be synchronized. ...  By installing
//! a GPS-based NTP server on each subnet of the distributed system and
//! running xntpd on each host, all the hosts' clocks can be synchronized to
//! within about 0.25 ms.  If the closest time source is several IP router
//! hops away, accuracy may decrease somewhat.  However, it has been our
//! experience that synchronization within 1 ms is accurate enough for many
//! types of analysis."
//!
//! [`HostClock`] models a host clock with an offset and a drift rate;
//! [`NtpSimulation`] runs an NTP-like correction loop whose residual error
//! grows with the network distance to the time source, letting experiment E6
//! reproduce the 0.25 ms / 1 ms numbers and show what clock skew does to
//! lifeline analysis.

use jamm_core::rng::Rng;
use jamm_ulm::{Event, Timestamp};

/// A host's clock: true time plus an offset that drifts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HostClock {
    /// Current offset from true time, microseconds (positive = fast).
    pub offset_us: f64,
    /// Drift rate in parts per million (microseconds of error per second).
    pub drift_ppm: f64,
}

impl HostClock {
    /// A clock with the given initial offset and drift.
    pub fn new(offset_us: f64, drift_ppm: f64) -> Self {
        HostClock {
            offset_us,
            drift_ppm,
        }
    }

    /// A perfectly synchronised, drift-free clock.
    pub fn perfect() -> Self {
        HostClock::new(0.0, 0.0)
    }

    /// Advance true time by `dt_secs`, accumulating drift.
    pub fn advance(&mut self, dt_secs: f64) {
        self.offset_us += self.drift_ppm * dt_secs;
    }

    /// The local reading for a given true time.
    pub fn read(&self, true_time: Timestamp) -> Timestamp {
        let adjusted = true_time.as_micros() as i64 + self.offset_us.round() as i64;
        Timestamp::from_micros(adjusted.max(0) as u64)
    }

    /// Apply an NTP-style correction: slew a fraction of the measured offset
    /// (xntpd slews rather than steps for small offsets).
    pub fn correct(&mut self, measured_offset_us: f64, gain: f64) {
        self.offset_us -= measured_offset_us * gain.clamp(0.0, 1.0);
    }
}

/// One host in the NTP simulation.
#[derive(Debug, Clone)]
struct SyncedHost {
    name: String,
    clock: HostClock,
    /// Network distance to the time source, in router hops (0 = GPS source
    /// on the local subnet).
    hops: u32,
}

/// An NTP-like synchronisation simulation across a set of hosts.
#[derive(Debug)]
pub struct NtpSimulation {
    hosts: Vec<SyncedHost>,
    rng: Rng,
    /// Polling interval in seconds.
    pub poll_interval_secs: f64,
    /// One-way jitter per router hop, microseconds (asymmetric path delay is
    /// what limits NTP's accuracy as sources get farther away).
    pub per_hop_jitter_us: f64,
}

impl NtpSimulation {
    /// Create a simulation with the given RNG seed.
    pub fn new(seed: u64) -> Self {
        NtpSimulation {
            hosts: Vec::new(),
            rng: Rng::seed_from_u64(seed),
            poll_interval_secs: 64.0,
            per_hop_jitter_us: 150.0,
        }
    }

    /// Add a host with an initial offset (us), drift (ppm) and distance to
    /// its time source in router hops.
    pub fn add_host(&mut self, name: impl Into<String>, offset_us: f64, drift_ppm: f64, hops: u32) {
        self.hosts.push(SyncedHost {
            name: name.into(),
            clock: HostClock::new(offset_us, drift_ppm),
            hops,
        });
    }

    /// Current absolute offset of a host, microseconds.
    pub fn offset_of(&self, name: &str) -> Option<f64> {
        self.hosts
            .iter()
            .find(|h| h.name == name)
            .map(|h| h.clock.offset_us.abs())
    }

    /// Run the synchronisation loop for `rounds` polling intervals.
    pub fn run(&mut self, rounds: usize) {
        for _ in 0..rounds {
            for host in &mut self.hosts {
                // Drift between polls.
                host.clock.advance(self.poll_interval_secs);
                // The NTP measurement sees the true offset plus an error that
                // grows with path asymmetry: +/- jitter per hop.
                let jitter_bound = self.per_hop_jitter_us * host.hops as f64 + 20.0;
                let measurement_error = self.rng.gen_range(-jitter_bound..=jitter_bound);
                let measured = host.clock.offset_us + measurement_error;
                host.clock.correct(measured, 0.5);
                // xntpd also disciplines the clock frequency, so the drift
                // rate itself converges towards zero over successive polls.
                host.clock.drift_ppm *= 0.7;
            }
        }
    }

    /// Converged residual offsets `(host, |offset| in microseconds)`.
    pub fn residual_offsets(&self) -> Vec<(String, f64)> {
        self.hosts
            .iter()
            .map(|h| (h.name.clone(), h.clock.offset_us.abs()))
            .collect()
    }

    /// Worst residual offset in microseconds.
    pub fn worst_offset_us(&self) -> f64 {
        self.hosts
            .iter()
            .map(|h| h.clock.offset_us.abs())
            .fold(0.0, f64::max)
    }
}

/// Apply a host clock's error to every event from that host (what the
/// analysis tools actually see when clocks are not synchronised).
pub fn skew_events(events: &[Event], host: &str, clock: &HostClock) -> Vec<Event> {
    events
        .iter()
        .map(|e| {
            if e.host == host {
                let mut skewed = e.clone();
                skewed.timestamp = clock.read(e.timestamp);
                skewed
            } else {
                e.clone()
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::merge::{inversion_count, merge_logs};
    use jamm_ulm::Level;

    #[test]
    fn clock_reads_apply_offset_and_drift() {
        let mut c = HostClock::new(500.0, 100.0); // 0.5 ms fast, 100 ppm
        let t = Timestamp::from_secs(1_000);
        assert_eq!(c.read(t).as_micros(), 1_000_000_500);
        c.advance(10.0); // 10 s of 100 ppm drift = +1000 us
        assert!((c.offset_us - 1_500.0).abs() < 1e-9);
        c.correct(1_500.0, 1.0);
        assert!(c.offset_us.abs() < 1e-9);
    }

    #[test]
    fn gps_on_subnet_syncs_within_quarter_millisecond() {
        let mut sim = NtpSimulation::new(42);
        // Hosts with a GPS NTP server on their subnet (0 hops).
        for i in 0..8 {
            sim.add_host(format!("host{i}"), 50_000.0 * (i as f64 - 4.0), 30.0, 0);
        }
        sim.run(50);
        let worst = sim.worst_offset_us();
        assert!(
            worst <= 250.0,
            "paper: ~0.25 ms with GPS on the subnet; got {worst:.0} us"
        );
    }

    #[test]
    fn distant_time_source_is_worse_but_still_around_a_millisecond() {
        let mut sim = NtpSimulation::new(7);
        sim.add_host("near", 10_000.0, 30.0, 0);
        sim.add_host("far", 10_000.0, 30.0, 5);
        sim.run(50);
        let near = sim.offset_of("near").unwrap();
        let far = sim.offset_of("far").unwrap();
        assert!(
            near < far,
            "more hops => worse sync ({near:.0} vs {far:.0} us)"
        );
        assert!(far < 2_000.0, "still within a couple of ms: {far:.0} us");
    }

    #[test]
    fn unsynchronised_clocks_break_lifeline_ordering() {
        // A request path: client sends at t=1.000s, server receives 5 ms
        // later, replies at +10 ms, client gets it at +15 ms.
        let mk = |host: &str, ty: &str, us: u64| {
            Event::builder("app", host)
                .level(Level::Usage)
                .event_type(ty)
                .timestamp(Timestamp::from_micros(1_000_000 + us))
                .build()
        };
        let client = vec![
            mk("client", "REQ_SENT", 0),
            mk("client", "RESP_RECV", 15_000),
        ];
        let server = vec![
            mk("server", "REQ_RECV", 5_000),
            mk("server", "RESP_SENT", 10_000),
        ];
        // Synchronised: the merged lifeline is ordered.
        let merged = merge_logs(&[client.clone(), server.clone()]);
        assert_eq!(inversion_count(&merged), 0);
        // The server clock is 8 ms slow: its events now appear *before* the
        // client's send, and the merged order has inversions in event-flow
        // terms (REQ_RECV shows up before REQ_SENT).
        let slow = HostClock::new(-8_000.0, 0.0);
        let skewed_server = skew_events(&server, "server", &slow);
        let merged_skewed = merge_logs(&[client, skewed_server]);
        let order: Vec<_> = merged_skewed
            .iter()
            .map(|e| e.event_type.as_str())
            .collect();
        assert_eq!(order[0], "REQ_RECV", "causality appears violated");
    }
}
