//! TCP transport: expose a bus to remote callers.
//!
//! Frames are a 4-byte little-endian length followed by a JSON document —
//! a `MethodCall` in the request direction, a `WireResponse` coming back.
//! Connections are persistent so an agent can issue many calls over one
//! socket, like RMI does.
//!
//! The server runs on a [`jamm_reactor::Reactor`]: one event-loop thread
//! accepts and serves every connection (the old thread-per-connection
//! design capped a server at hundreds of sockets and orphaned live
//! connection threads on shutdown).  [`RmiServer::shutdown`] now drains
//! queued responses and closes every connection deterministically before
//! returning.  [`RmiClient`] stays a plain blocking socket — a synchronous
//! call blocks by definition and holds no threads — while
//! [`ReactorClient`] multiplexes calls over a shared reactor for agents
//! that already run one.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use jamm_core::channel::{unbounded, Receiver, Sender};
use jamm_core::json::Json;
use jamm_core::OverflowPolicy;
use jamm_reactor::{
    CloseReason, ConnHandler, ConnId, ConnIo, PushOutcome, Reactor, ReactorConfig, SocketRow,
};

use crate::bus::MessageBus;
use crate::message::{MethodCall, RmiError, RmiResult, WireResponse};

/// Frames larger than this are treated as a protocol error.
const MAX_FRAME: usize = 16 * 1024 * 1024;

/// How long [`ReactorClient::invoke`] waits for a response.
const CLIENT_TIMEOUT: Duration = Duration::from_secs(30);

/// A server exposing a [`MessageBus`] on a TCP socket, served by a single
/// reactor thread.
pub struct RmiServer {
    addr: SocketAddr,
    reactor: Option<Reactor>,
}

impl std::fmt::Debug for RmiServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "RmiServer({})", self.addr)
    }
}

/// Reactor tuning appropriate for request/response RMI traffic: responses
/// must never be dropped (a lost frame desyncs the protocol), so the
/// outbox rejects new work (`DropNewest`) at a capacity comfortably above
/// the largest legal frame, and the handler closes the connection if that
/// ever happens.
fn rmi_reactor_config() -> ReactorConfig {
    ReactorConfig {
        overflow: OverflowPolicy::DropNewest,
        outbox_capacity: 4 * MAX_FRAME,
        thread_name: "jamm-rmi".to_string(),
        ..ReactorConfig::default()
    }
}

impl RmiServer {
    /// Bind to `127.0.0.1:0` (an ephemeral port) and start serving the bus.
    pub fn start(bus: MessageBus) -> std::io::Result<Self> {
        Self::start_with(bus, rmi_reactor_config())
    }

    /// Like [`RmiServer::start`] with explicit reactor tuning.
    pub fn start_with(bus: MessageBus, config: ReactorConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        let reactor = Reactor::start(config)?;
        reactor.listen(
            listener,
            Box::new(move |_id: ConnId, _peer: &str| {
                Box::new(ServerConn { bus: bus.clone() }) as Box<dyn ConnHandler>
            }),
        )?;
        Ok(RmiServer {
            addr,
            reactor: Some(reactor),
        })
    }

    /// The address clients should connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live connections being served.
    pub fn connections(&self) -> usize {
        self.reactor.as_ref().map_or(0, Reactor::connections)
    }

    /// Per-connection socket counters (bytes, queued, drops, stalls).
    pub fn socket_stats(&self) -> Vec<SocketRow> {
        self.reactor
            .as_ref()
            .map_or_else(Vec::new, Reactor::socket_stats)
    }

    /// Stop accepting, flush queued responses, close every live connection
    /// and join the loop thread.  Unlike the old thread-per-connection
    /// design, no connection state survives this call.
    pub fn shutdown(&mut self) {
        if let Some(reactor) = self.reactor.take() {
            reactor.shutdown();
        }
    }
}

impl Drop for RmiServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Per-connection server state: parse calls, dispatch, queue responses.
struct ServerConn {
    bus: MessageBus,
}

impl ConnHandler for ServerConn {
    fn on_data(&mut self, io: &mut ConnIo<'_>, buf: &[u8]) -> usize {
        let mut consumed = 0;
        while let Some((body, frame_len)) = match next_frame(&buf[consumed..]) {
            Ok(f) => f,
            Err(_) => {
                // Oversized or malformed framing: the stream is poisoned.
                io.close();
                return buf.len();
            }
        } {
            let call = Json::parse_slice(body)
                .map_err(|e| RmiError::Transport(e.to_string()))
                .and_then(|doc| MethodCall::from_json(&doc));
            let call = match call {
                Ok(call) => call,
                Err(_) => {
                    io.close();
                    return buf.len();
                }
            };
            consumed += frame_len;
            let response: WireResponse = self.bus.invoke(&call).into();
            let frame = encode_frame(&response.to_json());
            if io.send(Arc::new(frame)) == PushOutcome::Rejected {
                // The outbox would have to drop a response to accept this
                // one; closing is the only protocol-safe move.
                io.close();
                return buf.len();
            }
        }
        consumed
    }
}

/// Split the next `len || body` frame off `buf`.  Returns `Ok(None)` while
/// incomplete, `Err` when the header is illegal.
fn next_frame(buf: &[u8]) -> Result<Option<(&[u8], usize)>, ()> {
    if buf.len() < 4 {
        return Ok(None);
    }
    let len = u32::from_le_bytes(buf[..4].try_into().expect("4 bytes")) as usize;
    if len > MAX_FRAME {
        return Err(());
    }
    if buf.len() < 4 + len {
        return Ok(None);
    }
    Ok(Some((&buf[4..4 + len], 4 + len)))
}

/// Encode one `len || body` frame.
fn encode_frame(value: &Json) -> Vec<u8> {
    let body = value.to_vec();
    let mut frame = Vec::with_capacity(4 + body.len());
    frame.extend_from_slice(&(body.len() as u32).to_le_bytes());
    frame.extend_from_slice(&body);
    frame
}

fn read_frame(stream: &mut TcpStream) -> std::io::Result<Option<Json>> {
    let mut len_buf = [0u8; 4];
    match stream.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME {
        return Err(std::io::Error::other("frame too large"));
    }
    let mut body = vec![0u8; len];
    stream.read_exact(&mut body)?;
    Json::parse_slice(&body)
        .map(Some)
        .map_err(|e| std::io::Error::other(e.to_string()))
}

fn write_frame(stream: &mut TcpStream, value: &Json) -> std::io::Result<()> {
    stream.write_all(&encode_frame(value))?;
    stream.flush()
}

/// A blocking client connection to a remote bus.
#[derive(Debug)]
pub struct RmiClient {
    stream: TcpStream,
}

impl RmiClient {
    /// Connect to a server.
    pub fn connect(addr: SocketAddr) -> std::io::Result<Self> {
        Ok(RmiClient {
            stream: TcpStream::connect(addr)?,
        })
    }

    /// Invoke a remote method.
    pub fn invoke(&mut self, call: &MethodCall) -> RmiResult {
        write_frame(&mut self.stream, &call.to_json())
            .map_err(|e| RmiError::Transport(e.to_string()))?;
        match read_frame(&mut self.stream) {
            Ok(Some(doc)) => WireResponse::from_json(&doc)?.into(),
            Ok(None) => Err(RmiError::Transport("connection closed".into())),
            Err(e) => Err(RmiError::Transport(e.to_string())),
        }
    }
}

/// A client whose socket lives on a shared [`Reactor`] instead of holding
/// its own blocking I/O: requests are queued to the loop, responses come
/// back over a channel.  Useful for agents that already run a reactor and
/// want many client connections without any extra threads.
pub struct ReactorClient {
    reactor: Arc<Reactor>,
    conn: ConnId,
    responses: Receiver<Json>,
}

impl std::fmt::Debug for ReactorClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ReactorClient(conn {})", self.conn)
    }
}

/// Client-side handler: reassemble response frames, hand them to the
/// waiting caller.
struct ClientConn {
    responses: Sender<Json>,
}

impl ConnHandler for ClientConn {
    fn on_data(&mut self, io: &mut ConnIo<'_>, buf: &[u8]) -> usize {
        let mut consumed = 0;
        while let Some((body, frame_len)) = match next_frame(&buf[consumed..]) {
            Ok(f) => f,
            Err(_) => {
                io.close();
                return buf.len();
            }
        } {
            consumed += frame_len;
            match Json::parse_slice(body) {
                Ok(doc) => {
                    if self.responses.send(doc).is_err() {
                        // Caller dropped the client; nothing to deliver to.
                        io.close();
                        return buf.len();
                    }
                }
                Err(_) => {
                    io.close();
                    return buf.len();
                }
            }
        }
        consumed
    }

    fn on_close(&mut self, _id: ConnId, _reason: &CloseReason) {
        // Dropping the sender makes any waiting `invoke` fail fast instead
        // of timing out.
    }
}

impl ReactorClient {
    /// Connect to a server and serve the socket on `reactor`.
    pub fn connect(reactor: Arc<Reactor>, addr: SocketAddr) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        let (tx, rx) = unbounded();
        let conn = reactor.adopt(stream, Box::new(ClientConn { responses: tx }))?;
        Ok(ReactorClient {
            reactor,
            conn,
            responses: rx,
        })
    }

    /// Invoke a remote method.  Calls are serialized per connection (one
    /// outstanding request at a time), mirroring [`RmiClient`].
    pub fn invoke(&mut self, call: &MethodCall) -> RmiResult {
        self.reactor
            .send(self.conn, Arc::new(encode_frame(&call.to_json())));
        match self.responses.recv_timeout(CLIENT_TIMEOUT) {
            Ok(doc) => WireResponse::from_json(&doc)?.into(),
            Err(_) => Err(RmiError::Transport("connection closed or timed out".into())),
        }
    }
}

impl Drop for ReactorClient {
    fn drop(&mut self) {
        self.reactor.close(self.conn);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jamm_core::json::json;
    use std::time::Instant;

    fn bus() -> MessageBus {
        let bus = MessageBus::new();
        bus.register_fn("sensor-manager@dpss1", |method, args| match method {
            "start_sensor" => Ok(json!({"started": args["name"].clone()})),
            "status" => Ok(json!({"sensors": ["cpu", "memory"]})),
            m => Err(RmiError::NoSuchMethod(m.to_string())),
        });
        bus
    }

    #[test]
    fn remote_invocation_round_trip() {
        let mut server = RmiServer::start(bus()).unwrap();
        let mut client = RmiClient::connect(server.addr()).unwrap();
        let r = client
            .invoke(&MethodCall::new(
                "sensor-manager@dpss1",
                "start_sensor",
                json!({"name": "tcp"}),
            ))
            .unwrap();
        assert_eq!(r["started"], "tcp");
        // Several calls over the same connection.
        let r2 = client
            .invoke(&MethodCall::new(
                "sensor-manager@dpss1",
                "status",
                json!(null),
            ))
            .unwrap();
        assert_eq!(r2["sensors"][0], "cpu");
        // Errors propagate.
        assert!(matches!(
            client.invoke(&MethodCall::new(
                "sensor-manager@dpss1",
                "nope",
                json!(null)
            )),
            Err(RmiError::NoSuchMethod(_))
        ));
        assert!(matches!(
            client.invoke(&MethodCall::new("unknown", "x", json!(null))),
            Err(RmiError::NoSuchService(_))
        ));
        server.shutdown();
    }

    #[test]
    fn multiple_clients_are_served_concurrently() {
        let server = RmiServer::start(bus()).unwrap();
        let addr = server.addr();
        let handles: Vec<_> = (0..4)
            .map(|i| {
                std::thread::spawn(move || {
                    let mut c = RmiClient::connect(addr).unwrap();
                    let r = c
                        .invoke(&MethodCall::new(
                            "sensor-manager@dpss1",
                            "start_sensor",
                            json!({"name": format!("s{i}")}),
                        ))
                        .unwrap();
                    r["started"].as_str().unwrap().to_string()
                })
            })
            .collect();
        let mut results: Vec<String> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        results.sort();
        assert_eq!(results, vec!["s0", "s1", "s2", "s3"]);
    }

    #[test]
    fn connecting_to_a_dead_server_fails_cleanly() {
        let addr = {
            let server = RmiServer::start(bus()).unwrap();
            server.addr()
            // server dropped (and shut down) here
        };
        // Either the connect fails or the first invoke fails; both are fine.
        if let Ok(mut c) = RmiClient::connect(addr) {
            let r = c.invoke(&MethodCall::new(
                "sensor-manager@dpss1",
                "status",
                json!(null),
            ));
            if let Err(e) = r {
                assert!(matches!(e, RmiError::Transport(_)));
            }
        }
    }

    #[test]
    fn reactor_client_round_trip_over_shared_reactor() {
        let server = RmiServer::start(bus()).unwrap();
        let reactor = Arc::new(
            Reactor::start(ReactorConfig {
                thread_name: "rmi-client-test".to_string(),
                ..rmi_reactor_config()
            })
            .unwrap(),
        );
        let mut a = ReactorClient::connect(Arc::clone(&reactor), server.addr()).unwrap();
        let mut b = ReactorClient::connect(Arc::clone(&reactor), server.addr()).unwrap();
        for client in [&mut a, &mut b] {
            let r = client
                .invoke(&MethodCall::new(
                    "sensor-manager@dpss1",
                    "status",
                    json!(null),
                ))
                .unwrap();
            assert_eq!(r["sensors"][1], "memory");
        }
        drop(a);
        drop(b);
        reactor.shutdown();
    }

    /// The old transport orphaned live connection threads on `stop()`;
    /// the reactor port must drain and close every connection
    /// deterministically.
    #[test]
    fn shutdown_closes_all_live_connections_deterministically() {
        let mut server = RmiServer::start(bus()).unwrap();
        let addr = server.addr();
        // Park several live connections mid-session (no call in flight).
        let mut clients: Vec<RmiClient> =
            (0..8).map(|_| RmiClient::connect(addr).unwrap()).collect();
        for c in &mut clients {
            let r = c
                .invoke(&MethodCall::new(
                    "sensor-manager@dpss1",
                    "status",
                    json!(null),
                ))
                .unwrap();
            assert_eq!(r["sensors"][0], "cpu");
        }
        assert_eq!(server.connections(), 8);
        server.shutdown();
        // After shutdown returns — not eventually, *now* — every server-side
        // connection is gone and every client sees a clean EOF.
        assert_eq!(server.connections(), 0);
        for c in &mut clients {
            c.stream
                .set_read_timeout(Some(Duration::from_secs(5)))
                .unwrap();
            let mut byte = [0u8; 1];
            let n = c.stream.read(&mut byte).unwrap();
            assert_eq!(n, 0, "expected EOF after server shutdown");
        }
        // And the port is closed: a fresh connect must fail or be reset.
        let start = Instant::now();
        if let Ok(mut late) = RmiClient::connect(addr) {
            let r = late.invoke(&MethodCall::new(
                "sensor-manager@dpss1",
                "status",
                json!(null),
            ));
            assert!(r.is_err(), "server still serving after shutdown");
        }
        assert!(start.elapsed() < Duration::from_secs(5));
    }
}
