//! TCP transport: expose a bus to remote callers.
//!
//! Frames are a 4-byte little-endian length followed by a JSON document —
//! a `MethodCall` in the request direction, a `WireResponse` coming back.
//! Connections are persistent so an agent can issue many calls over one
//! socket, like RMI does.
//!
//! The server runs on a [`jamm_reactor::Reactor`]: one event-loop thread
//! accepts and serves every connection (the old thread-per-connection
//! design capped a server at hundreds of sockets and orphaned live
//! connection threads on shutdown).  Method dispatch does NOT run on the
//! loop thread — the reactor contract forbids blocking handlers, and bus
//! methods are arbitrary user code — so parsed calls are handed to a
//! small invoke-worker pool, pinned per connection to preserve response
//! order, and responses come back through [`Reactor::send_strict`].  A
//! slow method therefore stalls only the connections pinned to its
//! worker, never accepts/reads/flushes on the loop.
//! [`RmiServer::shutdown`] drains queued responses and closes every
//! connection deterministically before returning.  [`RmiClient`] stays a
//! plain blocking socket — a synchronous call blocks by definition and
//! holds no threads — while [`ReactorClient`] multiplexes calls over a
//! shared reactor for agents that already run one.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use jamm_core::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use jamm_core::json::Json;
use jamm_core::{Backoff, BreakerState, BreakerStats, CircuitBreaker, OverflowPolicy};
use jamm_reactor::{CloseReason, ConnHandler, ConnId, ConnIo, Reactor, ReactorConfig, SocketRow};

use crate::bus::MessageBus;
use crate::message::{MethodCall, RmiError, RmiResult, WireResponse};

/// Frames larger than this are treated as a protocol error.
const MAX_FRAME: usize = 16 * 1024 * 1024;

/// How long [`ReactorClient::invoke`] waits for a response.
const CLIENT_TIMEOUT: Duration = Duration::from_secs(30);

/// How long [`ReactorClient`] waits for a (re)connect to complete.
const CONNECT_TIMEOUT: Duration = Duration::from_secs(5);

/// First retry delay of [`ReactorClient`]'s reconnect backoff.
const RETRY_BASE: Duration = Duration::from_millis(250);

/// Ceiling of [`ReactorClient`]'s reconnect backoff.
const RETRY_MAX: Duration = Duration::from_secs(30);

/// Invoke-worker threads per server.  Each connection is pinned to one
/// worker (by connection id), so responses stay in request order and a
/// slow method only delays connections sharing its worker.
const INVOKE_WORKERS: usize = 4;

/// One parsed call waiting for an invoke worker.
struct Job {
    conn: ConnId,
    call: MethodCall,
}

/// A server exposing a [`MessageBus`] on a TCP socket: one reactor thread
/// for all socket I/O, a small worker pool for method dispatch.
pub struct RmiServer {
    addr: SocketAddr,
    reactor: Option<Arc<Reactor>>,
    workers: Vec<std::thread::JoinHandle<()>>,
    invoke_us: Arc<jamm_core::obs::Histogram>,
}

impl std::fmt::Debug for RmiServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "RmiServer({})", self.addr)
    }
}

/// Reactor tuning appropriate for request/response RMI traffic: responses
/// must never be dropped (a lost frame desyncs the protocol), so the
/// outbox rejects new work (`DropNewest`) at a capacity comfortably above
/// the largest legal frame, and the handler closes the connection if that
/// ever happens.
fn rmi_reactor_config() -> ReactorConfig {
    ReactorConfig {
        overflow: OverflowPolicy::DropNewest,
        outbox_capacity: 4 * MAX_FRAME,
        thread_name: "jamm-rmi".to_string(),
        ..ReactorConfig::default()
    }
}

impl RmiServer {
    /// Bind to `127.0.0.1:0` (an ephemeral port) and start serving the bus.
    pub fn start(bus: MessageBus) -> std::io::Result<Self> {
        Self::start_with(bus, rmi_reactor_config())
    }

    /// Like [`RmiServer::start`] with explicit reactor tuning.
    pub fn start_with(bus: MessageBus, config: ReactorConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        let reactor = Arc::new(Reactor::start(config)?);
        let invoke_us = Arc::new(jamm_core::obs::Histogram::new());
        let mut senders: Vec<Sender<Job>> = Vec::with_capacity(INVOKE_WORKERS);
        let mut workers = Vec::with_capacity(INVOKE_WORKERS);
        for i in 0..INVOKE_WORKERS {
            let (tx, rx) = unbounded::<Job>();
            let bus = bus.clone();
            let reactor = Arc::clone(&reactor);
            let invoke_us = Arc::clone(&invoke_us);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("jamm-rmi-invoke-{i}"))
                    .spawn(move || {
                        while let Ok(job) = rx.recv() {
                            let start = std::time::Instant::now();
                            let response: WireResponse = bus.invoke(&job.call).into();
                            invoke_us.record_micros(start.elapsed());
                            let frame = encode_frame(&response.to_json());
                            // Strict: an outbox that cannot take a response
                            // without dropping one closes the connection —
                            // a lost response desyncs the protocol.
                            reactor.send_strict(job.conn, Arc::new(frame));
                        }
                    })?,
            );
            senders.push(tx);
        }
        reactor.listen(
            listener,
            Box::new(move |id: ConnId, _peer: &str| {
                let jobs = senders[(id as usize) % senders.len()].clone();
                Box::new(ServerConn { jobs }) as Box<dyn ConnHandler>
            }),
        )?;
        Ok(RmiServer {
            addr,
            reactor: Some(reactor),
            workers,
            invoke_us,
        })
    }

    /// The address clients should connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live connections being served.
    pub fn connections(&self) -> usize {
        self.reactor.as_ref().map_or(0, |r| r.connections())
    }

    /// Per-connection socket counters (bytes, queued, drops, stalls).
    pub fn socket_stats(&self) -> Vec<SocketRow> {
        self.reactor
            .as_ref()
            .map_or_else(Vec::new, |r| r.socket_stats())
    }

    /// Microsecond latency of method dispatch (`bus.invoke`, excluding
    /// socket I/O), across every invoke worker.
    pub fn invoke_us(&self) -> &Arc<jamm_core::obs::Histogram> {
        &self.invoke_us
    }

    /// Stop accepting, flush queued responses, close every live connection
    /// and join the loop and invoke-worker threads.  Unlike the old
    /// thread-per-connection design, no connection state survives this
    /// call.  Calls still being invoked when shutdown starts lose their
    /// response (the peer sees a clean EOF instead).
    pub fn shutdown(&mut self) {
        if let Some(reactor) = self.reactor.take() {
            reactor.shutdown();
            // The loop thread has exited, dropping the acceptor and every
            // handler — and with them the last job senders — so the
            // workers drain their queues and stop.
            drop(reactor);
            for w in self.workers.drain(..) {
                let _ = w.join();
            }
        }
    }
}

impl Drop for RmiServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Per-connection server state: parse calls, hand them to the pinned
/// invoke worker.  Runs on the loop thread, so it never blocks — dispatch
/// and response encoding happen on the worker.
struct ServerConn {
    jobs: Sender<Job>,
}

impl ConnHandler for ServerConn {
    fn on_data(&mut self, io: &mut ConnIo<'_>, buf: &[u8]) -> usize {
        let mut consumed = 0;
        while let Some((body, frame_len)) = match next_frame(&buf[consumed..]) {
            Ok(f) => f,
            Err(_) => {
                // Oversized or malformed framing: the stream is poisoned.
                io.close();
                return buf.len();
            }
        } {
            let call = Json::parse_slice(body)
                .map_err(|e| RmiError::Transport(e.to_string()))
                .and_then(|doc| MethodCall::from_json(&doc));
            let call = match call {
                Ok(call) => call,
                Err(_) => {
                    io.close();
                    return buf.len();
                }
            };
            consumed += frame_len;
            let job = Job {
                conn: io.id(),
                call,
            };
            if self.jobs.send(job).is_err() {
                // The worker is gone (server shutting down).
                io.close();
                return buf.len();
            }
        }
        consumed
    }
}

/// Split the next `len || body` frame off `buf`.  Returns `Ok(None)` while
/// incomplete, `Err` when the header is illegal.
fn next_frame(buf: &[u8]) -> Result<Option<(&[u8], usize)>, ()> {
    if buf.len() < 4 {
        return Ok(None);
    }
    let len = u32::from_le_bytes(buf[..4].try_into().expect("4 bytes")) as usize;
    if len > MAX_FRAME {
        return Err(());
    }
    if buf.len() < 4 + len {
        return Ok(None);
    }
    Ok(Some((&buf[4..4 + len], 4 + len)))
}

/// Encode one `len || body` frame.
fn encode_frame(value: &Json) -> Vec<u8> {
    let body = value.to_vec();
    let mut frame = Vec::with_capacity(4 + body.len());
    frame.extend_from_slice(&(body.len() as u32).to_le_bytes());
    frame.extend_from_slice(&body);
    frame
}

fn read_frame(stream: &mut TcpStream) -> std::io::Result<Option<Json>> {
    let mut len_buf = [0u8; 4];
    match stream.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME {
        return Err(std::io::Error::other("frame too large"));
    }
    let mut body = vec![0u8; len];
    stream.read_exact(&mut body)?;
    Json::parse_slice(&body)
        .map(Some)
        .map_err(|e| std::io::Error::other(e.to_string()))
}

fn write_frame(stream: &mut TcpStream, value: &Json) -> std::io::Result<()> {
    stream.write_all(&encode_frame(value))?;
    stream.flush()
}

/// A blocking client connection to a remote bus.
#[derive(Debug)]
pub struct RmiClient {
    stream: TcpStream,
}

impl RmiClient {
    /// Connect to a server.
    pub fn connect(addr: SocketAddr) -> std::io::Result<Self> {
        Ok(RmiClient {
            stream: TcpStream::connect(addr)?,
        })
    }

    /// Invoke a remote method.
    pub fn invoke(&mut self, call: &MethodCall) -> RmiResult {
        write_frame(&mut self.stream, &call.to_json())
            .map_err(|e| RmiError::Transport(e.to_string()))?;
        match read_frame(&mut self.stream) {
            Ok(Some(doc)) => WireResponse::from_json(&doc)?.into(),
            Ok(None) => Err(RmiError::Transport("connection closed".into())),
            Err(e) => Err(RmiError::Transport(e.to_string())),
        }
    }
}

/// A client whose socket lives on a shared [`Reactor`] instead of holding
/// its own blocking I/O: requests are queued to the loop, responses come
/// back over a channel.  Useful for agents that already run a reactor and
/// want many client connections without any extra threads.
///
/// The client is self-healing: a timed-out or failed call closes the
/// connection and opens a [`CircuitBreaker`] instead of poisoning the
/// client forever.  While the breaker is open every call fails fast
/// (one comparison, no syscall); once the jittered-exponential backoff
/// deadline passes, the next call is a half-open probe that reconnects
/// and, on success, closes the breaker again.
pub struct ReactorClient {
    reactor: Arc<Reactor>,
    addr: SocketAddr,
    conn: Option<ConnId>,
    responses: Receiver<Json>,
    timeout: Duration,
    breaker: CircuitBreaker,
    /// Epoch the breaker's microsecond clock counts from.
    origin: std::time::Instant,
    reconnects: u64,
}

impl std::fmt::Debug for ReactorClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ReactorClient({}, conn {:?}, {:?})",
            self.addr,
            self.conn,
            self.breaker.state()
        )
    }
}

/// Client-side handler: reassemble response frames, hand them to the
/// waiting caller.
struct ClientConn {
    responses: Sender<Json>,
}

impl ConnHandler for ClientConn {
    fn on_data(&mut self, io: &mut ConnIo<'_>, buf: &[u8]) -> usize {
        let mut consumed = 0;
        while let Some((body, frame_len)) = match next_frame(&buf[consumed..]) {
            Ok(f) => f,
            Err(_) => {
                io.close();
                return buf.len();
            }
        } {
            consumed += frame_len;
            match Json::parse_slice(body) {
                Ok(doc) => {
                    if self.responses.send(doc).is_err() {
                        // Caller dropped the client; nothing to deliver to.
                        io.close();
                        return buf.len();
                    }
                }
                Err(_) => {
                    io.close();
                    return buf.len();
                }
            }
        }
        consumed
    }

    fn on_close(&mut self, _id: ConnId, _reason: &CloseReason) {
        // Dropping the sender makes any waiting `invoke` fail fast instead
        // of timing out.
    }
}

impl ReactorClient {
    /// Connect to a server and serve the socket on `reactor`.
    pub fn connect(reactor: Arc<Reactor>, addr: SocketAddr) -> std::io::Result<Self> {
        let stream = TcpStream::connect_timeout(&addr, CONNECT_TIMEOUT)?;
        let (tx, rx) = unbounded();
        let conn = reactor.adopt(stream, Box::new(ClientConn { responses: tx }))?;
        Ok(ReactorClient {
            reactor,
            addr,
            conn: Some(conn),
            responses: rx,
            timeout: CLIENT_TIMEOUT,
            breaker: CircuitBreaker::new(
                1,
                Backoff::new(
                    RETRY_BASE.as_micros() as u64,
                    RETRY_MAX.as_micros() as u64,
                    addr.port() as u64,
                ),
            ),
            origin: std::time::Instant::now(),
            reconnects: 0,
        })
    }

    /// How long [`ReactorClient::invoke`] waits before giving up on a
    /// response (default 30 s).  A timed-out call opens the circuit
    /// breaker.
    pub fn set_invoke_timeout(&mut self, timeout: Duration) {
        self.timeout = timeout;
    }

    /// Replace the reconnect backoff schedule (first delay and ceiling).
    /// Resets the breaker to closed.
    pub fn set_retry_backoff(&mut self, base: Duration, max: Duration) {
        self.breaker = CircuitBreaker::new(
            1,
            Backoff::new(
                base.as_micros() as u64,
                max.as_micros() as u64,
                self.addr.port() as u64,
            ),
        );
    }

    /// The breaker's current state.
    pub fn breaker_state(&self) -> BreakerState {
        self.breaker.state()
    }

    /// The breaker's lifetime counters (opens, probes, revivals,
    /// failures).
    pub fn breaker_stats(&self) -> BreakerStats {
        self.breaker.stats()
    }

    /// Successful reconnects since the client was created.
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    fn now_us(&self) -> u64 {
        self.origin.elapsed().as_micros() as u64
    }

    /// Re-establish the connection with a fresh response channel — any
    /// late response still in flight on the old connection is discarded
    /// with the old receiver, so it can never surface as the answer to a
    /// later call.
    fn reconnect(&mut self) -> std::io::Result<()> {
        let stream = TcpStream::connect_timeout(&self.addr, CONNECT_TIMEOUT)?;
        let (tx, rx) = unbounded();
        let conn = self
            .reactor
            .adopt(stream, Box::new(ClientConn { responses: tx }))?;
        self.conn = Some(conn);
        self.responses = rx;
        self.reconnects += 1;
        Ok(())
    }

    /// Invoke a remote method.  Calls are serialized per connection (one
    /// outstanding request at a time), mirroring [`RmiClient`].
    ///
    /// A call that times out closes the connection (the late response
    /// must not surface as the answer to the *next* call) and opens the
    /// breaker; while open, calls fail fast without touching the
    /// network.  Once the backoff deadline passes, the next call probes
    /// half-open: it reconnects and — if the round-trip succeeds —
    /// closes the breaker, reviving the client.
    pub fn invoke(&mut self, call: &MethodCall) -> RmiResult {
        if self.conn.is_none() {
            if !self.breaker.allow(self.now_us()) {
                return Err(RmiError::Transport(format!(
                    "circuit open after {} failures; probe in {}us",
                    self.breaker.stats().failures,
                    self.breaker.retry_at_us().saturating_sub(self.now_us())
                )));
            }
            if let Err(e) = self.reconnect() {
                self.breaker.record_failure(self.now_us());
                return Err(RmiError::Transport(format!("reconnect failed: {e}")));
            }
        }
        let conn = self.conn.expect("connected above");
        self.reactor
            .send_strict(conn, Arc::new(encode_frame(&call.to_json())));
        match self.responses.recv_timeout(self.timeout) {
            Ok(doc) => {
                self.breaker.record_success();
                WireResponse::from_json(&doc)?.into()
            }
            Err(RecvTimeoutError::Timeout) => {
                self.reactor.close(conn);
                self.conn = None;
                self.breaker.record_failure(self.now_us());
                Err(RmiError::Transport(
                    "invoke timed out; circuit opened".into(),
                ))
            }
            Err(RecvTimeoutError::Disconnected) => {
                self.conn = None;
                self.breaker.record_failure(self.now_us());
                Err(RmiError::Transport("connection closed".into()))
            }
        }
    }
}

impl Drop for ReactorClient {
    fn drop(&mut self) {
        if let Some(conn) = self.conn.take() {
            self.reactor.close(conn);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jamm_core::json::json;
    use std::time::Instant;

    fn bus() -> MessageBus {
        let bus = MessageBus::new();
        bus.register_fn("sensor-manager@dpss1", |method, args| match method {
            "start_sensor" => Ok(json!({"started": args["name"].clone()})),
            "status" => Ok(json!({"sensors": ["cpu", "memory"]})),
            m => Err(RmiError::NoSuchMethod(m.to_string())),
        });
        bus
    }

    #[test]
    fn remote_invocation_round_trip() {
        let mut server = RmiServer::start(bus()).unwrap();
        let mut client = RmiClient::connect(server.addr()).unwrap();
        let r = client
            .invoke(&MethodCall::new(
                "sensor-manager@dpss1",
                "start_sensor",
                json!({"name": "tcp"}),
            ))
            .unwrap();
        assert_eq!(r["started"], "tcp");
        // Several calls over the same connection.
        let r2 = client
            .invoke(&MethodCall::new(
                "sensor-manager@dpss1",
                "status",
                json!(null),
            ))
            .unwrap();
        assert_eq!(r2["sensors"][0], "cpu");
        // Errors propagate.
        assert!(matches!(
            client.invoke(&MethodCall::new(
                "sensor-manager@dpss1",
                "nope",
                json!(null)
            )),
            Err(RmiError::NoSuchMethod(_))
        ));
        assert!(matches!(
            client.invoke(&MethodCall::new("unknown", "x", json!(null))),
            Err(RmiError::NoSuchService(_))
        ));
        server.shutdown();
    }

    #[test]
    fn multiple_clients_are_served_concurrently() {
        let server = RmiServer::start(bus()).unwrap();
        let addr = server.addr();
        let handles: Vec<_> = (0..4)
            .map(|i| {
                std::thread::spawn(move || {
                    let mut c = RmiClient::connect(addr).unwrap();
                    let r = c
                        .invoke(&MethodCall::new(
                            "sensor-manager@dpss1",
                            "start_sensor",
                            json!({"name": format!("s{i}")}),
                        ))
                        .unwrap();
                    r["started"].as_str().unwrap().to_string()
                })
            })
            .collect();
        let mut results: Vec<String> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        results.sort();
        assert_eq!(results, vec!["s0", "s1", "s2", "s3"]);
    }

    #[test]
    fn connecting_to_a_dead_server_fails_cleanly() {
        let addr = {
            let server = RmiServer::start(bus()).unwrap();
            server.addr()
            // server dropped (and shut down) here
        };
        // Either the connect fails or the first invoke fails; both are fine.
        if let Ok(mut c) = RmiClient::connect(addr) {
            let r = c.invoke(&MethodCall::new(
                "sensor-manager@dpss1",
                "status",
                json!(null),
            ));
            if let Err(e) = r {
                assert!(matches!(e, RmiError::Transport(_)));
            }
        }
    }

    #[test]
    fn reactor_client_round_trip_over_shared_reactor() {
        let server = RmiServer::start(bus()).unwrap();
        let reactor = Arc::new(
            Reactor::start(ReactorConfig {
                thread_name: "rmi-client-test".to_string(),
                ..rmi_reactor_config()
            })
            .unwrap(),
        );
        let mut a = ReactorClient::connect(Arc::clone(&reactor), server.addr()).unwrap();
        let mut b = ReactorClient::connect(Arc::clone(&reactor), server.addr()).unwrap();
        for client in [&mut a, &mut b] {
            let r = client
                .invoke(&MethodCall::new(
                    "sensor-manager@dpss1",
                    "status",
                    json!(null),
                ))
                .unwrap();
            assert_eq!(r["sensors"][1], "memory");
        }
        drop(a);
        drop(b);
        reactor.shutdown();
    }

    fn slow_fast_bus(slow_for: Duration) -> MessageBus {
        let bus = MessageBus::new();
        bus.register_fn("svc", move |method, _args| match method {
            "slow" => {
                std::thread::sleep(slow_for);
                Ok(json!("slept"))
            }
            "fast" => Ok(json!("quick")),
            m => Err(RmiError::NoSuchMethod(m.to_string())),
        });
        bus
    }

    /// Dispatch runs on the worker pool, not the loop thread: a blocking
    /// method on one connection must not delay calls on another.
    #[test]
    fn a_slow_method_does_not_stall_other_connections() {
        let mut server = RmiServer::start(slow_fast_bus(Duration::from_millis(800))).unwrap();
        let addr = server.addr();
        let slow = std::thread::spawn(move || {
            let mut c = RmiClient::connect(addr).unwrap();
            c.invoke(&MethodCall::new("svc", "slow", json!(null)))
                .unwrap()
        });
        // Let the slow call reach its worker before the fast one starts.
        std::thread::sleep(Duration::from_millis(150));
        let mut c = RmiClient::connect(addr).unwrap();
        let start = Instant::now();
        let r = c
            .invoke(&MethodCall::new("svc", "fast", json!(null)))
            .unwrap();
        let elapsed = start.elapsed();
        assert_eq!(r.as_str(), Some("quick"));
        assert!(
            elapsed < Duration::from_millis(500),
            "fast call stalled {elapsed:?} behind the slow one"
        );
        assert_eq!(slow.join().unwrap().as_str(), Some("slept"));
        server.shutdown();
    }

    /// Connections are pinned to one worker, so pipelined calls get their
    /// responses back in request order.
    #[test]
    fn pipelined_calls_get_responses_in_request_order() {
        let bus = MessageBus::new();
        bus.register_fn("svc", |method, args| match method {
            "echo" => Ok(args.clone()),
            m => Err(RmiError::NoSuchMethod(m.to_string())),
        });
        let mut server = RmiServer::start(bus).unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        let mut batch = Vec::new();
        for i in 0..16i64 {
            let call = MethodCall::new("svc", "echo", Json::from(i));
            batch.extend_from_slice(&encode_frame(&call.to_json()));
        }
        stream.write_all(&batch).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        for i in 0..16i64 {
            let doc = read_frame(&mut stream).unwrap().unwrap();
            match WireResponse::from_json(&doc).unwrap() {
                WireResponse::Ok(v) => assert_eq!(v.as_i64(), Some(i), "response out of order"),
                WireResponse::Err(e) => panic!("echo {i} failed: {e:?}"),
            }
        }
        server.shutdown();
    }

    /// A timed-out `invoke` opens the breaker (the late response must be
    /// discarded, never handed to the next call), later calls fail fast
    /// while it is open, and a half-open probe after the backoff deadline
    /// reconnects and revives the client.
    #[test]
    fn reactor_client_timeout_opens_the_breaker_and_a_probe_revives_it() {
        let server = RmiServer::start(slow_fast_bus(Duration::from_millis(300))).unwrap();
        let reactor = Arc::new(
            Reactor::start(ReactorConfig {
                thread_name: "rmi-breaker-test".to_string(),
                ..rmi_reactor_config()
            })
            .unwrap(),
        );
        let mut c = ReactorClient::connect(Arc::clone(&reactor), server.addr()).unwrap();
        c.set_retry_backoff(Duration::from_millis(100), Duration::from_millis(400));
        c.set_invoke_timeout(Duration::from_millis(50));
        let r = c.invoke(&MethodCall::new("svc", "slow", json!(null)));
        assert!(matches!(r, Err(RmiError::Transport(_))), "got {r:?}");
        assert_eq!(c.breaker_state(), BreakerState::Open);
        // While the breaker is open, calls fail fast without touching
        // the network.
        match c.invoke(&MethodCall::new("svc", "fast", json!(null))) {
            Err(RmiError::Transport(msg)) => {
                assert!(msg.contains("circuit open"), "unexpected error: {msg}")
            }
            other => panic!("open-breaker client returned {other:?}"),
        }
        // Wait past both the backoff deadline and the late `slow`
        // response — which must be discarded with the old channel, never
        // handed to the next call as its answer.
        std::thread::sleep(Duration::from_millis(700));
        let r = c
            .invoke(&MethodCall::new("svc", "fast", json!(null)))
            .expect("half-open probe should reconnect and succeed");
        assert_eq!(r.as_str(), Some("quick"));
        assert_eq!(c.breaker_state(), BreakerState::Closed);
        assert!(c.reconnects() >= 1, "probe should have reconnected");
        assert_eq!(c.breaker_stats().revivals, 1);
        reactor.shutdown();
    }

    /// The old transport orphaned live connection threads on `stop()`;
    /// the reactor port must drain and close every connection
    /// deterministically.
    #[test]
    fn shutdown_closes_all_live_connections_deterministically() {
        let mut server = RmiServer::start(bus()).unwrap();
        let addr = server.addr();
        // Park several live connections mid-session (no call in flight).
        let mut clients: Vec<RmiClient> =
            (0..8).map(|_| RmiClient::connect(addr).unwrap()).collect();
        for c in &mut clients {
            let r = c
                .invoke(&MethodCall::new(
                    "sensor-manager@dpss1",
                    "status",
                    json!(null),
                ))
                .unwrap();
            assert_eq!(r["sensors"][0], "cpu");
        }
        assert_eq!(server.connections(), 8);
        server.shutdown();
        // After shutdown returns — not eventually, *now* — every server-side
        // connection is gone and every client sees a clean EOF.
        assert_eq!(server.connections(), 0);
        for c in &mut clients {
            c.stream
                .set_read_timeout(Some(Duration::from_secs(5)))
                .unwrap();
            let mut byte = [0u8; 1];
            let n = c.stream.read(&mut byte).unwrap();
            assert_eq!(n, 0, "expected EOF after server shutdown");
        }
        // And the port is closed: a fresh connect must fail or be reset.
        let start = Instant::now();
        if let Ok(mut late) = RmiClient::connect(addr) {
            let r = late.invoke(&MethodCall::new(
                "sensor-manager@dpss1",
                "status",
                json!(null),
            ));
            assert!(r.is_err(), "server still serving after shutdown");
        }
        assert!(start.elapsed() < Duration::from_secs(5));
    }
}
