//! TCP transport: expose a bus to remote callers.
//!
//! Frames are a 4-byte little-endian length followed by a JSON document —
//! a `MethodCall` in the request direction, a `WireResponse` coming back.
//! One thread per connection; connections are persistent so an agent can
//! issue many calls over one socket, like RMI does.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use jamm_core::json::Json;

use crate::bus::MessageBus;
use crate::message::{MethodCall, RmiError, RmiResult, WireResponse};

/// A server exposing a [`MessageBus`] on a TCP socket.
pub struct RmiServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for RmiServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "RmiServer({})", self.addr)
    }
}

impl RmiServer {
    /// Bind to `127.0.0.1:0` (an ephemeral port) and start serving the bus.
    pub fn start(bus: MessageBus) -> std::io::Result<Self> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let shutdown_flag = Arc::clone(&shutdown);
        let accept_thread = std::thread::spawn(move || {
            while !shutdown_flag.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        stream.set_nonblocking(false).ok();
                        // A generous read timeout so connection threads never
                        // outlive their clients by much; they are detached and
                        // exit when the peer closes or the timeout fires.
                        stream
                            .set_read_timeout(Some(std::time::Duration::from_secs(30)))
                            .ok();
                        let bus = bus.clone();
                        std::thread::spawn(move || serve_connection(stream, bus));
                    }
                    Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(std::time::Duration::from_millis(5));
                    }
                    Err(_) => break,
                }
            }
        });
        Ok(RmiServer {
            addr,
            shutdown,
            accept_thread: Some(accept_thread),
        })
    }

    /// The address clients should connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting connections and wait for the accept loop to exit.
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for RmiServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn serve_connection(mut stream: TcpStream, bus: MessageBus) {
    loop {
        let call = match read_frame(&mut stream) {
            Ok(Some(doc)) => match MethodCall::from_json(&doc) {
                Ok(call) => call,
                Err(_) => return,
            },
            _ => return,
        };
        let response: WireResponse = bus.invoke(&call).into();
        if write_frame(&mut stream, &response.to_json()).is_err() {
            return;
        }
    }
}

fn read_frame(stream: &mut TcpStream) -> std::io::Result<Option<Json>> {
    let mut len_buf = [0u8; 4];
    match stream.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > 16 * 1024 * 1024 {
        return Err(std::io::Error::other("frame too large"));
    }
    let mut body = vec![0u8; len];
    stream.read_exact(&mut body)?;
    Json::parse_slice(&body)
        .map(Some)
        .map_err(|e| std::io::Error::other(e.to_string()))
}

fn write_frame(stream: &mut TcpStream, value: &Json) -> std::io::Result<()> {
    let body = value.to_vec();
    stream.write_all(&(body.len() as u32).to_le_bytes())?;
    stream.write_all(&body)?;
    stream.flush()
}

/// A client connection to a remote bus.
#[derive(Debug)]
pub struct RmiClient {
    stream: TcpStream,
}

impl RmiClient {
    /// Connect to a server.
    pub fn connect(addr: SocketAddr) -> std::io::Result<Self> {
        Ok(RmiClient {
            stream: TcpStream::connect(addr)?,
        })
    }

    /// Invoke a remote method.
    pub fn invoke(&mut self, call: &MethodCall) -> RmiResult {
        write_frame(&mut self.stream, &call.to_json())
            .map_err(|e| RmiError::Transport(e.to_string()))?;
        match read_frame(&mut self.stream) {
            Ok(Some(doc)) => WireResponse::from_json(&doc)?.into(),
            Ok(None) => Err(RmiError::Transport("connection closed".into())),
            Err(e) => Err(RmiError::Transport(e.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jamm_core::json::json;

    fn bus() -> MessageBus {
        let bus = MessageBus::new();
        bus.register_fn("sensor-manager@dpss1", |method, args| match method {
            "start_sensor" => Ok(json!({"started": args["name"].clone()})),
            "status" => Ok(json!({"sensors": ["cpu", "memory"]})),
            m => Err(RmiError::NoSuchMethod(m.to_string())),
        });
        bus
    }

    #[test]
    fn remote_invocation_round_trip() {
        let mut server = RmiServer::start(bus()).unwrap();
        let mut client = RmiClient::connect(server.addr()).unwrap();
        let r = client
            .invoke(&MethodCall::new(
                "sensor-manager@dpss1",
                "start_sensor",
                json!({"name": "tcp"}),
            ))
            .unwrap();
        assert_eq!(r["started"], "tcp");
        // Several calls over the same connection.
        let r2 = client
            .invoke(&MethodCall::new(
                "sensor-manager@dpss1",
                "status",
                json!(null),
            ))
            .unwrap();
        assert_eq!(r2["sensors"][0], "cpu");
        // Errors propagate.
        assert!(matches!(
            client.invoke(&MethodCall::new(
                "sensor-manager@dpss1",
                "nope",
                json!(null)
            )),
            Err(RmiError::NoSuchMethod(_))
        ));
        assert!(matches!(
            client.invoke(&MethodCall::new("unknown", "x", json!(null))),
            Err(RmiError::NoSuchService(_))
        ));
        server.shutdown();
    }

    #[test]
    fn multiple_clients_are_served_concurrently() {
        let server = RmiServer::start(bus()).unwrap();
        let addr = server.addr();
        let handles: Vec<_> = (0..4)
            .map(|i| {
                std::thread::spawn(move || {
                    let mut c = RmiClient::connect(addr).unwrap();
                    let r = c
                        .invoke(&MethodCall::new(
                            "sensor-manager@dpss1",
                            "start_sensor",
                            json!({"name": format!("s{i}")}),
                        ))
                        .unwrap();
                    r["started"].as_str().unwrap().to_string()
                })
            })
            .collect();
        let mut results: Vec<String> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        results.sort();
        assert_eq!(results, vec!["s0", "s1", "s2", "s3"]);
    }

    #[test]
    fn connecting_to_a_dead_server_fails_cleanly() {
        let addr = {
            let server = RmiServer::start(bus()).unwrap();
            server.addr()
            // server dropped (and shut down) here
        };
        // Either the connect fails or the first invoke fails; both are fine.
        if let Ok(mut c) = RmiClient::connect(addr) {
            let r = c.invoke(&MethodCall::new(
                "sensor-manager@dpss1",
                "status",
                json!(null),
            ));
            if let Err(e) = r {
                assert!(matches!(e, RmiError::Transport(_)));
            }
        }
    }
}
