//! # jamm-rmi — the remote-invocation substrate
//!
//! JAMM's agents are "implemented as Java Activatable Remote Method
//! Invocation (RMI) objects" (§3): managers, gateways and consumers call
//! each other through location-transparent method invocations, activatable
//! objects are loaded on first use and unload themselves after a period of
//! inactivity, and code updates are picked up automatically.
//!
//! This crate is the Rust stand-in (see DESIGN.md, substitution 1):
//!
//! * [`message`] — the call/response envelope (JSON-encoded arguments);
//! * [`bus`] — an in-process service registry and dispatcher: the
//!   location-transparent call path used when agents share a process;
//! * [`activation`] — lazy activation and idle deactivation of services, the
//!   behaviour the paper gets from RMI activation daemons;
//! * [`tcp`] — a TCP transport that exposes a bus to remote callers with
//!   length-prefixed JSON frames, so agents on different hosts can invoke
//!   each other exactly like local ones;
//! * [`edge`] — the reactor-backed subscriber transport: one event loop
//!   broadcasting a gateway's stream to many TCP consumers with
//!   encode-once/write-N framing and per-socket backpressure, plus
//!   [`edge::EdgeClient`], a self-healing subscriber that redials a
//!   crashed edge on a circuit-breaker backoff schedule;
//! * [`bridge`] — monitoring events over the substrate: any
//!   [`jamm_core::flow::EventSink`] exposed as a service, with ULM codec
//!   negotiation between producer and sink.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod activation;
pub mod bridge;
pub mod bus;
pub mod edge;
pub mod message;
pub mod tcp;

pub use activation::ActivationRegistry;
pub use bridge::{BridgeService, RemoteEventSink};
pub use bus::{MessageBus, Service};
pub use edge::{
    EdgeClient, EdgeClientConfig, EdgeClientStats, EdgeConfig, EdgeError, EdgeStats,
    EdgeStatsHandle, EventEdge,
};
pub use message::{MethodCall, RmiError, RmiResult};
