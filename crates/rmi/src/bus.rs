//! The in-process message bus.

use std::collections::HashMap;
use std::sync::Arc;

use jamm_core::json::Json;
use jamm_core::sync::RwLock;

use crate::message::{MethodCall, RmiError, RmiResult};

/// A service: anything that can handle method calls.
pub trait Service: Send + Sync {
    /// Handle one method invocation.
    fn call(&self, method: &str, args: &Json) -> RmiResult;
}

/// Closure adapter so simple services can be registered without a struct.
pub struct FnService<F>(pub F);

impl<F> Service for FnService<F>
where
    F: Fn(&str, &Json) -> RmiResult + Send + Sync,
{
    fn call(&self, method: &str, args: &Json) -> RmiResult {
        (self.0)(method, args)
    }
}

/// A registry of named services with location-transparent dispatch.
#[derive(Default, Clone)]
pub struct MessageBus {
    services: Arc<RwLock<HashMap<String, Arc<dyn Service>>>>,
}

impl std::fmt::Debug for MessageBus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "MessageBus({} services)", self.services.read().len())
    }
}

impl MessageBus {
    /// Create an empty bus.
    pub fn new() -> Self {
        MessageBus::default()
    }

    /// Register (or replace) a service under a name.
    pub fn register(&self, name: impl Into<String>, service: Arc<dyn Service>) {
        self.services.write().insert(name.into(), service);
    }

    /// Register a closure-backed service.
    pub fn register_fn<F>(&self, name: impl Into<String>, f: F)
    where
        F: Fn(&str, &Json) -> RmiResult + Send + Sync + 'static,
    {
        self.register(name, Arc::new(FnService(f)));
    }

    /// Remove a service.  Returns true if it existed.
    pub fn unregister(&self, name: &str) -> bool {
        self.services.write().remove(name).is_some()
    }

    /// Whether a service is registered.
    pub fn has_service(&self, name: &str) -> bool {
        self.services.read().contains_key(name)
    }

    /// Names of all registered services, sorted.
    pub fn service_names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.services.read().keys().cloned().collect();
        v.sort();
        v
    }

    /// Invoke a method on a service.
    pub fn invoke(&self, call: &MethodCall) -> RmiResult {
        let service = {
            let services = self.services.read();
            services
                .get(&call.service)
                .cloned()
                .ok_or_else(|| RmiError::NoSuchService(call.service.clone()))?
        };
        service.call(&call.method, &call.args)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jamm_core::json::json;

    fn echo_bus() -> MessageBus {
        let bus = MessageBus::new();
        bus.register_fn("echo", |method, args| match method {
            "echo" => Ok(args.clone()),
            "fail" => Err(RmiError::Application("boom".into())),
            other => Err(RmiError::NoSuchMethod(other.to_string())),
        });
        bus
    }

    #[test]
    fn dispatch_to_registered_service() {
        let bus = echo_bus();
        let result = bus
            .invoke(&MethodCall::new("echo", "echo", json!({"x": 1})))
            .unwrap();
        assert_eq!(result["x"], 1);
        assert!(matches!(
            bus.invoke(&MethodCall::new("echo", "fail", json!(null))),
            Err(RmiError::Application(_))
        ));
        assert!(matches!(
            bus.invoke(&MethodCall::new("echo", "unknown", json!(null))),
            Err(RmiError::NoSuchMethod(_))
        ));
        assert!(matches!(
            bus.invoke(&MethodCall::new("missing", "echo", json!(null))),
            Err(RmiError::NoSuchService(_))
        ));
    }

    #[test]
    fn register_unregister_and_listing() {
        let bus = echo_bus();
        assert!(bus.has_service("echo"));
        assert_eq!(bus.service_names(), vec!["echo".to_string()]);
        assert!(bus.unregister("echo"));
        assert!(!bus.unregister("echo"));
        assert!(!bus.has_service("echo"));
    }

    #[test]
    fn bus_clones_share_state_and_work_across_threads() {
        let bus = echo_bus();
        let bus2 = bus.clone();
        let handle = std::thread::spawn(move || {
            bus2.invoke(&MethodCall::new("echo", "echo", json!(42)))
                .unwrap()
        });
        assert_eq!(handle.join().unwrap(), json!(42));
    }
}
