//! The reactor-backed gateway subscriber transport.
//!
//! An [`EventEdge`] is the network face of one gateway: subscribers open a
//! plain TCP connection and receive the gateway's event stream as encoded
//! ULM frames.  The paper's scaling claim — adding consumers loads the
//! gateway, not the monitored host — lives or dies here, so the edge is
//! built around two invariants:
//!
//! * **Encode once, write N.**  A pump thread drains the gateway
//!   subscription in batches and encodes each batch exactly once into one
//!   buffer; the reactor then queues that same `Arc<Vec<u8>>` on every
//!   subscriber connection.  A thousand subscribers cost a thousand
//!   refcount bumps and `write` calls, not a thousand encodes.
//! * **Zero event copies.**  Events travel as
//!   [`SharedEvent`](jamm_ulm::SharedEvent) `Arc`s from the gateway's
//!   fan-out to the encoder; nothing in this path deep-clones an event
//!   (`jamm_ulm::deep_clone_count()` is flat across a broadcast, asserted
//!   by the `e17_reactor_edge` bench).
//!
//! Backpressure is per connection: each subscriber socket has a bounded
//! outbox mapped onto the pipeline's `DropOldest`/`DropNewest` policies,
//! so one slow consumer stalls — and, if it stays slow, loses — only its
//! own frames.  The per-socket counters surface through
//! [`EventEdge::socket_stats`] and `JammSystem::admin_stats`.

use std::io;
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use jamm_core::OverflowPolicy;
use jamm_gateway::EventGateway;
use jamm_reactor::{ConnHandler, ConnId, ConnIo, ListenerId, Reactor, SocketRow};
use jamm_ulm::codec::{codec_for, BINARY};

/// Configuration for [`EventEdge::open`].
#[derive(Debug, Clone)]
pub struct EdgeConfig {
    /// Address to bind the subscriber listener on.
    pub bind: String,
    /// Wire format for broadcast frames (a `jamm_ulm::codec` content type;
    /// text and JSON frames are newline-delimited like `EncodedFile` logs).
    pub content_type: String,
    /// Most events encoded into one broadcast frame.
    pub batch_max: usize,
    /// How long the pump waits for a first event before re-checking stop.
    pub poll_interval: Duration,
    /// Gateway subscription queue capacity (events).
    pub capacity: usize,
    /// Overflow policy for the gateway subscription queue.
    pub overflow: OverflowPolicy,
    /// Consumer principal the subscription is authorized and accounted as.
    pub consumer: String,
    /// Optional query-plane filter for the subscription (same grammar as
    /// `SubscriptionBuilder::matching`).
    pub query: Option<String>,
}

impl Default for EdgeConfig {
    fn default() -> Self {
        EdgeConfig {
            bind: "127.0.0.1:0".to_string(),
            content_type: BINARY.to_string(),
            batch_max: 512,
            poll_interval: Duration::from_millis(20),
            capacity: 8192,
            overflow: OverflowPolicy::DropOldest,
            consumer: "edge".to_string(),
            query: None,
        }
    }
}

/// Errors opening an edge.
#[derive(Debug)]
pub enum EdgeError {
    /// Socket setup failed.
    Io(io::Error),
    /// The gateway refused the subscription (policy or bad query).
    Gateway(String),
    /// The configured content type has no codec.
    UnknownContentType(String),
}

impl std::fmt::Display for EdgeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EdgeError::Io(e) => write!(f, "edge I/O error: {e}"),
            EdgeError::Gateway(e) => write!(f, "edge subscription refused: {e}"),
            EdgeError::UnknownContentType(ct) => write!(f, "no codec for content type {ct:?}"),
        }
    }
}

impl std::error::Error for EdgeError {}

impl From<io::Error> for EdgeError {
    fn from(e: io::Error) -> Self {
        EdgeError::Io(e)
    }
}

/// Pump-side counters (broadcast work, not per-socket I/O).
#[derive(Debug, Default)]
struct EdgeCounters {
    batches: AtomicU64,
    events: AtomicU64,
    encoded_bytes: AtomicU64,
}

/// Cloneable handle to an edge's broadcast counters: metric collectors
/// read the pump's totals through this without borrowing the edge itself.
#[derive(Debug, Clone)]
pub struct EdgeStatsHandle {
    counters: Arc<EdgeCounters>,
}

impl EdgeStatsHandle {
    /// Current broadcast counters.
    pub fn stats(&self) -> EdgeStats {
        EdgeStats {
            batches: self.counters.batches.load(Ordering::Relaxed),
            events: self.counters.events.load(Ordering::Relaxed),
            encoded_bytes: self.counters.encoded_bytes.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time copy of the edge's broadcast counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EdgeStats {
    /// Batches encoded and broadcast.
    pub batches: u64,
    /// Events those batches carried.
    pub events: u64,
    /// Bytes encoded (once per batch, regardless of subscriber count).
    pub encoded_bytes: u64,
}

/// Subscriber connections never speak; whatever arrives is discarded.
struct EdgeSubscriber;

impl ConnHandler for EdgeSubscriber {
    fn on_data(&mut self, _io: &mut ConnIo<'_>, buf: &[u8]) -> usize {
        buf.len()
    }
}

/// The reactor-backed subscriber transport of one gateway.
pub struct EventEdge {
    addr: SocketAddr,
    reactor: Arc<Reactor>,
    listener: ListenerId,
    gateway: Arc<EventGateway>,
    subscription_id: u64,
    stop: Arc<AtomicBool>,
    counters: Arc<EdgeCounters>,
    pump: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for EventEdge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "EventEdge({} -> {})", self.gateway.name(), self.addr)
    }
}

impl EventEdge {
    /// Subscribe to `gateway` and start broadcasting its stream to every
    /// TCP connection accepted on `config.bind`.
    pub fn open(
        reactor: Arc<Reactor>,
        gateway: Arc<EventGateway>,
        config: EdgeConfig,
    ) -> Result<EventEdge, EdgeError> {
        let codec = codec_for(&config.content_type)
            .ok_or_else(|| EdgeError::UnknownContentType(config.content_type.clone()))?;
        let newline_framed = config.content_type != BINARY;

        let mut builder = gateway
            .subscribe()
            .stream()
            .capacity(config.capacity)
            .on_overflow(config.overflow)
            .as_consumer(&config.consumer);
        if let Some(q) = &config.query {
            builder = builder.matching(q);
        }
        let subscription = builder
            .open()
            .map_err(|e| EdgeError::Gateway(e.to_string()))?;
        let subscription_id = subscription.id;

        let listener_sock = TcpListener::bind(&config.bind)?;
        let addr = listener_sock.local_addr()?;
        let listener = reactor.listen(
            listener_sock,
            Box::new(|_id: ConnId, _peer: &str| Box::new(EdgeSubscriber) as Box<dyn ConnHandler>),
        )?;

        let stop = Arc::new(AtomicBool::new(false));
        let counters = Arc::new(EdgeCounters::default());
        let pump = {
            let reactor = Arc::clone(&reactor);
            let stop = Arc::clone(&stop);
            let counters = Arc::clone(&counters);
            let batch_max = config.batch_max.max(1);
            let poll_interval = config.poll_interval;
            let tracer = gateway.tracer().cloned();
            let gw_name = gateway.name().to_string();
            std::thread::Builder::new()
                .name("jamm-edge-pump".to_string())
                .spawn(move || {
                    let mut batch = Vec::with_capacity(batch_max);
                    // Capacity hint carried between batches: the encode
                    // buffer is allocated once per batch at roughly the
                    // right size, then handed to the reactor as the one
                    // shared copy of the bytes.
                    let mut size_hint = 4096usize;
                    while !stop.load(Ordering::Relaxed) {
                        batch.clear();
                        match subscription.events.recv_timeout(poll_interval) {
                            Ok(ev) => batch.push(ev),
                            Err(_) => continue,
                        }
                        while batch.len() < batch_max {
                            match subscription.events.try_recv() {
                                Ok(ev) => batch.push(ev),
                                Err(_) => break,
                            }
                        }
                        let traced: Vec<u64> = match &tracer {
                            Some(t) => batch.iter().filter_map(|e| t.trace_id(e)).collect(),
                            None => Vec::new(),
                        };
                        let mut buf = Vec::with_capacity(size_hint);
                        for ev in &batch {
                            // &SharedEvent derefs to &Event: no deep clone.
                            codec.encode_to(&mut buf, ev);
                            if newline_framed {
                                buf.push(b'\n');
                            }
                        }
                        if let Some(t) = &tracer {
                            for id in &traced {
                                t.stage_id(*id, jamm_ulm::keys::jamm::EDGE_ENCODE, &gw_name);
                            }
                        }
                        size_hint = size_hint.max(buf.len());
                        counters.batches.fetch_add(1, Ordering::Relaxed);
                        counters
                            .events
                            .fetch_add(batch.len() as u64, Ordering::Relaxed);
                        counters
                            .encoded_bytes
                            .fetch_add(buf.len() as u64, Ordering::Relaxed);
                        // One Arc, N outboxes: encode once, write N.
                        reactor.broadcast(listener, Arc::new(buf));
                        if let Some(t) = &tracer {
                            // The frame is now queued on every subscriber
                            // outbox; socket writes happen on the loop
                            // thread after this point.
                            for id in &traced {
                                t.stage_id(*id, jamm_ulm::keys::jamm::EDGE_BROADCAST, &gw_name);
                            }
                        }
                    }
                })
                .expect("spawn edge pump")
        };

        Ok(EventEdge {
            addr,
            reactor,
            listener,
            gateway,
            subscription_id,
            stop,
            counters,
            pump: Some(pump),
        })
    }

    /// The address subscribers connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The name of the gateway this edge broadcasts.
    pub fn gateway_name(&self) -> &str {
        self.gateway.name()
    }

    /// The listener id on the shared reactor.
    pub fn listener(&self) -> ListenerId {
        self.listener
    }

    /// Live subscriber connections.
    pub fn subscribers(&self) -> usize {
        self.reactor
            .socket_stats()
            .iter()
            .filter(|r| r.listener == Some(self.listener))
            .count()
    }

    /// Per-subscriber socket counters (queued bytes, drops, stalls) — the
    /// slow-consumer observability rows of `admin_stats`.
    pub fn socket_stats(&self) -> Vec<SocketRow> {
        self.reactor
            .socket_stats()
            .into_iter()
            .filter(|r| r.listener == Some(self.listener))
            .collect()
    }

    /// Broadcast-side counters.
    pub fn stats(&self) -> EdgeStats {
        self.stats_handle().stats()
    }

    /// Cloneable handle to the broadcast counters (outlives this borrow).
    pub fn stats_handle(&self) -> EdgeStatsHandle {
        EdgeStatsHandle {
            counters: Arc::clone(&self.counters),
        }
    }

    /// Stop the pump, unsubscribe from the gateway, and close every
    /// subscriber connection (flushing queued frames first).
    pub fn stop(&mut self) {
        if let Some(pump) = self.pump.take() {
            self.stop.store(true, Ordering::Relaxed);
            let _ = pump.join();
            let _ = self.gateway.unsubscribe(self.subscription_id);
            self.reactor.unlisten(self.listener, true);
        }
    }
}

impl Drop for EventEdge {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jamm_gateway::GatewayConfig;
    use jamm_reactor::ReactorConfig;
    use jamm_ulm::{Event, Level, SharedEvent, Timestamp};
    use std::io::Read;
    use std::net::TcpStream;
    use std::time::Instant;

    fn sample(i: u64) -> SharedEvent {
        Arc::new(
            Event::builder("dpss_master", "dpss1.lbl.gov")
                .level(Level::Usage)
                .event_type("DPSS_SERV_IN")
                .timestamp(Timestamp::from_micros(954_415_400_000_000 + i))
                .field("BLOCK.ID", i)
                .build(),
        )
    }

    fn wait_for(cond: impl Fn() -> bool, what: &str) {
        let deadline = Instant::now() + Duration::from_secs(10);
        while !cond() {
            assert!(Instant::now() < deadline, "timed out waiting for {what}");
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    #[test]
    fn subscribers_receive_broadcast_frames() {
        let reactor = Arc::new(Reactor::start(ReactorConfig::default()).unwrap());
        let gateway = Arc::new(EventGateway::new(GatewayConfig::open("edge-test")));
        let mut edge = EventEdge::open(
            Arc::clone(&reactor),
            Arc::clone(&gateway),
            EdgeConfig::default(),
        )
        .unwrap();

        let mut subs: Vec<TcpStream> = (0..3)
            .map(|_| TcpStream::connect(edge.addr()).unwrap())
            .collect();
        wait_for(|| edge.subscribers() == 3, "subscribers to register");

        let events: Vec<SharedEvent> = (0..10).map(sample).collect();
        gateway.publish_shared_batch(&events);

        let codec = codec_for(BINARY).unwrap();
        let expected: usize = events.iter().map(|e| codec.encode(e).len()).sum();
        for s in &mut subs {
            s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
            let mut got = vec![0u8; expected];
            s.read_exact(&mut got).unwrap();
            let decoded = codec.decode_batch(&got).unwrap();
            assert_eq!(decoded.len(), 10);
            assert_eq!(decoded[0], *events[0]);
        }
        let stats = edge.stats();
        assert_eq!(stats.events, 10);
        // Encoded once per batch, not once per subscriber.
        assert_eq!(stats.encoded_bytes as usize, expected);

        edge.stop();
        wait_for(|| edge.subscribers() == 0, "subscribers to close");
        reactor.shutdown();
    }

    #[test]
    fn edge_and_rmi_share_one_reactor() {
        let reactor = Arc::new(Reactor::start(ReactorConfig::default()).unwrap());
        let gateway = Arc::new(EventGateway::new(GatewayConfig::open("shared")));
        let mut edge = EventEdge::open(
            Arc::clone(&reactor),
            Arc::clone(&gateway),
            EdgeConfig::default(),
        )
        .unwrap();
        let _sub = TcpStream::connect(edge.addr()).unwrap();
        wait_for(|| edge.subscribers() == 1, "subscriber");
        gateway.publish_shared(sample(1));
        wait_for(|| edge.stats().events >= 1, "broadcast");
        // Tearing down the edge must not disturb other users of the
        // reactor.
        edge.stop();
        wait_for(|| edge.subscribers() == 0, "edge teardown");
        assert_eq!(reactor.connections(), 0);
        reactor.shutdown();
    }
}
