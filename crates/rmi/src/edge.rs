//! The reactor-backed gateway subscriber transport.
//!
//! An [`EventEdge`] is the network face of one gateway: subscribers open a
//! plain TCP connection and receive the gateway's event stream as encoded
//! ULM frames.  The paper's scaling claim — adding consumers loads the
//! gateway, not the monitored host — lives or dies here, so the edge is
//! built around two invariants:
//!
//! * **Encode once, write N.**  A pump thread drains the gateway
//!   subscription in batches and encodes each batch exactly once into one
//!   buffer; the reactor then queues that same `Arc<Vec<u8>>` on every
//!   subscriber connection.  A thousand subscribers cost a thousand
//!   refcount bumps and `write` calls, not a thousand encodes.
//! * **Zero event copies.**  Events travel as
//!   [`SharedEvent`](jamm_ulm::SharedEvent) `Arc`s from the gateway's
//!   fan-out to the encoder; nothing in this path deep-clones an event
//!   (`jamm_ulm::deep_clone_count()` is flat across a broadcast, asserted
//!   by the `e17_reactor_edge` bench).
//!
//! Backpressure is per connection: each subscriber socket has a bounded
//! outbox mapped onto the pipeline's `DropOldest`/`DropNewest` policies,
//! so one slow consumer stalls — and, if it stays slow, loses — only its
//! own frames.  The per-socket counters surface through
//! [`EventEdge::socket_stats`] and `JammSystem::admin_stats`.

use std::io;
use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use jamm_core::channel::{bounded, Receiver, TrySendError};
use jamm_core::sync::Mutex;
use jamm_core::{Backoff, BreakerState, BreakerStats, CircuitBreaker, OverflowPolicy};
use jamm_gateway::EventGateway;
use jamm_reactor::{ConnHandler, ConnId, ConnIo, ListenerId, Reactor, SocketRow};
use jamm_ulm::codec::{codec_for, EventCodec, BINARY};
use jamm_ulm::Event;

/// Configuration for [`EventEdge::open`].
#[derive(Debug, Clone)]
pub struct EdgeConfig {
    /// Address to bind the subscriber listener on.
    pub bind: String,
    /// Wire format for broadcast frames (a `jamm_ulm::codec` content type;
    /// text and JSON frames are newline-delimited like `EncodedFile` logs).
    pub content_type: String,
    /// Most events encoded into one broadcast frame.
    pub batch_max: usize,
    /// How long the pump waits for a first event before re-checking stop.
    pub poll_interval: Duration,
    /// Gateway subscription queue capacity (events).
    pub capacity: usize,
    /// Overflow policy for the gateway subscription queue.
    pub overflow: OverflowPolicy,
    /// Consumer principal the subscription is authorized and accounted as.
    pub consumer: String,
    /// Optional query-plane filter for the subscription (same grammar as
    /// `SubscriptionBuilder::matching`).
    pub query: Option<String>,
}

impl Default for EdgeConfig {
    fn default() -> Self {
        EdgeConfig {
            bind: "127.0.0.1:0".to_string(),
            content_type: BINARY.to_string(),
            batch_max: 512,
            poll_interval: Duration::from_millis(20),
            capacity: 8192,
            overflow: OverflowPolicy::DropOldest,
            consumer: "edge".to_string(),
            query: None,
        }
    }
}

/// Errors opening an edge.
#[derive(Debug)]
pub enum EdgeError {
    /// Socket setup failed.
    Io(io::Error),
    /// The gateway refused the subscription (policy or bad query).
    Gateway(String),
    /// The configured content type has no codec.
    UnknownContentType(String),
}

impl std::fmt::Display for EdgeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EdgeError::Io(e) => write!(f, "edge I/O error: {e}"),
            EdgeError::Gateway(e) => write!(f, "edge subscription refused: {e}"),
            EdgeError::UnknownContentType(ct) => write!(f, "no codec for content type {ct:?}"),
        }
    }
}

impl std::error::Error for EdgeError {}

impl From<io::Error> for EdgeError {
    fn from(e: io::Error) -> Self {
        EdgeError::Io(e)
    }
}

/// Pump-side counters (broadcast work, not per-socket I/O).
#[derive(Debug, Default)]
struct EdgeCounters {
    batches: AtomicU64,
    events: AtomicU64,
    encoded_bytes: AtomicU64,
}

/// Cloneable handle to an edge's broadcast counters: metric collectors
/// read the pump's totals through this without borrowing the edge itself.
#[derive(Debug, Clone)]
pub struct EdgeStatsHandle {
    counters: Arc<EdgeCounters>,
}

impl EdgeStatsHandle {
    /// Current broadcast counters.
    pub fn stats(&self) -> EdgeStats {
        EdgeStats {
            batches: self.counters.batches.load(Ordering::Relaxed),
            events: self.counters.events.load(Ordering::Relaxed),
            encoded_bytes: self.counters.encoded_bytes.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time copy of the edge's broadcast counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EdgeStats {
    /// Batches encoded and broadcast.
    pub batches: u64,
    /// Events those batches carried.
    pub events: u64,
    /// Bytes encoded (once per batch, regardless of subscriber count).
    pub encoded_bytes: u64,
}

/// Subscriber connections never speak; whatever arrives is discarded.
struct EdgeSubscriber;

impl ConnHandler for EdgeSubscriber {
    fn on_data(&mut self, _io: &mut ConnIo<'_>, buf: &[u8]) -> usize {
        buf.len()
    }
}

/// The reactor-backed subscriber transport of one gateway.
pub struct EventEdge {
    addr: SocketAddr,
    reactor: Arc<Reactor>,
    listener: ListenerId,
    gateway: Arc<EventGateway>,
    subscription_id: u64,
    stop: Arc<AtomicBool>,
    counters: Arc<EdgeCounters>,
    pump: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for EventEdge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "EventEdge({} -> {})", self.gateway.name(), self.addr)
    }
}

impl EventEdge {
    /// Subscribe to `gateway` and start broadcasting its stream to every
    /// TCP connection accepted on `config.bind`.
    pub fn open(
        reactor: Arc<Reactor>,
        gateway: Arc<EventGateway>,
        config: EdgeConfig,
    ) -> Result<EventEdge, EdgeError> {
        let codec = codec_for(&config.content_type)
            .ok_or_else(|| EdgeError::UnknownContentType(config.content_type.clone()))?;
        let newline_framed = config.content_type != BINARY;

        let mut builder = gateway
            .subscribe()
            .stream()
            .capacity(config.capacity)
            .on_overflow(config.overflow)
            .as_consumer(&config.consumer);
        if let Some(q) = &config.query {
            builder = builder.matching(q);
        }
        let subscription = builder
            .open()
            .map_err(|e| EdgeError::Gateway(e.to_string()))?;
        let subscription_id = subscription.id;

        let listener_sock = TcpListener::bind(&config.bind)?;
        let addr = listener_sock.local_addr()?;
        let listener = reactor.listen(
            listener_sock,
            Box::new(|_id: ConnId, _peer: &str| Box::new(EdgeSubscriber) as Box<dyn ConnHandler>),
        )?;

        let stop = Arc::new(AtomicBool::new(false));
        let counters = Arc::new(EdgeCounters::default());
        let pump = {
            let reactor = Arc::clone(&reactor);
            let stop = Arc::clone(&stop);
            let counters = Arc::clone(&counters);
            let batch_max = config.batch_max.max(1);
            let poll_interval = config.poll_interval;
            let tracer = gateway.tracer().cloned();
            let gw_name = gateway.name().to_string();
            std::thread::Builder::new()
                .name("jamm-edge-pump".to_string())
                .spawn(move || {
                    let mut batch = Vec::with_capacity(batch_max);
                    // Capacity hint carried between batches: the encode
                    // buffer is allocated once per batch at roughly the
                    // right size, then handed to the reactor as the one
                    // shared copy of the bytes.
                    let mut size_hint = 4096usize;
                    while !stop.load(Ordering::Relaxed) {
                        batch.clear();
                        match subscription.events.recv_timeout(poll_interval) {
                            Ok(ev) => batch.push(ev),
                            Err(_) => continue,
                        }
                        while batch.len() < batch_max {
                            match subscription.events.try_recv() {
                                Ok(ev) => batch.push(ev),
                                Err(_) => break,
                            }
                        }
                        let traced: Vec<u64> = match &tracer {
                            Some(t) => batch.iter().filter_map(|e| t.trace_id(e)).collect(),
                            None => Vec::new(),
                        };
                        let mut buf = Vec::with_capacity(size_hint);
                        for ev in &batch {
                            // &SharedEvent derefs to &Event: no deep clone.
                            codec.encode_to(&mut buf, ev);
                            if newline_framed {
                                buf.push(b'\n');
                            }
                        }
                        if let Some(t) = &tracer {
                            for id in &traced {
                                t.stage_id(*id, jamm_ulm::keys::jamm::EDGE_ENCODE, &gw_name);
                            }
                        }
                        size_hint = size_hint.max(buf.len());
                        counters.batches.fetch_add(1, Ordering::Relaxed);
                        counters
                            .events
                            .fetch_add(batch.len() as u64, Ordering::Relaxed);
                        counters
                            .encoded_bytes
                            .fetch_add(buf.len() as u64, Ordering::Relaxed);
                        // One Arc, N outboxes: encode once, write N.
                        reactor.broadcast(listener, Arc::new(buf));
                        if let Some(t) = &tracer {
                            // The frame is now queued on every subscriber
                            // outbox; socket writes happen on the loop
                            // thread after this point.
                            for id in &traced {
                                t.stage_id(*id, jamm_ulm::keys::jamm::EDGE_BROADCAST, &gw_name);
                            }
                        }
                    }
                })
                .expect("spawn edge pump")
        };

        Ok(EventEdge {
            addr,
            reactor,
            listener,
            gateway,
            subscription_id,
            stop,
            counters,
            pump: Some(pump),
        })
    }

    /// The address subscribers connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The name of the gateway this edge broadcasts.
    pub fn gateway_name(&self) -> &str {
        self.gateway.name()
    }

    /// The listener id on the shared reactor.
    pub fn listener(&self) -> ListenerId {
        self.listener
    }

    /// Live subscriber connections.
    pub fn subscribers(&self) -> usize {
        self.reactor
            .socket_stats()
            .iter()
            .filter(|r| r.listener == Some(self.listener))
            .count()
    }

    /// Per-subscriber socket counters (queued bytes, drops, stalls) — the
    /// slow-consumer observability rows of `admin_stats`.
    pub fn socket_stats(&self) -> Vec<SocketRow> {
        self.reactor
            .socket_stats()
            .into_iter()
            .filter(|r| r.listener == Some(self.listener))
            .collect()
    }

    /// Broadcast-side counters.
    pub fn stats(&self) -> EdgeStats {
        self.stats_handle().stats()
    }

    /// Cloneable handle to the broadcast counters (outlives this borrow).
    pub fn stats_handle(&self) -> EdgeStatsHandle {
        EdgeStatsHandle {
            counters: Arc::clone(&self.counters),
        }
    }

    /// Stop the pump, unsubscribe from the gateway, and close every
    /// subscriber connection (flushing queued frames first).
    pub fn stop(&mut self) {
        if let Some(pump) = self.pump.take() {
            self.stop.store(true, Ordering::Relaxed);
            let _ = pump.join();
            let _ = self.gateway.unsubscribe(self.subscription_id);
            self.reactor.unlisten(self.listener, true);
        }
    }
}

impl Drop for EventEdge {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Configuration for [`EdgeClient::connect`].
#[derive(Debug, Clone)]
pub struct EdgeClientConfig {
    /// Wire format the edge broadcasts (must match the edge's
    /// `content_type`).
    pub content_type: String,
    /// Decoded-event queue capacity.
    pub capacity: usize,
    /// What to do when the decoded-event queue is full.
    pub overflow: OverflowPolicy,
    /// How long one connection attempt may take.
    pub connect_timeout: Duration,
    /// First reconnect delay after a disconnect.
    pub retry_base: Duration,
    /// Reconnect-delay ceiling for an edge that stays down.
    pub retry_max: Duration,
    /// Socket read timeout; also bounds how fast `stop` is noticed.
    pub poll_interval: Duration,
}

impl Default for EdgeClientConfig {
    fn default() -> Self {
        EdgeClientConfig {
            content_type: BINARY.to_string(),
            capacity: 8192,
            overflow: OverflowPolicy::DropOldest,
            connect_timeout: Duration::from_secs(5),
            retry_base: Duration::from_millis(250),
            retry_max: Duration::from_secs(30),
            poll_interval: Duration::from_millis(20),
        }
    }
}

/// Point-in-time counters of an [`EdgeClient`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeClientStats {
    /// Successful connects (the first one and every reconnect).
    pub connects: u64,
    /// Connections lost (EOF or read error).
    pub disconnects: u64,
    /// Events decoded and queued.
    pub received: u64,
    /// Events dropped because the decoded-event queue was full.
    pub dropped: u64,
    /// Frames that failed to decode.
    pub decode_errors: u64,
    /// The reconnect breaker's current state.
    pub state: BreakerState,
    /// The reconnect breaker's lifetime counters.
    pub breaker: BreakerStats,
}

/// Counters and breaker shared between the [`EdgeClient`] handle and its
/// reader thread.
struct ClientShared {
    connects: AtomicU64,
    disconnects: AtomicU64,
    received: AtomicU64,
    dropped: AtomicU64,
    decode_errors: AtomicU64,
    breaker: Mutex<CircuitBreaker>,
    origin: Instant,
}

impl ClientShared {
    fn now_us(&self) -> u64 {
        self.origin.elapsed().as_micros() as u64
    }
}

/// Largest binary frame the client will buffer before declaring the
/// stream corrupt (matches the edge's encode-side frames, which are far
/// smaller).
const CLIENT_MAX_FRAME: usize = 16 * 1024 * 1024;

/// A self-healing subscriber to an [`EventEdge`] broadcast stream.
///
/// A reader thread owns the TCP connection: it decodes broadcast frames
/// back into [`Event`]s and queues them on a bounded channel read through
/// [`EdgeClient::events`].  When the edge dies, the thread trips a
/// [`CircuitBreaker`] and redials on a jittered-exponential backoff
/// schedule — reconnecting *resumes the subscription*, because an edge
/// streams to every accepted connection.  A permanently dead edge costs
/// one bounded connect attempt per backoff deadline, never a busy-loop,
/// and every transition is visible in [`EdgeClient::stats`].
pub struct EdgeClient {
    events: Receiver<Event>,
    stop: Arc<AtomicBool>,
    shared: Arc<ClientShared>,
    reader: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for EdgeClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        write!(
            f,
            "EdgeClient({:?}, {} connects, {} events)",
            s.state, s.connects, s.received
        )
    }
}

impl EdgeClient {
    /// Start a subscriber for the edge at `addr`.
    ///
    /// Returns immediately: the reader thread performs the first dial, so
    /// an edge that is not up *yet* is the same case as an edge that
    /// crashed — the client keeps probing on the backoff schedule until
    /// it appears.
    pub fn connect(addr: SocketAddr, config: EdgeClientConfig) -> Result<EdgeClient, EdgeError> {
        let codec = codec_for(&config.content_type)
            .ok_or_else(|| EdgeError::UnknownContentType(config.content_type.clone()))?;
        let newline_framed = config.content_type != BINARY;
        let (tx, rx) = bounded(config.capacity.max(1));
        let stop = Arc::new(AtomicBool::new(false));
        let shared = Arc::new(ClientShared {
            connects: AtomicU64::new(0),
            disconnects: AtomicU64::new(0),
            received: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            decode_errors: AtomicU64::new(0),
            breaker: Mutex::new(CircuitBreaker::new(
                1,
                Backoff::new(
                    config.retry_base.as_micros() as u64,
                    config.retry_max.as_micros() as u64,
                    u64::from(addr.port()),
                ),
            )),
            origin: Instant::now(),
        });
        let reader = {
            let stop = Arc::clone(&stop);
            let shared = Arc::clone(&shared);
            let overflow = config.overflow;
            let connect_timeout = config.connect_timeout;
            let poll = config.poll_interval.max(Duration::from_millis(1));
            std::thread::Builder::new()
                .name("jamm-edge-client".to_string())
                .spawn(move || {
                    let mut buf: Vec<u8> = Vec::new();
                    while !stop.load(Ordering::Relaxed) {
                        if !shared.breaker.lock().allow(shared.now_us()) {
                            // Bounded nap, not a spin: stop stays
                            // responsive while the breaker is open.
                            std::thread::sleep(poll);
                            continue;
                        }
                        let stream = match TcpStream::connect_timeout(&addr, connect_timeout) {
                            Ok(s) => s,
                            Err(_) => {
                                shared.breaker.lock().record_failure(shared.now_us());
                                continue;
                            }
                        };
                        // A push stream has no response to await: the
                        // accepted connection is the probe's success.
                        shared.breaker.lock().record_success();
                        shared.connects.fetch_add(1, Ordering::Relaxed);
                        let _ = stream.set_read_timeout(Some(poll));
                        buf.clear();
                        let mut stream = stream;
                        let mut chunk = [0u8; 16 * 1024];
                        let lost = loop {
                            if stop.load(Ordering::Relaxed) {
                                break false;
                            }
                            match stream.read(&mut chunk) {
                                Ok(0) => break true,
                                Ok(n) => {
                                    buf.extend_from_slice(&chunk[..n]);
                                    if !drain_frames(
                                        &mut buf,
                                        newline_framed,
                                        &codec,
                                        &shared,
                                        overflow,
                                        &tx,
                                    ) {
                                        break true;
                                    }
                                }
                                Err(e)
                                    if e.kind() == io::ErrorKind::WouldBlock
                                        || e.kind() == io::ErrorKind::TimedOut =>
                                {
                                    continue
                                }
                                Err(_) => break true,
                            }
                        };
                        if lost {
                            shared.disconnects.fetch_add(1, Ordering::Relaxed);
                            shared.breaker.lock().record_failure(shared.now_us());
                        }
                    }
                })
                .expect("spawn edge client")
        };
        Ok(EdgeClient {
            events: rx,
            stop,
            shared,
            reader: Some(reader),
        })
    }

    /// The decoded-event stream.
    pub fn events(&self) -> &Receiver<Event> {
        &self.events
    }

    /// Current counters, including the breaker's state.
    pub fn stats(&self) -> EdgeClientStats {
        let (state, breaker) = {
            let b = self.shared.breaker.lock();
            (b.state(), b.stats())
        };
        EdgeClientStats {
            connects: self.shared.connects.load(Ordering::Relaxed),
            disconnects: self.shared.disconnects.load(Ordering::Relaxed),
            received: self.shared.received.load(Ordering::Relaxed),
            dropped: self.shared.dropped.load(Ordering::Relaxed),
            decode_errors: self.shared.decode_errors.load(Ordering::Relaxed),
            state,
            breaker,
        }
    }

    /// Stop the reader thread and close the connection.
    pub fn stop(&mut self) {
        if let Some(reader) = self.reader.take() {
            self.stop.store(true, Ordering::Relaxed);
            let _ = reader.join();
        }
    }
}

impl Drop for EdgeClient {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Decode every complete frame in `buf`, queue the events, and keep the
/// trailing partial frame for the next read.  Returns `false` when the
/// stream is unrecoverable (an oversized length prefix — resynchronising
/// a corrupt length-prefixed stream is not possible, so the connection is
/// dropped and the breaker paces the redial).
fn drain_frames(
    buf: &mut Vec<u8>,
    newline_framed: bool,
    codec: &EventCodec,
    shared: &ClientShared,
    overflow: OverflowPolicy,
    tx: &jamm_core::channel::Sender<Event>,
) -> bool {
    let mut consumed = 0usize;
    if newline_framed {
        while let Some(nl) = buf[consumed..].iter().position(|&b| b == b'\n') {
            let line = &buf[consumed..consumed + nl];
            consumed += nl + 1;
            let trimmed: &[u8] = match std::str::from_utf8(line) {
                Ok(s) => s.trim().as_bytes(),
                Err(_) => line,
            };
            if trimmed.is_empty() || trimmed.first() == Some(&b'#') {
                continue;
            }
            match codec.decode(trimmed) {
                Ok(ev) => deliver(ev, overflow, tx, shared),
                Err(_) => {
                    shared.decode_errors.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    } else {
        while buf.len() - consumed >= 4 {
            let head: [u8; 4] = buf[consumed..consumed + 4].try_into().expect("4 bytes");
            let len = u32::from_le_bytes(head) as usize;
            if len > CLIENT_MAX_FRAME {
                shared.decode_errors.fetch_add(1, Ordering::Relaxed);
                buf.clear();
                return false;
            }
            let total = 4 + len;
            if buf.len() - consumed < total {
                break;
            }
            match codec.decode(&buf[consumed..consumed + total]) {
                Ok(ev) => deliver(ev, overflow, tx, shared),
                Err(_) => {
                    shared.decode_errors.fetch_add(1, Ordering::Relaxed);
                }
            }
            consumed += total;
        }
    }
    if consumed > 0 {
        buf.drain(..consumed);
    }
    true
}

/// Queue one decoded event per the configured overflow policy.
fn deliver(
    ev: Event,
    overflow: OverflowPolicy,
    tx: &jamm_core::channel::Sender<Event>,
    shared: &ClientShared,
) {
    let queued = match overflow {
        OverflowPolicy::DropOldest => match tx.send_overwriting(ev) {
            Ok(evicted) => {
                if evicted {
                    shared.dropped.fetch_add(1, Ordering::Relaxed);
                }
                true
            }
            Err(_) => false,
        },
        OverflowPolicy::DropNewest => match tx.try_send(ev) {
            Ok(()) => true,
            Err(TrySendError::Full(_)) => {
                shared.dropped.fetch_add(1, Ordering::Relaxed);
                false
            }
            Err(TrySendError::Disconnected(_)) => false,
        },
    };
    if queued {
        shared.received.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jamm_gateway::GatewayConfig;
    use jamm_reactor::ReactorConfig;
    use jamm_ulm::{Event, Level, SharedEvent, Timestamp};
    use std::io::Read;
    use std::net::TcpStream;
    use std::time::Instant;

    fn sample(i: u64) -> SharedEvent {
        Arc::new(
            Event::builder("dpss_master", "dpss1.lbl.gov")
                .level(Level::Usage)
                .event_type("DPSS_SERV_IN")
                .timestamp(Timestamp::from_micros(954_415_400_000_000 + i))
                .field("BLOCK.ID", i)
                .build(),
        )
    }

    fn wait_for(cond: impl Fn() -> bool, what: &str) {
        let deadline = Instant::now() + Duration::from_secs(10);
        while !cond() {
            assert!(Instant::now() < deadline, "timed out waiting for {what}");
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    #[test]
    fn subscribers_receive_broadcast_frames() {
        let reactor = Arc::new(Reactor::start(ReactorConfig::default()).unwrap());
        let gateway = Arc::new(EventGateway::new(GatewayConfig::open("edge-test")));
        let mut edge = EventEdge::open(
            Arc::clone(&reactor),
            Arc::clone(&gateway),
            EdgeConfig::default(),
        )
        .unwrap();

        let mut subs: Vec<TcpStream> = (0..3)
            .map(|_| TcpStream::connect(edge.addr()).unwrap())
            .collect();
        wait_for(|| edge.subscribers() == 3, "subscribers to register");

        let events: Vec<SharedEvent> = (0..10).map(sample).collect();
        gateway.publish_shared_batch(&events);

        let codec = codec_for(BINARY).unwrap();
        let expected: usize = events.iter().map(|e| codec.encode(e).len()).sum();
        for s in &mut subs {
            s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
            let mut got = vec![0u8; expected];
            s.read_exact(&mut got).unwrap();
            let decoded = codec.decode_batch(&got).unwrap();
            assert_eq!(decoded.len(), 10);
            assert_eq!(decoded[0], *events[0]);
        }
        let stats = edge.stats();
        assert_eq!(stats.events, 10);
        // Encoded once per batch, not once per subscriber.
        assert_eq!(stats.encoded_bytes as usize, expected);

        edge.stop();
        wait_for(|| edge.subscribers() == 0, "subscribers to close");
        reactor.shutdown();
    }

    /// An `EdgeClient` decodes the broadcast stream; when the edge dies
    /// and a new one comes up on the same address, the client redials it
    /// within the breaker's backoff envelope and keeps receiving events —
    /// the reconnect resumes the subscription.
    #[test]
    fn edge_client_survives_an_edge_restart() {
        let reactor = Arc::new(Reactor::start(ReactorConfig::default()).unwrap());
        let gateway = Arc::new(EventGateway::new(GatewayConfig::open("edge-restart")));
        let mut edge = EventEdge::open(
            Arc::clone(&reactor),
            Arc::clone(&gateway),
            EdgeConfig::default(),
        )
        .unwrap();
        let addr = edge.addr();

        let mut client = EdgeClient::connect(
            addr,
            EdgeClientConfig {
                retry_base: Duration::from_millis(10),
                retry_max: Duration::from_millis(50),
                poll_interval: Duration::from_millis(2),
                ..EdgeClientConfig::default()
            },
        )
        .unwrap();
        wait_for(|| client.stats().connects == 1, "first connect");
        wait_for(|| edge.subscribers() == 1, "edge to see the client");

        gateway.publish_shared(sample(1));
        let ev = client
            .events()
            .recv_timeout(Duration::from_secs(10))
            .expect("event before restart");
        assert_eq!(ev, *sample(1));

        // Kill the edge; the client loses the connection and its breaker
        // opens instead of busy-dialing the dead port.
        edge.stop();
        wait_for(|| client.stats().disconnects >= 1, "disconnect noticed");

        // A new edge appears on the same address; the client's next probe
        // redials it and events flow again.
        let mut edge2 = EventEdge::open(
            Arc::clone(&reactor),
            Arc::clone(&gateway),
            EdgeConfig {
                bind: addr.to_string(),
                ..EdgeConfig::default()
            },
        )
        .unwrap();
        wait_for(|| client.stats().connects >= 2, "reconnect");
        wait_for(|| edge2.subscribers() == 1, "edge2 to see the client");

        gateway.publish_shared(sample(2));
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            match client.events().recv_timeout(Duration::from_millis(100)) {
                Ok(ev) if ev == *sample(2) => break,
                Ok(_) => {}
                Err(_) => assert!(Instant::now() < deadline, "no event after reconnect"),
            }
        }
        let stats = client.stats();
        assert!(stats.connects >= 2, "reconnect not counted: {stats:?}");
        assert_eq!(stats.state, BreakerState::Closed);

        client.stop();
        edge2.stop();
        reactor.shutdown();
    }

    #[test]
    fn edge_and_rmi_share_one_reactor() {
        let reactor = Arc::new(Reactor::start(ReactorConfig::default()).unwrap());
        let gateway = Arc::new(EventGateway::new(GatewayConfig::open("shared")));
        let mut edge = EventEdge::open(
            Arc::clone(&reactor),
            Arc::clone(&gateway),
            EdgeConfig::default(),
        )
        .unwrap();
        let _sub = TcpStream::connect(edge.addr()).unwrap();
        wait_for(|| edge.subscribers() == 1, "subscriber");
        gateway.publish_shared(sample(1));
        wait_for(|| edge.stats().events >= 1, "broadcast");
        // Tearing down the edge must not disturb other users of the
        // reactor.
        edge.stop();
        wait_for(|| edge.subscribers() == 0, "edge teardown");
        assert_eq!(reactor.connections(), 0);
        reactor.shutdown();
    }
}
