//! The event bridge: monitoring events over the RMI substrate, with codec
//! negotiation.
//!
//! A [`BridgeService`] exposes any [`EventSink`] as an RMI service: remote
//! producers call `content_types` once to learn which ULM codecs the sink
//! side can decode, pick one with [`jamm_ulm::codec::negotiate`], and then
//! stream `publish` calls whose payload is a codec-encoded event batch.
//! [`RemoteEventSink`] is the matching producer-side adapter: it performs
//! the negotiation on first use and then implements [`EventSink`] itself,
//! so a sensor manager can publish to a remote gateway exactly as it
//! publishes to a local one.

use std::sync::Arc;

use jamm_core::flow::{EventSink, SinkError};
use jamm_core::json::{json, Json};
use jamm_core::sync::Mutex;
use jamm_ulm::codec::{codec_for, negotiate, EventCodec, ALL};
use jamm_ulm::Event;

use crate::bus::{MessageBus, Service};
use crate::message::{MethodCall, RmiError, RmiResult};

/// Method name a bridge service answers with its supported content types.
pub const METHOD_CONTENT_TYPES: &str = "content_types";
/// Method name carrying an encoded event batch.
pub const METHOD_PUBLISH: &str = "publish";

fn hex_encode(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push_str(&format!("{b:02x}"));
    }
    out
}

fn hex_decode(text: &str) -> Option<Vec<u8>> {
    // Operate on bytes, not string slices: remote input may contain
    // multi-byte characters and slicing would panic mid-character.
    fn nibble(b: u8) -> Option<u8> {
        match b {
            b'0'..=b'9' => Some(b - b'0'),
            b'a'..=b'f' => Some(b - b'a' + 10),
            b'A'..=b'F' => Some(b - b'A' + 10),
            _ => None,
        }
    }
    let bytes = text.as_bytes();
    if !bytes.len().is_multiple_of(2) {
        return None;
    }
    bytes
        .chunks(2)
        .map(|pair| Some(nibble(pair[0])? << 4 | nibble(pair[1])?))
        .collect()
}

/// Server side: an RMI service decoding event batches into a sink.
pub struct BridgeService {
    sink: Arc<dyn EventSink<Event>>,
}

impl BridgeService {
    /// Bridge calls into `sink`.
    pub fn new(sink: Arc<dyn EventSink<Event>>) -> Self {
        BridgeService { sink }
    }

    /// Register a bridge for `sink` on `bus` under `service_name`.
    pub fn register(
        bus: &MessageBus,
        service_name: impl Into<String>,
        sink: Arc<dyn EventSink<Event>>,
    ) {
        bus.register(service_name, Arc::new(BridgeService::new(sink)));
    }
}

impl Service for BridgeService {
    fn call(&self, method: &str, args: &Json) -> RmiResult {
        match method {
            METHOD_CONTENT_TYPES => Ok(Json::from(ALL.to_vec())),
            METHOD_PUBLISH => {
                let content_type = args["content_type"]
                    .as_str()
                    .ok_or_else(|| RmiError::Application("publish missing content_type".into()))?;
                let codec = codec_for(content_type).ok_or_else(|| {
                    RmiError::Application(format!("unsupported content type {content_type}"))
                })?;
                let payload = args["payload_hex"]
                    .as_str()
                    .and_then(hex_decode)
                    .or_else(|| args["payload"].as_str().map(|s| s.as_bytes().to_vec()))
                    .ok_or_else(|| RmiError::Application("publish missing payload".into()))?;
                let events = codec
                    .decode_batch(&payload)
                    .map_err(|e| RmiError::Application(format!("bad payload: {e}")))?;
                let delivered = self
                    .sink
                    .accept_batch(&events)
                    .map_err(|e| RmiError::Application(e.to_string()))?;
                Ok(json!({"accepted": events.len(), "delivered": delivered}))
            }
            other => Err(RmiError::NoSuchMethod(other.to_string())),
        }
    }
}

/// Anything that can carry a method call to a bridge service: the
/// in-process [`MessageBus`] or a [`crate::tcp::RmiClient`] connection.
pub trait CallTransport {
    /// Issue one call.
    fn call(&mut self, call: &MethodCall) -> RmiResult;
}

impl CallTransport for MessageBus {
    fn call(&mut self, call: &MethodCall) -> RmiResult {
        self.invoke(call)
    }
}

impl CallTransport for crate::tcp::RmiClient {
    fn call(&mut self, call: &MethodCall) -> RmiResult {
        self.invoke(call)
    }
}

/// Producer side: an [`EventSink`] that ships events to a remote
/// [`BridgeService`], negotiating the codec on first use.
pub struct RemoteEventSink<T: CallTransport> {
    transport: Mutex<T>,
    service: String,
    preferred: Vec<&'static str>,
    chosen: Mutex<Option<EventCodec>>,
}

impl<T: CallTransport> RemoteEventSink<T> {
    /// Connect to `service` over `transport`, preferring codecs in the
    /// crate-default order (binary, text, JSON).
    pub fn new(transport: T, service: impl Into<String>) -> Self {
        Self::with_preference(transport, service, ALL.to_vec())
    }

    /// Connect preferring the given content types, best first.
    pub fn with_preference(
        transport: T,
        service: impl Into<String>,
        preferred: Vec<&'static str>,
    ) -> Self {
        RemoteEventSink {
            transport: Mutex::new(transport),
            service: service.into(),
            preferred,
            chosen: Mutex::new(None),
        }
    }

    /// The negotiated content type, if negotiation has happened.
    pub fn content_type(&self) -> Option<&'static str> {
        self.chosen.lock().as_ref().map(|c| c.content_type())
    }

    fn ensure_codec(&self) -> Result<&'static str, SinkError> {
        if let Some(codec) = self.chosen.lock().as_ref() {
            return Ok(codec.content_type());
        }
        let offered = self
            .transport
            .lock()
            .call(&MethodCall::new(
                self.service.clone(),
                METHOD_CONTENT_TYPES,
                json!(null),
            ))
            .map_err(|e| SinkError::Rejected(e.to_string()))?;
        let supported: Vec<String> = offered
            .as_array()
            .map(|a| {
                a.iter()
                    .filter_map(Json::as_str)
                    .map(str::to_string)
                    .collect()
            })
            .unwrap_or_default();
        let supported_refs: Vec<&str> = supported.iter().map(String::as_str).collect();
        let chosen = negotiate(&self.preferred, &supported_refs)
            .ok_or_else(|| SinkError::Rejected("no common content type".into()))?;
        let codec = codec_for(chosen).expect("negotiated type is known");
        let content_type = codec.content_type();
        *self.chosen.lock() = Some(codec);
        Ok(content_type)
    }

    fn ship(&self, events: &[Event]) -> Result<usize, SinkError> {
        let content_type = self.ensure_codec()?;
        let payload = {
            let chosen = self.chosen.lock();
            let codec = chosen.as_ref().expect("codec negotiated");
            codec.encode_batch(events)
        };
        let args = if content_type == jamm_ulm::codec::BINARY {
            json!({"content_type": content_type, "payload_hex": hex_encode(&payload)})
        } else {
            let text = String::from_utf8(payload)
                .map_err(|_| SinkError::Rejected("non-UTF-8 payload for text codec".into()))?;
            json!({"content_type": content_type, "payload": text})
        };
        let reply = self
            .transport
            .lock()
            .call(&MethodCall::new(self.service.clone(), METHOD_PUBLISH, args))
            .map_err(|e| match e {
                RmiError::Transport(_) => SinkError::Closed,
                other => SinkError::Rejected(other.to_string()),
            })?;
        Ok(reply["delivered"].as_u64().unwrap_or(0) as usize)
    }
}

impl<T: CallTransport + Send> EventSink<Event> for RemoteEventSink<T>
where
    T: Sync,
{
    fn accept(&self, event: &Event) -> Result<usize, SinkError> {
        self.ship(std::slice::from_ref(event))
    }

    fn accept_batch(&self, events: &[Event]) -> Result<usize, SinkError> {
        self.ship(events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jamm_core::flow::DeliveryCounters;
    use jamm_ulm::{Level, Timestamp};

    struct CountingSink {
        counters: DeliveryCounters,
        seen: Mutex<Vec<Event>>,
    }

    impl EventSink<Event> for CountingSink {
        fn accept(&self, event: &Event) -> Result<usize, SinkError> {
            self.counters.record_delivered(event.approx_size() as u64);
            self.seen.lock().push(event.clone());
            Ok(1)
        }
    }

    fn ev(i: u64) -> Event {
        Event::builder("mplay", "mems.cairn.net")
            .level(Level::Usage)
            .event_type("MPLAY_START_READ_FRAME")
            .timestamp(Timestamp::from_micros(954_415_400_000_000 + i))
            .field("FRAME.ID", i)
            .field("NOTE", "quoted \"value\" here")
            .build()
    }

    fn bridged_bus() -> (MessageBus, Arc<CountingSink>) {
        let sink = Arc::new(CountingSink {
            counters: DeliveryCounters::new(),
            seen: Mutex::new(Vec::new()),
        });
        let bus = MessageBus::new();
        BridgeService::register(
            &bus,
            "event-sink@gw1",
            Arc::clone(&sink) as Arc<dyn EventSink<Event>>,
        );
        (bus, sink)
    }

    #[test]
    fn negotiates_binary_by_default_and_delivers() {
        let (bus, sink) = bridged_bus();
        let remote = RemoteEventSink::new(bus, "event-sink@gw1");
        assert_eq!(remote.content_type(), None, "lazy negotiation");
        let events: Vec<Event> = (0..4).map(ev).collect();
        assert_eq!(remote.accept_batch(&events).unwrap(), 4);
        assert_eq!(remote.content_type(), Some(jamm_ulm::codec::BINARY));
        assert_eq!(*sink.seen.lock(), events, "lossless transfer");
        assert_eq!(remote.accept(&ev(9)).unwrap(), 1);
        assert_eq!(sink.counters.delivered(), 5);
    }

    #[test]
    fn falls_back_to_the_peer_preference() {
        let (bus, sink) = bridged_bus();
        let remote = RemoteEventSink::with_preference(
            bus,
            "event-sink@gw1",
            vec![jamm_ulm::codec::JSON, jamm_ulm::codec::TEXT],
        );
        remote.accept(&ev(1)).unwrap();
        assert_eq!(remote.content_type(), Some(jamm_ulm::codec::JSON));
        assert_eq!(sink.seen.lock().len(), 1);
        assert_eq!(sink.seen.lock()[0], ev(1));
    }

    #[test]
    fn unknown_service_surfaces_as_sink_error() {
        let bus = MessageBus::new();
        let remote = RemoteEventSink::new(bus, "missing");
        assert!(remote.accept(&ev(1)).is_err());
    }

    #[test]
    fn bridge_rejects_bad_payloads_and_unknown_methods() {
        let (bus, _) = bridged_bus();
        let err = bus
            .invoke(&MethodCall::new(
                "event-sink@gw1",
                METHOD_PUBLISH,
                json!({"content_type": "application/x-ulm", "payload": "not ulm"}),
            ))
            .unwrap_err();
        assert!(matches!(err, RmiError::Application(_)));
        assert!(matches!(
            bus.invoke(&MethodCall::new("event-sink@gw1", "bogus", json!(null))),
            Err(RmiError::NoSuchMethod(_))
        ));
        assert!(matches!(
            bus.invoke(&MethodCall::new(
                "event-sink@gw1",
                METHOD_PUBLISH,
                json!({"content_type": "application/xml", "payload": ""}),
            )),
            Err(RmiError::Application(_))
        ));
    }

    #[test]
    fn hex_round_trip() {
        let data = [0u8, 1, 0x7f, 0xff, 0xab];
        assert_eq!(hex_decode(&hex_encode(&data)).unwrap(), data);
        assert!(hex_decode("abc").is_none());
        assert!(hex_decode("zz").is_none());
        // Multi-byte characters must be rejected, not panic on a char
        // boundary (this arrives from remote peers).
        assert!(hex_decode("a\u{a1}b").is_none());
        assert!(hex_decode("\u{1f600}\u{1f600}").is_none());
    }
}
