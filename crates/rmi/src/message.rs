//! Call / response envelopes.

use jamm_core::json::{Json, Map};

/// A remote method invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct MethodCall {
    /// Target service (object) name, e.g. `sensor-manager@dpss1.lbl.gov`.
    pub service: String,
    /// Method name, e.g. `start_sensor`.
    pub method: String,
    /// JSON-encoded arguments.
    pub args: Json,
}

impl MethodCall {
    /// Build a call.
    pub fn new(service: impl Into<String>, method: impl Into<String>, args: Json) -> Self {
        MethodCall {
            service: service.into(),
            method: method.into(),
            args,
        }
    }

    /// Wire form: `{"service": ..., "method": ..., "args": ...}`.
    pub fn to_json(&self) -> Json {
        let mut obj = Map::new();
        obj.insert("service".into(), Json::from(&self.service));
        obj.insert("method".into(), Json::from(&self.method));
        obj.insert("args".into(), self.args.clone());
        Json::Object(obj)
    }

    /// Parse the wire form.
    pub fn from_json(v: &Json) -> Result<Self, RmiError> {
        let service = v["service"]
            .as_str()
            .ok_or_else(|| RmiError::Transport("call missing service".into()))?;
        let method = v["method"]
            .as_str()
            .ok_or_else(|| RmiError::Transport("call missing method".into()))?;
        Ok(MethodCall::new(service, method, v["args"].clone()))
    }
}

/// Errors surfaced by the invocation layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RmiError {
    /// No service with the requested name is registered.
    NoSuchService(String),
    /// The service exists but does not implement the method.
    NoSuchMethod(String),
    /// The service raised an application-level error.
    Application(String),
    /// The transport failed (connection refused, framing error, ...).
    Transport(String),
}

impl RmiError {
    fn kind(&self) -> &'static str {
        match self {
            RmiError::NoSuchService(_) => "no_such_service",
            RmiError::NoSuchMethod(_) => "no_such_method",
            RmiError::Application(_) => "application",
            RmiError::Transport(_) => "transport",
        }
    }

    fn detail(&self) -> &str {
        match self {
            RmiError::NoSuchService(s)
            | RmiError::NoSuchMethod(s)
            | RmiError::Application(s)
            | RmiError::Transport(s) => s,
        }
    }

    fn from_parts(kind: &str, detail: String) -> Self {
        match kind {
            "no_such_service" => RmiError::NoSuchService(detail),
            "no_such_method" => RmiError::NoSuchMethod(detail),
            "application" => RmiError::Application(detail),
            _ => RmiError::Transport(detail),
        }
    }
}

impl std::fmt::Display for RmiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RmiError::NoSuchService(s) => write!(f, "no such service: {s}"),
            RmiError::NoSuchMethod(m) => write!(f, "no such method: {m}"),
            RmiError::Application(e) => write!(f, "application error: {e}"),
            RmiError::Transport(e) => write!(f, "transport error: {e}"),
        }
    }
}

impl std::error::Error for RmiError {}

/// Result alias for invocations.
pub type RmiResult = Result<Json, RmiError>;

/// Wire representation of a response (so transports can serialise it).
#[derive(Debug, Clone, PartialEq)]
pub enum WireResponse {
    /// Successful return value.
    Ok(Json),
    /// Error.
    Err(RmiError),
}

impl WireResponse {
    /// Wire form: `{"ok": value}` or `{"err": kind, "detail": text}`.
    pub fn to_json(&self) -> Json {
        let mut obj = Map::new();
        match self {
            WireResponse::Ok(v) => {
                obj.insert("ok".into(), v.clone());
            }
            WireResponse::Err(e) => {
                obj.insert("err".into(), Json::from(e.kind()));
                obj.insert("detail".into(), Json::from(e.detail()));
            }
        }
        Json::Object(obj)
    }

    /// Parse the wire form.
    pub fn from_json(v: &Json) -> Result<Self, RmiError> {
        let obj = v
            .as_object()
            .ok_or_else(|| RmiError::Transport("response is not an object".into()))?;
        if let Some(kind) = obj.get("err").and_then(Json::as_str) {
            let detail = obj
                .get("detail")
                .and_then(Json::as_str)
                .unwrap_or("")
                .to_string();
            return Ok(WireResponse::Err(RmiError::from_parts(kind, detail)));
        }
        match obj.get("ok") {
            Some(value) => Ok(WireResponse::Ok(value.clone())),
            None => Err(RmiError::Transport("response missing ok/err".into())),
        }
    }
}

impl From<RmiResult> for WireResponse {
    fn from(r: RmiResult) -> Self {
        match r {
            Ok(v) => WireResponse::Ok(v),
            Err(e) => WireResponse::Err(e),
        }
    }
}

impl From<WireResponse> for RmiResult {
    fn from(w: WireResponse) -> Self {
        match w {
            WireResponse::Ok(v) => Ok(v),
            WireResponse::Err(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jamm_core::json::json;

    #[test]
    fn call_and_response_serialise() {
        let call = MethodCall::new("sensor-manager@h", "start_sensor", json!({"name": "cpu"}));
        let text = call.to_json().to_string();
        let back = MethodCall::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, call);

        let ok: WireResponse = Ok(json!({"started": true})).into();
        let round: RmiResult =
            WireResponse::from_json(&Json::parse(&ok.to_json().to_string()).unwrap())
                .unwrap()
                .into();
        assert_eq!(round.unwrap()["started"], true);

        let err: WireResponse = Err(RmiError::NoSuchService("x".into())).into();
        let round: RmiResult =
            WireResponse::from_json(&Json::parse(&err.to_json().to_string()).unwrap())
                .unwrap()
                .into();
        assert!(matches!(round, Err(RmiError::NoSuchService(ref s)) if s == "x"));
    }

    #[test]
    fn error_display() {
        assert!(RmiError::NoSuchMethod("m".into()).to_string().contains("m"));
        assert!(RmiError::Transport("refused".into())
            .to_string()
            .contains("refused"));
    }

    #[test]
    fn malformed_wire_forms_are_transport_errors() {
        assert!(MethodCall::from_json(&json!({"service": "s"})).is_err());
        assert!(WireResponse::from_json(&json!({"neither": 1})).is_err());
        assert!(WireResponse::from_json(&json!(null)).is_err());
    }
}
