//! Call / response envelopes.

use serde::{Deserialize, Serialize};
use serde_json::Value as Json;

/// A remote method invocation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MethodCall {
    /// Target service (object) name, e.g. `sensor-manager@dpss1.lbl.gov`.
    pub service: String,
    /// Method name, e.g. `start_sensor`.
    pub method: String,
    /// JSON-encoded arguments.
    pub args: Json,
}

impl MethodCall {
    /// Build a call.
    pub fn new(service: impl Into<String>, method: impl Into<String>, args: Json) -> Self {
        MethodCall {
            service: service.into(),
            method: method.into(),
            args,
        }
    }
}

/// Errors surfaced by the invocation layer.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum RmiError {
    /// No service with the requested name is registered.
    NoSuchService(String),
    /// The service exists but does not implement the method.
    NoSuchMethod(String),
    /// The service raised an application-level error.
    Application(String),
    /// The transport failed (connection refused, framing error, ...).
    Transport(String),
}

impl std::fmt::Display for RmiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RmiError::NoSuchService(s) => write!(f, "no such service: {s}"),
            RmiError::NoSuchMethod(m) => write!(f, "no such method: {m}"),
            RmiError::Application(e) => write!(f, "application error: {e}"),
            RmiError::Transport(e) => write!(f, "transport error: {e}"),
        }
    }
}

impl std::error::Error for RmiError {}

/// Result alias for invocations.
pub type RmiResult = Result<Json, RmiError>;

/// Wire representation of a response (so transports can serialise it).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WireResponse {
    /// Successful return value.
    Ok(Json),
    /// Error.
    Err(RmiError),
}

impl From<RmiResult> for WireResponse {
    fn from(r: RmiResult) -> Self {
        match r {
            Ok(v) => WireResponse::Ok(v),
            Err(e) => WireResponse::Err(e),
        }
    }
}

impl From<WireResponse> for RmiResult {
    fn from(w: WireResponse) -> Self {
        match w {
            WireResponse::Ok(v) => Ok(v),
            WireResponse::Err(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    #[test]
    fn call_and_response_serialise() {
        let call = MethodCall::new("sensor-manager@h", "start_sensor", json!({"name": "cpu"}));
        let text = serde_json::to_string(&call).unwrap();
        let back: MethodCall = serde_json::from_str(&text).unwrap();
        assert_eq!(back, call);

        let ok: WireResponse = Ok(json!({"started": true})).into();
        let round: RmiResult = serde_json::from_str::<WireResponse>(
            &serde_json::to_string(&ok).unwrap(),
        )
        .unwrap()
        .into();
        assert_eq!(round.unwrap()["started"], true);

        let err: WireResponse = Err(RmiError::NoSuchService("x".into())).into();
        let round: RmiResult = err.into();
        assert!(matches!(round, Err(RmiError::NoSuchService(_))));
    }

    #[test]
    fn error_display() {
        assert!(RmiError::NoSuchMethod("m".into()).to_string().contains("m"));
        assert!(RmiError::Transport("refused".into()).to_string().contains("refused"));
    }
}
