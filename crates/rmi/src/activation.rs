//! Activation: services constructed on first call, retired when idle.
//!
//! "Activatable RMI objects can be loaded and run simply by invoking one of
//! their methods, and will unload themselves automatically after a period of
//! inactivity." (§3)

use std::collections::HashMap;
use std::sync::Arc;

use jamm_core::json::Json;
use jamm_core::sync::Mutex;

use crate::bus::Service;
use crate::message::{MethodCall, RmiError, RmiResult};

type Factory = Box<dyn Fn() -> Arc<dyn Service> + Send + Sync>;

struct Activatable {
    factory: Factory,
    instance: Option<Arc<dyn Service>>,
    last_used_us: u64,
    idle_timeout_us: u64,
    activations: u64,
}

/// A registry of activatable services.
///
/// Time is passed in explicitly (microseconds) so the registry works with
/// both wall-clock time and the simulator's clock.
#[derive(Default)]
pub struct ActivationRegistry {
    services: Mutex<HashMap<String, Activatable>>,
}

impl std::fmt::Debug for ActivationRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ActivationRegistry({} services)",
            self.services.lock().len()
        )
    }
}

impl ActivationRegistry {
    /// Create an empty registry.
    pub fn new() -> Self {
        ActivationRegistry::default()
    }

    /// Register a factory for an activatable service.
    pub fn register<F>(&self, name: impl Into<String>, idle_timeout_us: u64, factory: F)
    where
        F: Fn() -> Arc<dyn Service> + Send + Sync + 'static,
    {
        self.services.lock().insert(
            name.into(),
            Activatable {
                factory: Box::new(factory),
                instance: None,
                last_used_us: 0,
                idle_timeout_us,
                activations: 0,
            },
        );
    }

    /// Invoke a method, activating the service if necessary.
    pub fn invoke(&self, call: &MethodCall, now_us: u64) -> RmiResult {
        let service = {
            let mut services = self.services.lock();
            let entry = services
                .get_mut(&call.service)
                .ok_or_else(|| RmiError::NoSuchService(call.service.clone()))?;
            if entry.instance.is_none() {
                entry.instance = Some((entry.factory)());
                entry.activations += 1;
            }
            entry.last_used_us = now_us;
            entry.instance.as_ref().expect("just activated").clone()
        };
        service.call(&call.method, &call.args)
    }

    /// Unload services idle longer than their timeout.  Returns how many were
    /// deactivated.
    pub fn reap_idle(&self, now_us: u64) -> usize {
        let mut reaped = 0;
        for entry in self.services.lock().values_mut() {
            if entry.instance.is_some()
                && now_us.saturating_sub(entry.last_used_us) >= entry.idle_timeout_us
            {
                entry.instance = None;
                reaped += 1;
            }
        }
        reaped
    }

    /// Whether a service currently has a live instance.
    pub fn is_active(&self, name: &str) -> bool {
        self.services
            .lock()
            .get(name)
            .is_some_and(|e| e.instance.is_some())
    }

    /// How many times a service has been (re)activated.
    pub fn activation_count(&self, name: &str) -> u64 {
        self.services.lock().get(name).map_or(0, |e| e.activations)
    }

    /// Dispatch helper so an activation registry can itself be used where a
    /// plain bus invocation is expected (with an externally supplied clock).
    pub fn invoke_json(&self, service: &str, method: &str, args: Json, now_us: u64) -> RmiResult {
        self.invoke(&MethodCall::new(service, method, args), now_us)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bus::FnService;
    use jamm_core::json::json;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn counting_registry() -> (Arc<AtomicU64>, ActivationRegistry) {
        let constructed = Arc::new(AtomicU64::new(0));
        let reg = ActivationRegistry::new();
        let c = Arc::clone(&constructed);
        reg.register("gateway@gw1", 1_000_000, move || {
            c.fetch_add(1, Ordering::Relaxed);
            Arc::new(FnService(|method: &str, args: &Json| match method {
                "ping" => Ok(json!("pong")),
                "echo" => Ok(args.clone()),
                m => Err(RmiError::NoSuchMethod(m.to_string())),
            }))
        });
        (constructed, reg)
    }

    #[test]
    fn first_call_activates_and_later_calls_reuse() {
        let (constructed, reg) = counting_registry();
        assert!(!reg.is_active("gateway@gw1"));
        assert_eq!(
            reg.invoke_json("gateway@gw1", "ping", json!(null), 0)
                .unwrap(),
            json!("pong")
        );
        assert!(reg.is_active("gateway@gw1"));
        reg.invoke_json("gateway@gw1", "echo", json!(7), 10)
            .unwrap();
        assert_eq!(constructed.load(Ordering::Relaxed), 1, "constructed once");
        assert_eq!(reg.activation_count("gateway@gw1"), 1);
    }

    #[test]
    fn idle_services_unload_and_reactivate_on_demand() {
        let (constructed, reg) = counting_registry();
        reg.invoke_json("gateway@gw1", "ping", json!(null), 0)
            .unwrap();
        // Not yet idle long enough.
        assert_eq!(reg.reap_idle(500_000), 0);
        assert!(reg.is_active("gateway@gw1"));
        // Idle past the timeout: unloaded.
        assert_eq!(reg.reap_idle(2_000_000), 1);
        assert!(!reg.is_active("gateway@gw1"));
        // Next call transparently reactivates.
        reg.invoke_json("gateway@gw1", "ping", json!(null), 3_000_000)
            .unwrap();
        assert_eq!(constructed.load(Ordering::Relaxed), 2);
        assert_eq!(reg.activation_count("gateway@gw1"), 2);
    }

    #[test]
    fn unknown_service_errors() {
        let (_, reg) = counting_registry();
        assert!(matches!(
            reg.invoke_json("missing", "ping", json!(null), 0),
            Err(RmiError::NoSuchService(_))
        ));
    }
}
