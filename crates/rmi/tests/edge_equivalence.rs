//! Property: broadcast-over-reactor is byte-identical to the
//! thread-per-connection baseline it replaced.
//!
//! For random event batches and every ULM wire format, the stream an
//! [`EventEdge`] subscriber receives (events batched, encoded once,
//! written N times from one loop thread) must equal, byte for byte, what
//! the old model produces: one blocking thread per connection, encoding
//! the stream separately for its socket.  If framing, batching, partial
//! writes or broadcast ordering ever corrupt or reorder the stream, the
//! comparison fails and prints the replayable case seed.

use jamm_core::check::{forall, Gen};
use jamm_gateway::{EventGateway, GatewayConfig};
use jamm_reactor::{Reactor, ReactorConfig};
use jamm_rmi::edge::{EdgeConfig, EventEdge};
use jamm_ulm::codec::{codec_for, ALL, BINARY};
use jamm_ulm::{Event, Level, SharedEvent, Timestamp};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

const SUBSCRIBERS: usize = 3;
const ALPHA: &str = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";

fn arb_event(g: &mut Gen, i: u64) -> Event {
    let mut b = Event::builder(
        format!("prog_{}", g.string_from(ALPHA, 6)),
        format!("host{}.lbl.gov", g.u64(8)),
    )
    .level(g.choice(&[Level::Usage, Level::Debug, Level::Warning, Level::Error]))
    .event_type({
        let len = g.usize_in(3, 12);
        g.string_from(ALPHA, len)
    })
    .timestamp(Timestamp::from_micros(
        954_400_000_000_000 + i * 1_000 + g.u64(999),
    ));
    for _ in 0..g.usize_in(0, 4) {
        let len = g.usize_in(1, 8);
        let name = g.string_from(ALPHA, len).to_uppercase();
        if g.bool(0.5) {
            b = b.field(name, g.u64(1_000_000));
        } else {
            b = b.field(name, g.printable_string(24));
        }
    }
    b.build()
}

/// The old network edge: a blocking writer thread per connection, each
/// encoding the whole stream for its own socket.
fn thread_per_connection_stream(events: &[Event], content_type: &'static str) -> Vec<Vec<u8>> {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let events: Arc<Vec<Event>> = Arc::new(events.to_vec());
    let server = std::thread::spawn(move || {
        let mut handles = Vec::new();
        for _ in 0..SUBSCRIBERS {
            let (mut conn, _) = listener.accept().unwrap();
            let events = Arc::clone(&events);
            handles.push(std::thread::spawn(move || {
                let codec = codec_for(content_type).unwrap();
                for ev in events.iter() {
                    conn.write_all(&codec.encode(ev)).unwrap();
                    if content_type != BINARY {
                        conn.write_all(b"\n").unwrap();
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    });
    let mut received = Vec::new();
    let mut conns: Vec<TcpStream> = (0..SUBSCRIBERS)
        .map(|_| TcpStream::connect(addr).unwrap())
        .collect();
    for c in &mut conns {
        c.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
        let mut buf = Vec::new();
        c.read_to_end(&mut buf).unwrap();
        received.push(buf);
    }
    server.join().unwrap();
    received
}

/// The new edge: events published once at the gateway, batched and
/// encoded once on the pump, broadcast to every reactor connection.
fn reactor_edge_stream(events: &[Event], content_type: &'static str) -> Vec<Vec<u8>> {
    let reactor = Arc::new(Reactor::start(ReactorConfig::default()).unwrap());
    let gateway = Arc::new(EventGateway::new(GatewayConfig::open("prop")));
    let mut edge = EventEdge::open(
        Arc::clone(&reactor),
        Arc::clone(&gateway),
        EdgeConfig {
            content_type: content_type.to_string(),
            ..EdgeConfig::default()
        },
    )
    .unwrap();

    let mut conns: Vec<TcpStream> = (0..SUBSCRIBERS)
        .map(|_| TcpStream::connect(edge.addr()).unwrap())
        .collect();
    let deadline = Instant::now() + Duration::from_secs(30);
    while edge.subscribers() < SUBSCRIBERS {
        assert!(Instant::now() < deadline, "subscribers never registered");
        std::thread::sleep(Duration::from_millis(1));
    }

    let shared: Vec<SharedEvent> = events.iter().cloned().map(Arc::new).collect();
    gateway.publish_shared_batch(&shared);

    let codec = codec_for(content_type).unwrap();
    let newline = usize::from(content_type != BINARY);
    let expected: usize = events.iter().map(|e| codec.encode(e).len() + newline).sum();
    let mut received = Vec::new();
    for c in &mut conns {
        c.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
        let mut buf = vec![0u8; expected];
        c.read_exact(&mut buf).unwrap();
        received.push(buf);
    }
    edge.stop();
    reactor.shutdown();
    received
}

#[test]
fn reactor_broadcast_matches_thread_per_connection_baseline() {
    forall("edge stream equivalence", 8, |g| {
        let n = g.usize_in(1, 32);
        let events: Vec<Event> = (0..n as u64).map(|i| arb_event(g, i)).collect();
        let content_type: &'static str = g.choice(&ALL);

        let baseline = thread_per_connection_stream(&events, content_type);
        let edge = reactor_edge_stream(&events, content_type);

        for (i, (b, e)) in baseline.iter().zip(&edge).enumerate() {
            assert_eq!(b, e, "subscriber {i} diverged ({content_type}, {n} events)");
        }
        // And every subscriber of either transport saw the same bytes.
        assert!(baseline.windows(2).all(|w| w[0] == w[1]));
        assert!(edge.windows(2).all(|w| w[0] == w[1]));
    });
}
