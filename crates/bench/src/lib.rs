//! # jamm-bench — experiment harness
//!
//! One bench target per figure / reported result of the paper (see
//! DESIGN.md's experiment index and EXPERIMENTS.md for the recorded
//! outcomes).  The scenario-scale experiments print the regenerated series
//! alongside the paper's reported values; the micro-benchmarks use Criterion.
//!
//! This library holds the small shared helpers the bench targets use for
//! consistent output formatting, plus [`harness`], the criterion-compatible
//! micro-benchmark driver the `[[bench]]` targets run on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;

/// Print a standard experiment header.
pub fn header(experiment: &str, paper_artifact: &str) {
    println!("==============================================================");
    println!("{experiment}");
    println!("reproduces: {paper_artifact}");
    println!("==============================================================");
}

/// Print one "paper vs measured" comparison row.
pub fn compare_row(metric: &str, paper: &str, measured: &str) {
    println!("  {metric:<44} paper: {paper:<18} measured: {measured}");
}

/// Print a plain data row (for regenerated series).
pub fn data_row(cols: &[String]) {
    println!("  {}", cols.join("  "));
}

/// Format a floating-point series compactly.
pub fn fmt_series(series: &[(f64, f64)]) -> String {
    series
        .iter()
        .map(|(x, y)| format!("({x:.0},{y:.1})"))
        .collect::<Vec<_>>()
        .join(" ")
}

#[cfg(test)]
mod tests {
    #[test]
    fn formatting_helpers_do_not_panic() {
        super::header("E0", "nothing");
        super::compare_row("metric", "1", "2");
        super::data_row(&["a".into(), "b".into()]);
        assert_eq!(super::fmt_series(&[(1.0, 2.0)]), "(1,2.0)");
    }
}
