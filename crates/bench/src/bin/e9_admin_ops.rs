//! E9 — §6 administrative effort: manual monitoring vs JAMM.
//!
//! Paper: "One would need to have an account on every system, with superuser
//! privileges (to run the tcpdump sensor), and log into every system (13 in
//! this example) and start every sensor by hand, and then copy the results
//! to one place for analysis. ...  Using JAMM, all that is required is for
//! the application user to start up a consumer and subscribe to the relevant
//! sensor data."
//!
//! ```text
//! cargo run --release -p jamm-bench --bin e9_admin_ops
//! ```

use jamm::admin::{jamm_effort, manual_effort, matisse_comparison};
use jamm_bench::{compare_row, data_row, header};

fn main() {
    header(
        "E9: operations needed to run one monitored analysis",
        "section 6 closing argument (13 hosts by hand vs one JAMM subscription)",
    );

    let (manual, jamm) = matisse_comparison();
    println!("\nMATISSE analysis (13 hosts, ~5 sensors each, tcpdump needs root):\n");
    data_row(&[
        format!("{:<28}", "operation"),
        format!("{:>10}", "manual"),
        format!("{:>10}", "with JAMM"),
    ]);
    for (label, m, j) in [
        (
            "accounts required",
            manual.accounts_required,
            jamm.accounts_required,
        ),
        ("interactive logins", manual.logins, jamm.logins),
        (
            "privileged (root) operations",
            manual.privileged_ops,
            jamm.privileged_ops,
        ),
        (
            "sensors started by hand",
            manual.manual_sensor_starts,
            jamm.manual_sensor_starts,
        ),
        ("result files copied", manual.file_copies, jamm.file_copies),
        (
            "consumer subscriptions",
            manual.subscriptions,
            jamm.subscriptions,
        ),
    ] {
        data_row(&[
            format!("{label:<28}"),
            format!("{m:>10}"),
            format!("{j:>10}"),
        ]);
    }
    println!();
    compare_row(
        "total operations for one analysis",
        "\"clearly more work than most users will do\"",
        &format!(
            "{} manual vs {} with JAMM",
            manual.total_ops(),
            jamm.total_ops()
        ),
    );

    println!("\nhow the manual effort scales with system size (JAMM stays constant):\n");
    data_row(&[
        format!("{:>8}", "hosts"),
        format!("{:>14}", "manual ops"),
        format!("{:>14}", "JAMM ops"),
    ]);
    for hosts in [2usize, 4, 8, 13, 32, 64, 128] {
        data_row(&[
            format!("{hosts:>8}"),
            format!("{:>14}", manual_effort(hosts, 5, 1).total_ops()),
            format!("{:>14}", jamm_effort(2).total_ops()),
        ]);
    }
}
