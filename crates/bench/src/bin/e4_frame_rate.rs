//! E4 — §6 bursty frame delivery.
//!
//! Paper: "Performance from the point of view of the client was quite
//! bursty.  Sometimes images arrived at 6 frames/sec, and other times only
//! 1-2 frames/sec."  This binary regenerates the per-second frame-rate
//! series for the 4-server WAN configuration and, for contrast, the
//! single-server work-around.
//!
//! ```text
//! cargo run --release -p jamm-bench --bin e4_frame_rate
//! ```

use jamm_bench::{compare_row, header};
use jamm_netsim::player::PlayerConfig;
use jamm_netsim::scenario::{MatisseConfig, MatisseScenario, TUNED_RCV_WINDOW};

fn run(servers: usize, secs: f64) -> (Vec<(f64, f64)>, f64) {
    let mut scenario = MatisseScenario::new(MatisseConfig {
        dpss_servers: servers,
        wan: true,
        seed: 2000,
        rcv_window: TUNED_RCV_WINDOW,
        player: PlayerConfig::default(),
    });
    scenario.run_secs(secs);
    let total_us = (secs * 1e6) as u64;
    (
        scenario.player.frame_rate_series(total_us, 1_000_000),
        scenario.aggregate_mbps(),
    )
}

fn main() {
    header(
        "E4: frame delivery rate over time (MATISSE over Supernet)",
        "section 6: 'sometimes 6 frames/sec, other times only 1-2 frames/sec'",
    );

    let secs = 40.0;
    let (series4, mbps4) = run(4, secs);
    let (series1, mbps1) = run(1, secs);

    println!("\nper-second frame rate, 4 DPSS servers (the demo configuration):\n");
    println!("  sec   frames/s");
    for (t, fps) in &series4 {
        let bar = "*".repeat((*fps).round() as usize);
        println!("  {t:>4.0}  {fps:>5.1}  {bar}");
    }

    let rates: Vec<f64> = series4.iter().skip(2).map(|&(_, f)| f).collect();
    let max = rates.iter().cloned().fold(0.0, f64::max);
    let min = rates.iter().cloned().fold(f64::INFINITY, f64::min);
    let mean = rates.iter().sum::<f64>() / rates.len().max(1) as f64;
    let mean1: f64 = {
        let r: Vec<f64> = series1.iter().skip(2).map(|&(_, f)| f).collect();
        r.iter().sum::<f64>() / r.len().max(1) as f64
    };

    println!("\npaper vs measured:\n");
    compare_row(
        "frame rate variability (4 servers, WAN)",
        "bursty, 1-6 frames/s",
        &format!("{min:.0}-{max:.0} frames/s, mean {mean:.1}"),
    );
    compare_row(
        "aggregate throughput (4 servers)",
        "~30 Mbit/s",
        &format!("{mbps4:.1} Mbit/s"),
    );
    compare_row(
        "single-server work-around",
        "throughput recovers to ~140 Mbit/s",
        &format!("{mbps1:.1} Mbit/s, {mean1:.1} frames/s"),
    );
}
