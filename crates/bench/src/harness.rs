//! A criterion-compatible micro-benchmark harness.
//!
//! The build environment has no crate registry, so this module provides
//! the slice of the Criterion API the bench targets use — `Criterion`,
//! `Bencher::iter`, benchmark groups with parameterised ids, and the
//! `criterion_group!` / `criterion_main!` macros — backed by plain
//! `std::time::Instant` sampling.  Results print one line per benchmark
//! (median ns/iter with min..max spread) and, when the
//! `JAMM_BENCH_JSON` environment variable names a file, are also written
//! there as one JSON document covering every group in the bench target
//! (bench targets sharing one path overwrite each other — point each
//! target at its own file).  The committed baselines (e.g.
//! `BENCH_e5.json`) are recorded this way.

use std::time::Instant;

/// Re-export so `use jamm_bench::harness::black_box` mirrors criterion.
pub use std::hint::black_box;

/// One recorded benchmark result, in nanoseconds per iteration.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark id (function name, possibly `/parameter`).
    pub name: String,
    /// Median ns per iteration across samples.
    pub median_ns: f64,
    /// Fastest sample.
    pub min_ns: f64,
    /// Slowest sample.
    pub max_ns: f64,
    /// Number of samples taken.
    pub samples: usize,
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
    results: Vec<BenchResult>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 50,
            results: Vec::new(),
        }
    }
}

impl Criterion {
    /// Set how many timed samples each benchmark takes.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(5);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let result = run_bench(name, self.sample_size, &mut routine);
        print_result(&result);
        self.results.push(result);
        self
    }

    /// Start a named group of parameterised benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }

    /// All results recorded so far.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Write results as JSON to the file named by `JAMM_BENCH_JSON`, if set.
    /// Called by `criterion_main!` at exit with the merged results of every
    /// group, so one bench target produces one document.
    pub fn finalize(&self, target: &str) {
        write_json(&self.results, target);
    }
}

/// Write a result set as one JSON document to `JAMM_BENCH_JSON`, if set.
pub fn write_json(results: &[BenchResult], target: &str) {
    let Ok(path) = std::env::var("JAMM_BENCH_JSON") else {
        return;
    };
    {
        let mut entries = String::new();
        for (i, r) in results.iter().enumerate() {
            if i > 0 {
                entries.push(',');
            }
            entries.push_str(&format!(
                "\n    {{\"name\": \"{}\", \"median_ns\": {:.1}, \"min_ns\": {:.1}, \"max_ns\": {:.1}, \"samples\": {}}}",
                r.name.replace('"', "'"),
                r.median_ns,
                r.min_ns,
                r.max_ns,
                r.samples
            ));
        }
        let doc = format!(
            "{{\n  \"target\": \"{target}\",\n  \"unit\": \"ns/iter\",\n  \"results\": [{entries}\n  ]\n}}\n"
        );
        if let Err(e) = std::fs::write(&path, doc) {
            eprintln!("could not write {path}: {e}");
        }
    }
}

/// A group of related benchmarks, usually swept over a parameter.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Run one parameterised benchmark in the group.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.0);
        let sample_size = self.criterion.sample_size;
        let result = run_bench(&full, sample_size, &mut |b| routine(b, input));
        print_result(&result);
        self.criterion.results.push(result);
        self
    }

    /// End the group (accounting only; nothing to flush).
    pub fn finish(self) {}
}

/// Identifier distinguishing benchmarks within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Use the parameter's display form as the id.
    pub fn from_parameter(p: impl std::fmt::Display) -> Self {
        BenchmarkId(p.to_string())
    }

    /// An explicit function-name/parameter id.
    pub fn new(function: impl Into<String>, p: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{}/{p}", function.into()))
    }
}

/// Passed to the benchmark routine; [`Bencher::iter`] times the closure.
pub struct Bencher {
    /// (iterations, elapsed ns) per sample, filled by `iter`.
    samples: Vec<(u64, u128)>,
    sample_size: usize,
}

impl Bencher {
    /// Time `f`, running enough iterations per sample for a stable reading.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm-up and calibration: find an iteration count that runs for
        // roughly a millisecond per sample.
        let mut iters_per_sample = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            let elapsed = start.elapsed().as_nanos();
            if elapsed > 1_000_000 || iters_per_sample >= 1 << 20 {
                break;
            }
            iters_per_sample *= 4;
        }
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            self.samples
                .push((iters_per_sample, start.elapsed().as_nanos()));
        }
    }
}

fn run_bench(name: &str, sample_size: usize, routine: &mut dyn FnMut(&mut Bencher)) -> BenchResult {
    let mut bencher = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    routine(&mut bencher);
    let mut per_iter: Vec<f64> = bencher
        .samples
        .iter()
        .map(|&(iters, ns)| ns as f64 / iters.max(1) as f64)
        .collect();
    if per_iter.is_empty() {
        per_iter.push(0.0);
    }
    per_iter.sort_by(|a, b| a.total_cmp(b));
    BenchResult {
        name: name.to_string(),
        median_ns: per_iter[per_iter.len() / 2],
        min_ns: *per_iter.first().expect("non-empty"),
        max_ns: *per_iter.last().expect("non-empty"),
        samples: per_iter.len(),
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

fn print_result(r: &BenchResult) {
    println!(
        "{:<50} time: [{} .. {} .. {}]",
        r.name,
        fmt_ns(r.min_ns),
        fmt_ns(r.median_ns),
        fmt_ns(r.max_ns)
    );
}

/// Define the benchmark entry group, criterion-style.  Both forms are
/// supported:
///
/// ```ignore
/// criterion_group!(benches, bench_a, bench_b);
/// criterion_group! {
///     name = benches;
///     config = Criterion::default().sample_size(30);
///     targets = bench_a, bench_b
/// }
/// ```
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() -> $crate::harness::Criterion {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
            criterion
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::harness::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Generate `fn main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut all_results: Vec<$crate::harness::BenchResult> = Vec::new();
            $(
                let criterion = $group();
                all_results.extend(criterion.results().iter().cloned());
            )+
            $crate::harness::write_json(&all_results, env!("CARGO_CRATE_NAME"));
        }
    };
}

pub use crate::{criterion_group, criterion_main};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_a_result() {
        let mut c = Criterion::default().sample_size(5);
        c.bench_function("spin", |b| b.iter(|| black_box(3u64).pow(7)));
        let r = &c.results()[0];
        assert_eq!(r.name, "spin");
        assert!(r.min_ns <= r.median_ns && r.median_ns <= r.max_ns);
        assert_eq!(r.samples, 5);
    }

    #[test]
    fn groups_namespace_their_ids() {
        let mut c = Criterion::default().sample_size(5);
        let mut g = c.benchmark_group("group");
        g.bench_with_input(BenchmarkId::from_parameter(8), &8u64, |b, &n| {
            b.iter(|| black_box(n) * 2)
        });
        g.finish();
        assert_eq!(c.results()[0].name, "group/8");
    }
}
