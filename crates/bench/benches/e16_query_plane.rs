//! E16 — the unified query plane: filtered fan-out through compiled
//! plans, pruned historical scans, and allocation-free plan evaluation.
//!
//! Since the query-plane refactor one compiled `jamm_core::query::Plan`
//! answers gateway subscription filters, archive/tsdb scans and directory
//! searches.  This bench records what that buys and guards what it
//! promises:
//!
//! 1. **filtered fan-out** — publish throughput into a gateway whose
//!    subscriptions are opened from query *strings* vs the builder-style
//!    filters (both compile to the same plan, so the numbers must agree);
//! 2. **pruned historical scan** — a selective query (host + severity
//!    floor + time range) against a many-segment archive vs the full
//!    scan, with the pruning counters asserted (the level and series
//!    pruning tiers must actually skip segments);
//! 3. **zero-allocation eval** — steady-state `Plan::eval` performs zero
//!    heap allocations per event, asserted with a counting global
//!    allocator (deterministic; never disabled).
//!
//! Baseline recorded in BENCH_e16.json
//! (JAMM_BENCH_JSON=BENCH_e16.json cargo bench --bench e16_query_plane);
//! JAMM_BENCH_BASELINE=BENCH_e16.json enables the >2x regression guard
//! and JAMM_BENCH_NO_ASSERT downgrades the wall-clock comparisons (the
//! allocation and pruning assertions stay on).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use jamm::jamm_archive::EventArchive;
use jamm::jamm_core::json::{Json, Map};
use jamm::jamm_core::query::Predicate;
use jamm::jamm_gateway::{EventGateway, GatewayConfig};
use jamm::jamm_tsdb::TsdbOptions;
use jamm_bench::{compare_row, data_row, header};
use jamm_ulm::{Event, Level, SharedEvent, Timestamp};

/// Counts every heap allocation so the zero-allocation claim is measured,
/// not asserted from type signatures.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates every operation to the system allocator unchanged;
// the counter is a relaxed atomic increment on the side.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

const HOSTS: [&str; 4] = [
    "dpss1.lbl.gov",
    "dpss2.lbl.gov",
    "mems.cairn.net",
    "portnoy.lbl.gov",
];
const TYPES: [&str; 4] = ["CPU_TOTAL", "MEM_FREE", "TCPD_RETRANSMITS", "PROC_DIED"];

fn sample(i: u64) -> Event {
    Event::builder("vmstat", HOSTS[(i % 4) as usize])
        .level(if i.is_multiple_of(97) {
            Level::Warning
        } else {
            Level::Usage
        })
        .event_type(TYPES[(i % 3) as usize]) // PROC_DIED stays rare
        .timestamp(Timestamp::from_micros(1_000_000_000 + i * 1_000))
        .value((i % 100) as f64)
        .build()
}

fn time<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let t0 = std::time::Instant::now();
    let r = f();
    (r, t0.elapsed().as_secs_f64())
}

fn kevps(n: u64, secs: f64) -> f64 {
    n as f64 / secs.max(1e-9) / 1_000.0
}

/// The subscription mix, once as query strings and once as the equivalent
/// builder chains would express them.
const QUERIES: [&str; 4] = [
    "(type=CPU_TOTAL)",
    "(&(type=MEM_FREE)(val>50))",
    "(&(type=CPU_TOTAL)(host=dpss1.lbl.gov)(onchange))",
    "(&(type=TCPD_RETRANSMITS)(level>=warning))",
];

fn fanout_gateway(n_subs: usize) -> (EventGateway, Vec<jamm::jamm_gateway::Subscription>) {
    let gw = EventGateway::new(GatewayConfig::open("e16"));
    let subs = (0..n_subs)
        .map(|i| {
            gw.subscribe()
                .stream()
                .matching(QUERIES[i % QUERIES.len()])
                .as_consumer(format!("q{i}"))
                .open()
                .expect("query parses")
        })
        .collect();
    (gw, subs)
}

fn main() {
    header(
        "E16: unified query plane — fan-out, pruning, zero-alloc eval",
        "section 2.2 consumer filters + query mode + archive, one compiled IR",
    );

    let n: u64 = 200_000;
    let events: Vec<SharedEvent> = (0..n).map(|i| Arc::new(sample(i))).collect();
    let mut results: Vec<(&str, f64)> = Vec::new();

    // --- 1. filtered fan-out through query-string subscriptions ---
    let (gw, subs) = fanout_gateway(32);
    let (_, secs) = time(|| {
        for chunk in events.chunks(1_000) {
            gw.publish_shared_batch(chunk);
        }
    });
    let delivered: u64 = subs.iter().map(|s| s.delivered()).sum();
    results.push(("publish_query_subs_kev_per_s", kevps(n, secs)));
    results.push(("query_subs_delivered", delivered as f64));
    drop(subs);
    drop(gw);

    // --- 2. pruned historical scan ---
    let archive = EventArchive::in_memory_with(TsdbOptions {
        memtable_max_events: (n / 32) as usize,
        ..TsdbOptions::default()
    });
    for chunk in events.chunks(1_000) {
        archive.try_store_shared_batch(chunk).unwrap();
    }
    archive.seal();
    let segments = archive.tsdb().segment_count() as u64;

    let full: Vec<Event> = archive.query_str("(&)").unwrap();
    assert_eq!(full.len(), n as usize);

    // Timestamps run [1_000_000_000, 1_200_000_000) micros; the floor
    // admits the last three quarters of the time axis.
    let selective = "(&(host=dpss1.lbl.gov)(level>=warning)(time>=1050000000))";
    let s0 = archive.stats().segments_scanned();
    let p0 = archive.stats().segments_pruned();
    let (hits, pruned_secs) = time(|| archive.query_str(selective).unwrap().len());
    let scanned = archive.stats().segments_scanned() - s0;
    let pruned = archive.stats().segments_pruned() - p0;
    assert_eq!(scanned + pruned, segments, "every segment accounted for");
    assert!(
        pruned > 0,
        "the selective query must prune segments (scanned {scanned} of {segments})"
    );
    assert!(hits > 0, "the selective query must still find its events");
    // The severity floor alone must prune: most segments carry only
    // Usage-level readings, and their catalogs' max_level says so.
    let p1 = archive.stats().segments_pruned();
    let warn_hits = archive.query_str("(level>=error)").unwrap().len();
    assert_eq!(warn_hits, 0, "no errors were stored");
    assert!(
        archive.stats().segments_pruned() - p1 == segments,
        "a level floor above everything stored must prune every segment"
    );
    let (full_hits, full_secs) = time(|| archive.query_str("(&)").unwrap().len());
    results.push(("scan_full_kev_per_s", kevps(full_hits as u64, full_secs)));
    results.push(("scan_pruned_ms", pruned_secs * 1e3));
    results.push(("segments_scanned", scanned as f64));
    results.push(("segments_pruned", pruned as f64));
    results.push(("selective_hits", hits as f64));

    // --- 3. zero-allocation plan evaluation ---
    let plan = Predicate::parse("(&(type=CPU_TOTAL)(host=dpss1.lbl.gov)(val>50)(onchange))")
        .unwrap()
        .compile();
    // Warm up: first sightings may intern series keys / grow the state map.
    let mut matches = 0u64;
    for e in events.iter().take(10_000) {
        matches += plan.eval(&**e) as u64;
    }
    let evals: u64 = 1_000_000;
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let (_, eval_secs) = time(|| {
        for _ in 0..(evals / n).max(1) {
            for e in &events {
                matches += plan.eval(&**e) as u64;
            }
        }
    });
    let allocs = ALLOCATIONS.load(Ordering::Relaxed) - before;
    assert_eq!(
        allocs, 0,
        "steady-state Plan::eval must not allocate (saw {allocs} allocations)"
    );
    let evals_done = (evals / n).max(1) * n;
    results.push((
        "plan_eval_mev_per_s",
        kevps(evals_done, eval_secs) / 1_000.0,
    ));
    results.push(("plan_eval_allocations", allocs as f64));
    std::hint::black_box(matches);

    println!("\nmeasured ({n} events, {segments} sealed segments):\n");
    data_row(&[format!("{:<30}", "metric"), format!("{:>14}", "value")]);
    for (k, v) in &results {
        data_row(&[format!("{k:<30}"), format!("{v:>14.1}")]);
    }
    println!();
    compare_row(
        "fan-out via query strings",
        "same plan as builder filters",
        &format!("{:.0}k ev/s into 32 subs", results[0].1),
    );
    compare_row(
        "selective vs full historical scan",
        "host+level+time facts prune",
        &format!("{pruned}/{segments} segments pruned, {hits} hits"),
    );
    compare_row(
        "steady-state plan eval",
        "0 allocations",
        &format!("{allocs} allocations over {evals_done} evals"),
    );
    println!();

    // --- regression guard against the committed baseline ---
    let no_assert = std::env::var_os("JAMM_BENCH_NO_ASSERT").is_some();
    if let Ok(path) = std::env::var("JAMM_BENCH_BASELINE") {
        let root_relative = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join(&path);
        let doc = std::fs::read_to_string(&path)
            .or_else(|_| std::fs::read_to_string(&root_relative))
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        let json = Json::parse(&doc).expect("baseline is valid JSON");
        let obj = json.as_object().expect("baseline is an object");
        let rows = obj
            .get("results")
            .and_then(|r| r.as_object())
            .expect("results object");
        let mut checked = 0;
        for name in [
            "publish_query_subs_kev_per_s",
            "scan_full_kev_per_s",
            "plan_eval_mev_per_s",
        ] {
            let baseline = rows
                .get(name)
                .and_then(|v| v.as_f64())
                .unwrap_or_else(|| panic!("baseline missing {name}"));
            let measured = results
                .iter()
                .find(|(k, _)| *k == name)
                .map(|(_, v)| *v)
                .expect("measured");
            checked += 1;
            println!("  guard {name:<32} baseline {baseline:>10.1}   measured {measured:>10.1}");
            assert!(
                no_assert || measured * 2.0 >= baseline,
                "{name}: measured {measured:.1} is more than 2x below the \
                 committed baseline {baseline:.1} ({path})"
            );
        }
        println!("\n  regression guard: {checked} checks within 2x of baseline\n");
    }

    if let Ok(path) = std::env::var("JAMM_BENCH_JSON") {
        let mut doc = Map::new();
        doc.insert("target".into(), Json::from("e16_query_plane"));
        doc.insert("events".into(), Json::from(n));
        doc.insert("segments".into(), Json::from(segments));
        let mut rows = Map::new();
        for (k, v) in &results {
            rows.insert((*k).into(), Json::from((v * 10.0).round() / 10.0));
        }
        doc.insert("results".into(), Json::Object(rows));
        if let Err(e) = std::fs::write(&path, Json::Object(doc).to_pretty() + "\n") {
            eprintln!("could not write {path}: {e}");
        }
    }
}
