//! E20 — columnar execution + continuous queries: vectorized plan
//! evaluation over column batches, and materialized-view snapshot reads
//! vs rescanning at dashboard fan-in.
//!
//! The columnar refactor gives the query plane two fast paths and this
//! bench guards both:
//!
//! 1. **vectorized eval** — `Plan::eval_batch` over dictionary-encoded
//!    column batches vs per-row `Plan::eval` on the same type/host/
//!    level/VAL mix; the batch path must hold a >= 3x advantage and run
//!    allocation-free in steady state (counting global allocator, never
//!    disabled);
//! 2. **continuous queries** — 32 concurrent readers taking snapshots of
//!    one incrementally-maintained view vs 32 readers re-scanning the
//!    archive for the same predicate; snapshots must be >= 10x faster
//!    per read.
//!
//! Baseline recorded in BENCH_e20.json
//! (JAMM_BENCH_JSON=BENCH_e20.json cargo bench --bench e20_columnar);
//! JAMM_BENCH_BASELINE=BENCH_e20.json enables the >2x regression guard
//! and JAMM_BENCH_NO_ASSERT downgrades the wall-clock comparisons (the
//! allocation assertion stays on).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use jamm::jamm_archive::EventArchive;
use jamm::jamm_core::json::{Json, Map};
use jamm::jamm_core::query::{BatchScratch, ColumnBatch, Predicate, Selection};
use jamm::jamm_gateway::{EventGateway, GatewayConfig};
use jamm::jamm_tsdb::TsdbOptions;
use jamm_bench::{compare_row, data_row, header};
use jamm_ulm::{Event, Level, SharedEvent, Timestamp};

/// Counts every heap allocation so the zero-allocation claim is measured,
/// not asserted from type signatures.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates every operation to the system allocator unchanged;
// the counter is a relaxed atomic increment on the side.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

const HOSTS: [&str; 4] = [
    "dpss1.lbl.gov",
    "dpss2.lbl.gov",
    "mems.cairn.net",
    "portnoy.lbl.gov",
];
const TYPES: [&str; 4] = ["CPU_TOTAL", "MEM_FREE", "TCPD_RETRANSMITS", "PROC_DIED"];

fn sample(i: u64) -> Event {
    Event::builder("vmstat", HOSTS[(i % 4) as usize])
        .level(if i.is_multiple_of(97) {
            Level::Warning
        } else {
            Level::Usage
        })
        .event_type(TYPES[(i % 3) as usize]) // PROC_DIED stays rare
        .timestamp(Timestamp::from_micros(1_000_000_000 + i * 1_000))
        .value((i % 100) as f64)
        .build()
}

fn time<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let t0 = std::time::Instant::now();
    let r = f();
    (r, t0.elapsed().as_secs_f64())
}

fn mevps(n: u64, secs: f64) -> f64 {
    n as f64 / secs.max(1e-9) / 1_000_000.0
}

/// One owned column batch of `ROWS` rows, the shape JSG3 segments decode
/// into; borrows out as a [`ColumnBatch`] per evaluation.
struct OwnedBatch {
    ts: Vec<u64>,
    hosts: Vec<u32>,
    types: Vec<u32>,
    levels: Vec<u8>,
    vals: Vec<f64>,
    present: Vec<u64>,
    dict: Vec<String>,
}

impl OwnedBatch {
    fn view(&self) -> ColumnBatch<'_> {
        ColumnBatch {
            ts_micros: &self.ts,
            host_ids: &self.hosts,
            type_ids: &self.types,
            levels: &self.levels,
            values: &self.vals,
            val_present: &self.present,
            dict: &self.dict,
        }
    }
}

fn columnarize(events: &[Event], rows_per_batch: usize) -> Vec<OwnedBatch> {
    events
        .chunks(rows_per_batch)
        .map(|chunk| {
            let mut b = OwnedBatch {
                ts: Vec::new(),
                hosts: Vec::new(),
                types: Vec::new(),
                levels: Vec::new(),
                vals: Vec::new(),
                present: vec![0u64; chunk.len().div_ceil(64)],
                dict: Vec::new(),
            };
            let id = |dict: &mut Vec<String>, s: &str| -> u32 {
                match dict.iter().position(|d| d == s) {
                    Some(i) => i as u32,
                    None => {
                        dict.push(s.to_string());
                        (dict.len() - 1) as u32
                    }
                }
            };
            for (i, e) in chunk.iter().enumerate() {
                b.ts.push(e.timestamp.as_micros());
                let h = id(&mut b.dict, &e.host);
                b.hosts.push(h);
                let t = id(&mut b.dict, &e.event_type);
                b.types.push(t);
                b.levels.push(e.level.severity());
                match e.value() {
                    Some(v) => {
                        b.vals.push(v);
                        b.present[i / 64] |= 1u64 << (i % 64);
                    }
                    None => b.vals.push(0.0),
                }
            }
            b
        })
        .collect()
}

/// The dashboard predicate every tier answers: a type/host/level/VAL mix.
const QUERY: &str =
    "(&(|(type=CPU_TOTAL)(type=MEM_FREE))(host=dpss1.lbl.gov)(level>=usage)(val>50))";

fn main() {
    header(
        "E20: columnar execution — vectorized eval, view snapshots vs rescan",
        "column batches + continuous queries on the unified plan IR",
    );

    let n: u64 = 200_000;
    let events: Vec<Event> = (0..n).map(sample).collect();
    let shared: Vec<SharedEvent> = events.iter().map(|e| Arc::new(e.clone())).collect();
    let mut results: Vec<(&str, f64)> = Vec::new();
    let no_assert = std::env::var_os("JAMM_BENCH_NO_ASSERT").is_some();

    // --- 1. row-oriented baseline: Plan::eval per event ---
    let plan = Predicate::parse(QUERY).unwrap().compile();
    let passes: u64 = 10;
    let mut row_hits = 0u64;
    for e in events.iter().take(10_000) {
        row_hits += plan.eval(e) as u64; // warm-up
    }
    let (_, row_secs) = time(|| {
        for _ in 0..passes {
            for e in &events {
                row_hits += plan.eval(e) as u64;
            }
        }
    });
    let row_mevps = mevps(passes * n, row_secs);
    results.push(("row_eval_mev_per_s", row_mevps));

    // --- 2. vectorized: Plan::eval_batch over column batches ---
    let batches = columnarize(&events, 4096);
    assert!(
        plan.batch_definite(),
        "the dashboard mix is batch-decidable"
    );
    let mut sel = Selection::new();
    let mut scratch = BatchScratch::new();
    let mut batch_hits = 0u64;
    for b in &batches {
        plan.eval_batch(&b.view(), &mut sel, &mut scratch); // warm-up
        batch_hits += sel.count() as u64;
    }
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let (_, batch_secs) = time(|| {
        for _ in 0..passes {
            for b in &batches {
                plan.eval_batch(&b.view(), &mut sel, &mut scratch);
                batch_hits += sel.count() as u64;
            }
        }
    });
    let allocs = ALLOCATIONS.load(Ordering::Relaxed) - before;
    assert_eq!(
        allocs, 0,
        "steady-state eval_batch must not allocate (saw {allocs} allocations)"
    );
    let batch_mevps = mevps(passes * n, batch_secs);
    let speedup = batch_mevps / row_mevps.max(1e-9);
    results.push(("batch_eval_mev_per_s", batch_mevps));
    results.push(("batch_eval_speedup", speedup));
    results.push(("batch_eval_allocations", allocs as f64));
    // Both evaluators counted the same matches (the plan is stateless and
    // batch-definite, so the selection is exact).
    assert_eq!(batch_hits % (passes + 1), 0);
    assert!(
        no_assert || speedup >= 3.0,
        "vectorized eval must be >= 3x the row path (got {speedup:.1}x: \
         {batch_mevps:.1} vs {row_mevps:.1} Mev/s)"
    );
    std::hint::black_box((row_hits, batch_hits));

    // --- 3. 32 readers: view snapshots vs archive rescans ---
    let archive = Arc::new(EventArchive::in_memory_with(TsdbOptions {
        memtable_max_events: (n / 32) as usize,
        ..TsdbOptions::default()
    }));
    for chunk in shared.chunks(1_000) {
        archive.try_store_shared_batch(chunk).unwrap();
    }
    archive.seal();

    let gw = Arc::new(EventGateway::new(GatewayConfig::open("e20")));
    gw.register_view("dashboard", QUERY).unwrap();
    for chunk in shared.chunks(1_000) {
        gw.publish_shared_batch(chunk);
    }
    gw.views().flush();
    let view = gw.views().by_name("dashboard").unwrap();
    assert!(view.updates() > 0, "the view saw the publish stream");

    const READERS: usize = 32;
    let reads_each: u64 = 2_000;
    let (_, read_secs) = time(|| {
        std::thread::scope(|s| {
            for r in 0..READERS {
                let gw = Arc::clone(&gw);
                s.spawn(move || {
                    let who = format!("dash{r}");
                    for _ in 0..reads_each {
                        let snap = gw.view_snapshot(&who, "dashboard").unwrap();
                        std::hint::black_box(snap.events.len() + snap.aggregates.len());
                    }
                });
            }
        });
    });
    let reads_kops = READERS as f64 * reads_each as f64 / read_secs.max(1e-9) / 1_000.0;

    let scans_each: u64 = 3;
    let (scan_hits, scan_secs) = time(|| {
        let hits = AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..READERS {
                let archive = Arc::clone(&archive);
                let hits = &hits;
                s.spawn(move || {
                    for _ in 0..scans_each {
                        let plan = Predicate::parse(QUERY).unwrap().compile();
                        hits.fetch_add(archive.scan_plan(&plan).count() as u64, Ordering::Relaxed);
                    }
                });
            }
        });
        hits.into_inner()
    });
    assert!(scan_hits > 0, "the rescan tier must find its events");
    let scans_kops = READERS as f64 * scans_each as f64 / scan_secs.max(1e-9) / 1_000.0;
    let view_speedup = reads_kops / scans_kops.max(1e-9);
    results.push(("view_reads_kops_per_s", reads_kops));
    results.push(("rescan_kops_per_s", scans_kops));
    results.push(("view_over_rescan", view_speedup));
    assert!(
        no_assert || view_speedup >= 10.0,
        "view snapshots must be >= 10x rescans at {READERS} readers \
         (got {view_speedup:.1}x: {reads_kops:.1}k vs {scans_kops:.3}k ops/s)"
    );

    println!("\nmeasured ({n} events, {READERS} readers):\n");
    data_row(&[format!("{:<30}", "metric"), format!("{:>14}", "value")]);
    for (k, v) in &results {
        data_row(&[format!("{k:<30}"), format!("{v:>14.1}")]);
    }
    println!();
    compare_row(
        "vectorized vs row-oriented eval",
        ">= 3x on the type/host/level/VAL mix",
        &format!("{speedup:.1}x ({batch_mevps:.0} vs {row_mevps:.0} Mev/s)"),
    );
    compare_row(
        "view snapshots vs rescans (32 readers)",
        ">= 10x per read",
        &format!("{view_speedup:.0}x ({reads_kops:.0}k vs {scans_kops:.2}k ops/s)"),
    );
    compare_row(
        "steady-state eval_batch",
        "0 allocations",
        &format!(
            "{allocs} allocations over {} batches",
            passes * batches.len() as u64
        ),
    );
    println!();

    // --- regression guard against the committed baseline ---
    if let Ok(path) = std::env::var("JAMM_BENCH_BASELINE") {
        let root_relative = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join(&path);
        let doc = std::fs::read_to_string(&path)
            .or_else(|_| std::fs::read_to_string(&root_relative))
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        let json = Json::parse(&doc).expect("baseline is valid JSON");
        let obj = json.as_object().expect("baseline is an object");
        let rows = obj
            .get("results")
            .and_then(|r| r.as_object())
            .expect("results object");
        let mut checked = 0;
        for name in [
            "row_eval_mev_per_s",
            "batch_eval_mev_per_s",
            "view_reads_kops_per_s",
        ] {
            let baseline = rows
                .get(name)
                .and_then(|v| v.as_f64())
                .unwrap_or_else(|| panic!("baseline missing {name}"));
            let measured = results
                .iter()
                .find(|(k, _)| *k == name)
                .map(|(_, v)| *v)
                .expect("measured");
            checked += 1;
            println!("  guard {name:<32} baseline {baseline:>10.1}   measured {measured:>10.1}");
            assert!(
                no_assert || measured * 2.0 >= baseline,
                "{name}: measured {measured:.1} is more than 2x below the \
                 committed baseline {baseline:.1} ({path})"
            );
        }
        println!("\n  regression guard: {checked} checks within 2x of baseline\n");
    }

    if let Ok(path) = std::env::var("JAMM_BENCH_JSON") {
        let mut doc = Map::new();
        doc.insert("target".into(), Json::from("e20_columnar"));
        doc.insert("events".into(), Json::from(n));
        doc.insert("readers".into(), Json::from(READERS as u64));
        let mut rows = Map::new();
        for (k, v) in &results {
            rows.insert((*k).into(), Json::from((v * 10.0).round() / 10.0));
        }
        doc.insert("results".into(), Json::Object(rows));
        if let Err(e) = std::fs::write(&path, Json::Object(doc).to_pretty() + "\n") {
            eprintln!("could not write {path}: {e}");
        }
    }
}
