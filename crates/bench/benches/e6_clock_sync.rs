//! E6 — §4.3 clock synchronisation accuracy.
//!
//! Paper: "By installing a GPS-based NTP server on each subnet ... all the
//! hosts' clocks can be synchronized to within about 0.25 ms.  If the
//! closest time source is several IP router hops away, accuracy may decrease
//! somewhat.  However ... synchronization within 1 ms is accurate enough for
//! many types of analysis."

use jamm_bench::{compare_row, data_row, header};
use jamm_netlogger::clock::{skew_events, HostClock, NtpSimulation};
use jamm_netlogger::merge::{inversion_count, merge_logs};
use jamm_ulm::{Event, Level, Timestamp};

fn request_pair(us: u64) -> (Vec<Event>, Vec<Event>) {
    let mk = |host: &str, ty: &str, t: u64| {
        Event::builder("app", host)
            .level(Level::Usage)
            .event_type(ty)
            .timestamp(Timestamp::from_micros(t))
            .build()
    };
    (
        vec![
            mk("client", "REQ_SENT", us),
            mk("client", "RESP_RECV", us + 4_000),
        ],
        vec![
            mk("server", "REQ_RECV", us + 1_000),
            mk("server", "RESP_SENT", us + 3_000),
        ],
    )
}

fn main() {
    header(
        "E6: NTP clock-synchronisation accuracy vs distance to the time source",
        "section 4.3 (0.25 ms with GPS on the subnet; ~1 ms acceptable)",
    );

    println!("\nresidual clock error after 60 NTP polling rounds, by hop count:\n");
    data_row(&[
        format!("{:>18}", "hops to source"),
        format!("{:>18}", "worst error (ms)"),
    ]);
    let mut residual_by_hops = Vec::new();
    for hops in [0u32, 1, 2, 3, 5, 8] {
        let mut sim = NtpSimulation::new(1_000 + hops as u64);
        for i in 0..8 {
            sim.add_host(
                format!("host{i}"),
                200_000.0 * ((i % 5) as f64 - 2.0),
                40.0,
                hops,
            );
        }
        sim.run(60);
        let worst_ms = sim.worst_offset_us() / 1_000.0;
        residual_by_hops.push((hops, worst_ms));
        data_row(&[format!("{hops:>18}"), format!("{worst_ms:>18.3}")]);
    }

    println!("\npaper vs measured:\n");
    compare_row(
        "GPS NTP server on the subnet (0 hops)",
        "~0.25 ms",
        &format!("{:.3} ms", residual_by_hops[0].1),
    );
    compare_row(
        "time source several hops away",
        "accuracy decreases somewhat",
        &format!("{:.3} ms at 5 hops", residual_by_hops[4].1),
    );

    // And the reason it matters: an 8 ms skew breaks lifeline causality.
    let (client, server) = request_pair(1_000_000);
    let good = merge_logs(&[client.clone(), server.clone()]);
    let skewed = merge_logs(&[
        client,
        skew_events(&server, "server", &HostClock::new(-8_000.0, 0.0)),
    ]);
    compare_row(
        "lifeline causality with synchronised clocks",
        "analysable",
        &format!("{} ordering inversions", inversion_count(&good)),
    );
    compare_row(
        "lifeline causality with an 8 ms skew",
        "misleading",
        &format!(
            "request appears to arrive before it was sent ({} events reordered)",
            skewed
                .iter()
                .take_while(|e| e.event_type != "REQ_SENT")
                .count()
        ),
    );
}
