//! E10 — §2.2 gateway filtering and summary data.
//!
//! Paper: "the netstat sensor may output the value of the TCP retransmission
//! counter every second, but most consumers only want to be notified when
//! the counter changes"; "a consumer can also request that an event be sent
//! only if its value crosses a certain threshold ... CPU load becomes
//! greater than 50%, or if load changes by more than 20%"; "it can compute
//! 1, 10, and 60 minute averages of CPU usage".
//!
//! The report measures the delivered-volume reduction of each filter on a
//! realistic sensor stream; the Criterion benches measure per-event filter
//! and summary-engine costs.

use jamm_bench::harness::{criterion_group, criterion_main, Criterion};
use jamm_bench::{compare_row, header};
use jamm_core::rng::Rng;
use jamm_gateway::summary::{SummaryEngine, SummaryWindow};
use jamm_gateway::{EventFilter, EventGateway, GatewayConfig};
use jamm_ulm::{Event, Level, Timestamp};

/// A realistic hour of 1 Hz sensor readings: CPU load wandering around 35%
/// with occasional bursts, and a retransmission counter that only changes
/// during the bursts.
fn sensor_stream() -> Vec<Event> {
    let mut rng = Rng::seed_from_u64(10);
    let mut events = Vec::new();
    let mut retrans_counter = 0u64;
    let mut load = 30.0f64;
    for t in 0..3_600u64 {
        let bursting = (600..700).contains(&t) || (2_000..2_150).contains(&t);
        load += rng.gen_range(-3.0..3.0) + if bursting { 10.0 } else { 0.0 };
        load = load.clamp(2.0, 98.0);
        if !bursting {
            load = load.min(49.0);
        }
        events.push(
            Event::builder("vmstat", "mems.cairn.net")
                .level(Level::Usage)
                .event_type("CPU_TOTAL")
                .timestamp(Timestamp::from_secs(1_000 + t))
                .value(load)
                .build(),
        );
        if bursting && rng.gen_bool(0.3) {
            retrans_counter += rng.gen_range(1u64..4);
        }
        events.push(
            Event::builder("netstat", "mems.cairn.net")
                .level(Level::Usage)
                .event_type("NETSTAT_RETRANS")
                .timestamp(Timestamp::from_secs(1_000 + t))
                .value(retrans_counter)
                .build(),
        );
    }
    events
}

fn delivered_with(filters: Vec<EventFilter>, stream: &[Event]) -> usize {
    let gw = EventGateway::new(GatewayConfig::open("gw"));
    let sub = gw
        .subscribe()
        .stream()
        .filters(filters)
        .as_consumer("c")
        .open()
        .unwrap();
    for e in stream {
        gw.publish(e);
    }
    sub.events.try_iter().count()
}

fn report(stream: &[Event]) {
    header(
        "E10: event-volume reduction from gateway filters and summaries",
        "section 2.2 gateway filtering (on-change, thresholds, 1/10/60-minute averages)",
    );
    let total = stream.len();
    let unfiltered = delivered_with(vec![], stream);
    let on_change = delivered_with(
        vec![
            EventFilter::EventTypes(vec!["NETSTAT_RETRANS".into()]),
            EventFilter::OnChange,
        ],
        stream,
    );
    let raw_counter = delivered_with(
        vec![EventFilter::EventTypes(vec!["NETSTAT_RETRANS".into()])],
        stream,
    );
    let above_50 = delivered_with(
        vec![
            EventFilter::EventTypes(vec!["CPU_TOTAL".into()]),
            EventFilter::Above(50.0),
        ],
        stream,
    );
    let change_20pct = delivered_with(
        vec![
            EventFilter::EventTypes(vec!["CPU_TOTAL".into()]),
            EventFilter::RelativeChange(0.2),
        ],
        stream,
    );

    println!("\none hour of 1 Hz CPU + netstat readings ({total} events published):\n");
    compare_row(
        "no filter",
        "every event delivered",
        &format!("{unfiltered} events"),
    );
    compare_row(
        "retransmission counter, on-change only",
        "most samples suppressed",
        &format!(
            "{on_change} of {raw_counter} counter readings ({:.1}%)",
            100.0 * on_change as f64 / raw_counter as f64
        ),
    );
    compare_row(
        "CPU load > 50% threshold",
        "only the interesting readings",
        &format!("{above_50} events"),
    );
    compare_row(
        "CPU load changes by > 20%",
        "only significant changes",
        &format!("{change_20pct} events"),
    );

    // Summary data: the 1/10/60 minute averages.
    let mut engine = SummaryEngine::new();
    for e in stream {
        engine.record(e);
    }
    let now = Timestamp::from_secs(1_000 + 3_600);
    let summaries = engine.summary_events(&SummaryWindow::all(), now, "gw");
    compare_row(
        "summary service output",
        "1, 10 and 60 minute averages",
        &format!(
            "{} summary events replace {} raw readings",
            summaries.len(),
            total
        ),
    );
    println!();
}

fn bench_filters_and_summaries(c: &mut Criterion) {
    let stream = sensor_stream();
    report(&stream);

    c.bench_function("gateway_publish_with_threshold_filter", |b| {
        let gw = EventGateway::new(GatewayConfig::open("gw"));
        let _sub = gw
            .subscribe()
            .filter(EventFilter::Above(50.0))
            .as_consumer("c")
            .open()
            .unwrap();
        let mut i = 0usize;
        b.iter(|| {
            gw.publish(std::hint::black_box(&stream[i % stream.len()]));
            i += 1;
        });
    });

    c.bench_function("summary_engine_record", |b| {
        let mut engine = SummaryEngine::new();
        let mut i = 0usize;
        b.iter(|| {
            engine.record(std::hint::black_box(&stream[i % stream.len()]));
            i += 1;
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_filters_and_summaries
}
criterion_main!(benches);
