//! E15 — the zero-copy event pipeline.
//!
//! The paper's scaling claim is that "added consumers load the gateway
//! rather than the monitored host" (§2.3).  PR 3 made fan-out *lookups*
//! O(1); this bench proves the remaining per-subscriber cost is gone too:
//! publishing a `SharedEvent` to N subscribers performs **zero** event
//! deep-clones (fan-out bumps `Arc` refcounts), the archiver ingests the
//! same shared allocations, and the text encoder reuses one buffer
//! instead of allocating per line.
//!
//! Three measurements:
//!
//! 1. **fan-out sweep** — publish throughput at 1 → 256 wildcard
//!    subscribers on the shared (`publish_shared`) and by-value
//!    (`publish`) paths, with `jamm_ulm::deep_clone_count()` /
//!    `deep_clone_bytes()` deltas recorded across each timed loop.  The
//!    shared path must copy **nothing**; the by-value path copies exactly
//!    once per publish (its entry allocation), never per subscriber.
//! 2. **publish → deliver → archive** — the full pipeline with an
//!    archiver draining into the segmented store, still at zero copies.
//! 3. **encode reuse** — `text::encode` (fresh `String` per line) vs
//!    `text::encode_into` (one reused buffer).
//!
//! Baseline recorded in BENCH_e15.json (JAMM_BENCH_JSON=BENCH_e15.json
//! cargo bench --bench e15_zero_copy).  With JAMM_BENCH_BASELINE pointing
//! at the committed baseline, the run **fails** if throughput regresses
//! by more than 2x — the CI regression guard.  The zero-copy assertions
//! are deterministic and always enforced.

use jamm::jamm_archive::EventArchive;
use jamm::jamm_consumers::archiver::ArchiverAgent;
use jamm::jamm_consumers::GatewayRegistry;
use jamm::jamm_directory::Dn;
use jamm_bench::{compare_row, data_row, header};
use jamm_core::json::{Json, Map};
use jamm_gateway::{EventGateway, GatewayConfig};
use jamm_ulm::{deep_clone_bytes, deep_clone_count, text, Event, Level, SharedEvent, Timestamp};

const SWEEP: [usize; 4] = [1, 16, 64, 256];
const EVENTS_PER_ROUND: u64 = 20_000;
/// Deep enough that no delivery is dropped mid-round.
const QUEUE_CAPACITY: usize = 32_768;

fn sample(i: u64) -> Event {
    Event::builder("vmstat", "node001.farm.lbl.gov")
        .level(Level::Usage)
        .event_type(["CPU_TOTAL", "MEM_FREE", "TCPD_RETRANSMITS"][(i % 3) as usize])
        .timestamp(Timestamp::from_micros(1_000_000_000 + i * 1_000))
        .value((i % 100) as f64)
        .field("SAMPLE", i)
        .build()
}

fn shared_events(n: u64) -> Vec<SharedEvent> {
    (0..n).map(|i| SharedEvent::new(sample(i))).collect()
}

fn time<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let t0 = std::time::Instant::now();
    let r = f();
    (r, t0.elapsed().as_secs_f64())
}

fn kevps(n: u64, secs: f64) -> f64 {
    n as f64 / secs.max(1e-9) / 1_000.0
}

/// Best (fastest) of `n` rounds after one discarded warm-up — wall-clock
/// on shared CI runners is only meaningful on the least-descheduled
/// sample.
fn best_of(n: usize, mut round: impl FnMut() -> f64) -> f64 {
    round();
    (0..n).map(|_| round()).fold(f64::MIN, f64::max)
}

/// Run one fan-out round; returns (kev/s, deep clones, bytes copied)
/// observed across the timed publish loop.
fn fanout_round(subscribers: usize, shared: bool) -> (f64, u64, u64) {
    let gw = EventGateway::new(GatewayConfig::open("bench-gw"));
    let subs: Vec<_> = (0..subscribers)
        .map(|i| {
            gw.subscribe()
                .capacity(QUEUE_CAPACITY)
                .as_consumer(format!("c{i}"))
                .open()
                .unwrap()
        })
        .collect();
    let events = shared_events(EVENTS_PER_ROUND);
    let clones0 = deep_clone_count();
    let bytes0 = deep_clone_bytes();
    let (_, secs) = time(|| {
        if shared {
            for e in &events {
                gw.publish_shared(SharedEvent::clone(std::hint::black_box(e)));
            }
        } else {
            for e in &events {
                gw.publish(std::hint::black_box(e));
            }
        }
    });
    let clones = deep_clone_count() - clones0;
    let bytes = deep_clone_bytes() - bytes0;
    assert_eq!(
        gw.stats()
            .events_out
            .load(std::sync::atomic::Ordering::Relaxed),
        EVENTS_PER_ROUND * subscribers as u64,
        "every subscriber received every event"
    );
    drop(subs);
    (kevps(EVENTS_PER_ROUND, secs), clones, bytes)
}

/// The full pipeline: publish shared events into a gateway, an archiver
/// agent drains its subscription and batch-stores into the segmented
/// archive, with `extra` additional streaming subscribers along for the
/// fan-out.  Returns (kev/s end-to-end, deep clones).
fn pipeline_round(extra: usize) -> (f64, u64) {
    let gw = std::sync::Arc::new(EventGateway::new(GatewayConfig::open("gw")));
    let mut registry = GatewayRegistry::new();
    registry.register("gw", std::sync::Arc::clone(&gw));
    let archive = std::sync::Arc::new(EventArchive::new());
    let mut archiver = ArchiverAgent::new(
        "archiver",
        std::sync::Arc::clone(&archive),
        Dn::parse("archive=bench,o=lbl,o=grid").unwrap(),
    );
    archiver.subscribe(&registry, "gw", vec![]).unwrap();
    let subs: Vec<_> = (0..extra)
        .map(|i| {
            gw.subscribe()
                .capacity(QUEUE_CAPACITY)
                .as_consumer(format!("c{i}"))
                .open()
                .unwrap()
        })
        .collect();
    let events = shared_events(EVENTS_PER_ROUND);
    let clones0 = deep_clone_count();
    let (_, secs) = time(|| {
        for chunk in events.chunks(512) {
            gw.publish_shared_batch(chunk);
            archiver.poll();
        }
        archiver.poll();
    });
    let clones = deep_clone_count() - clones0;
    assert_eq!(
        archive.len(),
        EVENTS_PER_ROUND as usize,
        "the archiver stored the whole stream"
    );
    drop(subs);
    (kevps(EVENTS_PER_ROUND, secs), clones)
}

/// Text encoding: fresh `String` per line vs one reused buffer.
fn encode_round() -> (f64, f64) {
    let events: Vec<Event> = (0..EVENTS_PER_ROUND).map(sample).collect();
    let (total, fresh_secs) = time(|| {
        let mut total = 0usize;
        for e in &events {
            total += text::encode(std::hint::black_box(e)).len();
        }
        total
    });
    let mut line = String::new();
    let (reused_total, reused_secs) = time(|| {
        let mut total = 0usize;
        for e in &events {
            line.clear();
            text::encode_into(&mut line, std::hint::black_box(e));
            total += line.len();
        }
        total
    });
    assert_eq!(total, reused_total, "identical bytes either way");
    (
        kevps(EVENTS_PER_ROUND, fresh_secs),
        kevps(EVENTS_PER_ROUND, reused_secs),
    )
}

fn main() {
    header(
        "E15: zero-copy pipeline — Arc-shared events, interned symbols, reused buffers",
        "section 2.3 scalability: per-subscriber publish cost must be O(1) in allocations",
    );

    println!(
        "\nfan-out sweep, {}k events per round, wildcard subscribers:\n",
        EVENTS_PER_ROUND / 1_000
    );
    data_row(&[
        format!("{:>11}", "subscribers"),
        format!("{:>15}", "shared kev/s"),
        format!("{:>17}", "by-value kev/s"),
        format!("{:>14}", "shared clones"),
        format!("{:>15}", "by-value clones"),
    ]);
    let mut rows: Vec<(usize, f64, f64, u64, u64)> = Vec::new();
    for &n in &SWEEP {
        let mut shared_clones = 0u64;
        let mut shared_bytes = 0u64;
        let shared = best_of(3, || {
            let (kev, clones, bytes) = fanout_round(n, true);
            shared_clones = clones;
            shared_bytes = bytes;
            kev
        });
        let mut byvalue_clones = 0u64;
        let byvalue = best_of(3, || {
            let (kev, clones, _) = fanout_round(n, false);
            byvalue_clones = clones;
            kev
        });
        data_row(&[
            format!("{n:>11}"),
            format!("{shared:>15.0}"),
            format!("{byvalue:>17.0}"),
            format!("{shared_clones:>14}"),
            format!("{byvalue_clones:>15}"),
        ]);
        // The acceptance criterion: fan-out performs zero per-subscriber
        // deep clones.  The shared path copies nothing at all — count
        // AND bytes — at every sweep point, including 256 subscribers.
        assert_eq!(
            (shared_clones, shared_bytes),
            (0, 0),
            "shared publish to {n} subscribers must deep-clone nothing"
        );
        // The by-value path pays exactly its entry copy: one clone per
        // publish, independent of subscriber count.
        assert_eq!(
            byvalue_clones, EVENTS_PER_ROUND,
            "by-value publish clones once per event, never per subscriber"
        );
        rows.push((n, shared, byvalue, shared_clones, byvalue_clones));
    }

    let (pipeline_kev, pipeline_clones) = {
        let mut clones = 0u64;
        let kev = best_of(3, || {
            let (kev, c) = pipeline_round(8);
            clones = c;
            kev
        });
        (kev, clones)
    };
    assert_eq!(
        pipeline_clones, 0,
        "publish -> deliver -> archive must deep-clone nothing"
    );

    let (encode_fresh, encode_reused) = encode_round();

    println!("\npaper vs measured:\n");
    let top = rows[rows.len() - 1];
    compare_row(
        "event copies per publish at 256 subscribers",
        "0 (consumers load the gateway, not the event)",
        &format!("{} deep clones, {} bytes copied", top.3, 0),
    );
    compare_row(
        "publish -> deliver -> archive (8 subs + archiver)",
        "refcounted end to end",
        &format!("{pipeline_kev:.0} kev/s, {pipeline_clones} deep clones"),
    );
    compare_row(
        "text encode, reused buffer vs fresh string",
        "no per-line allocation",
        &format!("{encode_reused:.0} vs {encode_fresh:.0} kev/s"),
    );
    println!();

    // ---- regression guard -------------------------------------------
    // With JAMM_BENCH_BASELINE set to the committed BENCH_e15.json, a
    // >2x throughput drop against the recorded numbers fails the run.
    // JAMM_BENCH_NO_ASSERT (the same escape hatch e14 uses) downgrades
    // the wall-clock comparison to a report for hosts that are simply
    // slower than the baseline machine; the zero-clone assertions above
    // are deterministic and never disabled.
    let no_assert = std::env::var_os("JAMM_BENCH_NO_ASSERT").is_some();
    if let Ok(path) = std::env::var("JAMM_BENCH_BASELINE") {
        // Committed baselines live at the workspace root; cargo runs the
        // bench with the package directory as cwd, so fall back there.
        let root_relative = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join(&path);
        let doc = std::fs::read_to_string(&path)
            .or_else(|_| std::fs::read_to_string(&root_relative))
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        let json = Json::parse(&doc).expect("baseline is valid JSON");
        let num = |v: &Json| v.as_f64().expect("numeric baseline field");
        let obj = json.as_object().expect("baseline is an object");
        let mut checked = 0;
        let mut check = |name: &str, baseline: f64, measured: f64| {
            checked += 1;
            println!(
                "  guard {name:<42} baseline {baseline:>10.0} kev/s   measured {measured:>10.0} kev/s"
            );
            assert!(
                no_assert || measured * 2.0 >= baseline,
                "{name}: measured {measured:.0} kev/s is more than 2x below the \
                 committed baseline {baseline:.0} kev/s ({path})"
            );
        };
        if let Some(results) = obj.get("results").and_then(|r| r.as_array()) {
            for row in results {
                let row = row.as_object().expect("result row");
                let n = num(row.get("subscribers").expect("subscribers field")) as usize;
                if let Some((_, shared, ..)) = rows.iter().find(|(rn, ..)| *rn == n) {
                    check(
                        &format!("shared publish @ {n} subscribers"),
                        num(row.get("shared_kev_per_s").expect("shared field")),
                        *shared,
                    );
                }
            }
        }
        if let Some(p) = obj.get("pipeline_kev_per_s") {
            check("publish -> deliver -> archive", num(p), pipeline_kev);
        }
        assert!(checked > 0, "baseline {path} had no comparable fields");
        println!("\n  regression guard: {checked} checks within 2x of baseline\n");
    }

    if let Ok(path) = std::env::var("JAMM_BENCH_JSON") {
        let round1 = |v: f64| (v * 10.0).round() / 10.0;
        let mut doc = Map::new();
        doc.insert("target".into(), Json::from("e15_zero_copy"));
        doc.insert("events_per_round".into(), Json::from(EVENTS_PER_ROUND));
        doc.insert("queue_capacity".into(), Json::from(QUEUE_CAPACITY as u64));
        let mut results = Vec::new();
        for (n, shared, byvalue, shared_clones, byvalue_clones) in &rows {
            let mut row = Map::new();
            row.insert("subscribers".into(), Json::from(*n as u64));
            row.insert("shared_kev_per_s".into(), Json::from(round1(*shared)));
            row.insert("byvalue_kev_per_s".into(), Json::from(round1(*byvalue)));
            row.insert("shared_deep_clones".into(), Json::from(*shared_clones));
            row.insert("byvalue_deep_clones".into(), Json::from(*byvalue_clones));
            results.push(Json::Object(row));
        }
        doc.insert("results".into(), Json::Array(results));
        doc.insert(
            "pipeline_kev_per_s".into(),
            Json::from(round1(pipeline_kev)),
        );
        doc.insert("pipeline_deep_clones".into(), Json::from(pipeline_clones));
        doc.insert(
            "encode_fresh_kev_per_s".into(),
            Json::from(round1(encode_fresh)),
        );
        doc.insert(
            "encode_reused_kev_per_s".into(),
            Json::from(round1(encode_reused)),
        );
        std::fs::write(&path, Json::Object(doc).to_string())
            .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        println!("wrote {path}");
    }
}
