//! E17 — the reactor network edge at scale.
//!
//! The paper's gateway architecture rests on the claim that "added
//! consumers load the gateway rather than the monitored host" (§2.3) —
//! which only holds if the gateway's network edge itself scales with
//! consumer count.  PR 6 replaced thread-per-connection with a single
//! `poll(2)` event loop (`jamm-reactor`) and an encode-once/write-N
//! broadcast transport (`jamm_rmi::edge::EventEdge`).  This bench drives
//! that edge with real TCP subscribers on a connection sweep 100 → 10,000
//! and records delivered kev/s and the p99 publish-to-client delivery
//! latency at each point.
//!
//! Layout: the reactor, gateway and edge run in this process; the
//! subscriber fleet runs in a re-exec'd child process
//! (`JAMM_E17_CLIENT=1`), because the container caps `RLIMIT_NOFILE` at
//! 20,000 — 10k server sockets plus 10k client sockets do not fit in one
//! process.  The child connects N sockets, drains all of them
//! nonblockingly, decodes frames on one probe connection to sample
//! delivery latency (both processes share the host clock), and reports
//! JSON on stdout.
//!
//! Deterministic assertions (always enforced):
//!   * every subscriber receives the complete byte stream;
//!   * zero deep event clones across publish + encode + broadcast;
//!   * zero dropped frames, zero refused accepts;
//!   * the 10,000-connection point is held by ONE reactor thread.
//!
//! Wall-clock assertion (downgradeable with JAMM_BENCH_NO_ASSERT):
//! delivered throughput at 10k connections stays within 2x of the
//! 100-connection point.  Baseline recorded in BENCH_e17.json
//! (JAMM_BENCH_JSON=BENCH_e17.json cargo bench --bench e17_reactor_edge);
//! with JAMM_BENCH_BASELINE set, a >2x drop against the recorded numbers
//! fails the run.

use jamm_bench::{compare_row, data_row, header};
use jamm_core::json::{Json, Map};
use jamm_gateway::{EventGateway, GatewayConfig};
use jamm_reactor::{Reactor, ReactorConfig};
use jamm_rmi::edge::{EdgeConfig, EventEdge};
use jamm_ulm::{binary, deep_clone_count, Event, Level, SharedEvent, Timestamp};
use std::io::Read;
use std::sync::Arc;
use std::time::{Duration, Instant};

const SWEEP: [usize; 4] = [100, 1_000, 4_000, 10_000];
/// At least 2M delivered event copies per sweep point, and at least 1,000
/// events per connection so every point amortizes encode and write costs
/// over comparably sized frames; the per-connection stream stays well
/// under the outbox budget at every point.
fn events_for(conns: usize) -> u64 {
    (2_000_000 / conns as u64).max(1_000)
}

const PUBLISH_CHUNK: usize = 64;

fn sample(i: u64) -> Event {
    Event::builder("dpss_master", "dpss1.lbl.gov")
        .level(Level::Usage)
        .event_type(["DPSS_SERV_IN", "DPSS_START_WRITE", "CPU_TOTAL"][(i % 3) as usize])
        .timestamp(Timestamp::now())
        .value((i % 100) as f64)
        .field("BLOCK.ID", i)
        .build()
}

fn kevps(n: u64, secs: f64) -> f64 {
    n as f64 / secs.max(1e-9) / 1_000.0
}

// ---------------------------------------------------------------------
// Child process: the subscriber fleet.
// ---------------------------------------------------------------------

fn client_main(addr: &str, conns: usize) {
    use jamm_reactor::{Backend, Interest, Poller, Readiness, Source};
    use std::io::ErrorKind;
    use std::net::TcpStream;

    let mut socks: Vec<Option<TcpStream>> = Vec::with_capacity(conns);
    // The fleet drains its sockets through the same readiness API the
    // server loop uses — scanning 10k idle sockets with speculative reads
    // would burn the CPU the single reactor thread needs.
    let mut poller = Poller::new(Backend::native());
    for i in 0..conns {
        let s = TcpStream::connect(addr).expect("connect to edge");
        s.set_nonblocking(true).expect("nonblocking");
        poller.register(i as u64, Source::new(&s), Interest::READ);
        socks.push(Some(s));
    }

    let mut bytes = vec![0u64; conns];
    let mut probe_buf: Vec<u8> = Vec::new();
    let mut probe_off = 0usize;
    let mut latencies_us: Vec<u64> = Vec::new();
    let mut open = conns;
    let mut scratch = vec![0u8; 256 * 1024];
    let mut readiness: Vec<Readiness> = Vec::new();

    while open > 0 {
        poller
            .poll(Duration::from_millis(200), &mut readiness)
            .expect("client poll");
        for r in &readiness {
            let i = r.token as usize;
            let Some(s) = &mut socks[i] else { continue };
            loop {
                match s.read(&mut scratch) {
                    Ok(0) => {
                        poller.deregister(r.token);
                        socks[i] = None;
                        open -= 1;
                        break;
                    }
                    Ok(n) => {
                        bytes[i] += n as u64;
                        if i == 0 {
                            probe_buf.extend_from_slice(&scratch[..n]);
                        }
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => {}
                    Err(_) => {
                        poller.deregister(r.token);
                        socks[i] = None;
                        open -= 1;
                        break;
                    }
                }
            }
        }
        // Sample delivery latency on the probe connection: the publisher
        // stamped each event with the shared host clock.
        while let Ok((ev, used)) = binary::decode(&probe_buf[probe_off..]) {
            probe_off += used;
            let now = Timestamp::now().as_micros();
            latencies_us.push(now.saturating_sub(ev.timestamp.as_micros()));
        }
    }

    latencies_us.sort_unstable();
    let p99 = if latencies_us.is_empty() {
        0
    } else {
        latencies_us[(latencies_us.len() - 1) * 99 / 100]
    };
    let mut doc = Map::new();
    doc.insert("total_bytes".into(), Json::from(bytes.iter().sum::<u64>()));
    doc.insert(
        "min_conn_bytes".into(),
        Json::from(bytes.iter().copied().min().unwrap_or(0)),
    );
    doc.insert(
        "max_conn_bytes".into(),
        Json::from(bytes.iter().copied().max().unwrap_or(0)),
    );
    doc.insert("p99_latency_us".into(), Json::from(p99));
    doc.insert(
        "latency_samples".into(),
        Json::from(latencies_us.len() as u64),
    );
    println!("{}", Json::Object(doc));
}

// ---------------------------------------------------------------------
// Parent process: reactor + gateway + edge, one sweep point at a time.
// ---------------------------------------------------------------------

struct PointResult {
    conns: usize,
    events: u64,
    kev_per_s: f64,
    p99_latency_us: u64,
    deep_clones: u64,
}

fn run_point(conns: usize) -> PointResult {
    let events = events_for(conns);
    let reactor = Arc::new(
        Reactor::start(ReactorConfig {
            max_connections: conns + 64,
            ..ReactorConfig::default()
        })
        .expect("start reactor"),
    );
    let gateway = Arc::new(EventGateway::new(GatewayConfig::open("e17")));
    let mut edge = EventEdge::open(
        Arc::clone(&reactor),
        Arc::clone(&gateway),
        EdgeConfig {
            capacity: events as usize + PUBLISH_CHUNK,
            ..EdgeConfig::default()
        },
    )
    .expect("open edge");

    let exe = std::env::current_exe().expect("current exe");
    let child = std::process::Command::new(exe)
        .env("JAMM_E17_CLIENT", "1")
        .env("JAMM_E17_ADDR", edge.addr().to_string())
        .env("JAMM_E17_CONNS", conns.to_string())
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("spawn subscriber fleet");

    let deadline = Instant::now() + Duration::from_secs(120);
    while edge.subscribers() < conns {
        assert!(
            Instant::now() < deadline,
            "only {} of {conns} subscribers connected",
            edge.subscribers()
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    let clones0 = deep_clone_count();
    let t0 = Instant::now();
    let mut published = 0u64;
    while published < events {
        let n = PUBLISH_CHUNK.min((events - published) as usize);
        // Stamped at publish time so the child can measure delivery
        // latency against the shared host clock.
        let chunk: Vec<SharedEvent> = (0..n as u64)
            .map(|j| SharedEvent::new(sample(published + j)))
            .collect();
        gateway.publish_shared_batch(&chunk);
        published += n as u64;
    }

    // Completion: the pump has encoded every event, every conn has
    // written the full stream, and nothing is left queued.
    let drained = |edge: &EventEdge| {
        if edge.stats().events < events {
            return false;
        }
        let encoded = edge.stats().encoded_bytes;
        let rows = edge.socket_stats();
        rows.len() == conns
            && rows
                .iter()
                .all(|r| r.stats.queued_bytes == 0 && r.stats.bytes_out == encoded)
    };
    // Coarse drain polling: snapshotting 10k socket rows is itself O(N),
    // so don't let the check steal the single core from the loop thread.
    let deadline = Instant::now() + Duration::from_secs(120);
    while !drained(&edge) {
        assert!(Instant::now() < deadline, "broadcast never drained");
        std::thread::sleep(Duration::from_millis(25));
    }
    let secs = t0.elapsed().as_secs_f64();
    let deep_clones = deep_clone_count() - clones0;

    let rows = edge.socket_stats();
    let dropped: u64 = rows.iter().map(|r| r.stats.dropped_frames).sum();
    assert_eq!(dropped, 0, "no frame was dropped at {conns} conns");
    assert_eq!(reactor.refused(), 0, "no accept was refused");
    let encoded = edge.stats().encoded_bytes;

    edge.stop();
    let out = child.wait_with_output().expect("child exit");
    assert!(out.status.success(), "subscriber fleet failed");
    let report =
        Json::parse(&String::from_utf8_lossy(&out.stdout)).expect("child report is valid JSON");
    let report = report.as_object().expect("child report object");
    let num = |k: &str| {
        report
            .get(k)
            .and_then(|v| v.as_f64())
            .unwrap_or_else(|| panic!("missing child field {k}")) as u64
    };
    assert_eq!(
        num("total_bytes"),
        encoded * conns as u64,
        "every subscriber received the complete stream"
    );
    assert_eq!(
        num("min_conn_bytes"),
        num("max_conn_bytes"),
        "no subscriber was short-changed"
    );
    assert_eq!(num("latency_samples"), events, "probe decoded every event");

    reactor.shutdown();
    PointResult {
        conns,
        events,
        kev_per_s: kevps(events * conns as u64, secs),
        p99_latency_us: num("p99_latency_us"),
        deep_clones,
    }
}

fn main() {
    if std::env::var_os("JAMM_E17_CLIENT").is_some() {
        let addr = std::env::var("JAMM_E17_ADDR").expect("JAMM_E17_ADDR");
        let conns: usize = std::env::var("JAMM_E17_CONNS")
            .expect("JAMM_E17_CONNS")
            .parse()
            .expect("numeric JAMM_E17_CONNS");
        client_main(&addr, conns);
        return;
    }

    header(
        "E17: reactor network edge — one event loop, 100 to 10,000 TCP subscribers",
        "section 2.3 scalability: the gateway edge must absorb added consumers",
    );

    println!("\nconnection sweep (delivered kev/s = events x conns / wall time):\n");
    data_row(&[
        format!("{:>11}", "connections"),
        format!("{:>10}", "events"),
        format!("{:>16}", "delivered kev/s"),
        format!("{:>12}", "p99 latency"),
        format!("{:>12}", "deep clones"),
    ]);
    let mut results: Vec<PointResult> = Vec::new();
    for &conns in &SWEEP {
        let r = run_point(conns);
        data_row(&[
            format!("{:>11}", r.conns),
            format!("{:>10}", r.events),
            format!("{:>16.0}", r.kev_per_s),
            format!("{:>9.1} ms", r.p99_latency_us as f64 / 1_000.0),
            format!("{:>12}", r.deep_clones),
        ]);
        assert_eq!(
            r.deep_clones, 0,
            "broadcast to {conns} subscribers must deep-clone nothing"
        );
        results.push(r);
    }

    let base = &results[0];
    let top = &results[results.len() - 1];
    println!("\npaper vs measured:\n");
    compare_row(
        "subscriber connections on one reactor thread",
        "gateways absorb added consumers",
        &format!("{} concurrent, single loop thread", top.conns),
    );
    compare_row(
        "throughput at 10k conns vs 100 conns",
        "within 2x",
        &format!(
            "{:.0} vs {:.0} kev/s ({:.2}x)",
            top.kev_per_s,
            base.kev_per_s,
            base.kev_per_s / top.kev_per_s.max(1e-9)
        ),
    );
    compare_row(
        "event copies per broadcast",
        "0 (encode once, write N)",
        &format!("{} deep clones at every sweep point", top.deep_clones),
    );
    println!();

    // ---- scaling assertion (wall-clock; JAMM_BENCH_NO_ASSERT downgrades)
    let no_assert = std::env::var_os("JAMM_BENCH_NO_ASSERT").is_some();
    assert!(
        no_assert || top.kev_per_s * 2.0 >= base.kev_per_s,
        "throughput at {} conns ({:.0} kev/s) fell more than 2x below the \
         {}-connection point ({:.0} kev/s)",
        top.conns,
        top.kev_per_s,
        base.conns,
        base.kev_per_s
    );

    // ---- regression guard vs the committed baseline -------------------
    if let Ok(path) = std::env::var("JAMM_BENCH_BASELINE") {
        let root_relative = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join(&path);
        let doc = std::fs::read_to_string(&path)
            .or_else(|_| std::fs::read_to_string(&root_relative))
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        let json = Json::parse(&doc).expect("baseline is valid JSON");
        let obj = json.as_object().expect("baseline is an object");
        let num = |v: &Json| v.as_f64().expect("numeric baseline field");
        let mut checked = 0;
        if let Some(rows) = obj.get("results").and_then(|r| r.as_array()) {
            for row in rows {
                let row = row.as_object().expect("result row");
                let conns = num(row.get("connections").expect("connections field")) as usize;
                let Some(r) = results.iter().find(|r| r.conns == conns) else {
                    continue;
                };
                let baseline = num(row.get("kev_per_s").expect("kev_per_s field"));
                checked += 1;
                println!(
                    "  guard broadcast @ {conns:>6} conns   baseline {baseline:>10.0} kev/s   \
                     measured {:>10.0} kev/s",
                    r.kev_per_s
                );
                assert!(
                    no_assert || r.kev_per_s * 2.0 >= baseline,
                    "broadcast @ {conns} conns: measured {:.0} kev/s is more than 2x \
                     below the committed baseline {baseline:.0} kev/s ({path})",
                    r.kev_per_s
                );
            }
        }
        assert!(checked > 0, "baseline {path} had no comparable fields");
        println!("\n  regression guard: {checked} checks within 2x of baseline\n");
    }

    if let Ok(path) = std::env::var("JAMM_BENCH_JSON") {
        let round1 = |v: f64| (v * 10.0).round() / 10.0;
        let mut doc = Map::new();
        doc.insert("target".into(), Json::from("e17_reactor_edge"));
        doc.insert("publish_chunk".into(), Json::from(PUBLISH_CHUNK as u64));
        let mut rows = Vec::new();
        for r in &results {
            let mut row = Map::new();
            row.insert("connections".into(), Json::from(r.conns as u64));
            row.insert("events".into(), Json::from(r.events));
            row.insert("kev_per_s".into(), Json::from(round1(r.kev_per_s)));
            row.insert("p99_latency_us".into(), Json::from(r.p99_latency_us));
            row.insert("deep_clones".into(), Json::from(r.deep_clones));
            rows.push(Json::Object(row));
        }
        doc.insert("results".into(), Json::Array(rows));
        std::fs::write(&path, Json::Object(doc).to_string())
            .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
        println!("wrote {path}");
    }
}
