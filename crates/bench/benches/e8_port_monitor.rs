//! E8 — §2.2 the port monitor agent's data reduction.
//!
//! Paper: "The port monitor has proven itself to be a very useful component,
//! greatly reducing the total amount of monitoring data that must be
//! collected and managed."  On-demand (port-triggered) monitoring collects
//! host data only while the monitored application is actually transferring.

use jamm::deployment::{DeploymentConfig, JammDeployment};
use jamm_bench::{compare_row, data_row, header};

/// Run the MATISSE LAN scenario where the player fetches a fixed number of
/// frames and then goes idle; measure how much monitoring data is collected
/// with always-on vs port-triggered sensors.
fn run(port_triggered: bool, duty_frames: u64, secs: f64) -> (u64, u64) {
    let mut cfg = DeploymentConfig::matisse_lan(1);
    cfg.matisse.seed = 8;
    cfg.matisse.player.frame_bytes = 400_000;
    cfg.matisse.player.max_frames = duty_frames;
    cfg.port_triggered = port_triggered;
    let mut jamm = JammDeployment::matisse(cfg);
    jamm.run_secs(secs);
    (jamm.events_published(), jamm.events_delivered())
}

fn main() {
    header(
        "E8: always-on vs port-triggered (on-demand) host monitoring",
        "section 2.2 port monitor agent: 'greatly reducing the total amount of monitoring data'",
    );

    println!("\n40 simulated seconds; the application transfers frames only at the start:\n");
    data_row(&[
        format!("{:<16}", "application"),
        format!("{:<16}", "monitoring"),
        format!("{:>18}", "events collected"),
    ]);
    let mut table = Vec::new();
    for &(frames, label) in &[(5u64, "brief transfer"), (60u64, "busy throughout")] {
        for &(triggered, mode) in &[(false, "always-on"), (true, "port-triggered")] {
            let (published, _) = run(triggered, frames, 40.0);
            data_row(&[
                format!("{label:<16}"),
                format!("{mode:<16}"),
                format!("{published:>18}"),
            ]);
            table.push((frames, triggered, published));
        }
    }

    let always_brief = table.iter().find(|t| t.0 == 5 && !t.1).unwrap().2;
    let triggered_brief = table.iter().find(|t| t.0 == 5 && t.1).unwrap().2;
    let always_busy = table.iter().find(|t| t.0 == 60 && !t.1).unwrap().2;
    let triggered_busy = table.iter().find(|t| t.0 == 60 && t.1).unwrap().2;

    println!("\npaper vs measured:\n");
    compare_row(
        "data reduction for a mostly-idle application",
        "greatly reduced",
        &format!(
            "{:.0}% fewer events ({} -> {})",
            100.0 * (1.0 - triggered_brief as f64 / always_brief.max(1) as f64),
            always_brief,
            triggered_brief
        ),
    );
    compare_row(
        "data while the application is busy",
        "monitoring still happens on demand",
        &format!(
            "port-triggered collects {:.0}% of always-on ({} vs {})",
            100.0 * triggered_busy as f64 / always_busy.max(1) as f64,
            triggered_busy,
            always_busy
        ),
    );
}
