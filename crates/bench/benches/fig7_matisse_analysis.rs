//! Figure 7 — NetLogger real-time analysis of JAMM-managed sensor data.
//!
//! Paper: the nlv graph of the MATISSE run shows frame lifelines, the
//! receiving host's VMSTAT loadlines, and TCPD_RETRANSMITS points; "Note the
//! correlation between the TCP retransmit events and the large gap with no
//! data being received by the application.  Also of interest is the high
//! level of system CPU usage on the receiving host."

use jamm::deployment::{DeploymentConfig, JammDeployment};
use jamm_bench::{compare_row, header};
use jamm_netlogger::analysis::{correlate_gaps, delivery_gaps, mean_stage_durations};
use jamm_ulm::keys;

fn main() {
    header(
        "Fig. 7: NetLogger analysis of the monitored MATISSE run",
        "frame lifelines + CPU loadlines + retransmit points, and their correlation",
    );

    let mut cfg = DeploymentConfig::matisse_wan(4);
    cfg.matisse.seed = 2000;
    let mut jamm = JammDeployment::matisse(cfg);
    jamm.run_secs(30.0);

    let log = jamm.merged_log();
    let chart = jamm.figure7_chart();

    println!("\nASCII rendering of the chart (time left to right, 30 simulated seconds):\n");
    print!("{}", chart.render_ascii(100));

    // Quantify the visual observations.
    let gaps = delivery_gaps(&log, keys::matisse::END_READ_FRAME, 700_000);
    let corr = correlate_gaps(&log, &gaps, keys::tcp::RETRANSMITS, 500_000);
    let sys_load: Vec<f64> = log
        .iter()
        .filter(|e| e.host == "mems.cairn.net" && e.event_type == keys::cpu::SYS)
        .filter_map(|e| e.value())
        .collect();
    let mean_sys = if sys_load.is_empty() {
        0.0
    } else {
        sys_load.iter().sum::<f64>() / sys_load.len() as f64
    };
    let peak_sys = sys_load.iter().cloned().fold(0.0, f64::max);

    println!("\npaper observations vs measured:\n");
    compare_row(
        "frame delivery",
        "bursty, 1-6 frames/s",
        &format!(
            "{} frames in 30 s ({:.1}/s mean)",
            jamm.scenario.player.frames_displayed(),
            jamm.scenario.player.mean_frame_rate(30_000_000)
        ),
    );
    compare_row(
        "TCP retransmissions visible to JAMM",
        "yes (X marks on the chart)",
        &format!(
            "{} retransmit events collected",
            log.iter()
                .filter(|e| e.event_type == keys::tcp::RETRANSMITS)
                .count()
        ),
    );
    compare_row(
        "delivery gaps explained by retransmit bursts",
        "the large gap coincides with retransmits",
        &format!(
            "{}/{} gaps ({:.0}%)",
            corr.gaps_with_marker,
            corr.gaps,
            corr.gap_hit_rate() * 100.0
        ),
    );
    compare_row(
        "system CPU on the receiving host",
        "high (VMSTAT_SYS_TIME elevated)",
        &format!("mean {mean_sys:.0}%, peak {peak_sys:.0}%"),
    );

    println!("\nmean per-stage lifeline latency (the slope of the lifelines):\n");
    for (from, to, mean_us, n) in mean_stage_durations(&chart.lifelines) {
        println!(
            "  {from:>22} -> {to:<22} {:>9.1} ms  ({n} samples)",
            mean_us / 1_000.0
        );
    }
}
