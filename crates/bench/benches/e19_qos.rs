//! E19 — delivery QoS: tier isolation and priority-aware shedding.
//!
//! PR 9 gave the gateway a delivery-QoS plane: subscriptions are tiered
//! fast/lagging/probation from an EWMA over their delivery counters,
//! lagging tiers run under reduced queue budgets, and declared overload
//! sheds deliveries lowest tier outward while `_jamm` self-lifelines and
//! `*_AVG_*` summary events always pass.  This bench guards the plane's
//! two performance claims:
//!
//! 1. **Isolation** — a fast consumer sharing a gateway with 0, 2, 4 or
//!    8 never-draining co-subscribers keeps its stream lossless, and the
//!    QoS plane's classify-and-budget tax stays within 30% of the bare
//!    gateway's overflow-eviction churn at the same fan-out;
//! 2. **Degradation order** — under declared overload (an external
//!    saturation gauge at 0.8) the probation tier is shed pre-queue, the
//!    fast tier is never cut, protected summary events still reach the
//!    stalled subscribers, and the shed path is not slower than hauling
//!    every delivery through the full queues.
//!
//! Structural assertions (tier assignment, shed attribution, protected
//! delivery, fast-tier losslessness) always run; the wall-clock
//! comparisons are downgraded under JAMM_BENCH_NO_ASSERT.
//!
//! Baseline recorded in BENCH_e19.json
//! (JAMM_BENCH_JSON=BENCH_e19.json cargo bench --bench e19_qos);
//! JAMM_BENCH_BASELINE=BENCH_e19.json enables the >2x regression guard.

use std::sync::Arc;

use jamm::jamm_core::json::{Json, Map};
use jamm::jamm_core::EventSource;
use jamm::jamm_gateway::{EventGateway, GatewayConfig, QosConfig, ShedLevel, Subscription, Tier};
use jamm_bench::{compare_row, data_row, header};
use jamm_ulm::{Event, Level, SharedEvent, Timestamp};

const HOSTS: [&str; 4] = [
    "dpss1.lbl.gov",
    "dpss2.lbl.gov",
    "mems.cairn.net",
    "portnoy.lbl.gov",
];
const TYPES: [&str; 4] = [
    "CPU_TOTAL",
    "MEM_FREE",
    "TCPD_RETRANSMITS",
    "MPLAY_END_READ_FRAME",
];

fn sample(i: u64) -> Event {
    Event::builder("vmstat", HOSTS[(i % 4) as usize])
        .level(Level::Usage)
        .event_type(TYPES[(i % 4) as usize])
        .timestamp(Timestamp::from_micros(1_000_000_000 + i * 1_000))
        .value((i % 100) as f64)
        .build()
}

/// A summary event: `*_AVG_*` series are protected — never shed, never
/// budget-cut — so they must reach even a probation subscriber under
/// declared overload.
fn summary(i: u64) -> Event {
    Event::builder("gw", HOSTS[(i % 4) as usize])
        .level(Level::Usage)
        .event_type("CPU_TOTAL_AVG_1M")
        .timestamp(Timestamp::from_micros(1_000_000_000 + i * 1_000))
        .value((i % 100) as f64)
        .build()
}

fn kevps(n: u64, secs: f64) -> f64 {
    n as f64 / secs.max(1e-9) / 1_000.0
}

fn best_of(runs: usize, mut f: impl FnMut() -> (f64, f64)) -> (f64, f64) {
    (0..runs).map(|_| f()).fold(
        (0.0, f64::INFINITY),
        |(bt, bp), (t, p)| {
            if t > bt {
                (t, p)
            } else {
                (bt, bp)
            }
        },
    )
}

fn open_fast(gw: &EventGateway) -> Subscription {
    gw.subscribe()
        .stream()
        .capacity(4_096)
        .as_consumer("fast")
        .open()
        .expect("fast subscription opens")
}

fn open_stalled(gw: &EventGateway, n: usize) -> Vec<Subscription> {
    (0..n)
        .map(|k| {
            gw.subscribe()
                .stream()
                .capacity(1_024)
                .as_consumer(format!("stalled{k}"))
                .open()
                .expect("stalled subscription opens")
        })
        .collect()
}

/// Publish everything through a gateway shared with `stalled`
/// never-draining co-subscribers; the fast consumer drains every chunk.
/// Returns (k events/s, p99 chunk latency in us) for the fast consumer.
fn isolation_run(
    stalled: usize,
    qos: bool,
    events: &[SharedEvent],
    drained: &mut Vec<SharedEvent>,
) -> (f64, f64) {
    let mut config = GatewayConfig::open("e19");
    if qos {
        config = config.with_qos(QosConfig::default());
    }
    let gw = EventGateway::new(config);
    let mut fast = open_fast(&gw);
    // Held open for the whole run; never drained.
    let _slow = open_stalled(&gw, stalled);
    drained.clear();
    let mut chunk_us: Vec<u64> = Vec::with_capacity(events.len() / 1_024 + 1);
    let t0 = std::time::Instant::now();
    for chunk in events.chunks(1_024) {
        let c0 = std::time::Instant::now();
        gw.publish_shared_batch(chunk);
        fast.drain_into(drained);
        chunk_us.push(c0.elapsed().as_micros() as u64);
    }
    let secs = t0.elapsed().as_secs_f64();
    assert_eq!(
        drained.len(),
        events.len(),
        "the fast tier stays lossless with {stalled} stalled co-subscribers (qos={qos})"
    );
    chunk_us.sort_unstable();
    let p99 = chunk_us[(chunk_us.len() - 1) * 99 / 100];
    (kevps(events.len() as u64, secs), p99 as f64)
}

/// Publish a burst through a gateway whose 8 co-subscribers are already
/// in probation, with the overload machine either declared (external
/// saturation 0.8 => shed probation pre-queue) or idle (every delivery
/// hauled through the budget-capped queues).  Returns the fast
/// consumer's throughput; structural claims are asserted inline.
fn overload_run(
    shed: bool,
    events: &[SharedEvent],
    summaries: &[SharedEvent],
    drained: &mut Vec<SharedEvent>,
) -> f64 {
    let gw = EventGateway::new(GatewayConfig::open("e19").with_qos(QosConfig::default()));
    let mut fast = open_fast(&gw);
    let mut slow = open_stalled(&gw, 8);
    // Warm-up: fill the stalled queues, then walk the classifier until
    // every stalled subscription is in probation (EWMA alpha 0.5 crosses
    // probation_enter=0.6 within a few passes at fill 1.0).
    for chunk in events[..8_192.min(events.len())].chunks(1_024) {
        gw.publish_shared_batch(chunk);
        fast.drain_into(drained);
    }
    for _ in 0..6 {
        gw.retier_now();
    }
    for row in gw.tier_report() {
        if row.consumer.starts_with("stalled") {
            assert_eq!(
                row.tier,
                Tier::Probation,
                "{} classified probation after warm-up (score {:.2})",
                row.consumer,
                row.score
            );
        }
    }
    if shed {
        gw.set_external_pressure(0.8);
        gw.retier_now();
        let snap = gw.qos_snapshot().expect("qos plane attached");
        assert_eq!(
            snap.level,
            ShedLevel::Probation,
            "external saturation 0.8 declares probation-level shed"
        );
    }
    let tail = &events[8_192.min(events.len())..];
    drained.clear();
    let t0 = std::time::Instant::now();
    for (k, chunk) in tail.chunks(1_024).enumerate() {
        gw.publish_shared_batch(chunk);
        if k % 16 == 0 {
            gw.publish_shared_batch(&summaries[..1]);
        }
        fast.drain_into(drained);
    }
    let secs = t0.elapsed().as_secs_f64();
    let snap = gw.qos_snapshot().expect("qos plane attached");
    assert_eq!(snap.shed[0], 0, "the fast tier is never shed");
    assert_eq!(
        snap.shed[1], 0,
        "nothing was classified lagging, nothing shed as lagging"
    );
    if shed {
        assert!(
            snap.shed[2] > 0,
            "declared overload sheds probation deliveries (shed {:?})",
            snap.shed
        );
        // Protected summaries bypass both the shed gate and the queue
        // budget: every stalled subscriber still received every one.
        let mut probe: Vec<SharedEvent> = Vec::new();
        let first = &mut slow[0];
        probe.extend(first.drain());
        let got = probe
            .iter()
            .filter(|e| e.event_type.contains("_AVG_"))
            .count();
        let sent = tail
            .chunks(1_024)
            .enumerate()
            .filter(|(k, _)| k % 16 == 0)
            .count();
        assert_eq!(
            got, sent,
            "a probation subscriber still receives the protected summary stream under shed"
        );
    }
    kevps(tail.len() as u64, secs)
}

fn main() {
    header(
        "E19: delivery QoS — tier isolation and priority-aware shedding",
        "one stalled consumer must not cost the fast tier its stream",
    );

    let n: u64 = 200_000;
    let events: Vec<SharedEvent> = (0..n).map(|i| Arc::new(sample(i))).collect();
    let summaries: Vec<SharedEvent> = (0..64).map(|i| Arc::new(summary(i))).collect();
    let mut drained: Vec<SharedEvent> = Vec::with_capacity(events.len());
    let runs = 3;
    let mut results: Vec<(String, f64)> = Vec::new();

    // --- 1. isolation sweep: 0..8 stalled co-subscribers, qos on ---
    let mut sweep: Vec<(usize, f64, f64)> = Vec::new();
    for stalled in [0usize, 2, 4, 8] {
        let (thr, p99) = best_of(runs, || isolation_run(stalled, true, &events, &mut drained));
        results.push((format!("fast_kev_per_s_{stalled}stalled"), thr));
        results.push((format!("fast_p99_us_{stalled}stalled"), p99));
        sweep.push((stalled, thr, p99));
    }
    // The same worst-case fan-out without a QoS plane: bare overflow
    // eviction on every stalled queue.
    let (noqos, _) = best_of(runs, || isolation_run(8, false, &events, &mut drained));
    results.push(("noqos_fast_kev_per_s_8stalled".into(), noqos));
    let qos8 = sweep[3].1;

    // --- 2. declared overload: shed vs haul-everything ---
    let (shed_thr, _) = best_of(runs, || {
        (overload_run(true, &events, &summaries, &mut drained), 0.0)
    });
    let (noshed_thr, _) = best_of(runs, || {
        (overload_run(false, &events, &summaries, &mut drained), 0.0)
    });
    results.push(("burst_shed_kev_per_s".into(), shed_thr));
    results.push(("burst_noshed_kev_per_s".into(), noshed_thr));

    println!("\nmeasured ({n} events/run, best of {runs}):\n");
    data_row(&[format!("{:<34}", "metric"), format!("{:>14}", "value")]);
    for (k, v) in &results {
        data_row(&[format!("{k:<34}"), format!("{v:>14.1}")]);
    }
    println!();
    compare_row(
        "8 stalled co-subscribers, qos on vs off",
        "tiering tax bounded vs eviction churn",
        &format!("{qos8:.0}k vs {noqos:.0}k ev/s"),
    );
    compare_row(
        "declared overload, shed vs haul",
        "shedding is not slower",
        &format!("{shed_thr:.0}k vs {noshed_thr:.0}k ev/s"),
    );
    println!();

    let no_assert = std::env::var_os("JAMM_BENCH_NO_ASSERT").is_some();
    assert!(
        no_assert || qos8 >= 0.7 * noqos,
        "qos-on fast-tier throughput {qos8:.1}k ev/s fell more than 30% below the \
         bare gateway's {noqos:.1}k ev/s at the same fan-out"
    );
    assert!(
        no_assert || shed_thr >= 0.8 * noshed_thr,
        "shedding throughput {shed_thr:.1}k ev/s fell more than 20% below the \
         haul-everything path {noshed_thr:.1}k ev/s"
    );

    // --- regression guard against the committed baseline ---
    if let Ok(path) = std::env::var("JAMM_BENCH_BASELINE") {
        let root_relative = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join(&path);
        let doc = std::fs::read_to_string(&path)
            .or_else(|_| std::fs::read_to_string(&root_relative))
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        let json = Json::parse(&doc).expect("baseline is valid JSON");
        let obj = json.as_object().expect("baseline is an object");
        let rows = obj
            .get("results")
            .and_then(|r| r.as_object())
            .expect("results object");
        let mut checked = 0;
        for name in [
            "fast_kev_per_s_0stalled",
            "fast_kev_per_s_8stalled",
            "burst_shed_kev_per_s",
        ] {
            let baseline = rows
                .get(name)
                .and_then(|v| v.as_f64())
                .unwrap_or_else(|| panic!("baseline missing {name}"));
            let measured = results
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| *v)
                .expect("measured");
            checked += 1;
            println!("  guard {name:<36} baseline {baseline:>10.1}   measured {measured:>10.1}");
            assert!(
                no_assert || measured * 2.0 >= baseline,
                "{name}: measured {measured:.1} is more than 2x below the \
                 committed baseline {baseline:.1} ({path})"
            );
        }
        println!("\n  regression guard: {checked} checks within 2x of baseline\n");
    }

    if let Ok(path) = std::env::var("JAMM_BENCH_JSON") {
        let mut doc = Map::new();
        doc.insert("target".into(), Json::from("e19_qos"));
        doc.insert("events".into(), Json::from(n));
        doc.insert("runs".into(), Json::from(runs as u64));
        let mut rows = Map::new();
        for (k, v) in &results {
            rows.insert(k.clone(), Json::from((v * 10.0).round() / 10.0));
        }
        doc.insert("results".into(), Json::Object(rows));
        if let Err(e) = std::fs::write(&path, Json::Object(doc).to_pretty() + "\n") {
            eprintln!("could not write {path}: {e}");
        }
    }
}
