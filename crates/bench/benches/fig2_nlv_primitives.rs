//! Figure 2 — the three nlv graph primitives.
//!
//! Paper: nlv represents events with the point, the loadline and the
//! lifeline; "with time shown on the x-axis, and ordered events shown on the
//! y-axis, the slope of the lifeline gives a clear visual indication of
//! latencies in the distributed system."
//!
//! This bench regenerates all three primitives from a monitored run and
//! checks their defining properties (lifeline ordering/slope, loadline
//! continuity, point sparsity), then measures how fast the chart extraction
//! is with Criterion.

use jamm::deployment::{DeploymentConfig, JammDeployment};
use jamm_bench::harness::{criterion_group, criterion_main, Criterion};
use jamm_bench::{compare_row, header};
use jamm_netlogger::nlv::{lifelines, loadline, points, NlvChart};
use jamm_ulm::{keys, Event};

fn monitored_log() -> Vec<Event> {
    let mut cfg = DeploymentConfig::matisse_lan(2);
    cfg.matisse.seed = 5;
    cfg.matisse.player.frame_bytes = 600_000;
    let mut jamm = JammDeployment::matisse(cfg);
    jamm.run_secs(10.0);
    jamm.merged_log()
}

const LIFELINE_ORDER: [&str; 5] = [
    keys::matisse::DPSS_SERV_IN,
    keys::matisse::DPSS_END_WRITE,
    keys::matisse::START_READ_FRAME,
    keys::matisse::END_READ_FRAME,
    keys::matisse::END_PUT_IMAGE,
];

fn report(log: &[Event]) {
    header(
        "Fig. 2: nlv graph primitives (lifeline, loadline, point)",
        "the three primitive types and their semantics",
    );
    let lines = lifelines(log, &LIFELINE_ORDER);
    let spans: Vec<f64> = lines.iter().map(|l| l.span_us() as f64 / 1_000.0).collect();
    let mean_span = spans.iter().sum::<f64>() / spans.len().max(1) as f64;
    compare_row(
        "lifeline: one per monitored object",
        "one line per datum",
        &format!(
            "{} frame lifelines, mean span {:.0} ms",
            lines.len(),
            mean_span
        ),
    );
    let monotone = lines
        .iter()
        .all(|l| l.points.windows(2).all(|w| w[0].0 <= w[1].0));
    compare_row(
        "lifeline: events ordered along time axis",
        "slope shows latency",
        &format!("time-monotone: {monotone}"),
    );
    let load = loadline(log, "mems.cairn.net", keys::cpu::SYS);
    compare_row(
        "loadline: continuous scaled series",
        "e.g. CPU load / free memory",
        &format!(
            "{} VMSTAT_SYS_TIME samples on the receiving host",
            load.samples.len()
        ),
    );
    let pts = points(log, Some("mems.cairn.net"), keys::tcp::RETRANSMITS);
    compare_row(
        "point: single occurrences (errors/warnings)",
        "e.g. TCP retransmits",
        &format!("{} retransmit points", pts.points.len()),
    );
    println!();
}

fn bench_chart_extraction(c: &mut Criterion) {
    let log = monitored_log();
    report(&log);
    c.bench_function("nlv_chart_build_from_monitored_log", |b| {
        b.iter(|| {
            NlvChart::build(
                std::hint::black_box(&log),
                &LIFELINE_ORDER,
                &[("mems.cairn.net", keys::cpu::SYS)],
                &[(Some("mems.cairn.net"), keys::tcp::RETRANSMITS)],
            )
        })
    });
    c.bench_function("nlv_lifelines_only", |b| {
        b.iter(|| lifelines(std::hint::black_box(&log), &LIFELINE_ORDER))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_chart_extraction
}
criterion_main!(benches);
