//! E14 — sharded gateway fan-out vs the flat subscription list.
//!
//! The paper's scalability claim is that "added consumers load the gateway
//! rather than the monitored host" (§2.3) — which requires the gateway
//! itself to absorb consumers without its publish path collapsing.  The
//! original implementation kept every subscription in one mutex-guarded
//! vector scanned linearly per event, so publish cost grew linearly with
//! subscribers even when almost none of them wanted the published type.
//!
//! This bench sweeps 1 → 256 consumers, each subscribed to its own event
//! type (the realistic shape: different tools watch different readings),
//! and measures single-publisher publish throughput against
//!
//! * the **flat list** (`jamm_gateway::FlatFanout`, the pre-sharding
//!   algorithm kept as the reference implementation), and
//! * the **sharded router** (the event-type-indexed table behind
//!   `EventGateway`, default shard count),
//!
//! plus the batched publish path.  Acceptance: sharded publish throughput
//! at 256 subscribers stays within 2x of the 1-subscriber rate, while the
//! flat baseline shows why the rebuild happened.  Baseline recorded in
//! BENCH_e14.json (JAMM_BENCH_JSON=BENCH_e14.json cargo bench --bench
//! e14_gateway_fanout).

use jamm_bench::{compare_row, data_row, header};
use jamm_core::json::{Json, Map};
use jamm_gateway::{EventFilter, EventGateway, FlatFanout, GatewayConfig, OverflowPolicy};
use jamm_ulm::{Event, Level, Timestamp};

const SWEEP: [usize; 5] = [1, 4, 16, 64, 256];
const EVENTS_PER_ROUND: u64 = 40_000;
const QUEUE_CAPACITY: usize = 1_024;

fn publish_event(i: u64, types: usize) -> Event {
    Event::builder("vmstat", "node001.farm.lbl.gov")
        .level(Level::Usage)
        .event_type(format!("TYPE_{}", i % types as u64))
        .timestamp(Timestamp::from_micros(i))
        .value((i % 100) as f64)
        .build()
}

fn type_filter(i: usize) -> Vec<EventFilter> {
    vec![EventFilter::EventTypes(vec![format!("TYPE_{i}")])]
}

fn time<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let t0 = std::time::Instant::now();
    let r = f();
    (r, t0.elapsed().as_secs_f64())
}

fn kevps(n: u64, secs: f64) -> f64 {
    n as f64 / secs.max(1e-9) / 1_000.0
}

/// Best (fastest) of `n` rounds, after one discarded warm-up round —
/// wall-clock ratios on shared CI runners are only meaningful on the
/// least-descheduled sample of each point.
fn best_of(n: usize, mut round: impl FnMut() -> f64) -> f64 {
    round();
    (0..n).map(|_| round()).fold(f64::MIN, f64::max)
}

/// Flat list: every publish scans all N subscriptions under one lock.
fn flat_round(subscribers: usize) -> f64 {
    let flat = FlatFanout::new();
    let subs: Vec<_> = (0..subscribers)
        .map(|i| flat.subscribe(type_filter(i), QUEUE_CAPACITY, OverflowPolicy::DropOldest))
        .collect();
    let events: Vec<jamm_ulm::SharedEvent> = (0..EVENTS_PER_ROUND)
        .map(|i| std::sync::Arc::new(publish_event(i, subscribers)))
        .collect();
    let (_, secs) = time(|| {
        for e in &events {
            flat.publish(std::hint::black_box(e));
        }
    });
    drop(subs);
    kevps(EVENTS_PER_ROUND, secs)
}

/// Sharded router: publish touches only the bucket owning the event type.
fn sharded_round(subscribers: usize, batch: Option<usize>) -> f64 {
    let gw = EventGateway::new(GatewayConfig::open("bench-gw"));
    let subs: Vec<_> = (0..subscribers)
        .map(|i| {
            gw.subscribe()
                .filters(type_filter(i))
                .capacity(QUEUE_CAPACITY)
                .as_consumer(format!("c{i}"))
                .open()
                .unwrap()
        })
        .collect();
    let events: Vec<Event> = (0..EVENTS_PER_ROUND)
        .map(|i| publish_event(i, subscribers))
        .collect();
    let (_, secs) = time(|| match batch {
        None => {
            for e in &events {
                gw.publish(std::hint::black_box(e));
            }
        }
        Some(n) => {
            for chunk in events.chunks(n) {
                gw.publish_batch(std::hint::black_box(chunk));
            }
        }
    });
    drop(subs);
    kevps(EVENTS_PER_ROUND, secs)
}

fn main() {
    header(
        "E14: sharded fan-out engine vs flat subscription list",
        "section 2.3 scalability (the gateway must absorb consumers without collapsing)",
    );
    println!(
        "\nsingle publisher, {}k events per round, one typed subscription per consumer:\n",
        EVENTS_PER_ROUND / 1_000
    );
    data_row(&[
        format!("{:>11}", "consumers"),
        format!("{:>16}", "flat kev/s"),
        format!("{:>16}", "sharded kev/s"),
        format!("{:>18}", "batched kev/s"),
    ]);
    let mut rows: Vec<(usize, f64, f64, f64)> = Vec::new();
    for &n in &SWEEP {
        let flat = best_of(3, || flat_round(n));
        let sharded = best_of(3, || sharded_round(n, None));
        let batched = best_of(3, || sharded_round(n, Some(256)));
        data_row(&[
            format!("{n:>11}"),
            format!("{flat:>16.0}"),
            format!("{sharded:>16.0}"),
            format!("{batched:>18.0}"),
        ]);
        rows.push((n, flat, sharded, batched));
    }

    let base = rows[0];
    let top = rows[rows.len() - 1];
    let flat_slowdown = base.1 / top.1;
    let sharded_slowdown = base.2 / top.2;
    println!("\npaper vs measured:\n");
    compare_row(
        "publish rate, 1 -> 256 consumers (flat list)",
        "collapses (O(consumers) scan under one lock)",
        &format!("{flat_slowdown:.1}x slower at 256"),
    );
    compare_row(
        "publish rate, 1 -> 256 consumers (sharded)",
        "within 2x of the 1-consumer rate",
        &format!(
            "{sharded_slowdown:.2}x slower at 256 ({})",
            if sharded_slowdown <= 2.0 {
                "PASS"
            } else {
                "FAIL"
            }
        ),
    );
    compare_row(
        "batched publish at 256 consumers",
        "amortises queue locks across the batch",
        &format!("{:.1}x the per-event rate", top.3 / top.2),
    );
    println!();
    // Best-of-3 sampling keeps this stable on shared runners; set
    // JAMM_BENCH_NO_ASSERT to record numbers without enforcing the bound.
    if std::env::var_os("JAMM_BENCH_NO_ASSERT").is_none() {
        assert!(
            sharded_slowdown <= 2.0,
            "sharded publish at 256 subscribers must stay within 2x of the \
             1-subscriber rate (measured {sharded_slowdown:.2}x)"
        );
    }

    if let Ok(path) = std::env::var("JAMM_BENCH_JSON") {
        let mut doc = Map::new();
        doc.insert("target".into(), Json::from("e14_gateway_fanout"));
        doc.insert("events_per_round".into(), Json::from(EVENTS_PER_ROUND));
        doc.insert("queue_capacity".into(), Json::from(QUEUE_CAPACITY as u64));
        let round1 = |v: f64| (v * 10.0).round() / 10.0;
        let mut results = Vec::new();
        for (n, flat, sharded, batched) in &rows {
            let mut row = Map::new();
            row.insert("consumers".into(), Json::from(*n as u64));
            row.insert("flat_kev_per_s".into(), Json::from(round1(*flat)));
            row.insert("sharded_kev_per_s".into(), Json::from(round1(*sharded)));
            row.insert("batched_kev_per_s".into(), Json::from(round1(*batched)));
            results.push(Json::Object(row));
        }
        doc.insert("results".into(), Json::Array(results));
        let mut ratios = Map::new();
        ratios.insert(
            "flat_slowdown_1_to_256".into(),
            Json::from(round1(flat_slowdown)),
        );
        ratios.insert(
            "sharded_slowdown_1_to_256".into(),
            Json::from(round1(sharded_slowdown)),
        );
        doc.insert("ratios".into(), Json::Object(ratios));
        if let Err(e) = std::fs::write(&path, Json::Object(doc).to_pretty() + "\n") {
            eprintln!("could not write {path}: {e}");
        }
    }
}
