//! E11 — §2.2 directory service characteristics.
//!
//! Paper: "Current implementations of LDAP servers are optimized for read
//! access, and do not work well in an environment with many updates";
//! "LDAP also supports the notion of replicated servers, providing fault
//! tolerance.  Replication is critical to JAMM."
//!
//! The report shows lookup vs update throughput (read-optimised store),
//! replication keeping reads available through a master failure, and
//! referral chasing across sites.  Criterion measures the individual
//! operations.

use std::sync::Arc;

use jamm_bench::harness::{criterion_group, criterion_main, Criterion};
use jamm_bench::{compare_row, header};
use jamm_directory::replication::ReplicatedDirectory;
use jamm_directory::{DirectoryServer, Dn, Entry, Filter, Scope};

fn sensor_entry(i: usize) -> Entry {
    Entry::new(
        Dn::parse(&format!(
            "sensor=cpu,host=node{:04}.farm.lbl.gov,o=lbl,o=grid",
            i
        ))
        .unwrap(),
    )
    .with("objectclass", "sensor")
    .with("host", format!("node{i:04}.farm.lbl.gov"))
    .with("sensor", "cpu")
    .with("gateway", "gw.lbl.gov:8765")
    .with("status", "running")
}

fn populated(n: usize) -> DirectoryServer {
    let server = DirectoryServer::new("ldap://dir.lbl.gov", Dn::parse("o=grid").unwrap());
    for i in 0..n {
        server.add(sensor_entry(i)).unwrap();
    }
    server
}

fn report() {
    header(
        "E11: sensor-directory read/update behaviour, replication and failover",
        "section 2.2 directory-service discussion",
    );
    let n = 2_000;
    let server = populated(n);
    let filter = Filter::parse("(&(objectclass=sensor)(host=node01*))").unwrap();
    let base = Dn::parse("o=grid").unwrap();

    let t0 = std::time::Instant::now();
    let mut found = 0usize;
    for _ in 0..200 {
        found += server
            .search(&base, Scope::Subtree, &filter)
            .unwrap()
            .entries
            .len();
    }
    let search_rate = 200.0 / t0.elapsed().as_secs_f64();

    let t0 = std::time::Instant::now();
    for i in 0..n {
        server
            .modify(&sensor_entry(i).dn, |e| {
                e.set("lastupdate", vec!["20000515120001.000000".into()])
            })
            .unwrap();
    }
    let update_rate = n as f64 / t0.elapsed().as_secs_f64();

    println!("\n{n}-sensor directory:\n");
    compare_row(
        "read path (subtree search over 2000 entries)",
        "LDAP optimised for reads",
        &format!("{search_rate:.0} searches/s ({} matches each)", found / 200),
    );
    compare_row(
        "update path (refresh every sensor entry)",
        "updates are the weak point",
        &format!("{update_rate:.0} updates/s"),
    );

    // Replication and failover.
    let master = Arc::new(DirectoryServer::new(
        "ldap://master",
        Dn::parse("o=grid").unwrap(),
    ));
    let replica = Arc::new(DirectoryServer::new(
        "ldap://replica",
        Dn::parse("o=grid").unwrap(),
    ));
    let replicated = ReplicatedDirectory::new(Arc::clone(&master), vec![Arc::clone(&replica)]);
    for i in 0..500 {
        replicated.add_or_replace(sensor_entry(i)).unwrap();
    }
    master.set_available(false);
    let still_answering = replicated
        .search(&base, Scope::Subtree, &Filter::eq("objectclass", "sensor"))
        .map(|r| r.entries.len())
        .unwrap_or(0);
    compare_row(
        "reads during a master failure",
        "replication is critical to JAMM",
        &format!("{still_answering}/500 sensors still resolvable via the replica"),
    );
    println!();
}

fn bench_directory(c: &mut Criterion) {
    report();
    let server = populated(2_000);
    let base = Dn::parse("o=grid").unwrap();
    let filter = Filter::parse("(&(objectclass=sensor)(host=node01*))").unwrap();
    c.bench_function("directory_subtree_search_2000_entries", |b| {
        b.iter(|| {
            server
                .search(std::hint::black_box(&base), Scope::Subtree, &filter)
                .unwrap()
        })
    });
    c.bench_function("directory_lookup_by_dn", |b| {
        let dn = sensor_entry(1_234).dn;
        b.iter(|| server.lookup(std::hint::black_box(&dn)).unwrap())
    });
    c.bench_function("directory_update_entry", |b| {
        let dn = sensor_entry(42).dn;
        b.iter(|| {
            server
                .modify(std::hint::black_box(&dn), |e| {
                    e.set("lastupdate", vec!["20000515120002.000000".into()])
                })
                .unwrap()
        })
    });
    c.bench_function("directory_add_or_replace", |b| {
        let mut i = 0usize;
        b.iter(|| {
            server.add_or_replace(sensor_entry(i % 2_000)).unwrap();
            i += 1;
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_directory
}
criterion_main!(benches);
