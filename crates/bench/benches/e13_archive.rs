//! E13 — archive storage engine throughput (jamm-tsdb).
//!
//! The paper's archive exists for "historical analysis of system
//! performance" (§2.2); this bench records what the segmented store
//! sustains: batch ingest into the hot tier, WAL-backed persistent ingest,
//! and range-query scans against the memtable vs sealed compressed
//! segments (with catalog pruning).  Baseline recorded in BENCH_e13.json
//! (JAMM_BENCH_JSON=BENCH_e13.json cargo bench --bench e13_archive).

use jamm::jamm_archive::{ArchiveQuery, EventArchive};
use jamm::jamm_tsdb::test_util::TempDir;
use jamm::jamm_tsdb::TsdbOptions;
use jamm_bench::{compare_row, data_row, header};
use jamm_core::json::{Json, Map};
use jamm_ulm::{Event, Level, Timestamp};

const HOSTS: [&str; 4] = [
    "dpss1.lbl.gov",
    "dpss2.lbl.gov",
    "mems.cairn.net",
    "portnoy.lbl.gov",
];
const TYPES: [&str; 3] = ["CPU_TOTAL", "MEM_FREE", "TCPD_RETRANSMITS"];

/// A deterministic sensor stream: regular 1ms period, rotating hosts and
/// event types — the shape the segment compressor is built for.
fn sample(i: u64) -> Event {
    Event::builder("vmstat", HOSTS[(i % 4) as usize])
        .level(Level::Usage)
        .event_type(TYPES[(i % 3) as usize])
        .timestamp(Timestamp::from_micros(1_000_000_000 + i * 1_000))
        .value((i % 100) as f64)
        .field("SAMPLE", i)
        .build()
}

fn events(n: u64) -> Vec<Event> {
    (0..n).map(sample).collect()
}

fn time<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let t0 = std::time::Instant::now();
    let r = f();
    (r, t0.elapsed().as_secs_f64())
}

fn kevps(n: u64, secs: f64) -> f64 {
    n as f64 / secs.max(1e-9) / 1_000.0
}

fn main() {
    header(
        "E13: archive ingest + range-query throughput (jamm-tsdb)",
        "section 2.2 archive service, grown to a segmented storage engine",
    );

    let n: u64 = 200_000;
    let batch = 1_000usize;
    let mut results: Vec<(&str, f64)> = Vec::new();

    // --- ingest: in-memory batches (the ArchiverAgent::poll path) ---
    // The memtable bound is raised above `n` so this archive really stays
    // in the hot tier — the point of the hot-vs-sealed comparison below.
    let data = events(n);
    let mem_archive = EventArchive::in_memory_with(TsdbOptions {
        memtable_max_events: (n + 1) as usize,
        ..TsdbOptions::default()
    });
    let (_, ingest_secs) = time(|| {
        for chunk in data.chunks(batch) {
            mem_archive.store_all(chunk.to_vec());
        }
    });
    results.push(("ingest_memtable_kev_per_s", kevps(n, ingest_secs)));

    // --- ingest: persistent, every batch through the WAL ---
    let dir = TempDir::new("bench-e13");
    let wal_archive = EventArchive::open(dir.path()).unwrap();
    let (_, wal_secs) = time(|| {
        for chunk in data.chunks(batch) {
            wal_archive.store_all(chunk.to_vec());
        }
    });
    results.push(("ingest_wal_kev_per_s", kevps(n, wal_secs)));

    // --- range query: hot memtable vs sealed compressed segments ---
    // One decile of the time axis; identical query on both layouts.
    let q = ArchiveQuery::all().between(
        Timestamp::from_micros(1_000_000_000 + n / 10 * 9 * 1_000),
        Timestamp::from_micros(1_000_000_000 + n * 1_000),
    );
    let (hot_hits, hot_secs) = time(|| mem_archive.query(&q).len());

    let sealed_archive = EventArchive::in_memory_with(TsdbOptions {
        memtable_max_events: (n / 16) as usize,
        ..TsdbOptions::default()
    });
    for chunk in data.chunks(batch) {
        sealed_archive.store_all(chunk.to_vec());
    }
    sealed_archive.seal();
    let segments = sealed_archive.tsdb().segment_count();
    let (cold_hits, cold_secs) = time(|| sealed_archive.query(&q).len());
    assert_eq!(hot_hits, cold_hits, "layouts must agree on the range");
    results.push(("scan_memtable_kev_per_s", kevps(hot_hits as u64, hot_secs)));
    results.push((
        "scan_segments_kev_per_s",
        kevps(cold_hits as u64, cold_secs),
    ));

    // --- pruning: how many of the 16 segments the decile query touched ---
    let scanned = sealed_archive.stats().segments_scanned();
    let pruned = sealed_archive.stats().segments_pruned();
    results.push(("segments_scanned", scanned as f64));
    results.push(("segments_pruned", pruned as f64));

    println!("\nmeasured ({n} events, batches of {batch}, {segments} sealed segments):\n");
    data_row(&[format!("{:<28}", "metric"), format!("{:>14}", "value")]);
    for (k, v) in &results {
        data_row(&[format!("{k:<28}"), format!("{v:>14.1}")]);
    }
    println!();
    compare_row(
        "ingest, memtable vs WAL-backed",
        "WAL costs one sequential write",
        &format!("{:.0}k ev/s vs {:.0}k ev/s", results[0].1, results[1].1),
    );
    compare_row(
        "decile range scan, hot vs sealed",
        "sealed pays decode, saves via pruning",
        &format!(
            "{:.0}k ev/s vs {:.0}k ev/s ({scanned} scanned / {pruned} pruned)",
            results[2].1, results[3].1
        ),
    );
    println!();

    if let Ok(path) = std::env::var("JAMM_BENCH_JSON") {
        let mut doc = Map::new();
        doc.insert("target".into(), Json::from("e13_archive"));
        doc.insert("events".into(), Json::from(n));
        doc.insert("batch".into(), Json::from(batch));
        doc.insert("segments".into(), Json::from(segments));
        let mut rows = Map::new();
        for (k, v) in &results {
            rows.insert((*k).into(), Json::from((v * 10.0).round() / 10.0));
        }
        doc.insert("results".into(), Json::Object(rows));
        if let Err(e) = std::fs::write(&path, Json::Object(doc).to_pretty() + "\n") {
            eprintln!("could not write {path}: {e}");
        }
    }
}
