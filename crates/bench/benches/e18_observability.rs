//! E18 — what the observability plane itself costs.
//!
//! PR 7 gave JAMM a self-instrumentation plane: a unified metrics
//! registry every hot path reports through, and sampled self-lifelines
//! traced end to end.  A monitoring system whose own monitoring slows it
//! down has failed at its one job, so this bench measures the pipeline's
//! publish-and-drain throughput under three configurations and guards the
//! plane's two promises:
//!
//! 1. **tracing off** — route timing disabled, no tracer: the bare
//!    pipeline (the baseline);
//! 2. **metrics only** — the default deployment: routing latency
//!    histograms and all counters live, no lifeline tracer.  Must stay
//!    within 5% of the baseline;
//! 3. **sampled lifelines** — a 1-in-64 `PipelineTracer` attached, the
//!    production self-monitoring configuration;
//!
//! plus a direct assertion that the steady-state metric record path
//! (counter inc, gauge set, histogram record, unwatched-event ring scan)
//! performs **zero heap allocations**, measured with a counting global
//! allocator — never disabled, even under JAMM_BENCH_NO_ASSERT.
//!
//! Baseline recorded in BENCH_e18.json
//! (JAMM_BENCH_JSON=BENCH_e18.json cargo bench --bench e18_observability);
//! JAMM_BENCH_BASELINE=BENCH_e18.json enables the >2x regression guard
//! and JAMM_BENCH_NO_ASSERT downgrades the wall-clock comparisons.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use jamm::jamm_core::json::{Json, Map};
use jamm::jamm_core::obs::MetricsRegistry;
use jamm::jamm_core::EventSource;
use jamm::jamm_gateway::{EventGateway, GatewayConfig, PipelineTracer};
use jamm_bench::{compare_row, data_row, header};
use jamm_ulm::{Event, Level, SharedEvent, Timestamp};

/// Counts every heap allocation so the zero-allocation claim is measured,
/// not asserted from type signatures.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates every operation to the system allocator unchanged;
// the counter is a relaxed atomic increment on the side.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

const HOSTS: [&str; 4] = [
    "dpss1.lbl.gov",
    "dpss2.lbl.gov",
    "mems.cairn.net",
    "portnoy.lbl.gov",
];
const TYPES: [&str; 4] = [
    "CPU_TOTAL",
    "MEM_FREE",
    "TCPD_RETRANSMITS",
    "MPLAY_END_READ_FRAME",
];

fn sample(i: u64) -> Event {
    Event::builder("vmstat", HOSTS[(i % 4) as usize])
        .level(Level::Usage)
        .event_type(TYPES[(i % 4) as usize])
        .timestamp(Timestamp::from_micros(1_000_000_000 + i * 1_000))
        .value((i % 100) as f64)
        .build()
}

fn time<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let t0 = std::time::Instant::now();
    let r = f();
    (r, t0.elapsed().as_secs_f64())
}

fn kevps(n: u64, secs: f64) -> f64 {
    n as f64 / secs.max(1e-9) / 1_000.0
}

/// Publish every event through a fresh gateway under `config` and drain
/// them from one streaming subscription; returns throughput in k events/s.
/// `drained` is reused across runs so its capacity is not re-grown inside
/// the timed region.
fn publish_drain(
    config: GatewayConfig,
    events: &[SharedEvent],
    drained: &mut Vec<SharedEvent>,
) -> f64 {
    let gw = EventGateway::new(config);
    let mut sub = gw
        .subscribe()
        .stream()
        .capacity(4_096)
        .as_consumer("bench")
        .open()
        .expect("subscription opens");
    drained.clear();
    let (_, secs) = time(|| {
        for chunk in events.chunks(1_024) {
            gw.publish_shared_batch(chunk);
            sub.drain_into(drained);
        }
    });
    assert_eq!(drained.len(), events.len(), "nothing dropped");
    kevps(events.len() as u64, secs)
}

/// Best of `runs` measurements (the usual guard against scheduler noise
/// when two wall-clock numbers are compared within a few percent).
fn best_of(runs: usize, mut f: impl FnMut() -> f64) -> f64 {
    (0..runs).map(|_| f()).fold(0.0, f64::max)
}

fn main() {
    header(
        "E18: observability overhead — metrics registry and sampled lifelines",
        "the monitor monitored: self-instrumentation must cost ~nothing",
    );

    let n: u64 = 200_000;
    let events: Vec<SharedEvent> = (0..n).map(|i| Arc::new(sample(i))).collect();
    let mut drained: Vec<SharedEvent> = Vec::with_capacity(events.len());
    let runs = 3;
    let mut results: Vec<(&str, f64)> = Vec::new();

    // --- 1. tracing off: the bare pipeline ---
    let off = best_of(runs, || {
        publish_drain(
            GatewayConfig::open("e18").with_route_timing(false),
            &events,
            &mut drained,
        )
    });
    results.push(("publish_drain_off_kev_per_s", off));

    // --- 2. metrics only: the default deployment ---
    let metrics_on = best_of(runs, || {
        publish_drain(GatewayConfig::open("e18"), &events, &mut drained)
    });
    results.push(("publish_drain_metrics_kev_per_s", metrics_on));

    // --- 3. sampled lifelines, 1 in 64 ---
    let sink = Arc::new(EventGateway::new(GatewayConfig::open("_jamm")));
    let mut trace_sub = sink
        .subscribe()
        .stream()
        .capacity(65_536)
        .as_consumer("_monitor")
        .open()
        .expect("trace subscription opens");
    let tracer = PipelineTracer::new(Arc::clone(&sink), "bench-host", 64);
    let mut trace_log: Vec<SharedEvent> = Vec::new();
    let traced = best_of(runs, || {
        let t = publish_drain(
            GatewayConfig::open("e18").with_tracer(Arc::clone(&tracer)),
            &events,
            &mut drained,
        );
        trace_sub.drain_into(&mut trace_log);
        t
    });
    results.push(("publish_drain_traced64_kev_per_s", traced));
    let overhead_metrics = (1.0 - metrics_on / off) * 100.0;
    let overhead_traced = (1.0 - traced / off) * 100.0;
    results.push(("metrics_overhead_pct", overhead_metrics));
    results.push(("traced64_overhead_pct", overhead_traced));
    results.push(("trace_points", trace_log.len() as f64));
    assert!(
        tracer.sampled_count() >= (runs as u64) * n / 64,
        "the tracer actually sampled ({} lifelines)",
        tracer.sampled_count()
    );
    assert!(
        !trace_log.is_empty(),
        "sampled lifelines produced trace points"
    );

    // --- 4. the record path allocates nothing in steady state ---
    let registry = MetricsRegistry::new();
    let counter = registry.counter("e18_ops");
    let gauge = registry.gauge("e18_level");
    let hist = registry.histogram("e18_us");
    let unwatched = Arc::new(sample(7));
    // Warm-up covers first-touch effects; the measured window must be clean.
    for i in 0..1_000u64 {
        counter.inc();
        hist.record(i);
    }
    let rounds: u64 = 1_000_000;
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let (_, rec_secs) = time(|| {
        for i in 0..rounds {
            counter.inc();
            gauge.set(i as f64);
            hist.record(i & 0xFFFF);
            // The per-event tracer check every pipeline stage performs on
            // the (vastly more common) unwatched path.
            std::hint::black_box(tracer.trace_id(&unwatched));
        }
    });
    let allocs = ALLOCATIONS.load(Ordering::Relaxed) - before;
    assert_eq!(
        allocs, 0,
        "steady-state metric recording must not allocate (saw {allocs})"
    );
    results.push(("record_mops_per_s", kevps(rounds, rec_secs) / 1_000.0));
    results.push(("record_allocations", allocs as f64));

    println!("\nmeasured ({n} events/run, best of {runs}):\n");
    data_row(&[format!("{:<34}", "metric"), format!("{:>14}", "value")]);
    for (k, v) in &results {
        data_row(&[format!("{k:<34}"), format!("{v:>14.1}")]);
    }
    println!();
    compare_row(
        "metrics on vs tracing off",
        "<= 5% overhead",
        &format!("{overhead_metrics:+.1}% at {metrics_on:.0}k ev/s"),
    );
    compare_row(
        "1-in-64 lifelines vs tracing off",
        "sampling amortizes the cost",
        &format!("{overhead_traced:+.1}% at {traced:.0}k ev/s"),
    );
    compare_row(
        "metric record path",
        "0 allocations",
        &format!("{allocs} allocations over {rounds} rounds"),
    );
    println!();

    let no_assert = std::env::var_os("JAMM_BENCH_NO_ASSERT").is_some();
    assert!(
        no_assert || metrics_on >= 0.95 * off,
        "metrics-only throughput {metrics_on:.1}k ev/s fell more than 5% below \
         the untimed baseline {off:.1}k ev/s"
    );

    // --- regression guard against the committed baseline ---
    if let Ok(path) = std::env::var("JAMM_BENCH_BASELINE") {
        let root_relative = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join(&path);
        let doc = std::fs::read_to_string(&path)
            .or_else(|_| std::fs::read_to_string(&root_relative))
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        let json = Json::parse(&doc).expect("baseline is valid JSON");
        let obj = json.as_object().expect("baseline is an object");
        let rows = obj
            .get("results")
            .and_then(|r| r.as_object())
            .expect("results object");
        let mut checked = 0;
        for name in [
            "publish_drain_off_kev_per_s",
            "publish_drain_metrics_kev_per_s",
            "publish_drain_traced64_kev_per_s",
            "record_mops_per_s",
        ] {
            let baseline = rows
                .get(name)
                .and_then(|v| v.as_f64())
                .unwrap_or_else(|| panic!("baseline missing {name}"));
            let measured = results
                .iter()
                .find(|(k, _)| *k == name)
                .map(|(_, v)| *v)
                .expect("measured");
            checked += 1;
            println!("  guard {name:<36} baseline {baseline:>10.1}   measured {measured:>10.1}");
            assert!(
                no_assert || measured * 2.0 >= baseline,
                "{name}: measured {measured:.1} is more than 2x below the \
                 committed baseline {baseline:.1} ({path})"
            );
        }
        println!("\n  regression guard: {checked} checks within 2x of baseline\n");
    }

    if let Ok(path) = std::env::var("JAMM_BENCH_JSON") {
        let mut doc = Map::new();
        doc.insert("target".into(), Json::from("e18_observability"));
        doc.insert("events".into(), Json::from(n));
        doc.insert("runs".into(), Json::from(runs as u64));
        let mut rows = Map::new();
        for (k, v) in &results {
            rows.insert((*k).into(), Json::from((v * 10.0).round() / 10.0));
        }
        doc.insert("results".into(), Json::Object(rows));
        if let Err(e) = std::fs::write(&path, Json::Object(doc).to_pretty() + "\n") {
            eprintln!("could not write {path}: {e}");
        }
    }
}
