//! Figure 3 — scatter plot of low-level `read()` sizes.
//!
//! Paper: "Generation of a scatter plot was useful, for instance, to show
//! the distribution of 'bytes read' from individual low-level calls to the
//! operating system's read() function. ...  This graph makes apparent the
//! (unexpected) clustering of the data around two distinct values."

use jamm::deployment::{DeploymentConfig, JammDeployment};
use jamm_bench::{compare_row, header};
use jamm_netlogger::analysis::two_cluster;

fn main() {
    header(
        "Fig. 3: distribution of per-read() byte counts at the frame player",
        "scatter plot clustering around two distinct values",
    );

    let mut cfg = DeploymentConfig::matisse_wan(1);
    cfg.matisse.seed = 77;
    let mut jamm = JammDeployment::matisse(cfg);
    jamm.run_secs(25.0);

    let reads = &jamm.scenario.player.read_sizes;
    println!(
        "\n{} read() calls recorded over 25 simulated seconds",
        reads.len()
    );

    // Regenerate the scatter data: a coarse histogram over read size.
    let mut histogram = [0usize; 9];
    for &(_, r) in reads {
        let bucket = ((r as usize) / 8_192).min(8);
        histogram[bucket] += 1;
    }
    println!(
        "\nread-size histogram (8 KB buckets, '#' = {} reads):",
        (reads.len() / 200).max(1)
    );
    for (i, count) in histogram.iter().enumerate() {
        let label = format!("{:>3}-{:<3} KB", i * 8, (i + 1) * 8);
        let bar = "#".repeat(count / (reads.len() / 200).max(1));
        println!("  {label} {count:>6} {bar}");
    }

    let readings: Vec<f64> = reads.iter().map(|&(_, r)| r as f64).collect();
    match two_cluster(&readings) {
        Some(c) => {
            println!("\npaper vs measured:\n");
            compare_row(
                "distribution shape",
                "two distinct clusters",
                &format!(
                    "clusters at {:.0} B (n={}) and {:.0} B (n={}), separation {:.1}",
                    c.low_center, c.low_count, c.high_center, c.high_count, c.separation
                ),
            );
            compare_row(
                "upper cluster",
                "the read-buffer size",
                &format!("{:.0} B (buffer is 65536 B)", c.high_center),
            );
        }
        None => println!("not enough distinct readings to cluster"),
    }
}
