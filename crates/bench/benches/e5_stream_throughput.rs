//! E5 — §6 iperf comparison: 1 vs 4 parallel TCP streams, WAN vs LAN.
//!
//! Paper: "the aggregate throughput for four streams was only 30 Mbits/sec
//! compared to 140 Mbits/sec for a single stream. ...  LAN throughput for
//! both one and four data streams are 200 Mbits/second."  Using one DPSS
//! server instead of four "increased the throughput to 140 Mbits/sec".

use jamm_bench::{compare_row, data_row, header};
use jamm_core::json::{Json, Map};
use jamm_netsim::scenario::matisse_iperf;

fn main() {
    header(
        "E5: iperf stream-count sweep on the MATISSE topology",
        "section 6 throughput numbers (140 vs 30 Mbit/s WAN; 200 Mbit/s LAN)",
    );

    let duration = 20.0;
    let seed = 42u64;
    println!("\nregenerated sweep (20 simulated seconds per cell):\n");
    data_row(&[
        format!("{:<8}", "network"),
        format!("{:>8}", "streams"),
        format!("{:>16}", "aggregate Mbit/s"),
        format!("{:>14}", "retransmits"),
        format!("{:>10}", "timeouts"),
    ]);
    let mut results = std::collections::HashMap::new();
    for (wan, label) in [(true, "WAN"), (false, "LAN")] {
        for streams in [1usize, 2, 4, 8] {
            let r = matisse_iperf(wan, streams, duration, seed);
            data_row(&[
                format!("{label:<8}"),
                format!("{streams:>8}"),
                format!("{:>16.1}", r.aggregate_mbps),
                format!("{:>14}", r.retransmits),
                format!("{:>10}", r.timeouts),
            ]);
            results.insert((wan, streams), r.aggregate_mbps);
        }
    }

    println!("\npaper vs measured:\n");
    compare_row(
        "WAN, 1 stream",
        "~140 Mbit/s",
        &format!("{:.1} Mbit/s", results[&(true, 1)]),
    );
    compare_row(
        "WAN, 4 streams (aggregate)",
        "~30 Mbit/s",
        &format!("{:.1} Mbit/s", results[&(true, 4)]),
    );
    compare_row(
        "LAN, 1 stream",
        "~200 Mbit/s",
        &format!("{:.1} Mbit/s", results[&(false, 1)]),
    );
    compare_row(
        "LAN, 4 streams (aggregate)",
        "~200 Mbit/s",
        &format!("{:.1} Mbit/s", results[&(false, 4)]),
    );
    let collapse = results[&(true, 1)] / results[&(true, 4)].max(0.001);
    compare_row(
        "WAN collapse factor (1 stream / 4 streams)",
        "~4.7x",
        &format!("{collapse:.1}x"),
    );

    // Record the sweep as a JSON baseline (see BENCH_e5.json at the repo
    // root) when asked: JAMM_BENCH_JSON=BENCH_e5.json cargo bench --bench
    // e5_stream_throughput
    if let Ok(path) = std::env::var("JAMM_BENCH_JSON") {
        let mut sorted: Vec<_> = results.iter().collect();
        sorted.sort_by_key(|((wan, streams), _)| (!wan, *streams));
        let rows: Vec<Json> = sorted
            .into_iter()
            .map(|(&(wan, streams), &mbps)| {
                let mut row = Map::new();
                row.insert(
                    "network".into(),
                    Json::from(if wan { "WAN" } else { "LAN" }),
                );
                row.insert("streams".into(), Json::from(streams));
                row.insert(
                    "aggregate_mbps".into(),
                    Json::from((mbps * 10.0).round() / 10.0),
                );
                Json::Object(row)
            })
            .collect();
        let mut doc = Map::new();
        doc.insert("target".into(), Json::from("e5_stream_throughput"));
        doc.insert("duration_simulated_secs".into(), Json::from(duration));
        doc.insert("seed".into(), Json::from(seed));
        doc.insert("results".into(), Json::Array(rows));
        if let Err(e) = std::fs::write(&path, Json::Object(doc).to_pretty() + "\n") {
            eprintln!("could not write {path}: {e}");
        }
    }
}
