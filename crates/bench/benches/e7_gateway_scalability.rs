//! E7 — §2.3 scalability: event gateways absorb consumer fan-out.
//!
//! Paper: "In the case where many consumers are requesting the same event
//! data, the use of an event gateway reduces the amount of work on and the
//! amount of network traffic from the host being monitored. ...  one can add
//! additional event gateways, and additional sensor directories as needed,
//! reducing the load where necessary."
//!
//! The experiment measures, as the number of consumers grows: (a) events
//! published by the monitored hosts' sensors (should stay flat), (b) event
//! copies delivered (grows with consumers, absorbed by the gateway), and (c)
//! the same with the consumer load spread over more gateways.  The Criterion
//! part measures raw gateway publish throughput at different subscriber
//! counts.

use jamm::cluster::ClusterDeployment;
use jamm_bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion};
use jamm_bench::{compare_row, data_row, header};
use jamm_gateway::{EventGateway, GatewayConfig};
use jamm_ulm::{Event, Level, Timestamp};

fn fanout_report() {
    header(
        "E7: gateway fan-out and scaling",
        "section 2.3 scalability argument (gateways shield the monitored hosts)",
    );
    println!("\n16-node monitored farm, 5 simulated seconds per row:\n");
    data_row(&[
        format!("{:>10}", "consumers"),
        format!("{:>10}", "gateways"),
        format!("{:>22}", "sensor events published"),
        format!("{:>22}", "event copies delivered"),
        format!("{:>26}", "delivered per gateway"),
    ]);
    let mut published_counts = Vec::new();
    for &(consumers, gateways) in &[(0usize, 1usize), (1, 1), (4, 1), (16, 1), (16, 2), (16, 4)] {
        let mut cluster = ClusterDeployment::new(16, gateways, 99);
        cluster.attach_consumers(consumers, vec![]);
        cluster.run_secs(5.0);
        let published = cluster.events_published();
        let delivered = cluster.events_delivered();
        published_counts.push(published);
        data_row(&[
            format!("{consumers:>10}"),
            format!("{gateways:>10}"),
            format!("{published:>22}"),
            format!("{delivered:>22}"),
            format!("{:>26.0}", delivered as f64 / gateways as f64),
        ]);
    }
    println!("\npaper vs measured:\n");
    let flat = published_counts.iter().max().unwrap() - published_counts.iter().min().unwrap();
    compare_row(
        "work on monitored hosts as consumers grow",
        "unchanged (gateway absorbs fan-out)",
        &format!("spread of {flat} events across 0-16 consumers"),
    );
    compare_row(
        "adding gateways",
        "reduces per-gateway load",
        "delivered-per-gateway column falls as gateways are added",
    );
    println!();
}

fn publish_event(i: u64) -> Event {
    Event::builder("vmstat", "node001.farm.lbl.gov")
        .level(Level::Usage)
        .event_type("CPU_TOTAL")
        .timestamp(Timestamp::from_micros(i))
        .value((i % 100) as f64)
        .build()
}

fn bench_gateway_publish(c: &mut Criterion) {
    fanout_report();
    let mut group = c.benchmark_group("gateway_publish_throughput");
    for subscribers in [0usize, 1, 8, 64] {
        group.bench_with_input(
            BenchmarkId::from_parameter(subscribers),
            &subscribers,
            |b, &n| {
                let gw = EventGateway::new(GatewayConfig::open("bench-gw"));
                let subs: Vec<_> = (0..n)
                    .map(|i| gw.subscribe().as_consumer(format!("c{i}")).open().unwrap())
                    .collect();
                let mut i = 0u64;
                b.iter(|| {
                    i += 1;
                    gw.publish(std::hint::black_box(&publish_event(i)));
                    // Drain periodically; the bounded queues would otherwise
                    // overwrite and count drops, skewing the comparison.
                    if i.is_multiple_of(1_024) {
                        for s in &subs {
                            while s.events.try_recv().is_ok() {}
                        }
                    }
                });
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_gateway_publish
}
criterion_main!(benches);
