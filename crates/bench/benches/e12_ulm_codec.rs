//! E12 — §3 event-format overheads.
//!
//! Paper: "JAMM event data is delivered in ULM format, a simple ASCII-based
//! format ... We are also looking into adding a binary format option for
//! high throughput event data that can not tolerate the parsing overhead of
//! ASCII formats."  This bench quantifies that trade-off for the
//! reproduction's three codecs (ULM text, binary, JSON).

use jamm_bench::harness::{criterion_group, criterion_main, Criterion};
use jamm_bench::{compare_row, header};
use jamm_ulm::{binary, json, text, Event, Level, Timestamp};

fn sample_event(i: u64) -> Event {
    Event::builder("dpss_block_server", "dpss1.lbl.gov")
        .level(Level::Usage)
        .event_type("DPSS_END_WRITE")
        .timestamp(Timestamp::from_micros(958_392_000_000_000 + i))
        .object_id(format!("frame-{}", i % 64))
        .field("BLOCK.SZ", 65_536u64)
        .field("SEND.SZ", 49_332u64)
        .field("LOAD", 0.37)
        .build()
}

fn report() {
    header(
        "E12: ULM text vs binary vs JSON encoding",
        "section 3 format discussion (ASCII parsing overhead, planned binary option)",
    );
    let ev = sample_event(1);
    let text_len = text::encode(&ev).len();
    let bin_len = binary::encode(&ev).len();
    let json_len = json::encode(&ev).len();
    println!();
    compare_row(
        "encoded size per event",
        "ASCII is simple but verbose",
        &format!("text {text_len} B, binary {bin_len} B, json {json_len} B"),
    );

    let n = 50_000u64;
    let events: Vec<Event> = (0..n).map(sample_event).collect();
    let time = |f: &dyn Fn() -> usize| {
        let t0 = std::time::Instant::now();
        let total = f();
        (total, t0.elapsed().as_secs_f64())
    };
    let (_, enc_text) = time(&|| events.iter().map(|e| text::encode(e).len()).sum());
    let (_, enc_bin) = time(&|| events.iter().map(|e| binary::encode(e).len()).sum());
    let text_lines: Vec<String> = events.iter().map(text::encode).collect();
    let bin_frames: Vec<_> = events.iter().map(binary::encode).collect();
    let (_, dec_text) = time(&|| {
        text_lines
            .iter()
            .map(|l| text::decode(l).unwrap().fields.len())
            .sum()
    });
    let (_, dec_bin) = time(&|| {
        bin_frames
            .iter()
            .map(|f| binary::decode(f).unwrap().0.fields.len())
            .sum()
    });
    compare_row(
        "decode throughput (the hot path for consumers)",
        "binary avoids ASCII parsing overhead",
        &format!(
            "text {:.0}k ev/s, binary {:.0}k ev/s ({:.1}x faster)",
            n as f64 / dec_text / 1_000.0,
            n as f64 / dec_bin / 1_000.0,
            dec_text / dec_bin
        ),
    );
    compare_row(
        "encode throughput",
        "-",
        &format!(
            "text {:.0}k ev/s, binary {:.0}k ev/s",
            n as f64 / enc_text / 1_000.0,
            n as f64 / enc_bin / 1_000.0
        ),
    );
    println!();
}

fn bench_codecs(c: &mut Criterion) {
    report();
    let ev = sample_event(7);
    let line = text::encode(&ev);
    let frame = binary::encode(&ev);
    let js = json::encode(&ev);

    c.bench_function("ulm_text_encode", |b| {
        b.iter(|| text::encode(std::hint::black_box(&ev)))
    });
    c.bench_function("ulm_text_decode", |b| {
        b.iter(|| text::decode(std::hint::black_box(&line)).unwrap())
    });
    c.bench_function("ulm_binary_encode", |b| {
        b.iter(|| binary::encode(std::hint::black_box(&ev)))
    });
    c.bench_function("ulm_binary_decode", |b| {
        b.iter(|| binary::decode(std::hint::black_box(&frame)).unwrap())
    });
    c.bench_function("ulm_json_encode", |b| {
        b.iter(|| json::encode(std::hint::black_box(&ev)))
    });
    c.bench_function("ulm_json_decode", |b| {
        b.iter(|| json::decode(std::hint::black_box(&js)).unwrap())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(50);
    targets = bench_codecs
}
criterion_main!(benches);
