//! Poison-transparent locks.
//!
//! Thin wrappers over the std locks with the ergonomics the codebase wants:
//! `lock()` / `read()` / `write()` return guards directly, treating a
//! poisoned lock as still holding valid data (a panicking monitoring
//! consumer must not wedge the whole pipeline).

use std::sync::PoisonError;

/// A mutual-exclusion lock whose `lock` never returns a poison error.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, ignoring poisoning.
    pub fn lock(&self) -> std::sync::MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.0.try_lock() {
            Ok(guard) => f.debug_tuple("Mutex").field(&&*guard).finish(),
            Err(_) => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// A reader/writer lock whose accessors never return poison errors.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard, ignoring poisoning.
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire the exclusive write guard, ignoring poisoning.
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.0.try_read() {
            Ok(guard) => f.debug_tuple("RwLock").field(&&*guard).finish(),
            Err(_) => f.write_str("RwLock(<locked>)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn poisoned_mutex_still_usable() {
        let m = std::sync::Arc::new(Mutex::new(5));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        assert_eq!(*m.lock(), 5);
    }
}
