//! Self-instrumentation primitives: the metrics registry JAMM uses to
//! monitor *itself*.
//!
//! The paper's thesis is that you cannot manage what you cannot measure —
//! and that holds for the monitoring system too.  This module is the
//! measurement substrate the rest of the workspace threads through its
//! layers: named [`Counter`]s and [`Gauge`]s, log-bucketed latency
//! [`Histogram`]s, and a [`MetricsRegistry`] that turns all of them (plus
//! per-entity rows contributed by registered collectors) into one
//! [`MetricsSnapshot`] with a Prometheus-style text exposition.
//!
//! Design constraints, in order:
//!
//! * **Hot-path recording is one relaxed atomic add** — no locks, no
//!   allocation, no branching on contended state.  A histogram record
//!   computes its bucket with integer bit arithmetic and bumps exactly one
//!   `AtomicU64`; count, sum and quantiles are derived at snapshot time.
//! * **Snapshots are plain data** and merge associatively: a fleet of
//!   per-shard or per-process histograms folds into one distribution by
//!   element-wise addition, in any grouping.
//! * **std only**, like everything else in the workspace.
//!
//! Quantiles are approximate by construction: a bucket spans at most a
//! `1/2^SUB_BITS` (12.5%) relative range, so any reported quantile is
//! within that bound of the true recorded value.  The property tests
//! assert exactly this.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::sync::Mutex;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter at zero.
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A settable instantaneous value (stored as `f64` bits).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A gauge at zero.
    pub const fn new() -> Self {
        Gauge(AtomicU64::new(0))
    }

    /// Set the value.
    #[inline]
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Sub-bucket resolution: 2^3 = 8 linear sub-buckets per power of two,
/// bounding the relative quantile error at 1/8 = 12.5%.
const SUB_BITS: u32 = 3;
const SUBS: usize = 1 << SUB_BITS;
/// Values `0..SUBS` get exact unit buckets; each higher octave `[2^m,
/// 2^(m+1))` for `m in SUB_BITS..64` gets `SUBS` sub-buckets.
pub(crate) const BUCKETS: usize = (64 - SUB_BITS as usize) * SUBS + SUBS;

/// Bucket index for a recorded value: pure bit arithmetic, no branches on
/// shared state.
#[inline]
fn bucket_of(v: u64) -> usize {
    if v < SUBS as u64 {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros();
        let sub = (v >> (msb - SUB_BITS)) & (SUBS as u64 - 1);
        (((msb - SUB_BITS + 1) << SUB_BITS) | sub as u32) as usize
    }
}

/// Inclusive `[lower, upper]` value range of bucket `idx`.
pub fn bucket_bounds(idx: usize) -> (u64, u64) {
    if idx < SUBS {
        (idx as u64, idx as u64)
    } else {
        let msb = (idx as u32 >> SUB_BITS) - 1 + SUB_BITS;
        let sub = (idx & (SUBS - 1)) as u64;
        let width = 1u64 << (msb - SUB_BITS);
        let lower = (1u64 << msb) + sub * width;
        // `width - 1` first: the top bucket's `lower + width` is 2^64.
        (lower, lower + (width - 1))
    }
}

/// A lock-free, log-bucketed latency histogram (HDR-style).
///
/// `record` is a single relaxed `fetch_add` on one of a fixed array of
/// buckets — no allocation, no locks, safe from any thread.  Everything
/// else (count, mean, quantiles, max) is derived from a
/// [`HistogramSnapshot`].
pub struct Histogram {
    counts: Box<[AtomicU64; BUCKETS]>,
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.snapshot().count())
            .finish()
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        // A Vec round-trip keeps the 496-slot array off the stack.
        let v: Vec<AtomicU64> = (0..BUCKETS).map(|_| AtomicU64::new(0)).collect();
        let counts: Box<[AtomicU64; BUCKETS]> = v
            .into_boxed_slice()
            .try_into()
            .expect("BUCKETS-length vec converts to array");
        Histogram { counts }
    }

    /// Record one value: exactly one relaxed atomic add.
    #[inline]
    pub fn record(&self, v: u64) {
        self.counts[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Record a `Duration` in microseconds.
    #[inline]
    pub fn record_micros(&self, d: std::time::Duration) {
        self.record(d.as_micros() as u64);
    }

    /// A plain-data copy of the current bucket counts.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            counts: self
                .counts
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

/// Plain-data histogram state: mergeable, queryable, serializable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    counts: Vec<u64>,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            counts: vec![0; BUCKETS],
        }
    }
}

impl HistogramSnapshot {
    /// Total recorded values.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Element-wise merge: `(a ⊎ b) ⊎ c == a ⊎ (b ⊎ c)` by construction.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
    }

    /// The value at quantile `q` in `[0, 1]`: the upper bound of the bucket
    /// containing the `ceil(q * count)`-th recorded value (so the true
    /// value is ≤ the reported one, within the bucket's 12.5% relative
    /// width).  Returns 0 for an empty snapshot.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_bounds(idx).1;
            }
        }
        self.max()
    }

    /// Median (bucket upper bound).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th percentile (bucket upper bound).
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th percentile (bucket upper bound).
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Upper bound of the highest non-empty bucket (exact for values < 8).
    pub fn max(&self) -> u64 {
        self.counts
            .iter()
            .rposition(|&c| c > 0)
            .map(|idx| bucket_bounds(idx).1)
            .unwrap_or(0)
    }

    /// Approximate mean, using bucket midpoints.
    pub fn mean(&self) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        let sum: f64 = self
            .counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(idx, &c)| {
                let (lo, hi) = bucket_bounds(idx);
                c as f64 * ((lo + hi) as f64 / 2.0)
            })
            .sum();
        sum / total as f64
    }

    /// Raw bucket counts (index with [`bucket_bounds`]).
    pub fn buckets(&self) -> &[u64] {
        &self.counts
    }
}

/// The value carried by one exposition sample.
#[derive(Debug, Clone, PartialEq)]
pub enum SampleValue {
    /// Monotonic counter reading.
    Counter(u64),
    /// Instantaneous gauge reading.
    Gauge(f64),
    /// Full histogram state.
    Histogram(HistogramSnapshot),
}

/// One named (and optionally labelled) metric reading in a snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Metric name, e.g. `jamm_gateway_events_in`.
    pub name: String,
    /// Label pairs, e.g. `[("gateway", "gw.lbl.gov:8765")]`.
    pub labels: Vec<(String, String)>,
    /// The reading.
    pub value: SampleValue,
}

impl Sample {
    /// A counter sample.
    pub fn counter(name: impl Into<String>, v: u64) -> Sample {
        Sample {
            name: name.into(),
            labels: Vec::new(),
            value: SampleValue::Counter(v),
        }
    }

    /// A gauge sample.
    pub fn gauge(name: impl Into<String>, v: f64) -> Sample {
        Sample {
            name: name.into(),
            labels: Vec::new(),
            value: SampleValue::Gauge(v),
        }
    }

    /// Attach a label pair.
    pub fn with_label(mut self, key: impl Into<String>, value: impl Into<String>) -> Sample {
        self.labels.push((key.into(), value.into()));
        self
    }
}

/// A point-in-time reading of every metric a registry knows about.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// All samples, registry metrics first (sorted by name), then
    /// collector-contributed rows in registration order.
    pub samples: Vec<Sample>,
}

impl MetricsSnapshot {
    /// First sample with this name (ignoring labels), if any.
    pub fn get(&self, name: &str) -> Option<&Sample> {
        self.samples.iter().find(|s| s.name == name)
    }

    /// Value of the first counter sample with this name and label pair.
    pub fn counter_with(&self, name: &str, key: &str, value: &str) -> Option<u64> {
        self.samples
            .iter()
            .filter(|s| s.name == name)
            .find(|s| s.labels.iter().any(|(k, v)| k == key && v == value))
            .and_then(|s| match &s.value {
                SampleValue::Counter(v) => Some(*v),
                _ => None,
            })
    }

    /// Value of the first gauge sample with this name and label pair.
    pub fn gauge_with(&self, name: &str, key: &str, value: &str) -> Option<f64> {
        self.samples
            .iter()
            .filter(|s| s.name == name)
            .find(|s| s.labels.iter().any(|(k, v)| k == key && v == value))
            .and_then(|s| match &s.value {
                SampleValue::Gauge(v) => Some(*v),
                _ => None,
            })
    }

    /// Render the snapshot in a Prometheus-style text exposition format.
    ///
    /// Counters and gauges become one line each; histograms are rendered
    /// summary-style with `{quantile=...}` lines plus `_count` and `_max`.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let mut last_name = "";
        for s in &self.samples {
            let kind = match &s.value {
                SampleValue::Counter(_) => "counter",
                SampleValue::Gauge(_) => "gauge",
                SampleValue::Histogram(_) => "summary",
            };
            if s.name != last_name {
                let _ = writeln!(out, "# TYPE {} {}", s.name, kind);
                last_name = &s.name;
            }
            match &s.value {
                SampleValue::Counter(v) => {
                    let _ = writeln!(out, "{}{} {}", s.name, render_labels(&s.labels, None), v);
                }
                SampleValue::Gauge(v) => {
                    let _ = writeln!(out, "{}{} {}", s.name, render_labels(&s.labels, None), v);
                }
                SampleValue::Histogram(h) => {
                    for (q, v) in [(0.5, h.p50()), (0.9, h.p90()), (0.99, h.p99())] {
                        let _ =
                            writeln!(out, "{}{} {}", s.name, render_labels(&s.labels, Some(q)), v);
                    }
                    let _ = writeln!(
                        out,
                        "{}_count{} {}",
                        s.name,
                        render_labels(&s.labels, None),
                        h.count()
                    );
                    let _ = writeln!(
                        out,
                        "{}_max{} {}",
                        s.name,
                        render_labels(&s.labels, None),
                        h.max()
                    );
                }
            }
        }
        out
    }
}

fn render_labels(labels: &[(String, String)], quantile: Option<f64>) -> String {
    if labels.is_empty() && quantile.is_none() {
        return String::new();
    }
    let mut out = String::from("{");
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{}=\"{}\"", k, v.replace('"', "'"));
    }
    if let Some(q) = quantile {
        if !labels.is_empty() {
            out.push(',');
        }
        let _ = write!(out, "quantile=\"{q}\"");
    }
    out.push('}');
    out
}

/// A callback contributing dynamic per-entity samples (per subscription,
/// per socket, per shard…) to a snapshot.
pub type Collector = Box<dyn Fn(&mut Vec<Sample>) + Send + Sync>;

#[derive(Default)]
struct RegistryInner {
    counters: BTreeMap<String, Arc<Counter>>,
    gauges: BTreeMap<String, Arc<Gauge>>,
    histograms: BTreeMap<String, Arc<Histogram>>,
    collectors: Vec<Collector>,
}

/// A named collection of metrics plus snapshot collectors.
///
/// Registration (cold path) takes a lock; the returned `Arc` handles are
/// what hot paths hold — recording through them never touches the
/// registry again.
#[derive(Default)]
pub struct MetricsRegistry {
    inner: Mutex<RegistryInner>,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("MetricsRegistry")
            .field("counters", &inner.counters.len())
            .field("gauges", &inner.gauges.len())
            .field("histograms", &inner.histograms.len())
            .field("collectors", &inner.collectors.len())
            .finish()
    }
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// The process-wide registry (for components not wired into a
    /// per-system registry).
    pub fn global() -> &'static MetricsRegistry {
        static GLOBAL: std::sync::OnceLock<MetricsRegistry> = std::sync::OnceLock::new();
        GLOBAL.get_or_init(MetricsRegistry::new)
    }

    /// Get or create the named counter.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut inner = self.inner.lock();
        Arc::clone(
            inner
                .counters
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Counter::new())),
        )
    }

    /// Get or create the named gauge.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut inner = self.inner.lock();
        Arc::clone(
            inner
                .gauges
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Gauge::new())),
        )
    }

    /// Get or create the named histogram.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut inner = self.inner.lock();
        Arc::clone(
            inner
                .histograms
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Histogram::new())),
        )
    }

    /// Register a collector contributing samples at snapshot time.
    pub fn register_collector(&self, collector: Collector) {
        self.inner.lock().collectors.push(collector);
    }

    /// Read every metric and run every collector.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock();
        let mut samples = Vec::new();
        for (name, c) in &inner.counters {
            samples.push(Sample::counter(name.clone(), c.get()));
        }
        for (name, g) in &inner.gauges {
            samples.push(Sample::gauge(name.clone(), g.get()));
        }
        for (name, h) in &inner.histograms {
            samples.push(Sample {
                name: name.clone(),
                labels: Vec::new(),
                value: SampleValue::Histogram(h.snapshot()),
            });
        }
        for collector in &inner.collectors {
            collector(&mut samples);
        }
        MetricsSnapshot { samples }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::forall;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("jamm_test_events");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Same name yields the same underlying counter.
        reg.counter("jamm_test_events").add(1);
        assert_eq!(c.get(), 6);
        let g = reg.gauge("jamm_test_saturation");
        g.set(0.75);
        assert!((g.get() - 0.75).abs() < f64::EPSILON);
        let snap = reg.snapshot();
        assert_eq!(
            snap.get("jamm_test_events").map(|s| &s.value),
            Some(&SampleValue::Counter(6))
        );
    }

    #[test]
    fn bucket_bounds_are_a_partition() {
        // Every bucket's bounds are contiguous with the next bucket's, and
        // bucket_of maps each bound into its own bucket.
        let mut expected_lo = 0u64;
        for idx in 0..BUCKETS {
            let (lo, hi) = bucket_bounds(idx);
            assert_eq!(lo, expected_lo, "bucket {idx} lower bound");
            assert!(hi >= lo);
            assert_eq!(bucket_of(lo), idx);
            assert_eq!(bucket_of(hi), idx);
            expected_lo = hi.wrapping_add(1);
        }
        assert_eq!(expected_lo, 0, "buckets cover the full u64 range");
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn bucket_relative_error_is_bounded() {
        for idx in SUBS..BUCKETS {
            let (lo, hi) = bucket_bounds(idx);
            // Bucket width / lower bound ≤ 1/8: a reported quantile (the
            // bucket's upper bound) is within 12.5% of any value in it.
            assert!(
                (hi - lo) as f64 / lo as f64 <= 1.0 / SUBS as f64,
                "bucket {idx} [{lo}, {hi}] too wide"
            );
        }
    }

    #[test]
    fn quantiles_fall_within_bucket_error_bounds() {
        forall("histogram quantile bounds", 64, |g| {
            let h = Histogram::new();
            let n = g.usize_in(1, 400);
            let mut values: Vec<u64> = (0..n)
                .map(|_| {
                    // Mix magnitudes so many octaves are exercised.
                    let octave = g.usize_in(0, 30);
                    g.u64(1 << octave)
                })
                .collect();
            for &v in &values {
                h.record(v);
            }
            values.sort_unstable();
            let snap = h.snapshot();
            assert_eq!(snap.count() as usize, n, "no recorded value lost");
            for q in [0.5, 0.9, 0.99, 1.0] {
                let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
                let truth = values[rank - 1];
                let reported = snap.quantile(q);
                // The reported value is the upper bound of the bucket
                // holding the true value: never below the truth, and no
                // more than one bucket-width above it.
                let (lo, hi) = bucket_bounds(bucket_of(truth));
                assert!(
                    reported >= truth && reported == hi,
                    "q={q}: truth {truth} in [{lo},{hi}], reported {reported}"
                );
            }
            assert_eq!(snap.max(), bucket_bounds(bucket_of(values[n - 1])).1);
        });
    }

    #[test]
    fn snapshots_merge_associatively() {
        forall("histogram merge associativity", 64, |g| {
            let parts: Vec<HistogramSnapshot> = (0..3)
                .map(|_| {
                    let h = Histogram::new();
                    for _ in 0..g.usize_in(0, 200) {
                        let bound = 1 << g.usize_in(1, 40);
                        h.record(g.u64(bound));
                    }
                    h.snapshot()
                })
                .collect();
            // (a ⊎ b) ⊎ c
            let mut left = parts[0].clone();
            left.merge(&parts[1]);
            left.merge(&parts[2]);
            // a ⊎ (b ⊎ c)
            let mut bc = parts[1].clone();
            bc.merge(&parts[2]);
            let mut right = parts[0].clone();
            right.merge(&bc);
            assert_eq!(left, right);
            assert_eq!(
                left.count(),
                parts.iter().map(|p| p.count()).sum::<u64>(),
                "merge preserves total count"
            );
        });
    }

    #[test]
    fn concurrent_recording_loses_no_counts() {
        let h = Arc::new(Histogram::new());
        const THREADS: usize = 8;
        const PER_THREAD: u64 = 10_000;
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..PER_THREAD {
                        // Different threads hit overlapping buckets.
                        h.record((t as u64 + 1) * 37 + i % 1024);
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        assert_eq!(h.snapshot().count(), THREADS as u64 * PER_THREAD);
    }

    #[test]
    fn render_text_exposition_format() {
        let reg = MetricsRegistry::new();
        reg.counter("jamm_events_in").add(42);
        reg.gauge("jamm_saturation").set(0.5);
        let h = reg.histogram("jamm_route_us");
        for v in [10, 20, 30] {
            h.record(v);
        }
        reg.register_collector(Box::new(|out| {
            out.push(
                Sample::counter("jamm_sub_delivered", 7).with_label("consumer", "nlv-analyst"),
            );
        }));
        let text = reg.snapshot().render_text();
        assert!(text.contains("# TYPE jamm_events_in counter"));
        assert!(text.contains("jamm_events_in 42"));
        assert!(text.contains("jamm_saturation 0.5"));
        assert!(text.contains("# TYPE jamm_route_us summary"));
        assert!(text.contains("jamm_route_us{quantile=\"0.5\"}"));
        assert!(text.contains("jamm_route_us_count 3"));
        assert!(text.contains("jamm_sub_delivered{consumer=\"nlv-analyst\"} 7"));
    }

    #[test]
    fn snapshot_lookup_by_label() {
        let reg = MetricsRegistry::new();
        reg.register_collector(Box::new(|out| {
            out.push(Sample::counter("jamm_gw_events", 3).with_label("gateway", "a"));
            out.push(Sample::counter("jamm_gw_events", 9).with_label("gateway", "b"));
        }));
        let snap = reg.snapshot();
        assert_eq!(snap.counter_with("jamm_gw_events", "gateway", "b"), Some(9));
        assert_eq!(snap.counter_with("jamm_gw_events", "gateway", "c"), None);
    }
}
