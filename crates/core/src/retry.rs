//! Jittered exponential backoff and a circuit breaker.
//!
//! The network clients (the RMI `ReactorClient`, the netlogger
//! `SocketSink`, the edge subscriber client) all used to die permanently
//! on their first transport failure: a timed-out invoke poisoned the
//! connection forever, a collector crash latched `closed` and every later
//! push failed.  This module is the shared self-healing discipline that
//! replaces those dead-ends:
//!
//! * [`Backoff`] — exponential delay with deterministic, seeded jitter
//!   (from [`crate::rng::Rng`], so simulated-clock tests stay
//!   byte-reproducible).
//! * [`CircuitBreaker`] — the classic three-state machine: **closed**
//!   (traffic flows) → **open** after `failure_threshold` consecutive
//!   failures (every attempt is refused *without any syscall*, so a
//!   permanently dead endpoint costs nothing per call) → **half-open**
//!   once the backoff deadline passes (exactly one probe is allowed
//!   through; success closes the breaker, failure re-opens it with a
//!   longer delay).
//!
//! Time is passed in explicitly as microseconds (`now_us`), never read
//! from the wall clock, so the same breaker drives real sockets (callers
//! feed it `Instant`-derived micros) and the netsim scenario engine
//! (which feeds it the simulated clock).

use crate::rng::Rng;

/// Exponential backoff with deterministic jitter.
///
/// Delay for attempt `n` (0-based) is `base * 2^n`, capped at `max`,
/// plus a jitter drawn uniformly from `[0, delay/2)` — the standard
/// "equal jitter" scheme that prevents a fleet of clients reconnecting
/// in lock-step after a collector restart.
#[derive(Debug, Clone)]
pub struct Backoff {
    base_us: u64,
    max_us: u64,
    attempt: u32,
    rng: Rng,
}

impl Backoff {
    /// A backoff starting at `base_us` and capped at `max_us`, with
    /// jitter drawn from a stream seeded by `seed`.
    pub fn new(base_us: u64, max_us: u64, seed: u64) -> Self {
        Backoff {
            base_us: base_us.max(1),
            max_us: max_us.max(base_us.max(1)),
            attempt: 0,
            rng: Rng::seed_from_u64(seed),
        }
    }

    /// The next delay, in microseconds, advancing the attempt counter.
    pub fn next_delay_us(&mut self) -> u64 {
        let exp = self.attempt.min(32);
        self.attempt = self.attempt.saturating_add(1);
        let raw = self.base_us.saturating_mul(1u64 << exp).min(self.max_us);
        let jitter = if raw >= 2 {
            self.rng.gen_range(0..raw / 2)
        } else {
            0
        };
        raw.saturating_add(jitter)
    }

    /// The delay the *next* call to [`Backoff::next_delay_us`] will base
    /// itself on, without jitter — the upper envelope a test can assert
    /// a reconnect happened within.
    pub fn current_base_us(&self) -> u64 {
        let exp = self.attempt.min(32);
        self.base_us.saturating_mul(1u64 << exp).min(self.max_us)
    }

    /// Consecutive attempts since the last reset.
    pub fn attempts(&self) -> u32 {
        self.attempt
    }

    /// Back to the first-attempt delay (called on success).
    pub fn reset(&mut self) {
        self.attempt = 0;
    }
}

/// The breaker's observable state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: every call is allowed.
    Closed,
    /// Failing: calls are refused until the backoff deadline passes.
    Open,
    /// Probing: the deadline passed and one trial call is in flight.
    HalfOpen,
}

/// Monotonic counters a breaker accumulates over its life.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BreakerStats {
    /// Transitions into the open state.
    pub opens: u64,
    /// Half-open probes attempted.
    pub probes: u64,
    /// Successful probes (open → half-open → closed revivals).
    pub revivals: u64,
    /// Failures recorded in total.
    pub failures: u64,
}

/// A three-state circuit breaker driven by explicit time.
///
/// Callers ask [`CircuitBreaker::allow`] before each attempt, then report
/// the result with [`CircuitBreaker::record_success`] /
/// [`CircuitBreaker::record_failure`].  While open, `allow` is a pure
/// comparison against the reopen deadline — no syscalls, no busy-loop.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    state: BreakerState,
    consecutive_failures: u32,
    failure_threshold: u32,
    backoff: Backoff,
    retry_at_us: u64,
    stats: BreakerStats,
}

impl CircuitBreaker {
    /// A closed breaker that opens after `failure_threshold` consecutive
    /// failures and retries on the given backoff schedule.
    pub fn new(failure_threshold: u32, backoff: Backoff) -> Self {
        CircuitBreaker {
            state: BreakerState::Closed,
            consecutive_failures: 0,
            failure_threshold: failure_threshold.max(1),
            backoff,
            retry_at_us: 0,
            stats: BreakerStats::default(),
        }
    }

    /// Is an attempt allowed at `now_us`?  In the open state this flips
    /// to half-open (and counts a probe) once the deadline passes.
    pub fn allow(&mut self, now_us: u64) -> bool {
        match self.state {
            BreakerState::Closed | BreakerState::HalfOpen => true,
            BreakerState::Open => {
                if now_us >= self.retry_at_us {
                    self.state = BreakerState::HalfOpen;
                    self.stats.probes += 1;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// The attempt succeeded: close the breaker and reset the schedule.
    pub fn record_success(&mut self) {
        if self.state == BreakerState::HalfOpen {
            self.stats.revivals += 1;
        }
        self.state = BreakerState::Closed;
        self.consecutive_failures = 0;
        self.backoff.reset();
    }

    /// The attempt failed at `now_us`: a half-open probe (or crossing
    /// the threshold while closed) re-opens the breaker with the next
    /// backoff delay.
    pub fn record_failure(&mut self, now_us: u64) {
        self.stats.failures += 1;
        self.consecutive_failures = self.consecutive_failures.saturating_add(1);
        let trip = self.state == BreakerState::HalfOpen
            || self.consecutive_failures >= self.failure_threshold;
        if trip {
            if self.state != BreakerState::Open {
                self.stats.opens += 1;
            }
            self.state = BreakerState::Open;
            self.retry_at_us = now_us.saturating_add(self.backoff.next_delay_us());
        }
    }

    /// Current state (without side effects).
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// When the next probe becomes allowed (meaningful while open).
    pub fn retry_at_us(&self) -> u64 {
        self.retry_at_us
    }

    /// Lifetime counters.
    pub fn stats(&self) -> BreakerStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breaker(threshold: u32) -> CircuitBreaker {
        CircuitBreaker::new(threshold, Backoff::new(1_000, 64_000, 42))
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let mut b = Backoff::new(100, 800, 1);
        let mut last_base = 0;
        for expected in [100, 200, 400, 800, 800] {
            assert_eq!(b.current_base_us(), expected);
            let d = b.next_delay_us();
            assert!(d >= expected && d < expected + expected / 2 + 1, "{d}");
            last_base = expected;
        }
        b.reset();
        assert_eq!(b.current_base_us(), 100);
        assert!(last_base == 800);
    }

    #[test]
    fn closed_breaker_allows_and_trips_at_threshold() {
        let mut b = breaker(3);
        assert!(b.allow(0));
        b.record_failure(0);
        b.record_failure(0);
        assert_eq!(b.state(), BreakerState::Closed, "below threshold");
        b.record_failure(0);
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.allow(b.retry_at_us() - 1), "refused before the deadline");
    }

    #[test]
    fn half_open_probe_revives_or_reopens_longer() {
        let mut b = breaker(1);
        b.record_failure(0);
        let first_deadline = b.retry_at_us();
        assert!(b.allow(first_deadline), "deadline passed: probe allowed");
        assert_eq!(b.state(), BreakerState::HalfOpen);
        // A failed probe re-opens with a longer (doubled base) delay.
        b.record_failure(first_deadline);
        assert_eq!(b.state(), BreakerState::Open);
        assert!(b.retry_at_us() > first_deadline);
        let second_deadline = b.retry_at_us();
        assert!(b.allow(second_deadline));
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.stats().revivals, 1);
        assert_eq!(b.stats().opens, 2);
        assert_eq!(b.stats().probes, 2);
    }

    #[test]
    fn success_resets_the_failure_count_and_schedule() {
        let mut b = breaker(2);
        b.record_failure(0);
        b.record_success();
        b.record_failure(10);
        assert_eq!(
            b.state(),
            BreakerState::Closed,
            "streak broken by the success"
        );
        b.record_failure(10);
        assert_eq!(b.state(), BreakerState::Open);
    }

    #[test]
    fn open_breaker_is_pure_comparison_no_state_churn() {
        let mut b = breaker(1);
        b.record_failure(0);
        let deadline = b.retry_at_us();
        for now in 0..deadline {
            assert!(!b.allow(now));
        }
        assert_eq!(b.stats().probes, 0, "no probes burned while waiting");
    }
}
