//! Seeded pseudo-random numbers (SplitMix64).
//!
//! All randomness in the simulator and the clock model flows from explicit
//! seeds so every experiment is reproducible.  SplitMix64 is small, fast
//! and plenty for driving packet-loss draws and jitter; nothing here is
//! cryptographic.

/// A seeded SplitMix64 generator.
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Create a generator from a seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        Rng {
            state: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x1234_5678_9ABC_DEF0,
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform float in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform boolean with probability `p` of `true`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Uniform value from a range (see [`SampleRange`] for supported range
    /// types).
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }
}

/// Ranges [`Rng::gen_range`] can sample from.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draw one uniform value.
    fn sample(self, rng: &mut Rng) -> Self::Output;
}

fn uniform_u64(rng: &mut Rng, span: u64) -> u64 {
    // span == 0 means the full u64 range.
    if span == 0 {
        rng.next_u64()
    } else {
        // Multiply-shift bounded draw; bias is negligible for the spans the
        // simulator uses.
        ((rng.next_u64() as u128 * span as u128) >> 64) as u64
    }
}

impl SampleRange for std::ops::Range<u64> {
    type Output = u64;
    fn sample(self, rng: &mut Rng) -> u64 {
        assert!(self.start < self.end, "empty range");
        self.start + uniform_u64(rng, self.end - self.start)
    }
}

impl SampleRange for std::ops::RangeInclusive<u64> {
    type Output = u64;
    fn sample(self, rng: &mut Rng) -> u64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        lo + uniform_u64(rng, (hi - lo).wrapping_add(1))
    }
}

impl SampleRange for std::ops::Range<usize> {
    type Output = usize;
    fn sample(self, rng: &mut Rng) -> usize {
        (self.start as u64..self.end as u64).sample(rng) as usize
    }
}

impl SampleRange for std::ops::RangeInclusive<usize> {
    type Output = usize;
    fn sample(self, rng: &mut Rng) -> usize {
        (*self.start() as u64..=*self.end() as u64).sample(rng) as usize
    }
}

impl SampleRange for std::ops::Range<i64> {
    type Output = i64;
    fn sample(self, rng: &mut Rng) -> i64 {
        assert!(self.start < self.end, "empty range");
        let span = self.end.wrapping_sub(self.start) as u64;
        self.start.wrapping_add(uniform_u64(rng, span) as i64)
    }
}

impl SampleRange for std::ops::Range<f64> {
    type Output = f64;
    fn sample(self, rng: &mut Rng) -> f64 {
        self.start + rng.gen_f64() * (self.end - self.start)
    }
}

impl SampleRange for std::ops::RangeInclusive<f64> {
    type Output = f64;
    fn sample(self, rng: &mut Rng) -> f64 {
        self.start() + rng.gen_f64() * (self.end() - self.start())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        let mut c = Rng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = Rng::seed_from_u64(7);
        for _ in 0..1_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let v = rng.gen_range(3u64..=5);
            assert!((3..=5).contains(&v));
            let f = rng.gen_range(-2.0..=2.0);
            assert!((-2.0..=2.0).contains(&f));
            let f = rng.gen_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn f64_mean_is_roughly_half() {
        let mut rng = Rng::seed_from_u64(1);
        let n = 10_000;
        let sum: f64 = (0..n).map(|_| rng.gen_f64()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
