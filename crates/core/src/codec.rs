//! The [`Codec`] trait: one vocabulary for every wire format.
//!
//! The seed code had three parallel free-function modules (text, binary,
//! JSON) with incompatible signatures, so every transport hard-coded one
//! format.  `Codec` abstracts over them: a codec encodes an item to bytes,
//! decodes it back, batches frames, and names its format with a MIME-like
//! `content_type` so peers can negotiate (see [`negotiate`]).

/// Encode / decode items of one type to a self-describing byte format.
///
/// Implementations must guarantee `decode(encode(item)) == item` for every
/// representable item, and `decode_batch(encode_batch(items)) == items`.
pub trait Codec {
    /// The item type this codec carries.
    type Item;
    /// The decode error type.
    type Error: std::fmt::Display;

    /// MIME-like tag identifying the format (e.g. `application/x-ulm`).
    fn content_type(&self) -> &'static str;

    /// Encode one item as a self-delimiting frame.
    fn encode(&self, item: &Self::Item) -> Vec<u8>;

    /// Append one item's frame to an existing buffer — the hot-path form:
    /// callers on steady-state write loops keep one scratch buffer,
    /// `clear()` it between frames, and reuse its capacity.  The default
    /// delegates to [`Codec::encode`]; codecs with an in-place encoder
    /// override it to skip the intermediate allocation.
    fn encode_to(&self, out: &mut Vec<u8>, item: &Self::Item) {
        out.extend_from_slice(&self.encode(item));
    }

    /// Decode one frame produced by [`Codec::encode`].
    fn decode(&self, bytes: &[u8]) -> Result<Self::Item, Self::Error>;

    /// Encode a batch of items into one buffer.  The default concatenates
    /// individual frames; codecs with a cheaper batch form override this.
    fn encode_batch(&self, items: &[Self::Item]) -> Vec<u8> {
        let mut out = Vec::new();
        for item in items {
            out.extend_from_slice(&self.encode(item));
        }
        out
    }

    /// Decode a batch produced by [`Codec::encode_batch`].
    fn decode_batch(&self, bytes: &[u8]) -> Result<Vec<Self::Item>, Self::Error>;
}

/// Pick the first content type both sides support.
///
/// `preferred` is the caller's ranking (best first); `supported` is what
/// the peer advertises.  Returns `None` when the intersection is empty.
pub fn negotiate<'a>(preferred: &[&'a str], supported: &[&str]) -> Option<&'a str> {
    preferred
        .iter()
        .find(|p| supported.contains(&p.trim()))
        .copied()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy codec over `u32` to exercise the defaults.
    struct BeU32;

    impl Codec for BeU32 {
        type Item = u32;
        type Error = String;

        fn content_type(&self) -> &'static str {
            "application/x-be-u32"
        }

        fn encode(&self, item: &u32) -> Vec<u8> {
            item.to_be_bytes().to_vec()
        }

        fn decode(&self, bytes: &[u8]) -> Result<u32, String> {
            let arr: [u8; 4] = bytes
                .get(..4)
                .and_then(|b| b.try_into().ok())
                .ok_or("short frame")?;
            Ok(u32::from_be_bytes(arr))
        }

        fn decode_batch(&self, bytes: &[u8]) -> Result<Vec<u32>, String> {
            if !bytes.len().is_multiple_of(4) {
                return Err("ragged batch".into());
            }
            bytes.chunks(4).map(|c| self.decode(c)).collect()
        }
    }

    #[test]
    fn default_batch_is_frame_concatenation() {
        let c = BeU32;
        let items = [1u32, 2, 0xFFFF_FFFF];
        let batch = c.encode_batch(&items);
        assert_eq!(batch.len(), 12);
        assert_eq!(c.decode_batch(&batch).unwrap(), items);
    }

    #[test]
    fn negotiation_respects_preference_order() {
        let preferred = ["application/x-ulm-binary", "application/x-ulm"];
        assert_eq!(
            negotiate(
                &preferred,
                &["application/x-ulm", "application/x-ulm-binary"]
            ),
            Some("application/x-ulm-binary")
        );
        assert_eq!(
            negotiate(&preferred, &["application/x-ulm"]),
            Some("application/x-ulm")
        );
        assert_eq!(negotiate(&preferred, &["text/html"]), None);
        assert_eq!(negotiate(&[], &["application/x-ulm"]), None);
    }
}
