//! A process-wide string interner for hot identifier strings.
//!
//! The event pipeline handles the same few identifier strings — event
//! types, host names, program names, field keys — millions of times: every
//! publish used to hash `event_type` for shard selection, hash it again
//! for the routing-table lookup, and clone `host`/`event_type` into the
//! summary-engine and query-cache keys.  [`Sym`] replaces those repeated
//! string hashes and clones with one interning lookup per string, after
//! which every comparison, hash and map key is a `u32`.
//!
//! Interned strings are leaked: the set of distinct identifiers a
//! monitoring deployment produces is small and stable (sensor names, event
//! types, hosts), so the leak is bounded and buys an allocation-free
//! [`Sym::as_str`] (an index into the table under a briefly-held read
//! lock).  Do **not** intern unbounded user data — event payload values,
//! free-form messages, or identifiers that embed per-instance ids (PIDs,
//! connection ids): every distinct string lives for the rest of the
//! process.  [`interned_count`] makes the table's growth observable.

use std::collections::HashMap;
use std::sync::OnceLock;

use crate::sync::RwLock;

/// An interned string: a `Copy` handle that hashes and compares as a
/// `u32` and resolves back to its string in O(1).
///
/// Two `Sym`s are equal iff the strings they intern are equal, process
/// wide and for the life of the process.
///
/// ```
/// use jamm_core::intern::Sym;
///
/// let a = Sym::intern("CPU_TOTAL");
/// let b = Sym::intern("CPU_TOTAL");
/// assert_eq!(a, b);
/// assert_eq!(a.as_str(), "CPU_TOTAL");
/// assert_ne!(a, Sym::intern("MEM_FREE"));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Sym(u32);

struct Interner {
    /// Interned string -> index.  Keys borrow the leaked strings in
    /// `strings`, so each distinct string is stored once.
    map: HashMap<&'static str, u32>,
    /// Index -> leaked string (the `as_str` table).
    strings: Vec<&'static str>,
}

fn interner() -> &'static RwLock<Interner> {
    static INTERNER: OnceLock<RwLock<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        RwLock::new(Interner {
            map: HashMap::new(),
            strings: Vec::new(),
        })
    })
}

impl Sym {
    /// Intern a string, returning its stable handle.  The common case (the
    /// string is already interned) is one read-lock acquisition and one
    /// hash lookup; the first sighting of a string takes the write lock
    /// and leaks one copy.
    pub fn intern(s: &str) -> Sym {
        let lock = interner();
        if let Some(&id) = lock.read().map.get(s) {
            return Sym(id);
        }
        let mut w = lock.write();
        // Double-check: another thread may have interned it between the
        // read unlock and the write lock.
        if let Some(&id) = w.map.get(s) {
            return Sym(id);
        }
        let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
        let id = w.strings.len() as u32;
        w.strings.push(leaked);
        w.map.insert(leaked, id);
        Sym(id)
    }

    /// Look a string up without interning it (useful on query paths that
    /// should not grow the table for never-seen identifiers).
    pub fn lookup(s: &str) -> Option<Sym> {
        interner().read().map.get(s).map(|&id| Sym(id))
    }

    /// The interned string: an O(1) index into the table.  A read lock is
    /// held only long enough to load the slot (the `Vec` may reallocate
    /// under a concurrent intern); the `&'static str` it yields outlives
    /// the guard.
    pub fn as_str(self) -> &'static str {
        interner().read().strings[self.0 as usize]
    }

    /// The handle's dense index (0-based, in interning order).  Stable for
    /// the life of the process; used for cheap shard selection.
    pub fn index(self) -> u32 {
        self.0
    }
}

impl std::fmt::Display for Sym {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Number of distinct strings interned so far (observability; the leak is
/// bounded by this count).
pub fn interned_count() -> usize {
    interner().read().strings.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent_and_round_trips() {
        let a = Sym::intern("jamm.core.intern.test.CPU_TOTAL");
        let b = Sym::intern("jamm.core.intern.test.CPU_TOTAL");
        assert_eq!(a, b);
        assert_eq!(a.index(), b.index());
        assert_eq!(a.as_str(), "jamm.core.intern.test.CPU_TOTAL");
        let c = Sym::intern("jamm.core.intern.test.MEM_FREE");
        assert_ne!(a, c);
        assert_eq!(c.as_str(), "jamm.core.intern.test.MEM_FREE");
    }

    #[test]
    fn lookup_does_not_insert() {
        assert_eq!(Sym::lookup("jamm.core.intern.test.never-interned"), None);
        let s = Sym::intern("jamm.core.intern.test.present");
        assert_eq!(Sym::lookup("jamm.core.intern.test.present"), Some(s));
    }

    #[test]
    fn syms_work_as_map_keys() {
        use std::collections::HashMap;
        let mut m: HashMap<(Sym, Sym), u32> = HashMap::new();
        let h = Sym::intern("jamm.core.intern.test.host");
        let t = Sym::intern("jamm.core.intern.test.type");
        m.insert((h, t), 7);
        assert_eq!(
            m.get(&(
                Sym::intern("jamm.core.intern.test.host"),
                Sym::intern("jamm.core.intern.test.type"),
            )),
            Some(&7)
        );
    }

    #[test]
    fn concurrent_interning_yields_stable_identities() {
        // Many threads intern an overlapping mix of shared and distinct
        // strings; every thread must resolve the shared ones to the same
        // Sym, and every Sym must round-trip to exactly its string.
        let shared: Vec<String> = (0..16)
            .map(|i| format!("jamm.core.intern.test.shared-{i}"))
            .collect();
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let shared = shared.clone();
                std::thread::spawn(move || {
                    let mut out = Vec::new();
                    for round in 0..50 {
                        for s in &shared {
                            out.push((s.clone(), Sym::intern(s)));
                        }
                        let own = format!("jamm.core.intern.test.own-{t}-{}", round % 10);
                        out.push((own.clone(), Sym::intern(&own)));
                    }
                    out
                })
            })
            .collect();
        let mut seen: HashMap<String, Sym> = HashMap::new();
        for h in handles {
            for (s, sym) in h.join().unwrap() {
                assert_eq!(sym.as_str(), s, "round-trips to its own string");
                match seen.get(&s) {
                    Some(prev) => assert_eq!(*prev, sym, "stable identity for {s}"),
                    None => {
                        seen.insert(s, sym);
                    }
                }
            }
        }
        // 16 shared + 8 threads x 10 distinct own strings.
        let distinct: std::collections::HashSet<u32> = seen.values().map(|s| s.index()).collect();
        assert_eq!(
            distinct.len(),
            seen.len(),
            "distinct strings, distinct syms"
        );
        assert_eq!(seen.len(), 16 + 80);
    }
}
