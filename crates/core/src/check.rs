//! A miniature property-testing harness.
//!
//! [`forall`] runs a property closure over many generated cases, each driven
//! by a deterministically seeded [`Gen`].  On failure it reports the case
//! seed so the exact input can be replayed by running the single seed.  It
//! is intentionally tiny — no shrinking — but covers what the workspace's
//! property tests need: seeded generation of primitives, choices and
//! strings.

use crate::rng::Rng;

/// A per-case value generator.
pub struct Gen {
    rng: Rng,
}

impl Gen {
    /// Generator for a specific case seed.
    pub fn from_seed(seed: u64) -> Self {
        Gen {
            rng: Rng::seed_from_u64(seed ^ 0xC0FF_EE00_DEAD_BEEF),
        }
    }

    /// Access the raw RNG.
    pub fn rng(&mut self) -> &mut Rng {
        &mut self.rng
    }

    /// Uniform `u64` in `[0, bound)` (`bound` 0 means the full range).
    pub fn u64(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            self.rng.next_u64()
        } else {
            self.rng.gen_range(0..bound)
        }
    }

    /// Any `u64`.
    pub fn any_u64(&mut self) -> u64 {
        self.rng.next_u64()
    }

    /// Any `i64`.
    pub fn any_i64(&mut self) -> i64 {
        self.rng.next_u64() as i64
    }

    /// Uniform `usize` in `[lo, hi]`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        self.rng.gen_range(lo..=hi)
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        self.rng.gen_range(lo..hi)
    }

    /// A boolean with probability `p` of `true`.
    pub fn bool(&mut self, p: f64) -> bool {
        self.rng.gen_bool(p)
    }

    /// One element of a non-empty slice, cloned.
    pub fn choice<T: Clone>(&mut self, options: &[T]) -> T {
        options[self.usize_in(0, options.len() - 1)].clone()
    }

    /// A string of `len` characters drawn from `alphabet`.
    pub fn string_from(&mut self, alphabet: &str, len: usize) -> String {
        let chars: Vec<char> = alphabet.chars().collect();
        (0..len).map(|_| self.choice(&chars)).collect()
    }

    /// A string of arbitrary printable characters (including spaces, quotes
    /// and backslashes) with length in `[0, max_len]`.
    pub fn printable_string(&mut self, max_len: usize) -> String {
        let len = self.usize_in(0, max_len);
        (0..len)
            .map(|_| {
                // Mostly ASCII printable, sometimes a wider codepoint.
                if self.bool(0.9) {
                    char::from_u32(self.u64(95) as u32 + 0x20).unwrap_or(' ')
                } else {
                    char::from_u32(self.u64(0x2FF) as u32 + 0xA1).unwrap_or('¡')
                }
            })
            .collect()
    }

    /// Arbitrary bytes with length in `[0, max_len]`.
    pub fn bytes(&mut self, max_len: usize) -> Vec<u8> {
        let len = self.usize_in(0, max_len);
        (0..len).map(|_| self.u64(256) as u8).collect()
    }
}

/// Run `property` over `cases` generated cases.  Panics (with the failing
/// case seed in the message) on the first failure.
pub fn forall(name: &str, cases: u64, property: impl Fn(&mut Gen) + std::panic::RefUnwindSafe) {
    // An env knob so a failure can be replayed in isolation:
    // JAMM_CHECK_SEED=<n> runs only that case.
    if let Ok(seed) = std::env::var("JAMM_CHECK_SEED") {
        if let Ok(seed) = seed.parse::<u64>() {
            let mut gen = Gen::from_seed(seed);
            property(&mut gen);
            return;
        }
    }
    for seed in 0..cases {
        let result = std::panic::catch_unwind(|| {
            let mut gen = Gen::from_seed(seed);
            property(&mut gen);
        });
        if let Err(payload) = result {
            let msg = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("<non-string panic>");
            panic!(
                "property {name:?} failed at case seed {seed} \
                 (replay with JAMM_CHECK_SEED={seed}): {msg}"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let counter = std::sync::atomic::AtomicU64::new(0);
        forall("addition commutes", 64, |g| {
            counter.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            let (a, b) = (g.u64(1_000), g.u64(1_000));
            assert_eq!(a + b, b + a);
        });
        assert_eq!(counter.load(std::sync::atomic::Ordering::Relaxed), 64);
    }

    #[test]
    fn failing_property_reports_seed() {
        let result = std::panic::catch_unwind(|| {
            forall("always fails", 8, |g| {
                let v = g.u64(10);
                assert!(v > 100, "generated {v}");
            });
        });
        let err = result.expect_err("property must fail");
        let msg = err.downcast_ref::<String>().unwrap();
        assert!(msg.contains("case seed"), "got: {msg}");
        assert!(msg.contains("JAMM_CHECK_SEED="), "got: {msg}");
    }

    #[test]
    fn generators_are_deterministic_per_seed() {
        let mut a = Gen::from_seed(5);
        let mut b = Gen::from_seed(5);
        assert_eq!(a.printable_string(40), b.printable_string(40));
        assert_eq!(a.bytes(40), b.bytes(40));
        assert_eq!(a.choice(&[1, 2, 3]), b.choice(&[1, 2, 3]));
    }
}
