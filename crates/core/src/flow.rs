//! Push and pull ends of the event pipeline.
//!
//! [`EventSink`] is anything events can be pushed into (gateways, archives,
//! remote bridges, test probes); [`EventSource`] is anything events can be
//! drained out of (subscriptions, collectors, application feeds).  Both are
//! object safe so a sensor manager can publish through `&dyn EventSink<E>`
//! without knowing whether the other end is an in-process gateway or a
//! remote transport.  [`DeliveryCounters`] is the shared accounting block
//! every sink keeps, and [`OverflowPolicy`] names what a bounded hop does
//! when a consumer falls behind.

use std::sync::atomic::{AtomicU64, Ordering};

/// What a bounded pipeline hop does when its queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OverflowPolicy {
    /// Evict the oldest queued event to make room for the new one.  The
    /// consumer sees the freshest data; the eviction is counted as a drop.
    /// This is the default for monitoring streams, where stale readings
    /// lose value fast.
    #[default]
    DropOldest,
    /// Reject the new event and count the drop; queued events survive.
    DropNewest,
}

/// Errors a sink can report for a rejected delivery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SinkError {
    /// The sink's consumer side is gone; nothing will be delivered again.
    Closed,
    /// The sink refused the event (policy, authorization, ...).
    Rejected(String),
}

impl std::fmt::Display for SinkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SinkError::Closed => write!(f, "sink closed"),
            SinkError::Rejected(why) => write!(f, "sink rejected event: {why}"),
        }
    }
}

impl std::error::Error for SinkError {}

/// Anything monitoring events can be pushed into.
pub trait EventSink<E>: Send + Sync {
    /// Offer one event.  Returns the number of downstream deliveries it
    /// caused (a gateway fans one event out to many subscribers; a store
    /// counts 1; a filter that rejects counts 0).
    fn accept(&self, event: &E) -> Result<usize, SinkError>;

    /// Offer a batch; the default is per-event [`EventSink::accept`],
    /// stopping at the first hard error.
    fn accept_batch(&self, events: &[E]) -> Result<usize, SinkError> {
        let mut delivered = 0;
        for e in events {
            delivered += self.accept(e)?;
        }
        Ok(delivered)
    }
}

/// Anything monitoring events can be drained out of.
pub trait EventSource<E> {
    /// Move every currently available event into `out`; returns how many
    /// were moved.  Non-blocking.
    fn drain_into(&mut self, out: &mut Vec<E>) -> usize;

    /// Drain into a fresh vector.
    fn drain(&mut self) -> Vec<E> {
        let mut out = Vec::new();
        self.drain_into(&mut out);
        out
    }
}

/// Delivered / dropped / byte accounting shared between a sink and whoever
/// watches it.  All counters are monotonic.
#[derive(Debug, Default)]
pub struct DeliveryCounters {
    delivered: AtomicU64,
    dropped: AtomicU64,
    bytes: AtomicU64,
}

impl DeliveryCounters {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        DeliveryCounters::default()
    }

    /// Record one delivery of `bytes` payload bytes.
    pub fn record_delivered(&self, bytes: u64) {
        self.delivered.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Record `n` deliveries totalling `bytes` payload bytes (the batched
    /// fan-out path updates the counters once per flushed batch, not once
    /// per event).
    pub fn record_delivered_n(&self, n: u64, bytes: u64) {
        self.delivered.fetch_add(n, Ordering::Relaxed);
        self.bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Record `n` dropped events.
    pub fn record_dropped(&self, n: u64) {
        self.dropped.fetch_add(n, Ordering::Relaxed);
    }

    /// Events delivered so far.
    pub fn delivered(&self) -> u64 {
        self.delivered.load(Ordering::Relaxed)
    }

    /// Events dropped so far (queue overflow or dead consumer).
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Payload bytes delivered so far.
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }
}

/// Blanket impl: a channel receiver is an event source.
impl<E> EventSource<E> for crate::channel::Receiver<E> {
    fn drain_into(&mut self, out: &mut Vec<E>) -> usize {
        let before = out.len();
        out.extend(self.try_iter());
        out.len() - before
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel;
    use crate::sync::Mutex;

    struct VecSink {
        store: Mutex<Vec<u32>>,
        counters: DeliveryCounters,
    }

    impl EventSink<u32> for VecSink {
        fn accept(&self, event: &u32) -> Result<usize, SinkError> {
            if *event == 13 {
                self.counters.record_dropped(1);
                return Err(SinkError::Rejected("unlucky".into()));
            }
            self.store.lock().push(*event);
            self.counters.record_delivered(4);
            Ok(1)
        }
    }

    #[test]
    fn sink_batch_counts_and_counters_accumulate() {
        let sink = VecSink {
            store: Mutex::new(Vec::new()),
            counters: DeliveryCounters::new(),
        };
        assert_eq!(sink.accept_batch(&[1, 2, 3]).unwrap(), 3);
        assert!(sink.accept_batch(&[4, 13, 5]).is_err());
        assert_eq!(*sink.store.lock(), vec![1, 2, 3, 4]);
        assert_eq!(sink.counters.delivered(), 4);
        assert_eq!(sink.counters.dropped(), 1);
        assert_eq!(sink.counters.bytes(), 16);
    }

    #[test]
    fn receiver_is_a_source() {
        let (tx, mut rx) = channel::unbounded();
        for i in 0..5u32 {
            tx.send(i).unwrap();
        }
        let drained = rx.drain();
        assert_eq!(drained, vec![0, 1, 2, 3, 4]);
        assert_eq!(rx.drain_into(&mut Vec::new()), 0);
    }

    #[test]
    fn dyn_sink_is_object_safe() {
        let sink = VecSink {
            store: Mutex::new(Vec::new()),
            counters: DeliveryCounters::new(),
        };
        let dyn_sink: &dyn EventSink<u32> = &sink;
        assert_eq!(dyn_sink.accept(&9).unwrap(), 1);
    }
}
