//! Multi-producer / multi-consumer channels with optional capacity bounds.
//!
//! The event pipeline runs on these channels.  Unlike the unbounded queues
//! the seed code used, a channel created with [`bounded`] refuses (or
//! overwrites, see [`Sender::send_overwriting`]) work past its capacity, so
//! a stalled consumer surfaces as an explicit drop count instead of
//! unbounded memory growth.  [`unbounded`] remains available for
//! application-side feeds that must never block the instrumented program.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

struct State<T> {
    queue: VecDeque<T>,
    capacity: Option<usize>,
    senders: usize,
    receivers: usize,
}

struct Chan<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
}

/// Create a channel that holds at most `capacity` in-flight items.
pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    new_channel(Some(capacity.max(1)))
}

/// Create a channel with no capacity bound.
///
/// Only producer-side feeds that must never observe backpressure (e.g.
/// instrumented applications) should use this; the gateway subscription
/// path is always bounded.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    new_channel(None)
}

fn new_channel<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let chan = Arc::new(Chan {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            capacity,
            senders: 1,
            receivers: 1,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (
        Sender {
            chan: Arc::clone(&chan),
        },
        Receiver { chan },
    )
}

/// Error returned by a blocking send on a channel with no receivers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Error returned by [`Sender::try_send`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The channel is at capacity.
    Full(T),
    /// All receivers are gone.
    Disconnected(T),
}

/// Error returned by a blocking receive on an empty channel with no senders.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// No item is currently queued.
    Empty,
    /// No item is queued and all senders are gone.
    Disconnected,
}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// The timeout elapsed with no item arriving.
    Timeout,
    /// All senders are gone and the queue is drained.
    Disconnected,
}

/// The sending half of a channel.  Cloneable; the channel disconnects for
/// receivers when the last sender is dropped.
pub struct Sender<T> {
    chan: Arc<Chan<T>>,
}

impl<T> std::fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Sender(len={})", self.len())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.chan.lock().senders += 1;
        Sender {
            chan: Arc::clone(&self.chan),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut s = self.chan.lock();
        s.senders -= 1;
        if s.senders == 0 {
            drop(s);
            self.chan.not_empty.notify_all();
        }
    }
}

impl<T> Chan<T> {
    fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T> Sender<T> {
    /// Queue one item, blocking while the channel is at capacity.
    pub fn send(&self, item: T) -> Result<(), SendError<T>> {
        let mut s = self.chan.lock();
        loop {
            if s.receivers == 0 {
                return Err(SendError(item));
            }
            match s.capacity {
                Some(cap) if s.queue.len() >= cap => {
                    s = self
                        .chan
                        .not_full
                        .wait(s)
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                }
                _ => break,
            }
        }
        s.queue.push_back(item);
        drop(s);
        self.chan.not_empty.notify_one();
        Ok(())
    }

    /// Queue one item without blocking.
    pub fn try_send(&self, item: T) -> Result<(), TrySendError<T>> {
        let mut s = self.chan.lock();
        if s.receivers == 0 {
            return Err(TrySendError::Disconnected(item));
        }
        if let Some(cap) = s.capacity {
            if s.queue.len() >= cap {
                return Err(TrySendError::Full(item));
            }
        }
        s.queue.push_back(item);
        drop(s);
        self.chan.not_empty.notify_one();
        Ok(())
    }

    /// Queue one item, evicting the oldest queued item if the channel is at
    /// capacity.  Returns `Ok(true)` when an eviction happened — the
    /// caller's drop counter should record it.
    pub fn send_overwriting(&self, item: T) -> Result<bool, SendError<T>> {
        let mut s = self.chan.lock();
        if s.receivers == 0 {
            return Err(SendError(item));
        }
        let mut evicted = false;
        if let Some(cap) = s.capacity {
            while s.queue.len() >= cap {
                s.queue.pop_front();
                evicted = true;
            }
        }
        s.queue.push_back(item);
        drop(s);
        self.chan.not_empty.notify_one();
        Ok(evicted)
    }

    /// Queue a whole batch under **one** lock acquisition, evicting the
    /// oldest queued items as needed to respect the capacity bound (the
    /// batched form of [`Sender::send_overwriting`]).  The final queue
    /// content is exactly what a sequence of per-item overwriting sends
    /// would leave behind; the returned count is how many items (queued or
    /// from the batch itself) were evicted.  Fails with the whole batch
    /// handed back when every receiver is gone.
    pub fn send_batch_overwriting(&self, items: Vec<T>) -> Result<usize, SendError<Vec<T>>> {
        if items.is_empty() {
            return Ok(0);
        }
        let mut s = self.chan.lock();
        if s.receivers == 0 {
            return Err(SendError(items));
        }
        s.queue.extend(items);
        let mut evicted = 0;
        if let Some(cap) = s.capacity {
            while s.queue.len() > cap {
                s.queue.pop_front();
                evicted += 1;
            }
        }
        drop(s);
        self.chan.not_empty.notify_all();
        Ok(evicted)
    }

    /// Queue as much of a batch as fits without blocking, under one lock
    /// acquisition (the batched form of [`Sender::try_send`] for a
    /// drop-newest hop).  Returns `(accepted, rejected)`: the first
    /// `accepted` items were queued in order, the rest were discarded.
    /// Fails with the whole batch handed back when every receiver is gone.
    pub fn try_send_batch(&self, mut items: Vec<T>) -> Result<(usize, usize), SendError<Vec<T>>> {
        if items.is_empty() {
            return Ok((0, 0));
        }
        let mut s = self.chan.lock();
        if s.receivers == 0 {
            return Err(SendError(items));
        }
        let room = match s.capacity {
            Some(cap) => cap.saturating_sub(s.queue.len()),
            None => items.len(),
        };
        let accepted = items.len().min(room);
        let rejected = items.len() - accepted;
        items.truncate(accepted);
        s.queue.extend(items);
        drop(s);
        if accepted > 0 {
            self.chan.not_empty.notify_all();
        }
        Ok((accepted, rejected))
    }

    /// Number of items currently queued.
    pub fn len(&self) -> usize {
        self.chan.lock().queue.len()
    }

    /// True when no item is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The channel's capacity bound, if any.
    pub fn capacity(&self) -> Option<usize> {
        self.chan.lock().capacity
    }
}

/// The receiving half of a channel.  Cloneable; items go to whichever
/// receiver takes them first.
pub struct Receiver<T> {
    chan: Arc<Chan<T>>,
}

impl<T> std::fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Receiver(len={})", self.len())
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.chan.lock().receivers += 1;
        Receiver {
            chan: Arc::clone(&self.chan),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut s = self.chan.lock();
        s.receivers -= 1;
        if s.receivers == 0 {
            drop(s);
            self.chan.not_full.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Take the next item without blocking.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut s = self.chan.lock();
        match s.queue.pop_front() {
            Some(item) => {
                drop(s);
                self.chan.not_full.notify_one();
                Ok(item)
            }
            None if s.senders == 0 => Err(TryRecvError::Disconnected),
            None => Err(TryRecvError::Empty),
        }
    }

    /// Take the next item, blocking until one arrives or every sender is
    /// dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut s = self.chan.lock();
        loop {
            if let Some(item) = s.queue.pop_front() {
                drop(s);
                self.chan.not_full.notify_one();
                return Ok(item);
            }
            if s.senders == 0 {
                return Err(RecvError);
            }
            s = self
                .chan
                .not_empty
                .wait(s)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Take the next item, waiting at most `timeout`.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = std::time::Instant::now() + timeout;
        let mut s = self.chan.lock();
        loop {
            if let Some(item) = s.queue.pop_front() {
                drop(s);
                self.chan.not_full.notify_one();
                return Ok(item);
            }
            if s.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, _) = self
                .chan
                .not_empty
                .wait_timeout(s, deadline - now)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            s = guard;
        }
    }

    /// Iterator draining currently queued items without blocking.
    pub fn try_iter(&self) -> TryIter<'_, T> {
        TryIter { rx: self }
    }

    /// Number of items currently queued.
    pub fn len(&self) -> usize {
        self.chan.lock().queue.len()
    }

    /// True when no item is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Iterator returned by [`Receiver::try_iter`].
pub struct TryIter<'a, T> {
    rx: &'a Receiver<T>,
}

impl<T> Iterator for TryIter<'_, T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        self.rx.try_recv().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_try_send_reports_full() {
        let (tx, rx) = bounded::<u32>(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        assert_eq!(tx.try_send(3), Err(TrySendError::Full(3)));
        assert_eq!(rx.try_recv(), Ok(1));
        tx.try_send(3).unwrap();
        let rest: Vec<u32> = rx.try_iter().collect();
        assert_eq!(rest, vec![2, 3]);
    }

    #[test]
    fn batch_sends_match_per_item_semantics() {
        // Overwriting batch: final queue is the freshest `cap` items.
        let (tx, rx) = bounded::<u32>(4);
        tx.try_send(0).unwrap();
        tx.try_send(1).unwrap();
        assert_eq!(tx.send_batch_overwriting((2..8).collect()).unwrap(), 4);
        let got: Vec<u32> = rx.try_iter().collect();
        assert_eq!(got, vec![4, 5, 6, 7]);
        // A batch larger than the capacity evicts its own head.
        assert_eq!(tx.send_batch_overwriting((0..6).collect()).unwrap(), 2);
        assert_eq!(rx.try_iter().collect::<Vec<u32>>(), vec![2, 3, 4, 5]);
        // Drop-newest batch: prefix fits, tail is rejected.
        tx.try_send(9).unwrap();
        assert_eq!(tx.try_send_batch((0..5).collect()).unwrap(), (3, 2));
        assert_eq!(rx.try_iter().collect::<Vec<u32>>(), vec![9, 0, 1, 2]);
        // Empty batches are no-ops; disconnection hands the batch back.
        assert_eq!(tx.send_batch_overwriting(Vec::new()).unwrap(), 0);
        assert_eq!(tx.try_send_batch(Vec::new()).unwrap(), (0, 0));
        drop(rx);
        assert_eq!(
            tx.send_batch_overwriting(vec![1, 2]),
            Err(SendError(vec![1, 2]))
        );
        assert_eq!(tx.try_send_batch(vec![3]), Err(SendError(vec![3])));
    }

    #[test]
    fn send_overwriting_evicts_oldest() {
        let (tx, rx) = bounded::<u32>(2);
        assert!(!tx.send_overwriting(1).unwrap());
        assert!(!tx.send_overwriting(2).unwrap());
        assert!(tx.send_overwriting(3).unwrap(), "evicted 1");
        let got: Vec<u32> = rx.try_iter().collect();
        assert_eq!(got, vec![2, 3]);
    }

    #[test]
    fn disconnect_semantics() {
        let (tx, rx) = unbounded::<u32>();
        drop(rx);
        assert_eq!(tx.try_send(1), Err(TrySendError::Disconnected(1)));
        let (tx, rx) = unbounded::<u32>();
        tx.try_send(7).unwrap();
        drop(tx);
        assert_eq!(rx.try_recv(), Ok(7), "queued items survive sender drop");
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn recv_timeout_times_out_and_delivers() {
        let (tx, rx) = unbounded::<u32>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.send(9).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Ok(9));
    }

    #[test]
    fn works_across_threads() {
        let (tx, rx) = bounded::<u64>(16);
        let senders: Vec<_> = (0..4)
            .map(|t| {
                let tx = tx.clone();
                std::thread::spawn(move || {
                    for i in 0..100u64 {
                        tx.send(t * 1_000 + i).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        let mut got = Vec::new();
        while let Ok(v) = rx.recv() {
            got.push(v);
        }
        for h in senders {
            h.join().unwrap();
        }
        assert_eq!(got.len(), 400);
    }
}
