//! A small JSON value type, parser, serializer and [`json!`] macro.
//!
//! JSON is the structured-interchange format of the RMI substrate and the
//! configuration files.  This module provides the subset of a full JSON
//! library the workspace needs: a [`Json`] value with integer/float
//! distinction, indexing (`value["key"]`, `value[0]`), literal comparisons,
//! compact and pretty serialization, and a strict parser.

use std::fmt;

/// A JSON object: string keys to values, preserving insertion order so
/// encode/decode round-trips keep field order (parsers and humans both
/// care).  Lookup is a linear scan — the objects this system exchanges are
/// small (an RMI argument list, an event's field map).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Map {
    entries: Vec<(String, Json)>,
}

impl Map {
    /// An empty object.
    pub fn new() -> Self {
        Map::default()
    }

    /// Insert or replace a key, preserving its position on replace.
    pub fn insert(&mut self, key: String, value: Json) -> Option<Json> {
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    /// Look a key up.
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Remove a key, returning its value.
    pub fn remove(&mut self, key: &str) -> Option<Json> {
        let idx = self.entries.iter().position(|(k, _)| k == key)?;
        Some(self.entries.remove(idx).1)
    }

    /// True if the key is present.
    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when there are no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Json)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    /// Iterate keys in insertion order.
    pub fn keys(&self) -> impl Iterator<Item = &String> {
        self.entries.iter().map(|(k, _)| k)
    }

    /// Iterate values in insertion order.
    pub fn values(&self) -> impl Iterator<Item = &Json> {
        self.entries.iter().map(|(_, v)| v)
    }
}

impl<'a> IntoIterator for &'a Map {
    type Item = (&'a String, &'a Json);
    type IntoIter = std::iter::Map<
        std::slice::Iter<'a, (String, Json)>,
        fn(&'a (String, Json)) -> (&'a String, &'a Json),
    >;
    fn into_iter(self) -> Self::IntoIter {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

impl FromIterator<(String, Json)> for Map {
    fn from_iter<I: IntoIterator<Item = (String, Json)>>(iter: I) -> Self {
        let mut map = Map::new();
        for (k, v) in iter {
            map.insert(k, v);
        }
        map
    }
}

/// A JSON number, preserving the integer / float distinction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Non-negative integer.
    U(u64),
    /// Negative integer.
    I(i64),
    /// Floating point.
    F(f64),
}

impl Number {
    /// The value as `u64`, if representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::U(u) => Some(u),
            Number::I(i) if i >= 0 => Some(i as u64),
            _ => None,
        }
    }

    /// The value as `i64`, if representable.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::U(u) => i64::try_from(u).ok(),
            Number::I(i) => Some(i),
            Number::F(_) => None,
        }
    }

    /// The value as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        Some(match *self {
            Number::U(u) => u as f64,
            Number::I(i) => i as f64,
            Number::F(f) => f,
        })
    }
}

/// A JSON value.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Json {
    /// `null`.
    #[default]
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An ordered list.
    Array(Vec<Json>),
    /// A key/value object.
    Object(Map),
}

/// Errors produced by [`Json::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

static NULL: Json = Json::Null;

impl Json {
    /// Parse a JSON document.  The whole input must be consumed.
    pub fn parse(text: &str) -> Result<Json, ParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing data"));
        }
        Ok(v)
    }

    /// Parse from raw bytes (must be UTF-8).
    pub fn parse_slice(bytes: &[u8]) -> Result<Json, ParseError> {
        let text = std::str::from_utf8(bytes).map_err(|e| ParseError {
            at: e.valid_up_to(),
            message: "invalid UTF-8".into(),
        })?;
        Json::parse(text)
    }

    /// Serialize with two-space indentation.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    /// Serialize compactly to bytes.
    pub fn to_vec(&self) -> Vec<u8> {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out.into_bytes()
    }

    /// The value as a borrowed string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as `u64`, if it is a representable number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The value as `i64`, if it is a representable number.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The value as `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(n) => n.as_f64(),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_array(&self) -> Option<&Vec<Json>> {
        match self {
            Json::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The value as an object, if it is one.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Json::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Object field lookup (`None` for non-objects / missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_object().and_then(|o| o.get(key))
    }

    /// True if the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Number(Number::U(u)) => out.push_str(&u.to_string()),
            Json::Number(Number::I(i)) => out.push_str(&i.to_string()),
            Json::Number(Number::F(f)) => {
                if f.is_finite() {
                    if f.fract() == 0.0 {
                        if f.abs() < 1e15 {
                            // Keep a decimal point so the value re-parses
                            // as a float.
                            out.push_str(&format!("{f:.1}"));
                        } else {
                            // Exponent form for huge integral floats — a
                            // bare digit string would re-parse as an
                            // integer and break round-trips.
                            out.push_str(&format!("{f:e}"));
                        }
                    } else {
                        out.push_str(&format!("{f}"));
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::String(s) => write_escaped(out, s),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                if !items.is_empty() {
                    newline_indent(out, indent, depth);
                }
                out.push(']');
            }
            Json::Object(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                if !map.is_empty() {
                    newline_indent(out, indent, depth);
                }
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(step) = indent {
        out.push('\n');
        for _ in 0..depth * step {
            out.push(' ');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Compact serialization (`value.to_string()` comes from this impl).
impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        f.write_str(&out)
    }
}

impl std::ops::Index<&str> for Json {
    type Output = Json;
    fn index(&self, key: &str) -> &Json {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Json {
    type Output = Json;
    fn index(&self, idx: usize) -> &Json {
        self.as_array().and_then(|a| a.get(idx)).unwrap_or(&NULL)
    }
}

macro_rules! from_unsigned {
    ($($t:ty),*) => {$(
        impl From<$t> for Json {
            fn from(v: $t) -> Json { Json::Number(Number::U(v as u64)) }
        }
    )*};
}
macro_rules! from_signed {
    ($($t:ty),*) => {$(
        impl From<$t> for Json {
            fn from(v: $t) -> Json {
                if v >= 0 { Json::Number(Number::U(v as u64)) }
                else { Json::Number(Number::I(v as i64)) }
            }
        }
    )*};
}
from_unsigned!(u8, u16, u32, u64, usize);
from_signed!(i8, i16, i32, i64, isize);

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Number(Number::F(v))
    }
}
impl From<f32> for Json {
    fn from(v: f32) -> Json {
        Json::Number(Number::F(v as f64))
    }
}
impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::String(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::String(v)
    }
}
impl From<&String> for Json {
    fn from(v: &String) -> Json {
        Json::String(v.clone())
    }
}
impl From<&Json> for Json {
    fn from(v: &Json) -> Json {
        v.clone()
    }
}
impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Json {
        Json::Array(v.into_iter().map(Into::into).collect())
    }
}
impl<T: Into<Json>, const N: usize> From<[T; N]> for Json {
    fn from(v: [T; N]) -> Json {
        Json::Array(v.into_iter().map(Into::into).collect())
    }
}
impl<T: Clone + Into<Json>> From<&[T]> for Json {
    fn from(v: &[T]) -> Json {
        Json::Array(v.iter().cloned().map(Into::into).collect())
    }
}
impl From<Map> for Json {
    fn from(v: Map) -> Json {
        Json::Object(v)
    }
}
impl<T: Into<Json>> From<Option<T>> for Json {
    fn from(v: Option<T>) -> Json {
        match v {
            Some(inner) => inner.into(),
            None => Json::Null,
        }
    }
}

impl PartialEq<str> for Json {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}
impl PartialEq<&str> for Json {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}
impl PartialEq<String> for Json {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}
impl PartialEq<bool> for Json {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}
macro_rules! eq_int {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Json {
            fn eq(&self, other: &$t) -> bool {
                #[allow(unused_comparisons)]
                if *other >= 0 {
                    self.as_u64() == Some(*other as u64)
                } else {
                    self.as_i64() == Some(*other as i64)
                }
            }
        }
    )*};
}
eq_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
impl PartialEq<f64> for Json {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            at: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected {lit}")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Copy runs of plain bytes in one go.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                out.push_str(
                    std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?,
                );
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            let ch = if (0xD800..0xDC00).contains(&cp) {
                                // Surrogate pair.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(c)
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(ch.ok_or_else(|| self.err("invalid codepoint"))?);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("bad \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Json::Number(Number::U(u)));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Number(Number::I(i)));
            }
        }
        text.parse::<f64>()
            .map(|f| Json::Number(Number::F(f)))
            .map_err(|_| self.err("bad number"))
    }
}

/// Build a [`Json`] value from a literal-ish expression.
///
/// ```
/// use jamm_core::json::{json, Json};
/// let v = json!({"name": "cpu", "running": true, "count": 3});
/// assert_eq!(v["name"], "cpu");
/// assert_eq!(v["count"], 3);
/// assert_eq!(json!(null), Json::Null);
/// assert_eq!(json!([1, 2])[1], 2);
/// ```
#[macro_export]
macro_rules! json {
    (null) => { $crate::json::Json::Null };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::json::Json::Array(vec![ $( $crate::json::Json::from($elem) ),* ])
    };
    ({ $($key:literal : $val:expr),* $(,)? }) => {{
        #[allow(unused_mut)]
        let mut map = $crate::json::Map::new();
        $( map.insert(($key).to_string(), $crate::json::Json::from($val)); )*
        $crate::json::Json::Object(map)
    }};
    ($other:expr) => { $crate::json::Json::from($other) };
}

pub use crate::json;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_document() {
        let text = r#"{"a":[1,-2,3.5,true,null],"b":{"c":"x\ny \"q\""},"n":18446744073709551615}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(v["a"][0], 1u64);
        assert_eq!(v["a"][1], -2);
        assert_eq!(v["a"][2], 3.5);
        assert_eq!(v["a"][3], true);
        assert!(v["a"][4].is_null());
        assert_eq!(v["b"]["c"], "x\ny \"q\"");
        assert_eq!(v["n"].as_u64(), Some(u64::MAX));
        let back = Json::parse(&v.to_string()).unwrap();
        assert_eq!(back, v);
        let pretty = Json::parse(&v.to_pretty()).unwrap();
        assert_eq!(pretty, v);
    }

    #[test]
    fn macro_builds_objects_arrays_and_scalars() {
        let name = "netstat".to_string();
        let v = json!({"name": name.clone(), "port": 14_830u64, "up": true});
        assert_eq!(v["name"], "netstat");
        assert_eq!(v["port"], 14_830);
        assert_eq!(v["up"], true);
        assert_eq!(json!(["a", "b"]).as_array().unwrap().len(), 2);
        assert_eq!(json!(42), Json::Number(Number::U(42)));
        assert_eq!(json!(null), Json::Null);
        assert_eq!(json!({}), Json::Object(Map::new()));
    }

    #[test]
    fn missing_keys_index_to_null() {
        let v = json!({"x": 1});
        assert!(v["missing"].is_null());
        assert!(v["x"]["deeper"].is_null());
        assert!(json!([1])[5].is_null());
    }

    #[test]
    fn unicode_escapes() {
        let v = Json::parse(r#""Aé😀""#).unwrap();
        assert_eq!(v, "Aé😀");
        let round = Json::parse(&Json::from("tab\tnewline\n").to_string()).unwrap();
        assert_eq!(round, "tab\tnewline\n");
    }

    #[test]
    fn rejects_garbage() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "tru",
            "01a",
            "\"unterminated",
            "{} extra",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn float_output_keeps_decimal_point() {
        assert_eq!(Json::from(50.0).to_string(), "50.0");
        assert_eq!(Json::parse("50.0").unwrap().as_f64(), Some(50.0));
        assert!(Json::parse("50.0").unwrap().as_u64().is_none());
    }

    #[test]
    fn huge_integral_floats_round_trip_as_floats() {
        for f in [1e16, -1e16, 9.007199254740993e17, 1e300] {
            let v = Json::from(f);
            let back = Json::parse(&v.to_string()).unwrap();
            assert_eq!(back, v, "round-trip of {f}");
            assert!(back.as_u64().is_none(), "{f} must stay a float");
        }
    }
}
