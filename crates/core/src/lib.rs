//! # jamm — Java Agents for Monitoring and Management, in Rust
//!
//! This is the top-level crate of the JAMM reproduction (Tierney et al.,
//! "A Monitoring Sensor Management System for Grid Environments", HPDC
//! 2000).  It wires the individual subsystems into complete deployments:
//!
//! * [`jamm_ulm`] — the ULM / NetLogger event model;
//! * [`jamm_sensors`] — host, network, process and application sensors;
//! * [`jamm_manager`] — per-host sensor managers and the port monitor agent;
//! * [`jamm_gateway`] — event gateways (filters, summaries, access control);
//! * [`jamm_directory`] — the LDAP-like sensor directory;
//! * [`jamm_consumers`] — event collector, archiver, process and overview
//!   monitors;
//! * [`jamm_archive`] — the event archive;
//! * [`jamm_auth`] — certificates, grid-mapfile and policy authorization;
//! * [`jamm_rmi`] — the remote-invocation / activation substrate;
//! * [`jamm_netlogger`] — the NetLogger toolkit (API, merging, clocks, nlv);
//! * [`jamm_netsim`] — the simulated Grid testbed everything runs against.
//!
//! The facade type is [`deployment::JammDeployment`]: it builds the paper's
//! Figure 1 / Figure 4 structure (sensors → managers → gateways → consumers,
//! publication in the directory) on top of either the MATISSE wide-area
//! scenario of §6 or a generic monitored compute cluster, advances everything
//! in lock-step with the simulated network, and exposes the collected events
//! for NetLogger analysis.
//!
//! ```
//! use jamm::deployment::{DeploymentConfig, JammDeployment};
//!
//! // A small LAN MATISSE run: 2 DPSS servers streaming frames to a client,
//! // fully monitored by JAMM.
//! let mut config = DeploymentConfig::matisse_lan(2);
//! config.matisse.player.max_frames = 5;
//! let mut jamm = JammDeployment::matisse(config);
//! jamm.run_secs(5.0);
//! assert!(jamm.collector_event_count() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admin;
pub mod cluster;
pub mod deployment;

pub use deployment::{DeploymentConfig, JammDeployment};

// Re-export the sub-crates under predictable names so downstream users need
// only one dependency.
pub use jamm_archive;
pub use jamm_auth;
pub use jamm_consumers;
pub use jamm_directory;
pub use jamm_gateway;
pub use jamm_manager;
pub use jamm_netlogger;
pub use jamm_netsim;
pub use jamm_rmi;
pub use jamm_sensors;
pub use jamm_ulm;
