//! # jamm-core — shared event-pipeline abstractions
//!
//! Every hop of the JAMM pipeline (sensors → managers → gateways →
//! consumers) used to be wired with a different ad-hoc mechanism: free
//! function codecs, bare subscription structs, unbounded channels, and
//! hand-passed gateway references.  This crate defines the one vocabulary
//! all of them now share:
//!
//! * [`codec::Codec`] — encode/decode items to wire bytes, with a
//!   `content_type` tag so peers can negotiate a format
//!   ([`jamm_ulm`](https://docs.rs) implements it for the ULM text, binary
//!   and JSON formats);
//! * [`flow::EventSink`] / [`flow::EventSource`] — push and pull ends of
//!   the pipeline, implemented by the gateway, the collector, the archiver,
//!   the sensor manager's push path and the RMI event bridge;
//! * [`channel`] — the **bounded** MPMC channel the pipeline runs on, with
//!   an explicit overflow policy instead of unbounded growth;
//! * [`flow::DeliveryCounters`] — per-sink delivered/dropped/byte counters;
//! * [`intern::Sym`] — interned identifier strings, so the hot paths key
//!   routing tables, summary series and dictionaries by `u32` instead of
//!   hashing and cloning `String`s per event;
//! * [`query`] — the unified query plane: one predicate IR
//!   ([`query::Predicate`]) with a text grammar, compiled
//!   ([`query::Plan`]) into an allocation-free evaluator plus pushdown
//!   facts, shared by gateway subscription filters, archive / tsdb scans
//!   and directory searches;
//! * [`obs`] — the self-instrumentation plane: named counters / gauges,
//!   log-bucketed latency histograms whose hot-path record is one atomic
//!   add, and the [`obs::MetricsRegistry`] every layer reports into.
//!
//! Because the build environment has no crate registry, this crate also
//! carries the small std-only stand-ins the workspace would otherwise pull
//! from crates.io: [`sync`] (poison-transparent locks), [`mod@json`] (a
//! JSON value type, parser and `json!` macro), [`rng`] (a seeded SplitMix64),
//! and [`check`] (a miniature property-testing harness).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod channel;
pub mod check;
pub mod codec;
pub mod flow;
pub mod intern;
pub mod json;
#[deny(missing_docs)]
pub mod obs;
#[deny(missing_docs)]
pub mod query;
#[deny(missing_docs)]
pub mod retry;
pub mod rng;
pub mod sync;

pub use channel::{bounded, unbounded, Receiver, Sender};
pub use codec::Codec;
pub use flow::{DeliveryCounters, EventSink, EventSource, OverflowPolicy, SinkError};
pub use intern::Sym;
pub use query::{Facts, Plan, Predicate, Record};
pub use retry::{Backoff, BreakerState, BreakerStats, CircuitBreaker};
